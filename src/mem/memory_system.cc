#include "mem/memory_system.hh"

#include <algorithm>

#include "mem/dram_backend/factory.hh"

#include "obs/host_prof.hh"
#include "sim/logging.hh"

namespace grp
{

namespace
{
/** Token used for store targets (no CPU callback wanted). */
constexpr uint64_t kStoreToken = ~0ull;
} // namespace

MemorySystem::MemorySystem(const SimConfig &config, EventQueue &events,
                           obs::StatRegistry &registry)
    : config_(config),
      events_(events),
      stats_("mem"),
      statReg_(stats_, registry)
{
    config_.validate();
    // Resolve the DRAM backend (config field / GRP_DRAM / legacy)
    // before anything is sized off the geometry: timing presets
    // override channel/bank/row counts.
    resolveDramBackend(config_.dram);
    // Registered up front so it exports as an explicit zero: a
    // non-zero value flags the accuracy>1 accounting bug (see
    // harness/runner.cc), which must be countable, not just logged.
    stats_.counter("accuracyClampEvents");
    l1d_ = std::make_unique<Cache>(config.l1d, "l1d",
                                   config.region.lruInsertion, registry);
    l2_ = std::make_unique<Cache>(config.l2, "l2",
                                  config.region.lruInsertion, registry);
    l1Mshrs_ = std::make_unique<MshrFile>(config.l1d.mshrs,
                                          config.l1d.mshrTargets,
                                          "l1dMshrs", registry);
    l2Mshrs_ = std::make_unique<MshrFile>(config.l2.mshrs,
                                          config.l2.mshrTargets,
                                          "l2Mshrs", registry);
    dram_ = makeDramBackend(config_.dram, registry);
    timingMode_ = dram_->queued();
    demandQueues_.resize(config_.dram.channels);
    writebackQueues_.resize(config_.dram.channels);

    // Registered up front (and cached: Counter storage is stable
    // across reset()) so the per-access accounting is a pointer
    // increment, never a string-keyed map lookup.
    hot_.l1DemandAccesses = &stats_.counter("l1DemandAccesses");
    hot_.l1DemandMisses = &stats_.counter("l1DemandMisses");
    hot_.l1TargetStalls = &stats_.counter("l1TargetStalls");
    hot_.l1MshrStalls = &stats_.counter("l1MshrStalls");
    hot_.l2DemandAccesses = &stats_.counter("l2DemandAccesses");
    hot_.l2DemandHits = &stats_.counter("l2DemandHits");
    hot_.l2DemandMissesTotal = &stats_.counter("l2DemandMissesTotal");
    hot_.streamHits = &stats_.counter("streamHits");
    hot_.latePrefetchUpgrades = &stats_.counter("latePrefetchUpgrades");
    hot_.l2TargetStalls = &stats_.counter("l2TargetStalls");
    hot_.l2MshrStalls = &stats_.counter("l2MshrStalls");
    hot_.demandToMemory = &stats_.counter("demandToMemory");
    hot_.demandFills = &stats_.counter("demandFills");
    hot_.prefetchFills = &stats_.counter("prefetchFills");
    hot_.writebacks = &stats_.counter("writebacks");
    hot_.writebacksQueued = &stats_.counter("writebacksQueued");
    hot_.prefetchEvictedUnused = &stats_.counter("prefetchEvictedUnused");
    hot_.usefulPrefetches = &stats_.counter("usefulPrefetches");
    hot_.usefulPrefetchWarmupCarryover =
        &stats_.counter("usefulPrefetchWarmupCarryover");
    hot_.prefetchDemandThrottled =
        &stats_.counter("prefetchDemandThrottled");
    hot_.prefetchMshrThrottled = &stats_.counter("prefetchMshrThrottled");
    hot_.prefetchFiltered = &stats_.counter("prefetchFiltered");
    hot_.prefetchesIssued = &stats_.counter("prefetchesIssued");
    hot_.prefetchToUseDistance =
        &stats_.distribution("prefetchToUseDistance");
}

uint8_t
MemorySystem::demandPtrDepth(const LoadHints &hints) const
{
    switch (config_.scheme) {
      case PrefetchScheme::PointerHw:
      case PrefetchScheme::SrpPlusPointer:
        return 1;
      case PrefetchScheme::PointerHwRec:
        return static_cast<uint8_t>(config_.region.recursiveDepth);
      case PrefetchScheme::GrpFix:
      case PrefetchScheme::GrpVar:
        return static_cast<uint8_t>(
            hints.pointerDepth(config_.region.recursiveDepth));
      case PrefetchScheme::GrpAdaptive: {
        unsigned depth = hints.pointerDepth(config_.region.recursiveDepth);
        if (plane_ && depth > 0) {
            const obs::HintClass cls = depth > 1
                                           ? obs::HintClass::Recursive
                                           : obs::HintClass::Pointer;
            depth = std::min<unsigned>(depth, plane_->ptrDepthCap(cls));
        }
        return static_cast<uint8_t>(depth);
      }
      default:
        return 0;
    }
}

bool
MemorySystem::load(Addr addr, RefId ref, const LoadHints &hints,
                   uint64_t token, Tick *hit_ready)
{
    GRP_HOST_SCOPE(2, MemAccess);
    // An L1 hit completes at a fixed latency with no further side
    // effects, so a caller that passes @p hit_ready takes the
    // completion tick back synchronously; legacy callers keep the
    // scheduled-callback behavior. Both deliver the completion at
    // exactly curTick + l1d.latency.
    if (config_.perfection == Perfection::PerfectL1 ||
        l1d_->accessIfPresent(addr, false).hit) {
        ++*hot_.l1DemandAccesses;
        if (hit_ready) {
            *hit_ready = events_.curTick() + config_.l1d.latency;
        } else {
            events_.scheduleIn(config_.l1d.latency,
                               [this, token] { loadDone_(token); });
        }
        return true;
    }

    if (!handleL1Miss(addr, ref, hints, token, false))
        return false;
    ++*hot_.l1DemandAccesses;
    ++*hot_.l1DemandMisses;
    return true;
}

bool
MemorySystem::store(Addr addr, RefId ref, const LoadHints &hints)
{
    GRP_HOST_SCOPE(2, MemAccess);
    if (config_.perfection == Perfection::PerfectL1) {
        ++*hot_.l1DemandAccesses;
        return true;
    }

    if (l1d_->accessIfPresent(addr, true).hit) {
        ++*hot_.l1DemandAccesses;
        return true;
    }

    if (!handleL1Miss(addr, ref, hints, kStoreToken, true))
        return false;
    ++*hot_.l1DemandAccesses;
    ++*hot_.l1DemandMisses;
    return true;
}

bool
MemorySystem::handleL1Miss(Addr addr, RefId ref, const LoadHints &hints,
                           uint64_t token, bool is_write)
{
    const Addr block = blockAlign(addr);
    const MshrTarget target{token, is_write, ref};

    // Coalesce onto an existing outstanding L1 miss.
    if (Mshr *mshr = l1Mshrs_->find(block)) {
        if (!l1Mshrs_->addTarget(*mshr, target)) {
            ++*hot_.l1TargetStalls;
            return false;
        }
        return true;
    }

    if (l1Mshrs_->full()) {
        ++*hot_.l1MshrStalls;
        return false;
    }

    const unsigned l1_to_l2 = config_.l1d.latency + config_.l2.latency;

    if (config_.perfection == Perfection::PerfectL2) {
        Mshr &mshr = l1Mshrs_->allocate(block, false, hints, 0,
                                        events_.curTick());
        l1Mshrs_->addTarget(mshr, target);
        respondAfter(l1_to_l2, block);
        return true;
    }

    // The L2 sees only the clean-read side of a store miss: the store
    // data lands in the L1 copy (write-allocate); the L2 copy stays
    // clean until the L1 victim is written back.
    GRP_HOST_SCOPE(2, L2Access);
    ++*hot_.l2DemandAccesses;
    // Single tag walk: probe and (on a hit) touch in one pass. The
    // first-use-of-prefetch outcome is applied after the engine
    // callback below to preserve the original notification order.
    const CacheAccessResult l2_res = l2_->accessIfPresent(block, false);
    const bool l2_hit = l2_res.hit;
    if (shadow_)
        classifyDemandAccess(block, l2_hit);

    if (engine_)
        engine_->onL2DemandAccess(block, ref, hints, l2_hit);

    if (l2_hit) {
        ++*hot_.l2DemandHits;
        if (l2_res.firstUseOfPrefetch)
            notePrefetchUseful(block);
        Mshr &mshr = l1Mshrs_->allocate(block, false, hints, 0,
                                        events_.curTick());
        l1Mshrs_->addTarget(mshr, target);
        respondAfter(l1_to_l2, block);
        return true;
    }

    ++*hot_.l2DemandMissesTotal;

    // Stream-buffer short circuit (stride prefetcher).
    if (engine_ && engine_->streamHit(block)) {
        ++*hot_.streamHits;
        insertIntoL2(block, true, false, ref, obs::HintClass::Stride);
        // The buffer was armed by the same static reference that now
        // consumes the block, so the demand's ref is the site.
        livePrefetches_[block] =
            PrefetchFillInfo{events_.curTick(), obs::HintClass::Stride,
                             false, ref};
        GRP_TRACE(1, obs::TraceEvent::Fill, block,
                  obs::HintClass::Stride, -1, -1, false, ref);
        GRP_PROFILE(noteFill(ref, obs::HintClass::Stride, false));
        ++classCounts_[static_cast<size_t>(obs::HintClass::Stride)]
              .fills;
        // Promote; counts a useful prefetch.
        if (l2_->access(block, false).firstUseOfPrefetch)
            notePrefetchUseful(block);
        Mshr &mshr = l1Mshrs_->allocate(block, false, hints, 0,
                                        events_.curTick());
        l1Mshrs_->addTarget(mshr, target);
        respondAfter(l1_to_l2, block);
        return true;
    }

    // A prefetch for this block may already be in flight: merge.
    if (Mshr *l2_mshr = l2Mshrs_->find(block)) {
        // A demand entry would imply an L1 MSHR for this block, which
        // the coalescing check above would have found.
        panic_if(!l2_mshr->isPrefetch,
                 "demand L2 MSHR without an L1 MSHR for block %#llx",
                 (unsigned long long)block);
        if (!l2Mshrs_->addTarget(*l2_mshr, target)) {
            ++*hot_.l2TargetStalls;
            return false;
        }
        ++*hot_.latePrefetchUpgrades;
        Mshr &mshr = l1Mshrs_->allocate(block, false, hints, 0,
                                        events_.curTick());
        l1Mshrs_->addTarget(mshr, target);
        return true;
    }

    if (l2Mshrs_->full()) {
        ++*hot_.l2MshrStalls;
        return false;
    }

    // Full miss: allocate both MSHRs and queue the DRAM request.
    ++*hot_.demandToMemory;
    const uint8_t depth = demandPtrDepth(hints);
    Mshr &l2_mshr = l2Mshrs_->allocate(block, false, hints, depth,
                                       events_.curTick());
    l2Mshrs_->addTarget(l2_mshr, target);
    Mshr &l1_mshr = l1Mshrs_->allocate(block, false, hints, 0,
                                       events_.curTick());
    l1Mshrs_->addTarget(l1_mshr, target);

    MemRequest req;
    req.blockAddr = block;
    req.cls = ReqClass::Demand;
    req.refId = ref;
    req.hints = hints;
    req.ptrDepth = depth;
    req.enqueued = events_.curTick();
    demandQueues_[dram_->channelOf(block)].push_back(req);
    ++queuedDemand_;

    if (engine_)
        engine_->onL2DemandMiss(block, ref, hints);
    return true;
}

void
MemorySystem::respondAfter(Tick delay, Addr block_addr)
{
    events_.scheduleIn(delay,
                       [this, block_addr] { finishL1Fill(block_addr); });
}

void
MemorySystem::finishL1Fill(Addr block_addr)
{
    Mshr *mshr = l1Mshrs_->find(block_addr);
    panic_if(!mshr, "L1 fill without an MSHR for block %#llx",
             (unsigned long long)block_addr);

    bool dirty = false;
    for (const MshrTarget &target : mshr->targets)
        dirty = dirty || target.isWrite;

    auto evicted = l1d_->insert(block_addr, false, dirty);
    if (evicted && evicted->dirty) {
        // L1 victim writeback allocates in the L2.
        if (l2_->contains(evicted->blockAddr))
            l2_->markDirty(evicted->blockAddr);
        else if (config_.perfection == Perfection::None)
            insertIntoL2(evicted->blockAddr, false, true);
        // The baseline cache receives the same writeback allocation;
        // replay it so the shadow diverges only through prefetching.
        if (shadow_)
            shadow_->allocate(evicted->blockAddr);
    }

    for (const MshrTarget &target : mshr->targets) {
        if (!target.isWrite)
            loadDone_(target.token);
    }
    l1Mshrs_->deallocate(*mshr);
}

void
MemorySystem::notePrefetchUseful(Addr block_addr)
{
    if (engine_)
        engine_->onPrefetchUseful(block_addr);

    auto it = livePrefetches_.find(block_addr);
    if (it == livePrefetches_.end()) {
        // No fill record (state carried across a reset()): attribute
        // conservatively as carryover so measured accuracy stays a
        // fills-vs-uses ratio over the same window.
        ++*hot_.usefulPrefetchWarmupCarryover;
        GRP_TRACE(1, obs::TraceEvent::FirstUse, block_addr,
                  obs::HintClass::None, -1, -1, true);
        GRP_PROFILE(noteUseful(kInvalidRefId, obs::HintClass::None, 0,
                               true));
        return;
    }

    const PrefetchFillInfo info = it->second;
    livePrefetches_.erase(it);
    const uint64_t distance = std::min<uint64_t>(
        events_.curTick() - info.fillTick, kDistanceCap);
    if (info.warm) {
        ++*hot_.usefulPrefetchWarmupCarryover;
    } else {
        ++*hot_.usefulPrefetches;
        ++classCounts_[static_cast<size_t>(info.hint)].useful;
        hot_.prefetchToUseDistance->sample(distance);
    }
    GRP_TRACE(1, obs::TraceEvent::FirstUse, block_addr, info.hint, -1,
              static_cast<int64_t>(distance), info.warm, info.ref);
    GRP_PROFILE(noteUseful(info.ref, info.hint, distance, info.warm));
}

void
MemorySystem::insertIntoL2(Addr block_addr, bool as_prefetch, bool dirty,
                           RefId ref, obs::HintClass hint)
{
    // The control plane (when attached) picks the recency position of
    // prefetch fills per hint class; demand fills stay MRU.
    std::optional<adaptive::InsertPos> pos;
    if (plane_ && as_prefetch)
        pos = plane_->insertPos(hint);
    auto evicted = l2_->insert(block_addr, as_prefetch, dirty, pos);
    if (shadow_ && as_prefetch && evicted) {
        // A prefetch fill displaced a live block: remember whom to
        // charge if a demand comes back for the victim while the
        // shadow cache still holds it (a pollution miss).
        const uint64_t drops_before = victims_.drops();
        victims_.record(evicted->blockAddr, ref, hint);
        ++*pol_.victimsRecorded;
        *pol_.victimDrops += victims_.drops() - drops_before;
        GRP_TRACE(2, obs::TraceEvent::EvictVictim, evicted->blockAddr,
                  hint, -1, -1, false, ref);
    }
    if (evicted && evicted->wasUnusedPrefetch) {
        ++*hot_.prefetchEvictedUnused;
        auto it = livePrefetches_.find(evicted->blockAddr);
        const obs::HintClass hint = it != livePrefetches_.end()
                                        ? it->second.hint
                                        : obs::HintClass::None;
        const bool warm =
            it != livePrefetches_.end() && it->second.warm;
        const RefId ref = it != livePrefetches_.end()
                              ? it->second.ref
                              : kInvalidRefId;
        if (it != livePrefetches_.end())
            livePrefetches_.erase(it);
        GRP_TRACE(1, obs::TraceEvent::EvictedUnused, evicted->blockAddr,
                  hint, -1, -1, warm, ref);
        GRP_PROFILE(noteEvictedUnused(ref, hint, warm));
    }
    if (evicted && evicted->dirty) {
        MemRequest wb;
        wb.blockAddr = evicted->blockAddr;
        wb.cls = ReqClass::Writeback;
        wb.enqueued = events_.curTick();
        writebackQueues_[dram_->channelOf(wb.blockAddr)].push_back(wb);
        ++queuedWriteback_;
        ++*hot_.writebacksQueued;
    }
}

void
MemorySystem::enableShadowTags()
{
    if (shadow_)
        return;
    shadow_ = std::make_unique<obs::ShadowTags>(l2_->sets(),
                                                l2_->assoc());
    // Registered (and cached: Counter storage is stable across
    // reset()) only when the shadow model is on, so non-shadow runs
    // export exactly the same stat set as before.
    pol_.bothHits = &stats_.counter("pollutionBothHits");
    pol_.baselineMisses = &stats_.counter("pollutionBaselineMisses");
    pol_.pollutionMisses = &stats_.counter("pollutionMisses");
    pol_.coverageHits = &stats_.counter("pollutionCoverageHits");
    pol_.shadowMisses = &stats_.counter("pollutionShadowMisses");
    pol_.attributed = &stats_.counter("pollutionAttributed");
    pol_.unattributed = &stats_.counter("pollutionUnattributed");
    pol_.victimsRecorded = &stats_.counter("pollutionVictimsRecorded");
    pol_.victimDrops = &stats_.counter("pollutionVictimDrops");
}

void
MemorySystem::classifyDemandAccess(Addr block_addr, bool real_hit)
{
    // One shadow probe per demand L2 access keeps the four outcome
    // counters a partition of l2DemandAccesses, which is what makes
    //   coverageHits - pollutionMisses == shadowMisses - realMisses
    // hold exactly over any window aligned with stat resets. That
    // alignment includes retries: an access that stalls (MSHR/target
    // pressure) re-enters here each cycle, exactly as it re-counts in
    // l2DemandAccesses/l2DemandMissesTotal — so in stall-heavy
    // configurations a single architectural miss can classify many
    // times (the shadow allocates on its first probe, turning the
    // retries into pollution-class counts the victim table cannot
    // attribute).
    const bool shadow_hit = shadow_->access(block_addr);
    if (!shadow_hit)
        ++*pol_.shadowMisses;
    if (real_hit && shadow_hit) {
        ++*pol_.bothHits;
    } else if (real_hit) {
        ++*pol_.coverageHits;
    } else if (shadow_hit) {
        ++*pol_.pollutionMisses;
        if (auto victim = victims_.take(block_addr)) {
            ++*pol_.attributed;
            GRP_TRACE(2, obs::TraceEvent::PollutionMiss, block_addr,
                      victim->hint, -1, -1, false, victim->ref);
            GRP_PROFILE(notePollutionMiss(victim->ref, victim->hint));
        } else {
            ++*pol_.unattributed;
            GRP_TRACE(2, obs::TraceEvent::PollutionMiss, block_addr);
        }
    } else {
        ++*pol_.baselineMisses;
    }
}

void
MemorySystem::indirectPrefetch(Addr base, unsigned elem_size,
                               Addr index_addr, RefId ref)
{
    if (engine_)
        engine_->indirectPrefetch(base, elem_size, index_addr, ref);
}

void
MemorySystem::tick()
{
    if (config_.perfection != Perfection::None)
        return;

    const Tick now = events_.curTick();

    // Queued backends schedule commands and retire transfers inside
    // their own tick; completed fills are drained here so they take
    // the same onDramFill path a legacy completion event takes.
    if (timingMode_) {
        dram_->tick(now);
        while (auto filled = dram_->popCompleted(now))
            onDramFill(std::move(*filled));
    }

    // Quiet-cycle fast path: nothing queued, every channel idle, and
    // tryIssuePrefetch provably touches no counter — either there is
    // no engine, or the issue gates are open with an empty engine
    // queue, where the draw loop returns without side effects. All
    // the per-channel walk would do is attribute one idle cycle per
    // channel, so do exactly that in one batched call. Any throttled
    // idle state (a closed gate bumps prefetch*Throttled every idle
    // cycle) must take the slow path to keep stats byte-identical.
    if (queuedDemand_ == 0 && queuedWriteback_ == 0 &&
        dram_->allIdle(now) &&
        (!engine_ ||
         (l2Mshrs_->demandInFlight() == 0 &&
          l2Mshrs_->capacity() - l2Mshrs_->inFlight() >
              kDemandReservedMshrs &&
          engine_->queueDepth() == 0))) {
        dram_->noteAllIdleCycle();
        return;
    }

    for (unsigned ch = 0; ch < config_.dram.channels; ++ch) {
        const bool can_issue = timingMode_ ? dram_->canAccept(ch, now)
                                           : dram_->channelIdle(ch, now);
        if (can_issue) {
            auto &demand = demandQueues_[ch];
            auto &wb = writebackQueues_[ch];
            if (wb.size() > kWritebackHighWater) {
                startDramAccess(ch, wb.front());
                wb.pop_front();
                --queuedWriteback_;
            } else if (!demand.empty()) {
                startDramAccess(ch, demand.front());
                demand.pop_front();
                --queuedDemand_;
            } else if (!wb.empty()) {
                startDramAccess(ch, wb.front());
                wb.pop_front();
                --queuedWriteback_;
            } else {
                tryIssuePrefetch(ch);
            }
        }
        // Contention accounting: attribute this cycle to whatever now
        // occupies the channel (including an access started above),
        // and charge demand queueing time spent behind an in-flight
        // prefetch the prioritizer could not pre-empt.
        dram_->noteChannelCycle(ch, now);
        if (!dram_->channelIdle(ch, now) &&
            dram_->occupantClass(ch) == ReqClass::Prefetch &&
            !demandQueues_[ch].empty()) {
            const uint64_t waiting = demandQueues_[ch].size();
            dram_->noteDemandStall(waiting);
            GRP_PROFILE(noteContention(dram_->occupantRef(ch),
                                       dram_->occupantHint(ch),
                                       waiting));
        }
    }
}

Tick
MemorySystem::nextWorkTick(Tick now) const
{
    if (config_.perfection != Perfection::None)
        return kMaxTick; // tick() is a no-op under perfection.

    // The prefetch gates tryIssuePrefetch would test this cycle; they
    // cannot change inside a stall window (the CPU is frozen and no
    // DRAM completion events fire before the skip target).
    const bool gates_open =
        engine_ && engine_->queueDepth() > 0 &&
        l2Mshrs_->demandInFlight() == 0 &&
        l2Mshrs_->capacity() - l2Mshrs_->inFlight() >
            kDemandReservedMshrs &&
        queuedDemand_ == 0;

    Tick next = kMaxTick;
    // A queued backend transitions on its own every cycle while any
    // command is pending; no window may skip over that.
    if (timingMode_)
        next = dram_->nextTransitionTick(now);
    for (unsigned ch = 0; ch < config_.dram.channels; ++ch) {
        // A channel does new work at its first idle cycle, when it
        // either starts a queued access or (gates open, candidates
        // pending) may draw a prefetch.
        if (demandQueues_[ch].empty() && writebackQueues_[ch].empty() &&
            !gates_open) {
            continue;
        }
        const Tick first_idle =
            std::max(dram_->channelBusyUntil(ch), now + 1);
        next = std::min(next, first_idle);
    }
    return next;
}

void
MemorySystem::fastForwardTicks(Tick from, Tick to)
{
    if (config_.perfection != Perfection::None || to <= from)
        return;
    const uint64_t span = to - from;

    // The throttle counter an idle channel's tryIssuePrefetch would
    // bump each cycle. The "else" branch means the gates are open: the
    // runner only skips such cycles when the engine's queue is empty,
    // where the draw loop returns without touching any counter.
    enum class IdleCount { None, DemandThrottled, MshrThrottled };
    IdleCount idle_count = IdleCount::None;
    if (engine_) {
        const bool any_demand =
            l2Mshrs_->demandInFlight() > 0 || queuedDemand_ != 0;
        if (any_demand) {
            idle_count = IdleCount::DemandThrottled;
        } else if (l2Mshrs_->capacity() - l2Mshrs_->inFlight() <=
                   kDemandReservedMshrs) {
            idle_count = IdleCount::MshrThrottled;
        }
    }

    for (unsigned ch = 0; ch < config_.dram.channels; ++ch) {
        const Tick busy_until = dram_->channelBusyUntil(ch);
        const uint64_t busy =
            busy_until <= from
                ? 0
                : std::min<uint64_t>(busy_until - from, span);
        const uint64_t idle = span - busy;
        dram_->noteChannelCycles(ch, busy, idle);
        if (idle) {
            if (idle_count == IdleCount::DemandThrottled)
                *hot_.prefetchDemandThrottled += idle;
            else if (idle_count == IdleCount::MshrThrottled)
                *hot_.prefetchMshrThrottled += idle;
        }
        if (busy && dram_->occupantClass(ch) == ReqClass::Prefetch &&
            !demandQueues_[ch].empty()) {
            const uint64_t waiting = demandQueues_[ch].size();
            dram_->noteDemandStall(waiting * busy);
            GRP_PROFILE(noteContention(dram_->occupantRef(ch),
                                       dram_->occupantHint(ch),
                                       waiting * busy));
        }
    }
}

void
MemorySystem::startDramAccess(unsigned channel, const MemRequest &req)
{
    panic_if(dram_->channelOf(req.blockAddr) != channel,
             "request routed to the wrong channel");
    const Tick done = dram_->serve(req.blockAddr, events_.curTick(),
                                   req.cls, req.refId, req.hintClass);

    switch (req.cls) {
      case ReqClass::Demand:
        ++*hot_.demandFills;
        break;
      case ReqClass::Prefetch:
        ++*hot_.prefetchFills;
        break;
      case ReqClass::Writeback:
        ++*hot_.writebacks;
        return; // Writebacks need no completion handling.
    }

    // Queued backends deliver the fill through popCompleted() once
    // their command scheduling retires the transfer.
    if (done == kTickPending)
        return;

    MemRequest in_flight = req;
    events_.schedule(done, [this, in_flight] { onDramFill(in_flight); });
}

void
MemorySystem::onDramFill(MemRequest req)
{
    Mshr *mshr = l2Mshrs_->find(req.blockAddr);
    panic_if(!mshr, "DRAM fill without an L2 MSHR for block %#llx",
             (unsigned long long)req.blockAddr);

    // A prefetch upgraded by a demand miss while in flight behaves as
    // a demand fill from here on.
    const bool demand_class = !mshr->isPrefetch;
    const uint8_t depth = mshr->ptrDepth;
    const bool was_prefetch_req = req.cls == ReqClass::Prefetch;

    insertIntoL2(req.blockAddr, was_prefetch_req, false, req.refId,
                 req.hintClass);
    if (was_prefetch_req) {
        const bool warm = mshr->allocated < boundaryTick_;
        livePrefetches_[req.blockAddr] = PrefetchFillInfo{
            events_.curTick(), req.hintClass, warm, req.refId};
        GRP_TRACE(1, obs::TraceEvent::Fill, req.blockAddr,
                  req.hintClass, -1, -1, warm, req.refId);
        GRP_PROFILE(noteFill(req.refId, req.hintClass, warm));
        if (!warm)
            ++classCounts_[static_cast<size_t>(req.hintClass)].fills;
    }
    if (demand_class && was_prefetch_req) {
        // Late prefetch: the waiting demand touches it immediately.
        if (l2_->access(req.blockAddr, false).firstUseOfPrefetch)
            notePrefetchUseful(req.blockAddr);
    }

    l2Mshrs_->deallocate(*mshr);

    if (engine_ && depth > 0)
        engine_->onFill(req.blockAddr, depth,
                        demand_class ? ReqClass::Demand
                                     : ReqClass::Prefetch);

    if (demand_class)
        respondAfter(config_.l1d.latency, req.blockAddr);
}

bool
MemorySystem::tryIssuePrefetch(unsigned channel)
{
    if (!engine_)
        return false;
    GRP_HOST_SCOPE(2, PrefetchIssue);
    // The access prioritizer forwards prefetch requests only when
    // there are no outstanding demand misses from the L2 (§3.1):
    // prefetches thus contend with demands only when the demand
    // arrived after the prefetch had already been issued to DRAM.
    if (l2Mshrs_->demandInFlight() > 0) {
        ++*hot_.prefetchDemandThrottled;
        GRP_TRACE(3, obs::TraceEvent::Stall, 0, obs::HintClass::None,
                  static_cast<int>(channel), 0);
        return false;
    }
    if (queuedDemand_ != 0) {
        ++*hot_.prefetchDemandThrottled;
        GRP_TRACE(3, obs::TraceEvent::Stall, 0, obs::HintClass::None,
                  static_cast<int>(channel), 1);
        return false;
    }
    if (l2Mshrs_->capacity() - l2Mshrs_->inFlight() <=
        kDemandReservedMshrs) {
        ++*hot_.prefetchMshrThrottled;
        GRP_TRACE(3, obs::TraceEvent::Stall, 0, obs::HintClass::None,
                  static_cast<int>(channel), 2);
        return false;
    }

    for (unsigned attempt = 0; attempt < kPrefetchDrawLimit; ++attempt) {
        auto candidate = engine_->dequeuePrefetch(*dram_, channel);
        if (!candidate)
            return false;
        const Addr block = candidate->blockAddr;
        panic_if(dram_->channelOf(block) != channel,
                 "engine offered a candidate for the wrong channel");
        if (l2_->contains(block) || l2Mshrs_->find(block)) {
            ++*hot_.prefetchFiltered;
            GRP_TRACE(2, obs::TraceEvent::Filtered, block,
                      candidate->hintClass, static_cast<int>(channel),
                      -1, false, candidate->refId);
            GRP_PROFILE(noteFiltered(candidate->refId,
                                     candidate->hintClass));
            continue;
        }
        l2Mshrs_->allocate(block, true, LoadHints{},
                           candidate->ptrDepth, events_.curTick());
        MemRequest req;
        req.blockAddr = block;
        req.cls = ReqClass::Prefetch;
        req.refId = candidate->refId;
        req.ptrDepth = candidate->ptrDepth;
        req.hintClass = candidate->hintClass;
        req.enqueued = events_.curTick();
        startDramAccess(channel, req);
        ++*hot_.prefetchesIssued;
        GRP_TRACE(1, obs::TraceEvent::Issue, block, candidate->hintClass,
                  static_cast<int>(channel), candidate->ptrDepth, false,
                  candidate->refId);
        GRP_PROFILE(noteIssue(candidate->refId, candidate->hintClass));
        return true;
    }
    return false;
}

bool
MemorySystem::quiesced() const
{
    return l1Mshrs_->inFlight() == 0 && queuedDemand_ == 0;
}

uint64_t
MemorySystem::trafficBytes() const
{
    return kBlockBytes * (stats_.value("demandFills") +
                          stats_.value("prefetchFills") +
                          stats_.value("writebacks"));
}

uint64_t
MemorySystem::l2DemandMisses() const
{
    return stats_.value("demandToMemory") +
           stats_.value("latePrefetchUpgrades");
}

size_t
MemorySystem::demandQueueDepth() const
{
    return queuedDemand_;
}

size_t
MemorySystem::writebackQueueDepth() const
{
    return queuedWriteback_;
}

void
MemorySystem::resetStats()
{
    l1d_->stats().reset();
    l2_->stats().reset();
    l1Mshrs_->stats().reset();
    l2Mshrs_->stats().reset();
    dram_->stats().reset();
    stats_.reset();
    // Prefetches filled before this boundary must not count toward
    // measured-window accuracy when they are finally referenced.
    boundaryTick_ = events_.curTick();
    for (auto &entry : livePrefetches_)
        entry.second.warm = true;
    classCounts_ = {};
}

void
MemorySystem::reset()
{
    l1d_->reset();
    l2_->reset();
    l1Mshrs_->reset();
    l2Mshrs_->reset();
    dram_->reset();
    for (auto &queue : demandQueues_)
        queue.clear();
    for (auto &queue : writebackQueues_)
        queue.clear();
    queuedDemand_ = 0;
    queuedWriteback_ = 0;
    livePrefetches_.clear();
    boundaryTick_ = 0;
    if (shadow_)
        shadow_->reset();
    victims_.reset();
    stats_.reset();
    classCounts_ = {};
}

} // namespace grp
