/**
 * @file
 * The legacy Rambus-style DRAM model: independent channels, each with
 * a set of banks using an open-page (open-row) policy. Blocks are
 * interleaved across channels at cache-block granularity, so a 4 KB
 * prefetch region streams from all four channels in parallel, and
 * consecutive blocks within one channel fall in the same row — the
 * locality the SRP scheduler exploits by preferring prefetches to
 * open rows.
 *
 * This is the default `DramBackend` (GRP_DRAM=legacy): an access is
 * served immediately on an idle channel with a flat row-hit /
 * row-conflict latency, the bank access pipelines under the previous
 * transfer, and serve() returns the completion tick directly. The
 * cycle-accurate command-queue backends live in mem/dram_backend/.
 */

#ifndef GRP_MEM_DRAM_HH
#define GRP_MEM_DRAM_HH

#include "mem/dram_backend/backend.hh"

namespace grp
{

/** Multi-channel open-page DRAM timing model (the legacy backend). */
class DramSystem final : public DramBackend
{
  public:
    explicit DramSystem(const DramConfig &config,
                        obs::StatRegistry &registry =
                            obs::StatRegistry::current());

    /**
     * Issue the access for @p addr's block at @p now on its (idle)
     * channel. Occupies the channel for the access + transfer time
     * and leaves the row open. The request class (and, for
     * prefetches, the responsible site) is remembered as the
     * channel's occupant so per-cycle contention accounting can
     * attribute the busy time.
     *
     * @return Tick at which the block's data is fully returned.
     */
    Tick serve(Addr addr, Tick now, ReqClass cls,
               RefId ref = kInvalidRefId,
               obs::HintClass hint = obs::HintClass::None) override;
    using DramBackend::serve;

    const char *name() const override { return "legacy"; }
};

} // namespace grp

#endif // GRP_MEM_DRAM_HH
