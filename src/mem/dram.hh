/**
 * @file
 * A Rambus-style DRAM model: independent channels, each with a set of
 * banks using an open-page (open-row) policy. Blocks are interleaved
 * across channels at cache-block granularity, so a 4 KB prefetch
 * region streams from all four channels in parallel, and consecutive
 * blocks within one channel fall in the same row — the locality the
 * SRP scheduler exploits by preferring prefetches to open rows.
 */

#ifndef GRP_MEM_DRAM_HH
#define GRP_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "obs/stat_registry.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace grp
{

/** Multi-channel open-page DRAM timing model. */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &config);

    /** Channel servicing @p addr (block interleaved). */
    unsigned channelOf(Addr addr) const;
    /** Bank within the channel servicing @p addr. */
    unsigned bankOf(Addr addr) const;
    /** Row within the bank servicing @p addr. */
    uint64_t rowOf(Addr addr) const;

    /** True when the channel can accept a request at @p now. */
    bool channelIdle(unsigned channel, Tick now) const;

    /** True when @p addr's row is open in its bank (bank-aware
     *  prefetch scheduling queries this). */
    bool rowOpen(Addr addr) const;

    /** Channels still occupied at @p now (time-series sampling). */
    unsigned busyChannels(Tick now) const;

    /**
     * Issue the access for @p addr's block at @p now on its (idle)
     * channel. Occupies the channel for the access + transfer time
     * and leaves the row open.
     *
     * @return Tick at which the block's data is fully returned.
     */
    Tick serve(Addr addr, Tick now);

    /** Total 64 B transfers served (traffic accounting). */
    uint64_t transfersServed() const { return transfers_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    const DramConfig &config() const { return config_; }

    void reset();

  private:
    DramConfig config_;
    unsigned channelShift_;    ///< log2(channels).
    unsigned blocksPerRow_;
    unsigned blocksPerRowShift_;
    unsigned bankShift_;       ///< log2(banksPerChannel).

    struct Bank
    {
        int64_t openRow = -1;
    };

    struct Channel
    {
        Tick busyUntil = 0;
        std::vector<Bank> banks;
    };

    std::vector<Channel> channels_;
    uint64_t transfers_ = 0;
    StatGroup stats_;
    obs::ScopedStatRegistration statReg_{stats_};
};

} // namespace grp

#endif // GRP_MEM_DRAM_HH
