/**
 * @file
 * A Rambus-style DRAM model: independent channels, each with a set of
 * banks using an open-page (open-row) policy. Blocks are interleaved
 * across channels at cache-block granularity, so a 4 KB prefetch
 * region streams from all four channels in parallel, and consecutive
 * blocks within one channel fall in the same row — the locality the
 * SRP scheduler exploits by preferring prefetches to open rows.
 */

#ifndef GRP_MEM_DRAM_HH
#define GRP_MEM_DRAM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mem/request.hh"
#include "obs/stat_registry.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace grp
{

/** Multi-channel open-page DRAM timing model. */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &config,
                        obs::StatRegistry &registry =
                            obs::StatRegistry::current());

    /** Channel servicing @p addr (block interleaved). */
    unsigned channelOf(Addr addr) const;
    /** Bank within the channel servicing @p addr. */
    unsigned bankOf(Addr addr) const;
    /** Row within the bank servicing @p addr. */
    uint64_t rowOf(Addr addr) const;

    /** True when the channel can accept a request at @p now. */
    bool channelIdle(unsigned channel, Tick now) const;

    /** First tick at which @p channel is idle (stall fast-forward). */
    Tick channelBusyUntil(unsigned channel) const
    {
        return channels_[channel].busyUntil;
    }

    /** Every channel is idle at @p now (one compare against the
     *  high-water mark of all busyUntil times — the quiet-cycle fast
     *  path's gate). */
    bool allIdle(Tick now) const { return maxBusyUntil_ <= now; }

    /** True when @p addr's row is open in its bank (bank-aware
     *  prefetch scheduling queries this). */
    bool rowOpen(Addr addr) const;

    /** Channels still occupied at @p now (time-series sampling). */
    unsigned busyChannels(Tick now) const;

    /**
     * Issue the access for @p addr's block at @p now on its (idle)
     * channel. Occupies the channel for the access + transfer time
     * and leaves the row open. The request class (and, for
     * prefetches, the responsible site) is remembered as the
     * channel's occupant so per-cycle contention accounting can
     * attribute the busy time.
     *
     * @return Tick at which the block's data is fully returned.
     */
    Tick serve(Addr addr, Tick now, ReqClass cls,
               RefId ref = kInvalidRefId,
               obs::HintClass hint = obs::HintClass::None);

    /** Demand-class convenience overload (tests, microbenches). */
    Tick serve(Addr addr, Tick now)
    {
        return serve(addr, now, ReqClass::Demand);
    }

    /**
     * Per-cycle contention accounting, driven once per channel per
     * simulated cycle by the memory system's tick: attributes the
     * cycle to the occupant's request class when the channel is busy
     * at @p now, to idle otherwise. The per-channel and aggregate
     * breakdowns live in the "dram" stat group
     * (chNDemandCycles/chNPrefetchCycles/chNWritebackCycles/
     * chNIdleCycles/chNCycles and contention*Cycles), so
     * demand + prefetch + writeback + idle sums to the channel's
     * accounted cycles by construction.
     */
    void noteChannelCycle(unsigned channel, Tick now);

    /**
     * Batched form of noteChannelCycle for the stall fast-forward: in
     * a window where the channel's occupant cannot change, @p
     * busy_cycles cycles attribute to the current occupant's class and
     * @p idle_cycles to idle — byte-identical to calling
     * noteChannelCycle once per cycle across the window.
     */
    void noteChannelCycles(unsigned channel, uint64_t busy_cycles,
                           uint64_t idle_cycles);

    /** One all-channels-idle cycle: equivalent to noteChannelCycle on
     *  every (idle) channel, minus the per-channel dispatch — the
     *  accounting arm of the memory system's quiet-cycle fast path. */
    void noteAllIdleCycle();

    /** Demand requests spent @p waiting request-cycles stalled behind
     *  an in-flight prefetch transfer the prioritizer could not
     *  preempt (dram.contentionDemandStallCycles). */
    void noteDemandStall(uint64_t waiting);

    /** Request class occupying @p channel (meaningful while busy). */
    ReqClass occupantClass(unsigned channel) const;
    /** Site / hint class of the occupying prefetch (attribution). */
    RefId occupantRef(unsigned channel) const;
    obs::HintClass occupantHint(unsigned channel) const;

    /** One channel's accounted-cycle breakdown (cost reports). */
    struct ChannelCycles
    {
        uint64_t demand = 0;
        uint64_t prefetch = 0;
        uint64_t writeback = 0;
        uint64_t idle = 0;
        uint64_t
        total() const
        {
            return demand + prefetch + writeback + idle;
        }
    };
    ChannelCycles channelCycles(unsigned channel) const;

    /** Total 64 B transfers served (traffic accounting). */
    uint64_t transfersServed() const { return transfers_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    const DramConfig &config() const { return config_; }

    void reset();

  private:
    DramConfig config_;
    unsigned channelShift_;    ///< log2(channels).
    unsigned blocksPerRow_;
    unsigned blocksPerRowShift_;
    unsigned bankShift_;       ///< log2(banksPerChannel).

    struct Bank
    {
        int64_t openRow = -1;
    };

    struct Channel
    {
        Tick busyUntil = 0;
        std::vector<Bank> banks;
        /** What the in-flight transfer is (contention attribution). */
        ReqClass occupantCls = ReqClass::Demand;
        RefId occupantRef = kInvalidRefId;
        obs::HintClass occupantHint = obs::HintClass::None;
    };

    /** Cached per-channel cycle counters (demand, prefetch,
     *  writeback, idle, total) so per-cycle accounting skips the
     *  stat-name lookup; Counter references are stable across
     *  StatGroup::reset(). */
    struct ChannelCycleCounters
    {
        std::array<Counter *, 5> slots{};
    };

    std::vector<Channel> channels_;
    /** High-water mark of every channel's busyUntil (allIdle()). */
    Tick maxBusyUntil_ = 0;
    std::vector<ChannelCycleCounters> cycleCounters_;
    /** Aggregate demand/prefetch/writeback/idle cycle counters. */
    std::array<Counter *, 4> contentionCounters_{};
    Counter *demandStallCounter_ = nullptr;
    /** Per-serve() counters, cached for the same reason. */
    Counter *rowHitCounter_ = nullptr;
    Counter *rowConflictCounter_ = nullptr;
    Counter *transferCounter_ = nullptr;
    uint64_t transfers_ = 0;
    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;
};

} // namespace grp

#endif // GRP_MEM_DRAM_HH
