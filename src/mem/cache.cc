#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace grp
{

Cache::Cache(const CacheConfig &config, const std::string &name,
             bool lru_insertion)
    : config_(config),
      numSets_(static_cast<unsigned>(config.sizeBytes /
                                     (config.assoc * kBlockBytes))),
      assoc_(config.assoc),
      lruInsertion_(lru_insertion),
      stats_(name)
{
    fatal_if(numSets_ == 0 || !isPowerOfTwo(numSets_),
             "cache set count must be a non-zero power of two");
    lines_.resize(static_cast<size_t>(numSets_) * assoc_);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>(blockNumber(addr) & (numSets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return blockNumber(addr) / numSets_;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const Addr tag = tagOf(addr);
    Line *set = &lines_[static_cast<size_t>(setIndex(addr)) * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (set[way].valid && set[way].tag == tag)
            return &set[way];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    ++stats_.counter("accesses");
    Line *line = findLine(addr);
    if (!line) {
        ++stats_.counter("misses");
        return {false, false};
    }
    ++stats_.counter("hits");
    bool first_use = false;
    if (line->prefetched && !line->referenced) {
        line->referenced = true;
        first_use = true;
        ++stats_.counter("prefetchHits");
    }
    line->lruStamp = nextStamp_++;
    if (is_write)
        line->dirty = true;
    return {true, first_use};
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::containsUnusedPrefetch(Addr addr) const
{
    const Line *line = findLine(addr);
    return line && line->prefetched && !line->referenced;
}

std::optional<Eviction>
Cache::insert(Addr addr, bool as_prefetch, bool dirty)
{
    // Re-inserting a present block only updates its state.
    if (Line *line = findLine(addr)) {
        line->dirty = line->dirty || dirty;
        return std::nullopt;
    }

    Line *set = &lines_[static_cast<size_t>(setIndex(addr)) * assoc_];
    Line *victim = nullptr;
    for (unsigned way = 0; way < assoc_; ++way) {
        Line &line = set[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    std::optional<Eviction> evicted;
    if (victim->valid) {
        evicted = Eviction{
            (victim->tag * numSets_ + setIndex(addr)) << kBlockShift,
            victim->dirty,
            victim->prefetched && !victim->referenced,
        };
        ++stats_.counter("evictions");
        if (evicted->wasUnusedPrefetch)
            ++stats_.counter("unusedPrefetchEvictions");
    }

    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->dirty = dirty;
    victim->prefetched = as_prefetch;
    victim->referenced = !as_prefetch;

    if (as_prefetch && lruInsertion_) {
        // LRU position: stamp below every other valid line in the set.
        uint64_t min_stamp = nextStamp_;
        for (unsigned way = 0; way < assoc_; ++way) {
            if (&set[way] != victim && set[way].valid)
                min_stamp = std::min(min_stamp, set[way].lruStamp);
        }
        victim->lruStamp = min_stamp > 0 ? min_stamp - 1 : 0;
        ++stats_.counter("prefetchFills");
    } else {
        victim->lruStamp = nextStamp_++;
        if (as_prefetch)
            ++stats_.counter("prefetchFills");
        else
            ++stats_.counter("demandFills");
    }
    return evicted;
}

void
Cache::markDirty(Addr addr)
{
    if (Line *line = findLine(addr))
        line->dirty = true;
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr))
        line->valid = false;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line{};
    nextStamp_ = 1;
    stats_.reset();
}

} // namespace grp
