#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace grp
{

Cache::Cache(const CacheConfig &config, const std::string &name,
             bool lru_insertion, obs::StatRegistry &registry)
    : config_(config),
      numSets_(static_cast<unsigned>(config.sizeBytes /
                                     (config.assoc * kBlockBytes))),
      assoc_(config.assoc),
      lruInsertion_(lru_insertion),
      stats_(name),
      statReg_(stats_, registry)
{
    fatal_if(numSets_ == 0 || !isPowerOfTwo(numSets_),
             "cache set count must be a non-zero power of two");
    lines_.resize(static_cast<size_t>(numSets_) * assoc_);
    cnt_.accesses = &stats_.counter("accesses");
    cnt_.hits = &stats_.counter("hits");
    cnt_.misses = &stats_.counter("misses");
    cnt_.prefetchHits = &stats_.counter("prefetchHits");
    cnt_.evictions = &stats_.counter("evictions");
    cnt_.unusedPrefetchEvictions =
        &stats_.counter("unusedPrefetchEvictions");
    cnt_.prefetchFills = &stats_.counter("prefetchFills");
    cnt_.demandFills = &stats_.counter("demandFills");
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>(blockNumber(addr) & (numSets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return blockNumber(addr) / numSets_;
}

Cache::Line *
Cache::findInSet(unsigned set_idx, Addr tag)
{
    Line *set = &lines_[static_cast<size_t>(set_idx) * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (set[way].valid && set[way].tag == tag)
            return &set[way];
    }
    return nullptr;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const uint64_t block = blockNumber(addr);
    return findInSet(static_cast<unsigned>(block & (numSets_ - 1)),
                     block / numSets_);
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

CacheAccessResult
Cache::touchLine(Line &line, bool is_write)
{
    ++*cnt_.hits;
    bool first_use = false;
    if (line.prefetched && !line.referenced) {
        line.referenced = true;
        first_use = true;
        ++*cnt_.prefetchHits;
    }
    line.lruStamp = nextStamp_++;
    if (is_write)
        line.dirty = true;
    return {true, first_use};
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    ++*cnt_.accesses;
    Line *line = findLine(addr);
    if (!line) {
        ++*cnt_.misses;
        return {false, false};
    }
    return touchLine(*line, is_write);
}

CacheAccessResult
Cache::accessIfPresent(Addr addr, bool is_write)
{
    Line *line = findLine(addr);
    if (!line)
        return {false, false}; // Probe only: nothing counted.
    ++*cnt_.accesses;
    return touchLine(*line, is_write);
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::containsUnusedPrefetch(Addr addr) const
{
    const Line *line = findLine(addr);
    return line && line->prefetched && !line->referenced;
}

std::optional<Eviction>
Cache::insert(Addr addr, bool as_prefetch, bool dirty,
              std::optional<adaptive::InsertPos> pos)
{
    const uint64_t block = blockNumber(addr);
    const unsigned set_idx =
        static_cast<unsigned>(block & (numSets_ - 1));
    const Addr tag = block / numSets_;
    Line *set = &lines_[static_cast<size_t>(set_idx) * assoc_];

    // One pass over the set finds the re-insertion hit, the victim
    // (first invalid way, else earliest-scanned minimum stamp) and
    // the two smallest valid stamps, so the LRU-insertion stamp needs
    // no second walk.
    Line *present = nullptr;
    Line *free_way = nullptr;
    Line *lru_way = nullptr;
    uint64_t min_stamp = ~0ull, second_stamp = ~0ull;
    for (unsigned way = 0; way < assoc_; ++way) {
        Line &line = set[way];
        if (!line.valid) {
            if (!free_way)
                free_way = &line;
            continue;
        }
        if (line.tag == tag) {
            present = &line;
            break;
        }
        if (!lru_way || line.lruStamp < lru_way->lruStamp)
            lru_way = &line;
        if (line.lruStamp < min_stamp) {
            second_stamp = min_stamp;
            min_stamp = line.lruStamp;
        } else if (line.lruStamp < second_stamp) {
            second_stamp = line.lruStamp;
        }
    }

    // Re-inserting a present block only updates its state.
    if (present) {
        present->dirty = present->dirty || dirty;
        return std::nullopt;
    }

    Line *victim = free_way ? free_way : lru_way;
    std::optional<Eviction> evicted;
    if (victim->valid) {
        evicted = Eviction{
            (victim->tag * numSets_ + set_idx) << kBlockShift,
            victim->dirty,
            victim->prefetched && !victim->referenced,
        };
        ++*cnt_.evictions;
        if (evicted->wasUnusedPrefetch)
            ++*cnt_.unusedPrefetchEvictions;
    }

    victim->valid = true;
    victim->tag = tag;
    victim->dirty = dirty;
    victim->prefetched = as_prefetch;
    victim->referenced = !as_prefetch;

    // Demand insertions are always MRU; prefetch insertions follow
    // the explicit control-plane position when given, else the
    // constructor policy.
    const adaptive::InsertPos eff =
        !as_prefetch ? adaptive::InsertPos::Mru
                     : pos.value_or(lruInsertion_
                                        ? adaptive::InsertPos::Lru
                                        : adaptive::InsertPos::Mru);
    // The stamp floor of the surviving lines: when the victim itself
    // was valid its stamp was the set minimum, so the surviving
    // minimum is the second one.
    const uint64_t other_min = free_way ? min_stamp : second_stamp;
    switch (eff) {
      case adaptive::InsertPos::Lru: {
        // LRU position: stamp below every other valid line in the set.
        const uint64_t floor_stamp =
            other_min == ~0ull ? nextStamp_ : other_min;
        victim->lruStamp = floor_stamp > 0 ? floor_stamp - 1 : 0;
        break;
      }
      case adaptive::InsertPos::Mid: {
        // Halfway up the recency stack: between the surviving LRU
        // stamp and the next MRU stamp (ties resolve by way order,
        // deterministically). An otherwise-empty set degenerates to
        // MRU.
        if (other_min == ~0ull) {
            victim->lruStamp = nextStamp_++;
        } else {
            victim->lruStamp =
                other_min + (nextStamp_ - other_min) / 2;
        }
        break;
      }
      case adaptive::InsertPos::Mru:
        victim->lruStamp = nextStamp_++;
        break;
    }
    if (as_prefetch)
        ++*cnt_.prefetchFills;
    else
        ++*cnt_.demandFills;
    return evicted;
}

void
Cache::markDirty(Addr addr)
{
    if (Line *line = findLine(addr))
        line->dirty = true;
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr))
        line->valid = false;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line{};
    nextStamp_ = 1;
    stats_.reset();
}

} // namespace grp
