#include "mem/dram.hh"

#include "obs/host_prof.hh"
#include "sim/logging.hh"

namespace grp
{

DramSystem::DramSystem(const DramConfig &config,
                       obs::StatRegistry &registry)
    : config_(config),
      channelShift_(floorLog2(config.channels)),
      blocksPerRow_(config.rowBytes / kBlockBytes),
      blocksPerRowShift_(floorLog2(config.rowBytes / kBlockBytes)),
      bankShift_(floorLog2(config.banksPerChannel)),
      stats_("dram"),
      statReg_(stats_, registry)
{
    fatal_if(!isPowerOfTwo(config.channels) ||
             !isPowerOfTwo(config.banksPerChannel) ||
             !isPowerOfTwo(blocksPerRow_),
             "DRAM geometry must be powers of two");
    channels_.resize(config.channels);
    for (Channel &channel : channels_)
        channel.banks.resize(config.banksPerChannel);

    // Registered up front (and cached as references: Counter storage
    // is stable across reset()) so the per-cycle accounting costs a
    // pointer increment, and healthy runs export explicit zeros.
    contentionCounters_ = {
        &stats_.counter("contentionDemandCycles"),
        &stats_.counter("contentionPrefetchCycles"),
        &stats_.counter("contentionWritebackCycles"),
        &stats_.counter("contentionIdleCycles"),
    };
    demandStallCounter_ = &stats_.counter("contentionDemandStallCycles");
    rowHitCounter_ = &stats_.counter("rowHits");
    rowConflictCounter_ = &stats_.counter("rowConflicts");
    transferCounter_ = &stats_.counter("transfers");
    cycleCounters_.resize(config.channels);
    for (unsigned ch = 0; ch < config.channels; ++ch) {
        const std::string prefix = "ch" + std::to_string(ch);
        cycleCounters_[ch].slots = {
            &stats_.counter(prefix + "DemandCycles"),
            &stats_.counter(prefix + "PrefetchCycles"),
            &stats_.counter(prefix + "WritebackCycles"),
            &stats_.counter(prefix + "IdleCycles"),
            &stats_.counter(prefix + "Cycles"),
        };
    }
}

unsigned
DramSystem::channelOf(Addr addr) const
{
    return static_cast<unsigned>(blockNumber(addr) &
                                 (config_.channels - 1));
}

unsigned
DramSystem::bankOf(Addr addr) const
{
    const uint64_t channel_block = blockNumber(addr) >> channelShift_;
    return static_cast<unsigned>((channel_block >> blocksPerRowShift_) &
                                 (config_.banksPerChannel - 1));
}

uint64_t
DramSystem::rowOf(Addr addr) const
{
    const uint64_t channel_block = blockNumber(addr) >> channelShift_;
    return channel_block >> (blocksPerRowShift_ + bankShift_);
}

bool
DramSystem::channelIdle(unsigned channel, Tick now) const
{
    return channels_[channel].busyUntil <= now;
}

unsigned
DramSystem::busyChannels(Tick now) const
{
    unsigned busy = 0;
    for (const Channel &channel : channels_)
        busy += channel.busyUntil > now ? 1 : 0;
    return busy;
}

bool
DramSystem::rowOpen(Addr addr) const
{
    const Bank &bank = channels_[channelOf(addr)].banks[bankOf(addr)];
    return bank.openRow == static_cast<int64_t>(rowOf(addr));
}

Tick
DramSystem::serve(Addr addr, Tick now, ReqClass cls, RefId ref,
                  obs::HintClass hint)
{
    GRP_HOST_SCOPE(2, DramServe);
    Channel &channel = channels_[channelOf(addr)];
    panic_if(channel.busyUntil > now,
             "serving on a busy channel (busy until %llu, now %llu)",
             (unsigned long long)channel.busyUntil,
             (unsigned long long)now);

    Bank &bank = channel.banks[bankOf(addr)];
    const int64_t row = static_cast<int64_t>(rowOf(addr));
    unsigned access;
    if (bank.openRow == row) {
        access = config_.rowHitCycles;
        ++*rowHitCounter_;
    } else {
        access = config_.rowConflictCycles;
        ++*rowConflictCounter_;
        bank.openRow = row;
    }

    // Bank access overlaps the previous transfer (the channel is
    // pipelined); the channel itself is occupied only for the data
    // transfer, so back-to-back row hits stream at full channel
    // bandwidth.
    const Tick done = now + access + config_.transferCycles;
    channel.busyUntil = now + config_.transferCycles;
    if (channel.busyUntil > maxBusyUntil_)
        maxBusyUntil_ = channel.busyUntil;
    channel.occupantCls = cls;
    channel.occupantRef = ref;
    channel.occupantHint = hint;
    ++transfers_;
    ++*transferCounter_;
    return done;
}

void
DramSystem::noteChannelCycle(unsigned channel, Tick now)
{
    const Channel &ch = channels_[channel];
    ChannelCycleCounters &counters = cycleCounters_[channel];
    unsigned slot = 3; // Idle.
    if (ch.busyUntil > now) {
        switch (ch.occupantCls) {
          case ReqClass::Demand:    slot = 0; break;
          case ReqClass::Prefetch:  slot = 1; break;
          case ReqClass::Writeback: slot = 2; break;
        }
    }
    ++*counters.slots[slot];
    ++*counters.slots[4]; // Accounted cycles for this channel.
    ++*contentionCounters_[slot];
}

void
DramSystem::noteChannelCycles(unsigned channel, uint64_t busy_cycles,
                              uint64_t idle_cycles)
{
    const Channel &ch = channels_[channel];
    ChannelCycleCounters &counters = cycleCounters_[channel];
    if (busy_cycles) {
        unsigned slot = 0;
        switch (ch.occupantCls) {
          case ReqClass::Demand:    slot = 0; break;
          case ReqClass::Prefetch:  slot = 1; break;
          case ReqClass::Writeback: slot = 2; break;
        }
        *counters.slots[slot] += busy_cycles;
        *contentionCounters_[slot] += busy_cycles;
    }
    if (idle_cycles) {
        *counters.slots[3] += idle_cycles;
        *contentionCounters_[3] += idle_cycles;
    }
    *counters.slots[4] += busy_cycles + idle_cycles;
}

void
DramSystem::noteAllIdleCycle()
{
    for (ChannelCycleCounters &counters : cycleCounters_) {
        ++*counters.slots[3]; // Idle.
        ++*counters.slots[4]; // Accounted cycles for this channel.
    }
    *contentionCounters_[3] += channels_.size();
}

void
DramSystem::noteDemandStall(uint64_t waiting)
{
    *demandStallCounter_ += waiting;
}

ReqClass
DramSystem::occupantClass(unsigned channel) const
{
    return channels_[channel].occupantCls;
}

RefId
DramSystem::occupantRef(unsigned channel) const
{
    return channels_[channel].occupantRef;
}

obs::HintClass
DramSystem::occupantHint(unsigned channel) const
{
    return channels_[channel].occupantHint;
}

DramSystem::ChannelCycles
DramSystem::channelCycles(unsigned channel) const
{
    const std::string prefix = "ch" + std::to_string(channel);
    return ChannelCycles{
        stats_.value(prefix + "DemandCycles"),
        stats_.value(prefix + "PrefetchCycles"),
        stats_.value(prefix + "WritebackCycles"),
        stats_.value(prefix + "IdleCycles"),
    };
}

void
DramSystem::reset()
{
    for (Channel &channel : channels_) {
        channel.busyUntil = 0;
        channel.occupantCls = ReqClass::Demand;
        channel.occupantRef = kInvalidRefId;
        channel.occupantHint = obs::HintClass::None;
        for (Bank &bank : channel.banks)
            bank.openRow = -1;
    }
    maxBusyUntil_ = 0;
    transfers_ = 0;
    stats_.reset();
}

} // namespace grp
