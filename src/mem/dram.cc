#include "mem/dram.hh"

#include "sim/logging.hh"

namespace grp
{

DramSystem::DramSystem(const DramConfig &config)
    : config_(config),
      channelShift_(floorLog2(config.channels)),
      blocksPerRow_(config.rowBytes / kBlockBytes),
      blocksPerRowShift_(floorLog2(config.rowBytes / kBlockBytes)),
      bankShift_(floorLog2(config.banksPerChannel)),
      stats_("dram")
{
    fatal_if(!isPowerOfTwo(config.channels) ||
             !isPowerOfTwo(config.banksPerChannel) ||
             !isPowerOfTwo(blocksPerRow_),
             "DRAM geometry must be powers of two");
    channels_.resize(config.channels);
    for (Channel &channel : channels_)
        channel.banks.resize(config.banksPerChannel);
}

unsigned
DramSystem::channelOf(Addr addr) const
{
    return static_cast<unsigned>(blockNumber(addr) &
                                 (config_.channels - 1));
}

unsigned
DramSystem::bankOf(Addr addr) const
{
    const uint64_t channel_block = blockNumber(addr) >> channelShift_;
    return static_cast<unsigned>((channel_block >> blocksPerRowShift_) &
                                 (config_.banksPerChannel - 1));
}

uint64_t
DramSystem::rowOf(Addr addr) const
{
    const uint64_t channel_block = blockNumber(addr) >> channelShift_;
    return channel_block >> (blocksPerRowShift_ + bankShift_);
}

bool
DramSystem::channelIdle(unsigned channel, Tick now) const
{
    return channels_[channel].busyUntil <= now;
}

unsigned
DramSystem::busyChannels(Tick now) const
{
    unsigned busy = 0;
    for (const Channel &channel : channels_)
        busy += channel.busyUntil > now ? 1 : 0;
    return busy;
}

bool
DramSystem::rowOpen(Addr addr) const
{
    const Bank &bank = channels_[channelOf(addr)].banks[bankOf(addr)];
    return bank.openRow == static_cast<int64_t>(rowOf(addr));
}

Tick
DramSystem::serve(Addr addr, Tick now)
{
    Channel &channel = channels_[channelOf(addr)];
    panic_if(channel.busyUntil > now,
             "serving on a busy channel (busy until %llu, now %llu)",
             (unsigned long long)channel.busyUntil,
             (unsigned long long)now);

    Bank &bank = channel.banks[bankOf(addr)];
    const int64_t row = static_cast<int64_t>(rowOf(addr));
    unsigned access;
    if (bank.openRow == row) {
        access = config_.rowHitCycles;
        ++stats_.counter("rowHits");
    } else {
        access = config_.rowConflictCycles;
        ++stats_.counter("rowConflicts");
        bank.openRow = row;
    }

    // Bank access overlaps the previous transfer (the channel is
    // pipelined); the channel itself is occupied only for the data
    // transfer, so back-to-back row hits stream at full channel
    // bandwidth.
    const Tick done = now + access + config_.transferCycles;
    channel.busyUntil = now + config_.transferCycles;
    ++transfers_;
    ++stats_.counter("transfers");
    return done;
}

void
DramSystem::reset()
{
    for (Channel &channel : channels_) {
        channel.busyUntil = 0;
        for (Bank &bank : channel.banks)
            bank.openRow = -1;
    }
    transfers_ = 0;
    stats_.reset();
}

} // namespace grp
