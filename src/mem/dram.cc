#include "mem/dram.hh"

#include "obs/host_prof.hh"
#include "sim/logging.hh"

namespace grp
{

DramSystem::DramSystem(const DramConfig &config,
                       obs::StatRegistry &registry)
    : DramBackend(config, registry)
{
}

Tick
DramSystem::serve(Addr addr, Tick now, ReqClass cls, RefId ref,
                  obs::HintClass hint)
{
    GRP_HOST_SCOPE(2, DramServe);
    Channel &channel = channels_[channelOf(addr)];
    panic_if(channel.busyUntil > now,
             "serving on a busy channel (busy until %llu, now %llu)",
             (unsigned long long)channel.busyUntil,
             (unsigned long long)now);

    Bank &bank = channel.banks[bankOf(addr)];
    const int64_t row = static_cast<int64_t>(rowOf(addr));
    unsigned access;
    if (bank.openRow == row) {
        access = config_.rowHitCycles;
        ++*rowHitCounter_;
    } else {
        access = config_.rowConflictCycles;
        ++*rowConflictCounter_;
        bank.openRow = row;
    }

    // Bank access overlaps the previous transfer (the channel is
    // pipelined); the channel itself is occupied only for the data
    // transfer, so back-to-back row hits stream at full channel
    // bandwidth.
    const Tick done = now + access + config_.transferCycles;
    channel.busyUntil = now + config_.transferCycles;
    if (channel.busyUntil > maxBusyUntil_)
        maxBusyUntil_ = channel.busyUntil;
    channel.occupantCls = cls;
    channel.occupantRef = ref;
    channel.occupantHint = hint;
    ++transfers_;
    ++*transferCounter_;
    return done;
}

} // namespace grp
