/**
 * @file
 * A set-associative tag store with true-LRU replacement and the
 * low-priority prefetch insertion policy of SRP/GRP: prefetched
 * blocks enter at the LRU position of their set and are promoted to
 * MRU only on an explicit CPU reference, bounding pollution to one
 * way per set (Section 3.1).
 */

#ifndef GRP_MEM_CACHE_HH
#define GRP_MEM_CACHE_HH

#include <optional>
#include <vector>

#include "adaptive/control_plane.hh"
#include "obs/stat_registry.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace grp
{

/** A victim produced by an insertion. */
struct Eviction
{
    Addr blockAddr;
    bool dirty;
    /** The victim was a prefetched block never referenced by the CPU
     *  (an accuracy loss the stats track). */
    bool wasUnusedPrefetch;
};

/** Result of a demand access. */
struct CacheAccessResult
{
    bool hit;
    /** The hit consumed a prefetched block for the first time. */
    bool firstUseOfPrefetch;
};

/** Set-associative, write-back, true-LRU tag store. */
class Cache
{
  public:
    /**
     * @param config Geometry and latency parameters.
     * @param name Statistics group name (e.g. "l1d", "l2").
     * @param lru_insertion Insert prefetches at LRU (paper default)
     *        rather than MRU (ablation knob).
     * @param registry Stat registry to register into (defaults to the
     *        calling thread's).
     */
    Cache(const CacheConfig &config, const std::string &name,
          bool lru_insertion = true,
          obs::StatRegistry &registry = obs::StatRegistry::current());

    /**
     * Demand access for a read or write; updates LRU state and marks
     * the block dirty on writes. Prefetched blocks touched here are
     * promoted to MRU and count as useful.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /**
     * Single-walk fusion of contains() + access(): one set/tag
     * computation and one way scan. On a hit it behaves exactly like
     * access() (LRU promotion, dirty marking, first-use detection,
     * accesses/hits counters); on a miss it behaves exactly like
     * contains() — no state change and *no counter bumps* (the
     * returned result has hit == false and nothing was recorded).
     */
    CacheAccessResult accessIfPresent(Addr addr, bool is_write);

    /** Tag probe without any state update. */
    bool contains(Addr addr) const;

    /**
     * Insert the block containing @p addr.
     *
     * @param as_prefetch Insert at LRU position with the prefetch bit
     *        set; otherwise insert at MRU.
     * @param dirty Initial dirty state (stores that missed).
     * @param pos Explicit recency position for a prefetch insertion
     *        (adaptive control-plane override). Ignored for demand
     *        insertions (always MRU); when absent, prefetches follow
     *        the constructor's lru_insertion policy.
     * @return The evicted victim, if a valid block was displaced.
     */
    std::optional<Eviction> insert(Addr addr, bool as_prefetch,
                                   bool dirty,
                                   std::optional<adaptive::InsertPos>
                                       pos = std::nullopt);

    /** Mark the block containing @p addr dirty (store to present
     *  block); no-op when absent. */
    void markDirty(Addr addr);

    /** Remove the block containing @p addr if present. */
    void invalidate(Addr addr);

    /** True when a prefetched-but-not-yet-referenced copy of the
     *  block is present (stats / filtering). */
    bool containsUnusedPrefetch(Addr addr) const;

    unsigned sets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    unsigned latency() const { return config_.latency; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Invalidate everything and zero statistics. */
    void reset();

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false; ///< Filled by a prefetch...
        bool referenced = false; ///< ...and later touched by the CPU.
        uint64_t lruStamp = 0;   ///< Higher = more recently used.
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    /** Way holding @p tag within set @p set_idx, or nullptr. */
    Line *findInSet(unsigned set_idx, Addr tag);
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    CacheAccessResult touchLine(Line &line, bool is_write);

    CacheConfig config_;
    unsigned numSets_;
    unsigned assoc_;
    bool lruInsertion_;
    uint64_t nextStamp_ = 1;
    std::vector<Line> lines_; ///< numSets_ * assoc_, set-major.
    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;

    /** Cached counter handles: the name lookups happen once, at
     *  construction; the access path pays a pointer increment.
     *  Counter storage is stable across StatGroup::reset(). */
    struct HotCounters
    {
        Counter *accesses = nullptr;
        Counter *hits = nullptr;
        Counter *misses = nullptr;
        Counter *prefetchHits = nullptr;
        Counter *evictions = nullptr;
        Counter *unusedPrefetchEvictions = nullptr;
        Counter *prefetchFills = nullptr;
        Counter *demandFills = nullptr;
    };
    HotCounters cnt_;
};

} // namespace grp

#endif // GRP_MEM_CACHE_HH
