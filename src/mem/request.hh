/**
 * @file
 * Request types exchanged between the caches, the access prioritizer
 * and the DRAM system.
 */

#ifndef GRP_MEM_REQUEST_HH
#define GRP_MEM_REQUEST_HH

#include <cstdint>

#include "core/hints.hh"
#include "obs/trace.hh"
#include "sim/types.hh"

namespace grp
{

/** Classes of traffic arbitrated by the access prioritizer. */
enum class ReqClass : uint8_t
{
    Demand,    ///< L2 demand miss fill.
    Prefetch,  ///< Region / pointer / indirect / stream prefetch fill.
    Writeback, ///< Dirty L2 victim written back to memory.
};

/** One block-granularity request headed to DRAM. */
struct MemRequest
{
    Addr blockAddr = 0;   ///< Block-aligned address.
    ReqClass cls = ReqClass::Demand;
    RefId refId = kInvalidRefId;
    LoadHints hints;
    /** Remaining pointer-chase levels once this block returns. */
    uint8_t ptrDepth = 0;
    /** Hint class that produced a prefetch request (lifecycle
     *  attribution; None for demand/writeback traffic). */
    obs::HintClass hintClass = obs::HintClass::None;
    /** Tick at which the request entered the prioritizer. */
    Tick enqueued = 0;
};

/** A prefetch candidate offered by a prefetch engine to the memory
 *  system when a channel is idle. */
struct PrefetchCandidate
{
    Addr blockAddr = 0;
    RefId refId = kInvalidRefId;
    /** Pointer-chase levels remaining when the block returns. */
    uint8_t ptrDepth = 0;
    /** Hint class that produced the candidate (attribution). */
    obs::HintClass hintClass = obs::HintClass::None;
};

} // namespace grp

#endif // GRP_MEM_REQUEST_HH
