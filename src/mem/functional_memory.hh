/**
 * @file
 * Functional (value-carrying) memory with a simulated heap.
 *
 * Pointer prefetching scans the *contents* of fetched cache lines for
 * heap addresses, so workload data structures must live at real
 * simulated addresses with real pointer bits. FunctionalMemory stores
 * values in sparse 4 KB pages and provides the base-and-bounds heap
 * range the hardware pointer test uses (Section 3.2).
 */

#ifndef GRP_MEM_FUNCTIONAL_MEMORY_HH
#define GRP_MEM_FUNCTIONAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sim/types.hh"

namespace grp
{

/** Sparse, paged, value-carrying memory plus a bump-pointer heap. */
class FunctionalMemory
{
  public:
    /** Base of the simulated heap segment. */
    static constexpr Addr kHeapBase = 0x4000'0000ull;
    /** Base of the simulated static/global segment. */
    static constexpr Addr kStaticBase = 0x1000'0000ull;
    /** Capacity of each segment. */
    static constexpr Addr kSegmentCapacity = 0x3000'0000ull;

    FunctionalMemory() = default;

    // Not copyable (pages can be large); movable is fine.
    FunctionalMemory(const FunctionalMemory &) = delete;
    FunctionalMemory &operator=(const FunctionalMemory &) = delete;
    FunctionalMemory(FunctionalMemory &&) = default;
    FunctionalMemory &operator=(FunctionalMemory &&) = default;

    /**
     * Allocate @p bytes from the heap, aligned to @p align (which
     * must be a power of two). Mimics malloc: distinct allocations
     * never overlap and are laid out in ascending address order, so
     * sequentially allocated nodes exhibit the spatial locality the
     * paper observes for pointer programs.
     */
    Addr heapAlloc(uint64_t bytes, uint64_t align = 8);

    /** Allocate @p bytes from the static segment (Fortran arrays). */
    Addr staticAlloc(uint64_t bytes, uint64_t align = 8);

    /** First address of the heap. */
    Addr heapBase() const { return kHeapBase; }
    /** One past the last allocated heap byte (the "brk"). */
    Addr heapEnd() const { return heapBrk_; }

    /** True iff @p value lies within [heapBase, heapEnd): the
     *  hardware base-and-bounds pointer test. */
    bool
    looksLikeHeapPointer(uint64_t value) const
    {
        return value >= kHeapBase && value < heapBrk_;
    }

    /** Read an aligned 64-bit word. */
    uint64_t read64(Addr addr) const;
    /** Write an aligned 64-bit word. */
    void write64(Addr addr, uint64_t value);

    /** Read an aligned 32-bit word. */
    uint32_t read32(Addr addr) const;
    /** Write an aligned 32-bit word. */
    void write32(Addr addr, uint32_t value);

    /**
     * Copy the 64-byte block containing @p addr into @p out as eight
     * 64-bit words (the view the pointer scanner sees).
     */
    void readBlock(Addr addr, std::array<uint64_t, 8> &out) const;

    /** Number of materialised 4 KB pages (for tests/footprint). */
    size_t pageCount() const { return pages_.size(); }

  private:
    static constexpr unsigned kPageShift = 12;
    static constexpr Addr kPageBytes = 1ull << kPageShift;
    static constexpr unsigned kWordsPerPage = kPageBytes / 8;

    using Page = std::array<uint64_t, kWordsPerPage>;

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    Addr heapBrk_ = kHeapBase;
    Addr staticBrk_ = kStaticBase;
};

} // namespace grp

#endif // GRP_MEM_FUNCTIONAL_MEMORY_HH
