#include "mem/mshr.hh"

#include "obs/host_prof.hh"
#include "sim/logging.hh"

namespace grp
{

MshrFile::MshrFile(unsigned entries, unsigned max_targets,
                   const std::string &name,
                   obs::StatRegistry &registry)
    : entries_(entries),
      size_(entries),
      maxTargets_(max_targets),
      freeCount_(entries),
      stats_(name),
      statReg_(stats_, registry)
{
    fatal_if(entries == 0, "MSHR file needs at least one entry");
    prefetchAllocs_ = &stats_.counter("prefetchAllocs");
    demandAllocs_ = &stats_.counter("demandAllocs");
    prefetchUpgrades_ = &stats_.counter("prefetchUpgrades");
    coalescedTargets_ = &stats_.counter("coalescedTargets");
}

Mshr *
MshrFile::find(Addr addr)
{
    GRP_HOST_SCOPE(2, Mshr);
    const Addr block = blockAlign(addr);
    for (Mshr &entry : entries_) {
        if (entry.valid && entry.blockAddr == block)
            return &entry;
    }
    return nullptr;
}

const Mshr *
MshrFile::find(Addr addr) const
{
    return const_cast<MshrFile *>(this)->find(addr);
}

Mshr &
MshrFile::allocate(Addr addr, bool is_prefetch, const LoadHints &hints,
                   uint8_t ptr_depth, Tick now)
{
    GRP_HOST_SCOPE(2, Mshr);
    panic_if(full(), "allocating from a full MSHR file");
    panic_if(find(addr) != nullptr,
             "duplicate MSHR allocation for block %#llx",
             (unsigned long long)blockAlign(addr));
    for (Mshr &entry : entries_) {
        if (entry.valid)
            continue;
        entry.valid = true;
        entry.blockAddr = blockAlign(addr);
        entry.isPrefetch = is_prefetch;
        entry.ptrDepth = ptr_depth;
        entry.hints = hints;
        entry.allocated = now;
        entry.targets.clear();
        --freeCount_;
        if (!is_prefetch)
            ++demandCount_;
        ++*(is_prefetch ? prefetchAllocs_ : demandAllocs_);
        return entry;
    }
    panic("MSHR bookkeeping out of sync");
}

bool
MshrFile::addTarget(Mshr &entry, const MshrTarget &target)
{
    GRP_HOST_SCOPE(2, Mshr);
    if (entry.targets.size() >= maxTargets_)
        return false;
    entry.targets.push_back(target);
    if (entry.isPrefetch) {
        entry.isPrefetch = false;
        ++demandCount_;
        ++*prefetchUpgrades_;
    }
    ++*coalescedTargets_;
    return true;
}

void
MshrFile::deallocate(Mshr &entry)
{
    GRP_HOST_SCOPE(2, Mshr);
    panic_if(!entry.valid, "deallocating an invalid MSHR");
    entry.valid = false;
    entry.targets.clear();
    if (!entry.isPrefetch)
        --demandCount_;
    ++freeCount_;
}

void
MshrFile::reset()
{
    for (Mshr &entry : entries_) {
        entry.valid = false;
        entry.targets.clear();
    }
    freeCount_ = size_;
    demandCount_ = 0;
    stats_.reset();
}

} // namespace grp
