#include "mem/dram_backend/presets.hh"

namespace grp
{

namespace
{

/**
 * CPU cycles at 1.6 GHz. Sources, rounded:
 *
 *  ddr4-2400: one x64 DDR4-2400 CL17 channel per DRAM channel.
 *    tRCD=tCAS=tRP ~14.2 ns -> 23, tRAS 32 ns -> 51, tRRD_L 4.9 ns
 *    -> 8, tFAW 21 ns -> 34, tRFC 350 ns (8 Gb) -> 560, tREFI
 *    7.8 us -> 12480, burst 64 B over x64 @ 2400 MT/s ~3.3 ns -> 6.
 *
 *  hbm2: eight pseudo-channels, small rows, wide bus. Latencies in
 *    the DDR4 ballpark, burst 64 B over x128 @ 2 Gb/s -> 4, tRFC
 *    260 ns -> 416, tREFI 3.9 us -> 6240.
 *
 *  lpddr4: x32 channel, slower core timings, long bursts.
 *    tRCD 18 ns -> 29, tRP 21 ns -> 34, tRAS 42 ns -> 67, tRRD
 *    10 ns -> 16, tFAW 40 ns -> 64, tRFC 280 ns -> 448, burst 64 B
 *    over x32 @ 3200 MT/s 10 ns -> 16.
 */
const DramPreset kPresets[] = {
    {"ddr4-2400", 4, 16, 2048,
     {23, 23, 23, 51, 8, 34, 560, 12480, 6, 8}},
    {"hbm2", 8, 16, 1024,
     {22, 22, 22, 45, 6, 24, 416, 6240, 4, 8}},
    {"lpddr4", 4, 8, 2048,
     {29, 29, 34, 67, 16, 64, 448, 6240, 16, 8}},
};

} // namespace

const DramPreset *
findDramPreset(const std::string &name)
{
    for (const DramPreset &preset : kPresets) {
        if (name == preset.name)
            return &preset;
    }
    return nullptr;
}

std::vector<std::string>
dramPresetNames()
{
    std::vector<std::string> names;
    for (const DramPreset &preset : kPresets)
        names.push_back(preset.name);
    return names;
}

} // namespace grp
