#include "mem/dram_backend/timing.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace grp
{

TimingDramSystem::TimingDramSystem(const DramConfig &config,
                                   const DramTimingParams &params,
                                   std::string preset_name,
                                   obs::StatRegistry &registry)
    : DramBackend(config, registry),
      params_(params),
      presetName_(std::move(preset_name))
{
    fatal_if(params_.tBURST == 0 || params_.tRCD == 0 ||
             params_.tRP == 0 || params_.queueDepth == 0,
             "timing preset %s has zero constraints",
             presetName_.c_str());
    queued_ = true;
    bankAccounting_ = true;

    chTiming_.resize(config_.channels);
    for (ChannelTiming &ct : chTiming_) {
        ct.banks.resize(config_.banksPerChannel);
        ct.refreshDue = params_.tREFI;
    }

    // Per-bank state-cycle counters: one accounted channel cycle adds
    // exactly one cycle to exactly one state of every bank, so each
    // bank's five states sum to chNCycles by construction (the cost
    // reports and the backend bench rely on the exact identity).
    static const char *kStates[5] = {
        "Idle", "Open", "Activating", "Precharging", "Refreshing",
    };
    bankCounters_.resize(config_.channels);
    for (unsigned ch = 0; ch < config_.channels; ++ch) {
        bankCounters_[ch].resize(config_.banksPerChannel);
        for (unsigned b = 0; b < config_.banksPerChannel; ++b) {
            const std::string prefix = "ch" + std::to_string(ch) +
                                       "bank" + std::to_string(b);
            for (unsigned s = 0; s < 5; ++s) {
                bankCounters_[ch][b][s] =
                    &stats_.counter(prefix + kStates[s] + "Cycles");
            }
        }
    }
    refreshCounter_ = &stats_.counter("refreshes");
}

void
TimingDramSystem::logCmd(Cmd cmd, Tick tick, unsigned channel,
                         unsigned bank, int64_t row)
{
    if (log_)
        log_->push_back(CommandRecord{tick, cmd, channel, bank, row});
}

Tick
TimingDramSystem::serve(Addr addr, Tick now, ReqClass cls, RefId ref,
                        obs::HintClass hint)
{
    const unsigned channel = channelOf(addr);
    ChannelTiming &ct = chTiming_[channel];
    panic_if(ct.queue.size() >= params_.queueDepth,
             "serve() on a full command queue (channel %u)", channel);

    QueuedReq qr;
    qr.req.blockAddr = addr;
    qr.req.cls = cls;
    qr.req.refId = ref;
    qr.req.hintClass = hint;
    qr.req.enqueued = now;
    qr.seq = nextSeq_++;
    ct.queue.push_back(qr);
    ++pendingWork_;
    return kTickPending;
}

void
TimingDramSystem::catchUpRefresh(unsigned channel, Tick now)
{
    ChannelTiming &ct = chTiming_[channel];
    if (now < ct.refreshDue)
        return;

    // Charge every owed interval, up to the JEDEC postponement limit
    // of eight; older debt accumulated across a long drained stretch
    // is dropped (the array refreshed itself logically, the model
    // just never had a scheduling decision to charge it against).
    unsigned owed = 0;
    while (ct.refreshDue <= now && owed < 8) {
        ++owed;
        ct.refreshDue += params_.tREFI;
    }
    if (ct.refreshDue <= now)
        ct.refreshDue = now + params_.tREFI;

    const Tick ref_start = std::max(now, ct.busFreeAt);
    const Tick ref_end = ref_start + Tick{owed} * params_.tRFC;
    for (unsigned b = 0; b < config_.banksPerChannel; ++b) {
        channels_[channel].banks[b].openRow = -1;
        ct.banks[b].refUntil = std::max(ct.banks[b].refUntil, ref_end);
    }
    for (unsigned i = 0; i < owed; ++i) {
        logCmd(Cmd::Ref, ref_start + Tick{i} * params_.tRFC, channel, 0,
               -1);
    }
    *refreshCounter_ += owed;
}

size_t
TimingDramSystem::pickNext(const ChannelTiming &ct) const
{
    // FR-FCFS with strict demand-over-prefetch class priority:
    // demand row-hit > demand > other row-hit > FCFS front. Ties
    // resolve first-come-first-served because the scan takes the
    // first entry of the best rank (the queue is in arrival order).
    size_t best = 0;
    int best_rank = 4;
    for (size_t i = 0; i < ct.queue.size(); ++i) {
        const MemRequest &req = ct.queue[i].req;
        const bool demand = req.cls == ReqClass::Demand;
        const bool hit = rowOpen(req.blockAddr);
        const int rank = demand ? (hit ? 0 : 1) : (hit ? 2 : 3);
        if (rank < best_rank) {
            best_rank = rank;
            best = i;
            if (rank == 0)
                break;
        }
    }
    return best;
}

void
TimingDramSystem::scheduleOne(unsigned channel, Tick now)
{
    ChannelTiming &ct = chTiming_[channel];
    if (ct.queue.empty())
        return;
    // Don't commit the data bus far ahead: a request scheduled now is
    // issued — a later-arriving demand can no longer overtake it. Two
    // bursts of lookahead keeps the bus saturated while leaving the
    // reordering to the queue, where FR-FCFS still applies.
    if (ct.busFreeAt > now + Tick{2} * params_.tBURST)
        return;

    catchUpRefresh(channel, now);

    const size_t idx = pickNext(ct);
    const QueuedReq chosen = ct.queue[idx];
    ct.queue.erase(ct.queue.begin() +
                   static_cast<std::ptrdiff_t>(idx));

    const Addr addr = chosen.req.blockAddr;
    const unsigned b = bankOf(addr);
    BankTiming &bt = ct.banks[b];
    Bank &bank = channels_[channel].banks[b];
    const int64_t row = static_cast<int64_t>(rowOf(addr));

    Tick rd_at;
    if (bank.openRow == row) {
        // Row hit: column access as soon as the bank finished
        // activating (and any refresh has drained).
        rd_at = std::max({now, bt.actEnd, bt.refUntil});
        ++*rowHitCounter_;
    } else {
        Tick act_earliest = std::max(now, bt.refUntil);
        if (bank.openRow >= 0) {
            // Close the open row first; the precharge may not start
            // until tRAS after the ACT that opened it.
            const Tick pre_start = std::max(act_earliest, bt.rasUntil);
            bt.preStart = pre_start;
            bt.preEnd = pre_start + params_.tRP;
            logCmd(Cmd::Pre, pre_start, channel, b, bank.openRow);
            act_earliest = bt.preEnd;
        }
        // Activate respecting tRRD and the four-ACT tFAW window.
        Tick act_at = act_earliest;
        if (ct.anyAct)
            act_at = std::max(act_at, ct.lastActTick + params_.tRRD);
        if (ct.actSeen >= 4) {
            act_at = std::max(act_at,
                              ct.actWindow[ct.actIdx] + params_.tFAW);
        }
        ct.actWindow[ct.actIdx] = act_at;
        ct.actIdx = (ct.actIdx + 1) % 4;
        ++ct.actSeen;
        ct.lastActTick = act_at;
        ct.anyAct = true;

        bt.actStart = act_at;
        bt.actEnd = act_at + params_.tRCD;
        bt.rasUntil = act_at + params_.tRAS;
        bt.everActivated = true;
        bank.openRow = row;
        logCmd(Cmd::Act, act_at, channel, b, row);
        rd_at = bt.actEnd;
        ++*rowConflictCounter_;
    }

    logCmd(Cmd::Rd, rd_at, channel, b, row);
    const Tick data_start =
        std::max(rd_at + params_.tCAS, ct.busFreeAt);
    const Tick data_end = data_start + params_.tBURST;
    ct.busFreeAt = data_end;
    ++transfers_;
    ++*transferCounter_;

    InFlight inf;
    inf.req = chosen.req;
    inf.dataStart = data_start;
    inf.dataEnd = data_end;
    ct.inFlight.push_back(inf); // dataStart is monotonic per channel.
}

void
TimingDramSystem::tick(Tick now)
{
    for (unsigned ch = 0; ch < config_.channels; ++ch) {
        ChannelTiming &ct = chTiming_[ch];

        // Retire finished transfers. tick() runs every cycle while
        // any command is pending (nextTransitionTick pins the stall
        // fast-forward), so completed_ stays in true
        // (dataEnd, channel) order.
        while (!ct.inFlight.empty() &&
               ct.inFlight.front().dataEnd <= now) {
            InFlight done = ct.inFlight.front();
            ct.inFlight.pop_front();
            if (done.req.cls == ReqClass::Writeback) {
                // Writebacks need no completion delivery.
                panic_if(pendingWork_ == 0, "pendingWork underflow");
                --pendingWork_;
            } else {
                completed_.push_back(
                    CompletedReq{done.req, done.dataEnd});
            }
        }

        // Commit the transfer occupying the data bus this cycle as
        // the channel occupant (contention attribution + busyUntil).
        if (!ct.inFlight.empty() &&
            ct.inFlight.front().dataStart <= now) {
            const InFlight &cur = ct.inFlight.front();
            setChannelBusy(ch, cur.dataEnd, cur.req.cls, cur.req.refId,
                           cur.req.hintClass);
        }

        scheduleOne(ch, now);
    }
}

std::optional<MemRequest>
TimingDramSystem::popCompleted(Tick now)
{
    if (completed_.empty() || completed_.front().done > now)
        return std::nullopt;
    MemRequest req = completed_.front().req;
    completed_.pop_front();
    panic_if(pendingWork_ == 0, "pendingWork underflow");
    --pendingWork_;
    return req;
}

TimingDramSystem::BankState
TimingDramSystem::bankState(unsigned channel, unsigned bank,
                            Tick now) const
{
    const BankTiming &bt = chTiming_[channel].banks[bank];
    if (now < bt.refUntil)
        return BankState::Refreshing;
    if (bt.preStart <= now && now < bt.preEnd)
        return BankState::Precharging;
    if (bt.everActivated && bt.actStart <= now && now < bt.actEnd)
        return BankState::Activating;
    return channels_[channel].banks[bank].openRow >= 0
               ? BankState::Open
               : BankState::Idle;
}

unsigned
TimingDramSystem::activeBanks(Tick now) const
{
    unsigned active = 0;
    for (unsigned ch = 0; ch < config_.channels; ++ch) {
        for (unsigned b = 0; b < config_.banksPerChannel; ++b) {
            switch (bankState(ch, b, now)) {
              case BankState::Activating:
              case BankState::Precharging:
              case BankState::Refreshing:
                ++active;
                break;
              default:
                break;
            }
        }
    }
    return active;
}

void
TimingDramSystem::accountBankCycle(unsigned channel, Tick now)
{
    auto &counters = bankCounters_[channel];
    for (unsigned b = 0; b < config_.banksPerChannel; ++b) {
        const unsigned s =
            static_cast<unsigned>(bankState(channel, b, now));
        ++*counters[b][s];
    }
}

void
TimingDramSystem::accountBankCycles(unsigned channel, uint64_t cycles)
{
    // Batched windows only occur with the backend fully drained (see
    // nextTransitionTick), where every bank rests Open or Idle.
    auto &counters = bankCounters_[channel];
    const auto &banks = channels_[channel].banks;
    for (unsigned b = 0; b < config_.banksPerChannel; ++b) {
        const unsigned s = banks[b].openRow >= 0
                               ? static_cast<unsigned>(BankState::Open)
                               : static_cast<unsigned>(BankState::Idle);
        *counters[b][s] += cycles;
    }
}

void
TimingDramSystem::reset()
{
    DramBackend::reset();
    for (ChannelTiming &ct : chTiming_) {
        ct.queue.clear();
        ct.inFlight.clear();
        ct.busFreeAt = 0;
        ct.lastActTick = 0;
        ct.anyAct = false;
        ct.actWindow = {};
        ct.actIdx = 0;
        ct.actSeen = 0;
        ct.refreshDue = params_.tREFI;
        for (BankTiming &bt : ct.banks)
            bt = BankTiming{};
    }
    completed_.clear();
    nextSeq_ = 0;
}

} // namespace grp
