#include "mem/dram_backend/factory.hh"

#include <cstdlib>

#include "mem/dram.hh"
#include "mem/dram_backend/presets.hh"
#include "mem/dram_backend/timing.hh"
#include "sim/logging.hh"

namespace grp
{

namespace
{

std::string
knownBackendNames()
{
    std::string names = "legacy";
    for (const std::string &name : dramPresetNames())
        names += ", " + name;
    return names;
}

} // namespace

std::string
resolveDramBackendName(const std::string &configured)
{
    std::string name = configured;
    if (name.empty()) {
        const char *env = std::getenv("GRP_DRAM");
        name = env && *env ? env : "legacy";
    }
    fatal_if(name != "legacy" && !findDramPreset(name),
             "unknown DRAM backend '%s' (known: %s)", name.c_str(),
             knownBackendNames().c_str());
    return name;
}

void
resolveDramBackend(DramConfig &config)
{
    config.backend = resolveDramBackendName(config.backend);
    if (const DramPreset *preset = findDramPreset(config.backend)) {
        config.channels = preset->channels;
        config.banksPerChannel = preset->banksPerChannel;
        config.rowBytes = preset->rowBytes;
    }
}

std::unique_ptr<DramBackend>
makeDramBackend(DramConfig config, obs::StatRegistry &registry)
{
    resolveDramBackend(config);
    if (config.backend == "legacy")
        return std::make_unique<DramSystem>(config, registry);
    const DramPreset *preset = findDramPreset(config.backend);
    return std::make_unique<TimingDramSystem>(config, preset->timing,
                                              config.backend, registry);
}

} // namespace grp
