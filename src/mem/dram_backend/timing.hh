/**
 * @file
 * Cycle-accurate queued DRAM backend: per-bank state machines driven
 * by a JEDEC-style timing-constraint table, a per-channel command
 * queue with FR-FCFS scheduling, and periodic all-bank refresh that
 * steals bank time.
 *
 * Model shape (DRAMsim3-style, simplified to what the GRP experiments
 * observe):
 *
 *  - serve() enqueues into the channel's bounded command queue and
 *    returns kTickPending; canAccept() gates arbitration on queue
 *    space, and completed fills drain through popCompleted().
 *
 *  - Each tick one queued request per channel may be scheduled. The
 *    FR-FCFS pick preserves the two properties the SRP access
 *    prioritizer relies on: demand class strictly outranks
 *    prefetch/writeback (a late-arriving demand overtakes every
 *    queued prefetch — demand is never starved), and open-row hits
 *    outrank conflicts within a class.
 *
 *  - Scheduling a request lays out its command timeline against the
 *    constraint table: PRE (no earlier than tRAS after the ACT that
 *    opened the row) + tRP, ACT respecting tRRD, the four-activate
 *    tFAW window and any in-progress refresh, then the column read
 *    tRCD/tCAS later, and the data burst (tBURST) when the shared
 *    data bus frees up. Bank state at any tick is derived from these
 *    recorded command windows.
 *
 *  - Refresh is charged lazily: once tREFI elapses the next
 *    scheduling decision first closes every row for tRFC per owed
 *    interval (debt capped at 8, the JEDEC postponement limit), and
 *    ACTs cannot start until the refresh window ends.
 *
 * Channel-cycle attribution stays bus-centric so the legacy stat
 * schema keeps its meaning: a channel cycle counts demand/prefetch/
 * writeback only while a data burst occupies the bus; ACT/PRE/refresh
 * prep shows as channel idle but is visible in the per-bank state
 * counters (chNbankBIdle/Open/Activating/Precharging/Refreshing
 * Cycles), which sum exactly to the channel's accounted cycles.
 */

#ifndef GRP_MEM_DRAM_BACKEND_TIMING_HH
#define GRP_MEM_DRAM_BACKEND_TIMING_HH

#include <array>
#include <deque>
#include <string>
#include <vector>

#include "mem/dram_backend/backend.hh"
#include "mem/dram_backend/presets.hh"

namespace grp
{

/** Queued, cycle-accurate multi-channel DRAM model. */
class TimingDramSystem final : public DramBackend
{
  public:
    TimingDramSystem(const DramConfig &config,
                     const DramTimingParams &params,
                     std::string preset_name,
                     obs::StatRegistry &registry =
                         obs::StatRegistry::current());

    Tick serve(Addr addr, Tick now, ReqClass cls,
               RefId ref = kInvalidRefId,
               obs::HintClass hint = obs::HintClass::None) override;
    using DramBackend::serve;

    void tick(Tick now) override;
    std::optional<MemRequest> popCompleted(Tick now) override;

    bool
    canAccept(unsigned channel, Tick now) const override
    {
        (void)now;
        return chTiming_[channel].queue.size() < params_.queueDepth;
    }

    Tick
    nextTransitionTick(Tick now) const override
    {
        return pendingWork_ ? now + 1 : kMaxTick;
    }

    const char *name() const override { return presetName_.c_str(); }

    void reset() override;

    const DramTimingParams &timing() const { return params_; }

    /** Derived per-bank state (accounting + tests). */
    enum class BankState : unsigned
    {
        Idle = 0,
        Open,
        Activating,
        Precharging,
        Refreshing,
    };
    BankState bankState(unsigned channel, unsigned bank, Tick now) const;

    /** Banks mid-ACT/PRE/refresh at @p now (time-series track). */
    unsigned activeBanks(Tick now) const override;

    /** DRAM command stream hook for protocol-invariant tests: every
     *  scheduled ACT/RD/PRE/REF is appended with its start tick. Not
     *  owned; nullptr (the default) disables recording. */
    enum class Cmd : uint8_t { Act, Rd, Pre, Ref };
    struct CommandRecord
    {
        Tick tick = 0;
        Cmd cmd = Cmd::Act;
        unsigned channel = 0;
        unsigned bank = 0;
        int64_t row = -1;
    };
    void setCommandLog(std::vector<CommandRecord> *log) { log_ = log; }

  private:
    /** Recorded command windows for one bank; state is derived from
     *  these timestamps rather than kept as an explicit FSM. The
     *  open row itself lives in the base class Bank (rowOpen()). */
    struct BankTiming
    {
        Tick preStart = 0;
        Tick preEnd = 0;   ///< preStart + tRP.
        Tick actStart = 0;
        Tick actEnd = 0;   ///< actStart + tRCD.
        Tick rasUntil = 0; ///< Earliest next PRE (actStart + tRAS).
        Tick refUntil = 0; ///< All-bank refresh in progress until.
        bool everActivated = false;
    };

    struct QueuedReq
    {
        MemRequest req;
        uint64_t seq = 0;
    };

    /** A scheduled transfer waiting for / occupying the data bus. */
    struct InFlight
    {
        MemRequest req;
        Tick dataStart = 0;
        Tick dataEnd = 0;
    };

    struct CompletedReq
    {
        MemRequest req;
        Tick done = 0;
    };

    struct ChannelTiming
    {
        std::deque<QueuedReq> queue;
        /** Sorted by dataStart (bus serialization keeps it so). */
        std::deque<InFlight> inFlight;
        Tick busFreeAt = 0;
        Tick lastActTick = 0;
        bool anyAct = false;
        /** Ring of the last four ACT ticks (tFAW). */
        std::array<Tick, 4> actWindow{};
        unsigned actIdx = 0;
        unsigned actSeen = 0;
        Tick refreshDue = 0;
        std::vector<BankTiming> banks;
    };

    void logCmd(Cmd cmd, Tick tick, unsigned channel, unsigned bank,
                int64_t row);
    /** Charge owed refresh intervals before scheduling (see file
     *  comment). */
    void catchUpRefresh(unsigned channel, Tick now);
    /** FR-FCFS choice among queued requests. */
    size_t pickNext(const ChannelTiming &ct) const;
    /** Schedule at most one queued request's command timeline. */
    void scheduleOne(unsigned channel, Tick now);

    void accountBankCycle(unsigned channel, Tick now) override;
    void accountBankCycles(unsigned channel, uint64_t cycles) override;

    DramTimingParams params_;
    std::string presetName_;
    std::vector<ChannelTiming> chTiming_;
    /** Retired fills awaiting popCompleted, in (dataEnd, channel)
     *  order — the deterministic delivery order. */
    std::deque<CompletedReq> completed_;
    uint64_t nextSeq_ = 0;
    std::vector<CommandRecord> *log_ = nullptr;

    /** Per-bank per-state cycle counters, cached; indexed
     *  [channel][bank][BankState]. */
    std::vector<std::vector<std::array<Counter *, 5>>> bankCounters_;
    Counter *refreshCounter_ = nullptr;
};

} // namespace grp

#endif // GRP_MEM_DRAM_BACKEND_TIMING_HH
