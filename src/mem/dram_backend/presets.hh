/**
 * @file
 * Named timing presets for the cycle-accurate DRAM backend.
 *
 * Each preset pairs a channel/bank/row geometry with a JEDEC-style
 * timing-constraint table, both expressed in CPU cycles at the
 * paper's 1.6 GHz core clock (0.625 ns per cycle). The values are
 * rounded from datasheet-typical parts — close enough for the
 * bank-conflict / refresh / scheduling behaviour the backend exists
 * to model, not a substitute for a signed-off datasheet.
 */

#ifndef GRP_MEM_DRAM_BACKEND_PRESETS_HH
#define GRP_MEM_DRAM_BACKEND_PRESETS_HH

#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace grp
{

/** Timing-constraint table driving the cycle-accurate backend (all
 *  values in CPU cycles). */
struct DramTimingParams
{
    unsigned tRCD = 0;  ///< ACT to first column command.
    unsigned tCAS = 0;  ///< Column command to first data beat.
    unsigned tRP = 0;   ///< PRE to next ACT on the bank.
    unsigned tRAS = 0;  ///< ACT to earliest PRE on the bank.
    unsigned tRRD = 0;  ///< ACT to ACT, different banks, one channel.
    unsigned tFAW = 0;  ///< Window holding at most four ACTs.
    unsigned tRFC = 0;  ///< All-bank refresh duration.
    Tick tREFI = 0;     ///< Average interval between refreshes.
    unsigned tBURST = 0; ///< Data-bus occupancy per 64 B transfer.
    /** Per-channel command-queue entries (canAccept gate). */
    unsigned queueDepth = 8;
};

/** One named backend configuration: geometry + timing. */
struct DramPreset
{
    const char *name;
    unsigned channels;
    unsigned banksPerChannel;
    unsigned rowBytes;
    DramTimingParams timing;
};

/** The preset for @p name, or nullptr when unknown. "legacy" is not
 *  a preset — it selects the immediate Rambus-style model. */
const DramPreset *findDramPreset(const std::string &name);

/** Every preset name, for error messages and sweep axes. */
std::vector<std::string> dramPresetNames();

} // namespace grp

#endif // GRP_MEM_DRAM_BACKEND_PRESETS_HH
