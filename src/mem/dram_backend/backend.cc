#include "mem/dram_backend/backend.hh"

#include "sim/logging.hh"

namespace grp
{

DramBackend::DramBackend(const DramConfig &config,
                         obs::StatRegistry &registry)
    : config_(config),
      channelShift_(floorLog2(config.channels)),
      blocksPerRow_(config.rowBytes / kBlockBytes),
      blocksPerRowShift_(floorLog2(config.rowBytes / kBlockBytes)),
      bankShift_(floorLog2(config.banksPerChannel)),
      stats_("dram"),
      statReg_(stats_, registry)
{
    fatal_if(!isPowerOfTwo(config.channels) ||
             !isPowerOfTwo(config.banksPerChannel) ||
             !isPowerOfTwo(blocksPerRow_),
             "DRAM geometry must be powers of two");
    channels_.resize(config.channels);
    for (Channel &channel : channels_)
        channel.banks.resize(config.banksPerChannel);

    // Registered up front (and cached as references: Counter storage
    // is stable across reset()) so the per-cycle accounting costs a
    // pointer increment, and healthy runs export explicit zeros.
    // Every backend shares this schema; subclasses may register more
    // (the legacy set stays a subset of every backend's export).
    contentionCounters_ = {
        &stats_.counter("contentionDemandCycles"),
        &stats_.counter("contentionPrefetchCycles"),
        &stats_.counter("contentionWritebackCycles"),
        &stats_.counter("contentionIdleCycles"),
    };
    demandStallCounter_ = &stats_.counter("contentionDemandStallCycles");
    rowHitCounter_ = &stats_.counter("rowHits");
    rowConflictCounter_ = &stats_.counter("rowConflicts");
    transferCounter_ = &stats_.counter("transfers");
    cycleCounters_.resize(config.channels);
    for (unsigned ch = 0; ch < config.channels; ++ch) {
        const std::string prefix = "ch" + std::to_string(ch);
        cycleCounters_[ch].slots = {
            &stats_.counter(prefix + "DemandCycles"),
            &stats_.counter(prefix + "PrefetchCycles"),
            &stats_.counter(prefix + "WritebackCycles"),
            &stats_.counter(prefix + "IdleCycles"),
            &stats_.counter(prefix + "Cycles"),
        };
    }
}

unsigned
DramBackend::busyChannels(Tick now) const
{
    unsigned busy = 0;
    for (const Channel &channel : channels_)
        busy += channel.busyUntil > now ? 1 : 0;
    return busy;
}

void
DramBackend::noteChannelCycle(unsigned channel, Tick now)
{
    const Channel &ch = channels_[channel];
    ChannelCycleCounters &counters = cycleCounters_[channel];
    unsigned slot = 3; // Idle.
    if (ch.busyUntil > now) {
        switch (ch.occupantCls) {
          case ReqClass::Demand:    slot = 0; break;
          case ReqClass::Prefetch:  slot = 1; break;
          case ReqClass::Writeback: slot = 2; break;
        }
    }
    ++*counters.slots[slot];
    ++*counters.slots[4]; // Accounted cycles for this channel.
    ++*contentionCounters_[slot];
    if (bankAccounting_)
        accountBankCycle(channel, now);
}

void
DramBackend::noteChannelCycles(unsigned channel, uint64_t busy_cycles,
                               uint64_t idle_cycles)
{
    const Channel &ch = channels_[channel];
    ChannelCycleCounters &counters = cycleCounters_[channel];
    if (busy_cycles) {
        unsigned slot = 0;
        switch (ch.occupantCls) {
          case ReqClass::Demand:    slot = 0; break;
          case ReqClass::Prefetch:  slot = 1; break;
          case ReqClass::Writeback: slot = 2; break;
        }
        *counters.slots[slot] += busy_cycles;
        *contentionCounters_[slot] += busy_cycles;
    }
    if (idle_cycles) {
        *counters.slots[3] += idle_cycles;
        *contentionCounters_[3] += idle_cycles;
    }
    *counters.slots[4] += busy_cycles + idle_cycles;
    if (bankAccounting_)
        accountBankCycles(channel, busy_cycles + idle_cycles);
}

void
DramBackend::noteAllIdleCycle()
{
    for (ChannelCycleCounters &counters : cycleCounters_) {
        ++*counters.slots[3]; // Idle.
        ++*counters.slots[4]; // Accounted cycles for this channel.
    }
    *contentionCounters_[3] += channels_.size();
    if (bankAccounting_) {
        for (unsigned ch = 0; ch < config_.channels; ++ch)
            accountBankCycles(ch, 1);
    }
}

void
DramBackend::noteDemandStall(uint64_t waiting)
{
    *demandStallCounter_ += waiting;
}

DramBackend::ChannelCycles
DramBackend::channelCycles(unsigned channel) const
{
    const std::string prefix = "ch" + std::to_string(channel);
    return ChannelCycles{
        stats_.value(prefix + "DemandCycles"),
        stats_.value(prefix + "PrefetchCycles"),
        stats_.value(prefix + "WritebackCycles"),
        stats_.value(prefix + "IdleCycles"),
    };
}

void
DramBackend::reset()
{
    for (Channel &channel : channels_) {
        channel.busyUntil = 0;
        channel.occupantCls = ReqClass::Demand;
        channel.occupantRef = kInvalidRefId;
        channel.occupantHint = obs::HintClass::None;
        for (Bank &bank : channel.banks)
            bank.openRow = -1;
    }
    maxBusyUntil_ = 0;
    pendingWork_ = 0;
    transfers_ = 0;
    stats_.reset();
}

} // namespace grp
