/**
 * @file
 * The pluggable DRAM backend interface.
 *
 * Every backend shares the same geometry (block-interleaved channels,
 * banks, rows), the same per-class contention accounting and the same
 * core stat schema (the "dram" group), so the access prioritizer, the
 * adaptive controller's idle-fraction signals and the cost reports
 * work unchanged whichever model is plugged in. Backends differ in
 * how an access is timed:
 *
 *  - The legacy Rambus-style model (mem/dram.hh, `DramSystem`)
 *    serves an access immediately on an idle channel and returns its
 *    completion tick from serve(). It is the default and stays
 *    bit-identical to every committed baseline.
 *
 *  - Queued backends (dram_backend/timing.hh) accept requests into a
 *    per-channel command queue instead: serve() returns the
 *    kTickPending sentinel, commands are scheduled cycle by cycle in
 *    tick(), and completed fills are drained via popCompleted(). The
 *    memory system detects this mode through queued().
 */

#ifndef GRP_MEM_DRAM_BACKEND_BACKEND_HH
#define GRP_MEM_DRAM_BACKEND_BACKEND_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "mem/request.hh"
#include "obs/stat_registry.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace grp
{

/** Returned by serve() on queued backends: the completion tick is not
 *  known at issue time; the fill arrives through popCompleted(). */
constexpr Tick kTickPending = kMaxTick;

/** Abstract multi-channel DRAM model. Geometry, channel-occupancy
 *  bookkeeping and contention accounting live here (non-virtual, hot);
 *  subclasses provide the timing in serve()/tick(). */
class DramBackend
{
  public:
    DramBackend(const DramConfig &config, obs::StatRegistry &registry);
    virtual ~DramBackend() = default;

    /** Channel servicing @p addr (block interleaved). */
    unsigned
    channelOf(Addr addr) const
    {
        return static_cast<unsigned>(blockNumber(addr) &
                                     (config_.channels - 1));
    }

    /** Bank within the channel servicing @p addr. */
    unsigned
    bankOf(Addr addr) const
    {
        const uint64_t channel_block = blockNumber(addr) >> channelShift_;
        return static_cast<unsigned>(
            (channel_block >> blocksPerRowShift_) &
            (config_.banksPerChannel - 1));
    }

    /** Row within the bank servicing @p addr. */
    uint64_t
    rowOf(Addr addr) const
    {
        const uint64_t channel_block = blockNumber(addr) >> channelShift_;
        return channel_block >> (blocksPerRowShift_ + bankShift_);
    }

    /** True when the channel's data bus is free at @p now. */
    bool
    channelIdle(unsigned channel, Tick now) const
    {
        return channels_[channel].busyUntil <= now;
    }

    /** First tick at which @p channel is idle (stall fast-forward). */
    Tick channelBusyUntil(unsigned channel) const
    {
        return channels_[channel].busyUntil;
    }

    /** Every channel is idle at @p now and no queued backend work is
     *  pending — the quiet-cycle fast path's gate (two compares). */
    bool
    allIdle(Tick now) const
    {
        return maxBusyUntil_ <= now && pendingWork_ == 0;
    }

    /** True when @p addr's row is open in its bank (bank-aware
     *  prefetch scheduling queries this). */
    bool
    rowOpen(Addr addr) const
    {
        const Bank &bank =
            channels_[channelOf(addr)].banks[bankOf(addr)];
        return bank.openRow == static_cast<int64_t>(rowOf(addr));
    }

    /** Channels still occupied at @p now (time-series sampling). */
    unsigned busyChannels(Tick now) const;

    /** Banks mid-activate/precharge/refresh at @p now — always zero
     *  for immediate backends, whose prep time is folded into the
     *  access latency (time-series sampling). */
    virtual unsigned
    activeBanks(Tick now) const
    {
        (void)now;
        return 0;
    }

    /**
     * Issue the access for @p addr's block at @p now on its channel.
     * Immediate backends return the tick at which the data is fully
     * returned; queued backends enqueue the request and return
     * kTickPending (the fill arrives via popCompleted()).
     */
    virtual Tick serve(Addr addr, Tick now, ReqClass cls,
                       RefId ref = kInvalidRefId,
                       obs::HintClass hint = obs::HintClass::None) = 0;

    /** Demand-class convenience overload (tests, microbenches). */
    Tick serve(Addr addr, Tick now)
    {
        return serve(addr, now, ReqClass::Demand);
    }

    /** True when this backend queues commands internally: serve()
     *  returns kTickPending, tick()/popCompleted() must be driven
     *  every busy cycle, and canAccept() gates arbitration. */
    bool queued() const { return queued_; }

    /** Advance internal command scheduling to @p now (queued
     *  backends; no-op for immediate ones). */
    virtual void tick(Tick now) { (void)now; }

    /** Next completed fill with done <= @p now, in deterministic
     *  (done, channel, issue-order) order. Writebacks complete
     *  internally and are never returned. */
    virtual std::optional<MemRequest>
    popCompleted(Tick now)
    {
        (void)now;
        return std::nullopt;
    }

    /** True when @p channel can take one more serve() at @p now. */
    virtual bool
    canAccept(unsigned channel, Tick now) const
    {
        return channelIdle(channel, now);
    }

    /** First tick after @p now at which this backend changes state on
     *  its own (queued backends return now + 1 while any command is
     *  pending; immediate backends never do — their completions are
     *  events the caller already tracks). Bounds stall fast-forward. */
    virtual Tick
    nextTransitionTick(Tick now) const
    {
        (void)now;
        return kMaxTick;
    }

    /**
     * Per-cycle contention accounting, driven once per channel per
     * simulated cycle by the memory system's tick: attributes the
     * cycle to the occupant's request class when the channel is busy
     * at @p now, to idle otherwise. The per-channel and aggregate
     * breakdowns live in the "dram" stat group
     * (chNDemandCycles/chNPrefetchCycles/chNWritebackCycles/
     * chNIdleCycles/chNCycles and contention*Cycles), so
     * demand + prefetch + writeback + idle sums to the channel's
     * accounted cycles by construction.
     */
    void noteChannelCycle(unsigned channel, Tick now);

    /**
     * Batched form of noteChannelCycle for the stall fast-forward: in
     * a window where the channel's occupant cannot change, @p
     * busy_cycles cycles attribute to the current occupant's class and
     * @p idle_cycles to idle — byte-identical to calling
     * noteChannelCycle once per cycle across the window.
     */
    void noteChannelCycles(unsigned channel, uint64_t busy_cycles,
                           uint64_t idle_cycles);

    /** One all-channels-idle cycle: equivalent to noteChannelCycle on
     *  every (idle) channel, minus the per-channel dispatch — the
     *  accounting arm of the memory system's quiet-cycle fast path. */
    void noteAllIdleCycle();

    /** Demand requests spent @p waiting request-cycles stalled behind
     *  an in-flight prefetch transfer the prioritizer could not
     *  preempt (dram.contentionDemandStallCycles). */
    void noteDemandStall(uint64_t waiting);

    /** Request class occupying @p channel (meaningful while busy). */
    ReqClass occupantClass(unsigned channel) const
    {
        return channels_[channel].occupantCls;
    }
    /** Site / hint class of the occupying prefetch (attribution). */
    RefId occupantRef(unsigned channel) const
    {
        return channels_[channel].occupantRef;
    }
    obs::HintClass occupantHint(unsigned channel) const
    {
        return channels_[channel].occupantHint;
    }

    /** One channel's accounted-cycle breakdown (cost reports). */
    struct ChannelCycles
    {
        uint64_t demand = 0;
        uint64_t prefetch = 0;
        uint64_t writeback = 0;
        uint64_t idle = 0;
        uint64_t
        total() const
        {
            return demand + prefetch + writeback + idle;
        }
    };
    ChannelCycles channelCycles(unsigned channel) const;

    /** Total 64 B transfers served (traffic accounting). */
    uint64_t transfersServed() const { return transfers_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    const DramConfig &config() const { return config_; }

    /** Backend identity ("legacy" or the timing preset name). */
    virtual const char *name() const = 0;

    virtual void reset();

  protected:
    struct Bank
    {
        int64_t openRow = -1;
    };

    struct Channel
    {
        Tick busyUntil = 0;
        std::vector<Bank> banks;
        /** What the in-flight transfer is (contention attribution). */
        ReqClass occupantCls = ReqClass::Demand;
        RefId occupantRef = kInvalidRefId;
        obs::HintClass occupantHint = obs::HintClass::None;
    };

    /** Mark @p channel's data bus busy until @p until on behalf of
     *  one transfer (occupant attribution + allIdle high-water). */
    void
    setChannelBusy(unsigned channel, Tick until, ReqClass cls,
                   RefId ref, obs::HintClass hint)
    {
        Channel &ch = channels_[channel];
        ch.busyUntil = until;
        if (until > maxBusyUntil_)
            maxBusyUntil_ = until;
        ch.occupantCls = cls;
        ch.occupantRef = ref;
        ch.occupantHint = hint;
    }

    /** Per-bank state-cycle accounting hook, invoked from the note*
     *  functions only when the subclass set bankAccounting_ (the
     *  legacy path keeps zero virtual dispatch per cycle). One
     *  accounted channel cycle must add exactly one cycle to exactly
     *  one state counter of every bank on the channel. */
    virtual void
    accountBankCycle(unsigned channel, Tick now)
    {
        (void)channel; (void)now;
    }

    /** Batched form of accountBankCycle for windows in which no bank
     *  can change state (quiet fast path / stall fast-forward, both
     *  of which only occur with the backend fully drained): @p cycles
     *  cycles attribute to each bank's resting state. */
    virtual void
    accountBankCycles(unsigned channel, uint64_t cycles)
    {
        (void)channel; (void)cycles;
    }

    DramConfig config_;
    unsigned channelShift_;    ///< log2(channels).
    unsigned blocksPerRow_;
    unsigned blocksPerRowShift_;
    unsigned bankShift_;       ///< log2(banksPerChannel).

    std::vector<Channel> channels_;
    /** High-water mark of every channel's busyUntil (allIdle()). */
    Tick maxBusyUntil_ = 0;
    /** Queued-backend commands not yet delivered (allIdle()); always
     *  zero on immediate backends. */
    size_t pendingWork_ = 0;
    /** Set by queued subclasses (see queued()). */
    bool queued_ = false;
    /** Enables the accountBankCycle(s) hooks. */
    bool bankAccounting_ = false;

    /** Cached per-channel cycle counters (demand, prefetch,
     *  writeback, idle, total) so per-cycle accounting skips the
     *  stat-name lookup; Counter references are stable across
     *  StatGroup::reset(). */
    struct ChannelCycleCounters
    {
        std::array<Counter *, 5> slots{};
    };

    std::vector<ChannelCycleCounters> cycleCounters_;
    /** Aggregate demand/prefetch/writeback/idle cycle counters. */
    std::array<Counter *, 4> contentionCounters_{};
    Counter *demandStallCounter_ = nullptr;
    /** Per-serve() counters, cached for the same reason. */
    Counter *rowHitCounter_ = nullptr;
    Counter *rowConflictCounter_ = nullptr;
    Counter *transferCounter_ = nullptr;
    uint64_t transfers_ = 0;
    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;
};

} // namespace grp

#endif // GRP_MEM_DRAM_BACKEND_BACKEND_HH
