/**
 * @file
 * DRAM backend selection: name resolution (config field, GRP_DRAM
 * environment variable, legacy default) and construction.
 */

#ifndef GRP_MEM_DRAM_BACKEND_FACTORY_HH
#define GRP_MEM_DRAM_BACKEND_FACTORY_HH

#include <memory>
#include <string>

#include "mem/dram_backend/backend.hh"
#include "sim/config.hh"

namespace grp
{

/** The backend name @p configured resolves to: itself when nonempty,
 *  else $GRP_DRAM, else "legacy". Fatal on an unknown name. */
std::string resolveDramBackendName(const std::string &configured);

/**
 * Resolve @p config in place: fills in the backend name (see above)
 * and, for timing presets, applies the preset's channel/bank/row
 * geometry so everything sized off DramConfig (queues, interleaving,
 * the provenance hash) sees the real topology. Idempotent; a no-op
 * for legacy.
 */
void resolveDramBackend(DramConfig &config);

/** Construct the selected backend. Resolves @p config's copy first,
 *  so callers may pass an unresolved configuration. */
std::unique_ptr<DramBackend>
makeDramBackend(DramConfig config, obs::StatRegistry &registry =
                                       obs::StatRegistry::current());

} // namespace grp

#endif // GRP_MEM_DRAM_BACKEND_FACTORY_HH
