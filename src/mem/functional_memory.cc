#include "mem/functional_memory.hh"

#include "sim/logging.hh"

namespace grp
{

namespace
{

Addr
alignUp(Addr addr, uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

} // namespace

Addr
FunctionalMemory::heapAlloc(uint64_t bytes, uint64_t align)
{
    fatal_if(bytes == 0, "zero-byte heap allocation");
    fatal_if(!isPowerOfTwo(align), "alignment must be a power of two");
    const Addr base = alignUp(heapBrk_, align);
    heapBrk_ = base + bytes;
    fatal_if(heapBrk_ > kHeapBase + kSegmentCapacity,
             "simulated heap exhausted");
    return base;
}

Addr
FunctionalMemory::staticAlloc(uint64_t bytes, uint64_t align)
{
    fatal_if(bytes == 0, "zero-byte static allocation");
    fatal_if(!isPowerOfTwo(align), "alignment must be a power of two");
    const Addr base = alignUp(staticBrk_, align);
    staticBrk_ = base + bytes;
    fatal_if(staticBrk_ > kStaticBase + kSegmentCapacity,
             "simulated static segment exhausted");
    return base;
}

FunctionalMemory::Page &
FunctionalMemory::pageFor(Addr addr)
{
    const Addr page_addr = addr >> kPageShift;
    auto &slot = pages_[page_addr];
    if (!slot)
        slot = std::make_unique<Page>(Page{});
    return *slot;
}

const FunctionalMemory::Page *
FunctionalMemory::pageForConst(Addr addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

uint64_t
FunctionalMemory::read64(Addr addr) const
{
    panic_if(addr & 7, "unaligned 64-bit read at %#llx",
             (unsigned long long)addr);
    const Page *page = pageForConst(addr);
    if (!page)
        return 0;
    return (*page)[(addr & (kPageBytes - 1)) >> 3];
}

void
FunctionalMemory::write64(Addr addr, uint64_t value)
{
    panic_if(addr & 7, "unaligned 64-bit write at %#llx",
             (unsigned long long)addr);
    pageFor(addr)[(addr & (kPageBytes - 1)) >> 3] = value;
}

uint32_t
FunctionalMemory::read32(Addr addr) const
{
    panic_if(addr & 3, "unaligned 32-bit read at %#llx",
             (unsigned long long)addr);
    const uint64_t word = read64(addr & ~7ull);
    return (addr & 4) ? static_cast<uint32_t>(word >> 32)
                      : static_cast<uint32_t>(word);
}

void
FunctionalMemory::write32(Addr addr, uint32_t value)
{
    panic_if(addr & 3, "unaligned 32-bit write at %#llx",
             (unsigned long long)addr);
    const Addr word_addr = addr & ~7ull;
    uint64_t word = read64(word_addr);
    if (addr & 4) {
        word = (word & 0x0000'0000'ffff'ffffull) |
               (static_cast<uint64_t>(value) << 32);
    } else {
        word = (word & 0xffff'ffff'0000'0000ull) | value;
    }
    write64(word_addr, word);
}

void
FunctionalMemory::readBlock(Addr addr, std::array<uint64_t, 8> &out) const
{
    const Addr base = blockAlign(addr);
    for (unsigned i = 0; i < 8; ++i)
        out[i] = read64(base + 8ull * i);
}

} // namespace grp
