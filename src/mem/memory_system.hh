/**
 * @file
 * The full memory hierarchy: L1D, unified L2, MSHR files, the access
 * prioritizer, writeback path and DRAM, with hooks for a prefetch
 * engine.
 *
 * Arbitration per channel per cycle (the access prioritizer of §3.1):
 * demand misses first, then writebacks, then prefetch candidates —
 * prefetches are issued only when the channel would otherwise idle
 * and no demand request is waiting, so useless prefetches cannot
 * delay demand traffic. A small number of L2 MSHRs is reserved for
 * demand so prefetches cannot starve misses of tracking resources.
 */

#ifndef GRP_MEM_MEMORY_SYSTEM_HH
#define GRP_MEM_MEMORY_SYSTEM_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "adaptive/signals.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/functional_memory.hh"
#include "mem/mshr.hh"
#include "mem/prefetch_iface.hh"
#include "mem/request.hh"
#include "obs/shadow_tags.hh"
#include "obs/site_profile.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace grp
{

/** The complete L1D/L2/DRAM hierarchy with prefetch integration. */
class MemorySystem
{
  public:
    /** Called when an outstanding load's data is ready. */
    using LoadCallback = std::function<void(uint64_t token)>;

    /** @param registry Stat registry the hierarchy (and every
     *         subcomponent) registers into; defaults to the calling
     *         thread's, so per-run registries isolate concurrent
     *         simulations. */
    MemorySystem(const SimConfig &config, EventQueue &events,
                 obs::StatRegistry &registry =
                     obs::StatRegistry::current());

    /** Attach the engine selected by the configuration (may be
     *  nullptr for no prefetching). Not owned. */
    void setPrefetchEngine(PrefetchEngine *engine) { engine_ = engine; }

    /** Register the CPU's load-completion callback. */
    void setLoadCallback(LoadCallback cb) { loadDone_ = std::move(cb); }

    /** Attach the adaptive control plane (not owned; nullptr reverts
     *  to static behavior). Drives the L2 insertion position of
     *  prefetch fills and the demand-miss pointer-depth cap. */
    void setControlPlane(const adaptive::ControlPlane *plane)
    {
        plane_ = plane;
    }

    /** Measured-window prefetch fills / first-uses per hint class
     *  (adaptive signal source; zeroed with resetStats()). Plain
     *  members, not registry counters, so stat exports and committed
     *  bench baselines are unchanged by their existence. */
    const std::array<adaptive::ClassCounts, adaptive::kNumClasses> &
    classPrefetchCounts() const
    {
        return classCounts_;
    }

    /**
     * Issue a load.
     *
     * @param token Opaque value handed back via the load callback.
     * @param hit_ready When non-null and the load completes with a
     *        fixed L1-hit latency, receives the completion tick and
     *        the load callback is NOT scheduled — the caller absorbs
     *        the hit synchronously instead of paying for a heap
     *        event per hit. Left untouched on a miss (the callback
     *        fires as usual) and on a structural stall.
     * @return false on a structural stall (MSHRs full); retry later.
     */
    bool load(Addr addr, RefId ref, const LoadHints &hints,
              uint64_t token, Tick *hit_ready = nullptr);

    /**
     * Issue a store (write-allocate, write-back). Stores complete
     * immediately from the CPU's perspective (store buffer); this
     * call only models cache state and miss traffic.
     *
     * @return false on a structural stall; retry later.
     */
    bool store(Addr addr, RefId ref, const LoadHints &hints);

    /** Forward an indirect prefetch instruction to the engine. */
    void indirectPrefetch(Addr base, unsigned elem_size,
                          Addr index_addr, RefId ref);

    /** Per-cycle channel arbitration; call once per CPU cycle after
     *  the CPU has issued. */
    void tick();

    /**
     * First tick after @p now at which tick() could do more than
     * repeat this cycle's accounting: start a queued demand/writeback
     * access, or draw a prefetch candidate (kMaxTick when nothing is
     * queued anywhere). Until then every cycle's work is a fixed
     * increment, which fastForwardTicks() applies in one batch.
     */
    Tick nextWorkTick(Tick now) const;

    /**
     * Replicate tick()'s per-cycle accounting for the skipped cycles
     * [@p from, @p to): channel busy/idle attribution, prefetch
     * throttle counters and demand-behind-prefetch contention, each
     * scaled by the cycle count — byte-identical to ticking the
     * window cycle by cycle (the runner guarantees no queue, MSHR or
     * event state can change inside the window).
     */
    void fastForwardTicks(Tick from, Tick to);

    /** No demand request is outstanding anywhere. */
    bool quiesced() const;

    Cache &l1d() { return *l1d_; }
    Cache &l2() { return *l2_; }
    DramBackend &dram() { return *dram_; }
    MshrFile &l1Mshrs() { return *l1Mshrs_; }
    MshrFile &l2Mshrs() { return *l2Mshrs_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Total bytes moved on the memory channels (fills of both
     *  classes plus writebacks): the paper's traffic metric. */
    uint64_t trafficBytes() const;

    /** L2 demand misses that went to memory (coverage metric
     *  numerator is computed against a no-prefetch run). */
    uint64_t l2DemandMisses() const;

    /** Demand requests waiting for a channel (time-series hook). */
    size_t demandQueueDepth() const;
    /** Writebacks waiting for a channel (time-series hook). */
    size_t writebackQueueDepth() const;

    void reset();

    /** Zero all statistics without touching cache/MSHR/DRAM state
     *  (end-of-warmup measurement boundary). */
    void resetStats();

    /**
     * Attach the counterfactual shadow tags (tag-only no-prefetch L2
     * replica) and the pollution victim table. From here on every
     * demand L2 access is classified into mem.pollutionBothHits /
     * pollutionCoverageHits / pollutionMisses / pollutionBaselineMisses
     * and each pollution miss is charged, when the victim table still
     * holds the evicted block, to the (RefId, HintClass) of the
     * prefetch that evicted it. Pure bookkeeping: enabling this never
     * changes timing. Idempotent.
     */
    void enableShadowTags();
    bool shadowTagsEnabled() const { return shadow_ != nullptr; }

    /** The victim table backing pollution attribution (cost report /
     *  tests); only valid once shadow tags are enabled. */
    const obs::VictimTable &victimTable() const { return victims_; }

  private:
    /** A demand/writeback request waiting for its channel. */
    struct PendingReq
    {
        MemRequest req;
    };

    bool handleL1Miss(Addr addr, RefId ref, const LoadHints &hints,
                      uint64_t token, bool is_write);
    /** First CPU reference to a prefetched block: attribute it to its
     *  hint class and warmup era, sample the fill-to-use distance. */
    void notePrefetchUseful(Addr block_addr);
    void respondAfter(Tick delay, Addr block_addr);
    void finishL1Fill(Addr block_addr);
    /** @p ref / @p hint attribute a prefetch insertion's evictions to
     *  the responsible site (victim-table recording). */
    void insertIntoL2(Addr block_addr, bool as_prefetch, bool dirty,
                      RefId ref = kInvalidRefId,
                      obs::HintClass hint = obs::HintClass::None);
    /** Replay one demand L2 access against the shadow tags and count
     *  its baseline/pollution/coverage classification. */
    void classifyDemandAccess(Addr block_addr, bool real_hit);
    void startDramAccess(unsigned channel, const MemRequest &req);
    void onDramFill(MemRequest req);
    bool tryIssuePrefetch(unsigned channel);
    uint8_t demandPtrDepth(const LoadHints &hints) const;

    SimConfig config_;
    EventQueue &events_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<MshrFile> l1Mshrs_;
    std::unique_ptr<MshrFile> l2Mshrs_;
    std::unique_ptr<DramBackend> dram_;
    /** Cached dram_->queued(): the selected backend schedules
     *  commands internally, so tick() drives dram tick/popCompleted
     *  and arbitration gates on canAccept() instead of channelIdle().
     *  False for the legacy backend — its hot path is untouched. */
    bool timingMode_ = false;
    PrefetchEngine *engine_ = nullptr;
    LoadCallback loadDone_;
    const adaptive::ControlPlane *plane_ = nullptr;
    /** Per-hint-class fill/first-use accounting (see accessor). */
    std::array<adaptive::ClassCounts, adaptive::kNumClasses>
        classCounts_{};

    std::vector<std::deque<MemRequest>> demandQueues_;
    std::vector<std::deque<MemRequest>> writebackQueues_;
    /** Cached sums of the per-channel queue sizes, maintained at every
     *  push/pop so tick()'s quiet-cycle fast path is two compares. */
    size_t queuedDemand_ = 0;
    size_t queuedWriteback_ = 0;
    /** Writeback queue depth beyond which writebacks pre-empt
     *  demand to bound queue growth. */
    static constexpr size_t kWritebackHighWater = 16;
    /** L2 MSHRs reserved for demand traffic. */
    static constexpr unsigned kDemandReservedMshrs = 2;
    /** Candidate re-draws per channel per cycle when the engine
     *  offers already-present blocks. */
    static constexpr unsigned kPrefetchDrawLimit = 8;
    /** Fill-to-use distances are clamped before sampling so the
     *  distribution's bucket vector stays bounded. */
    static constexpr uint64_t kDistanceCap = 65535;

    /** A prefetch-filled block not yet referenced by the CPU. */
    struct PrefetchFillInfo
    {
        Tick fillTick = 0;
        obs::HintClass hint = obs::HintClass::None;
        /** Issued before the measurement boundary; its eventual use
         *  is warmup carryover, not measured-window accuracy. */
        bool warm = false;
        /** Static reference that earned the prefetch (site
         *  attribution for the tracer and the site profiler). */
        RefId ref = kInvalidRefId;
    };

    /** Live (unreferenced) prefetch fills keyed by block address. */
    std::unordered_map<Addr, PrefetchFillInfo> livePrefetches_;
    /** Tick of the last resetStats() (warmup/measurement boundary). */
    Tick boundaryTick_ = 0;

    /** Counterfactual no-prefetch L2 replica (null until
     *  enableShadowTags()). */
    std::unique_ptr<obs::ShadowTags> shadow_;
    /** Evicted-victim attribution for pollution misses. */
    obs::VictimTable victims_;

    /** Cached classification counters (mem.pollution*): registered by
     *  enableShadowTags(), hot on every demand L2 access. Counter
     *  storage is stable across StatGroup::reset(). */
    struct PollutionCounters
    {
        Counter *bothHits = nullptr;
        Counter *baselineMisses = nullptr;
        Counter *pollutionMisses = nullptr;
        Counter *coverageHits = nullptr;
        Counter *shadowMisses = nullptr;
        Counter *attributed = nullptr;
        Counter *unattributed = nullptr;
        Counter *victimsRecorded = nullptr;
        Counter *victimDrops = nullptr;
    };
    PollutionCounters pol_;

    /** Cached hot-path counter handles (mem.*): looked up by name
     *  once at construction, bumped through pointers on every
     *  access/fill/arbitration event. Counter storage is stable
     *  across StatGroup::reset(). */
    struct HotCounters
    {
        Counter *l1DemandAccesses = nullptr;
        Counter *l1DemandMisses = nullptr;
        Counter *l1TargetStalls = nullptr;
        Counter *l1MshrStalls = nullptr;
        Counter *l2DemandAccesses = nullptr;
        Counter *l2DemandHits = nullptr;
        Counter *l2DemandMissesTotal = nullptr;
        Counter *streamHits = nullptr;
        Counter *latePrefetchUpgrades = nullptr;
        Counter *l2TargetStalls = nullptr;
        Counter *l2MshrStalls = nullptr;
        Counter *demandToMemory = nullptr;
        Counter *demandFills = nullptr;
        Counter *prefetchFills = nullptr;
        Counter *writebacks = nullptr;
        Counter *writebacksQueued = nullptr;
        Counter *prefetchEvictedUnused = nullptr;
        Counter *usefulPrefetches = nullptr;
        Counter *usefulPrefetchWarmupCarryover = nullptr;
        Counter *prefetchDemandThrottled = nullptr;
        Counter *prefetchMshrThrottled = nullptr;
        Counter *prefetchFiltered = nullptr;
        Counter *prefetchesIssued = nullptr;
        Distribution *prefetchToUseDistance = nullptr;
    };
    HotCounters hot_;

    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;
};

} // namespace grp

#endif // GRP_MEM_MEMORY_SYSTEM_HH
