/**
 * @file
 * The interface between the memory system and a prefetch engine.
 *
 * The memory system notifies the engine of L2 demand activity and of
 * completed fills (so pointer scanners can walk returned lines), and
 * pulls prefetch candidates from it whenever a DRAM channel would
 * otherwise idle — the access-prioritizer contract of SRP (§3.1).
 */

#ifndef GRP_MEM_PREFETCH_IFACE_HH
#define GRP_MEM_PREFETCH_IFACE_HH

#include <functional>
#include <optional>

#include "mem/request.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace grp
{

class DramBackend;

/** Abstract prefetch engine observed and drained by the memory
 *  system. */
class PrefetchEngine
{
  public:
    /** Returns true when a block is already in the L2 or in flight;
     *  engines use it to initialise region bit vectors. */
    using PresenceTest = std::function<bool(Addr)>;

    virtual ~PrefetchEngine() = default;

    /** Every L2 demand access (training hook for stride). */
    virtual void
    onL2DemandAccess(Addr addr, RefId ref, const LoadHints &hints,
                     bool hit)
    {
        (void)addr; (void)ref; (void)hints; (void)hit;
    }

    /** An L2 demand miss has allocated an MSHR (region trigger). */
    virtual void
    onL2DemandMiss(Addr addr, RefId ref, const LoadHints &hints)
    {
        (void)addr; (void)ref; (void)hints;
    }

    /**
     * A block has returned from memory carrying @p ptr_depth
     * remaining pointer-chase levels (pointer scanner hook).
     */
    virtual void
    onFill(Addr block_addr, uint8_t ptr_depth, ReqClass cls)
    {
        (void)block_addr; (void)ptr_depth; (void)cls;
    }

    /** A prefetched block was referenced by the CPU for the first
     *  time (accuracy feedback for throttling schemes). */
    virtual void
    onPrefetchUseful(Addr block_addr)
    {
        (void)block_addr;
    }

    /**
     * Give the engine a chance to satisfy an L2 miss from prefetch
     * storage outside the cache (stream buffers). Returns true when
     * the block was held; the caller then treats the miss as a
     * short-latency fill.
     */
    virtual bool streamHit(Addr block_addr)
    {
        (void)block_addr;
        return false;
    }

    /**
     * Offer a prefetch candidate for @p channel, which is idle.
     * Returns std::nullopt when the engine has nothing useful.
     */
    virtual std::optional<PrefetchCandidate>
    dequeuePrefetch(const DramBackend &dram, unsigned channel) = 0;

    /** Execute an indirect prefetch instruction (§3.3.3). */
    virtual void
    indirectPrefetch(Addr base, unsigned elem_size, Addr index_addr,
                     RefId ref)
    {
        (void)base; (void)elem_size; (void)index_addr; (void)ref;
    }

    /** Engine statistics group. */
    virtual StatGroup &stats() = 0;

    /** Pending candidate entries (time-series sampling hook). */
    virtual size_t queueDepth() const { return 0; }

    /** Drop all pending state. */
    virtual void reset() {}
};

} // namespace grp

#endif // GRP_MEM_PREFETCH_IFACE_HH
