/**
 * @file
 * Miss status holding registers.
 *
 * Each cache owns a small MSHR file (paper: 8 entries). MSHRs track
 * all outstanding accesses, demand and prefetch alike; demand misses
 * to a block with an in-flight prefetch coalesce onto the prefetch's
 * entry, upgrading it to demand class.
 */

#ifndef GRP_MEM_MSHR_HH
#define GRP_MEM_MSHR_HH

#include <cstdint>
#include <vector>

#include "mem/request.hh"
#include "obs/stat_registry.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace grp
{

/** One coalesced requester waiting on an in-flight block. */
struct MshrTarget
{
    uint64_t token;   ///< Opaque requester token (ROB slot / L1 id).
    bool isWrite;
    RefId refId;
};

/** One outstanding block miss. */
struct Mshr
{
    Addr blockAddr = 0;
    bool valid = false;
    bool isPrefetch = false;  ///< No demand target attached yet.
    uint8_t ptrDepth = 0;     ///< Pointer-chase levels on return.
    LoadHints hints;
    Tick allocated = 0;
    std::vector<MshrTarget> targets;
};

/** A fixed-capacity MSHR file. */
class MshrFile
{
  public:
    MshrFile(unsigned entries, unsigned max_targets,
             const std::string &name,
             obs::StatRegistry &registry = obs::StatRegistry::current());

    /** Entry tracking @p addr's block, or nullptr. */
    Mshr *find(Addr addr);
    const Mshr *find(Addr addr) const;

    /** True when no entry is free. */
    bool full() const { return freeCount_ == 0; }
    unsigned inFlight() const { return size_ - freeCount_; }
    unsigned capacity() const { return size_; }
    /** Valid entries with a demand requester attached. */
    unsigned demandInFlight() const { return demandCount_; }

    /**
     * Allocate an entry for @p addr's block. The caller must have
     * checked full() and the absence of an existing entry.
     */
    Mshr &allocate(Addr addr, bool is_prefetch, const LoadHints &hints,
                   uint8_t ptr_depth, Tick now);

    /**
     * Attach a demand target to an existing entry; returns false when
     * the per-entry target list is exhausted (requester must retry).
     * Attaching a demand target to a prefetch entry upgrades it.
     */
    bool addTarget(Mshr &entry, const MshrTarget &target);

    /** Release @p entry (its block has been filled). */
    void deallocate(Mshr &entry);

    StatGroup &stats() { return stats_; }

    void reset();

  private:
    std::vector<Mshr> entries_;
    unsigned size_;
    unsigned maxTargets_;
    unsigned freeCount_;
    unsigned demandCount_ = 0;
    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;

    /** Cached counter handles (lookup once at construction). */
    Counter *prefetchAllocs_ = nullptr;
    Counter *demandAllocs_ = nullptr;
    Counter *prefetchUpgrades_ = nullptr;
    Counter *coalescedTargets_ = nullptr;
};

} // namespace grp

#endif // GRP_MEM_MSHR_HH
