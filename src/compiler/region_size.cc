#include "compiler/region_size.hh"

#include <cstdlib>

#include "compiler/walk.hh"

namespace grp
{

uint8_t
RegionSizeAnalysis::encodeCoeff(int64_t stride_bytes)
{
    const uint64_t magnitude =
        static_cast<uint64_t>(stride_bytes < 0 ? -stride_bytes
                                               : stride_bytes);
    if (magnitude == 0)
        return kFixedRegionCoeff;
    // 2^x closest to the stride, capped below the reserved value 7.
    uint8_t x = 0;
    while (x < 6 && (1ull << (x + 1)) <= magnitude)
        ++x;
    // Round up when the next power of two is closer.
    if (x < 6 && (magnitude - (1ull << x)) > ((1ull << (x + 1)) -
                                              magnitude)) {
        ++x;
    }
    return x;
}

void
RegionSizeAnalysis::run(const Program &prog, HintTable &table)
{
    forEachStmt(prog, [&](const Stmt &stmt, const LoopNest &nest) {
        // The bound-conveying instruction precedes one loop, so the
        // analysis applies where the innermost enclosing counted
        // loop is itself the spatial carrier ("singly nested" from
        // the reference's point of view).
        if (nest.empty() ||
            nest.back()->kind != Loop::Kind::Counted) {
            return;
        }
        if (stmt.refId == kInvalidRefId ||
            !table.get(stmt.refId).spatial()) {
            return;
        }

        const Loop &loop = *nest.back();
        if (!loop.boundKnown)
            return; // Symbolic bound: fixed-size regions.
        const uint64_t trips = loop.tripCount();
        if (trips == 0)
            return;

        const Subscript *sub = nullptr;
        uint32_t elem_size = 8;
        if (stmt.kind == StmtKind::ArrayRef) {
            const ArrayDecl &array = prog.arrays[stmt.array];
            sub = &stmt.subs[spatialDim(array)];
            elem_size = array.elemSize;
        } else if (stmt.kind == StmtKind::PtrArrayRef) {
            sub = &stmt.subs[0];
            elem_size = stmt.elemSize;
        } else {
            return;
        }
        if (sub->kind != Subscript::Kind::AffineExpr)
            return;

        const int64_t coeff = sub->expr.coeffOf(loop.var);
        if (coeff == 0)
            return;

        // "Singly nested" check: when an enclosing loop continues
        // the same spatial run (its per-iteration address stride
        // equals the inner loop's whole span, e.g. a[16*r + j]), the
        // true spatial extent exceeds the inner bound and clamping
        // the region to it would forfeit useful prefetches — keep
        // fixed-size regions, as the paper's restriction to singly
        // nested loops does.
        const int64_t inner_stride =
            coeff * static_cast<int64_t>(elem_size);
        const int64_t inner_span =
            static_cast<int64_t>(trips) * inner_stride;
        for (size_t level = 0; level + 1 < nest.size(); ++level) {
            const Loop *outer = nest[level];
            if (outer->kind != Loop::Kind::Counted)
                continue;
            int64_t outer_stride = 0;
            if (stmt.kind == StmtKind::ArrayRef) {
                const ArrayDecl &array = prog.arrays[stmt.array];
                for (size_t d = 0; d < stmt.subs.size(); ++d) {
                    if (stmt.subs[d].kind !=
                        Subscript::Kind::AffineExpr) {
                        continue;
                    }
                    outer_stride +=
                        stmt.subs[d].expr.coeffOf(outer->var) *
                        static_cast<int64_t>(
                            array.dimStrideElems(d)) *
                        static_cast<int64_t>(elem_size);
                }
            } else {
                outer_stride = sub->expr.coeffOf(outer->var) *
                               static_cast<int64_t>(elem_size);
            }
            if (outer_stride != 0 && outer_stride == inner_span)
                return; // Sequential continuation: fixed regions.
        }

        const uint8_t x = encodeCoeff(inner_stride);
        if (x == kFixedRegionCoeff)
            return;

        LoadHints hints = table.get(stmt.refId);
        hints.flags |= kHintSizeValid;
        hints.sizeCoeff = x;
        hints.loopBound = static_cast<uint32_t>(
            trips > ~0u ? ~0u : trips);
        table.set(stmt.refId, hints);
    });
}

} // namespace grp
