/**
 * @file
 * Induction variable recognition (the first step of Figure 7).
 *
 * Counted-loop variables are induction variables by construction in
 * this IR; the analysis work is recognising *induction pointers*:
 * pointers repeatedly incremented by a constant inside a loop
 * (Figure 5: `for (; p < s; p += c)`), which the paper treats as
 * special integers for spatial marking.
 */

#ifndef GRP_COMPILER_INDUCTION_HH
#define GRP_COMPILER_INDUCTION_HH

#include <map>
#include <set>

#include "compiler/ir.hh"
#include "compiler/walk.hh"

namespace grp
{

/** Results of induction recognition. */
class InductionAnalysis
{
  public:
    /** Pointers incremented by a constant of at most this magnitude
     *  count as spatially-useful induction pointers ("if constant c
     *  is small", §4.2). */
    static constexpr int64_t kSmallStride = 4 * kBlockBytes;

    void run(const Program &prog);

    /** The constant byte stride of @p ptr in @p loop, or 0. */
    int64_t strideOf(const Loop *loop, PtrId ptr) const;

    /** True when @p ptr is a small-stride induction pointer in
     *  @p loop or any enclosing loop of @p nest. */
    bool isSpatialInductionPtr(const LoopNest &nest, PtrId ptr) const;

    /** All (loop, ptr) induction pairs found (for tests). */
    size_t pairCount() const { return strides_.size(); }

  private:
    std::map<std::pair<const Loop *, PtrId>, int64_t> strides_;
};

} // namespace grp

#endif // GRP_COMPILER_INDUCTION_HH
