/**
 * @file
 * A fluent builder for IR programs.
 *
 * Workload kernels use it to declare data (allocated at real
 * simulated addresses in the functional memory) and to write loop
 * nests. Every memory-referencing statement receives a fresh RefId —
 * its static "PC" — which the hint generator later annotates.
 */

#ifndef GRP_COMPILER_BUILDER_HH
#define GRP_COMPILER_BUILDER_HH

#include <string>
#include <vector>

#include "compiler/ir.hh"
#include "mem/functional_memory.hh"

namespace grp
{

/** Array declaration options. */
struct ArrayOpts
{
    bool heap = false;
    bool columnMajor = false;
    bool elemIsPointer = false;
};

/** Builds a Program, allocating arrays in functional memory. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(FunctionalMemory &mem);

    /** Declare (and allocate) an array; extents outermost-first. */
    ArrayId array(const std::string &name, uint32_t elem_size,
                  std::vector<uint64_t> extents, ArrayOpts opts = {});

    /** Declare a structure type. */
    TypeId structType(const std::string &name, uint64_t size,
                      std::vector<StructField> fields);

    /** Declare a pointer variable of structure type @p type. */
    PtrId ptr(const std::string &name, TypeId type = kNoId,
              Addr initial = 0);

    /** Set a pointer's initial value after declaration (workloads
     *  often build the data structure first). */
    void setPtrInitial(PtrId p, Addr value);

    /** Base address of a declared array. */
    Addr arrayBase(ArrayId a) const { return prog_.arrays[a].base; }

    // --- Loop structure -------------------------------------------

    /** Open `for (v = lower; v < upper; v += step)`; returns v. */
    VarId forLoop(int64_t lower, int64_t upper, int64_t step = 1,
                  bool bound_known = true);

    /** Open `while (p != 0)`, safety-capped at @p max_iter. */
    void whileLoop(PtrId p, uint64_t max_iter = ~0ull);

    /** Close the innermost open loop. */
    void end();

    // --- Statements -----------------------------------------------

    RefId arrayRef(ArrayId a, std::vector<Subscript> subs,
                   bool is_write = false);
    RefId ptrLoadFromArray(PtrId p, ArrayId a, Subscript sub);
    void ptrAddrOfArray(PtrId p, ArrayId a, Subscript sub);
    RefId ptrRef(PtrId p, int64_t offset, bool is_write = false);
    RefId ptrArrayRef(PtrId p, uint32_t elem_size, Subscript sub,
                      bool is_write = false);
    RefId ptrUpdateField(PtrId p, int64_t offset);
    RefId ptrSelectField(PtrId dst, PtrId src,
                         std::vector<int64_t> offset_choices);
    void ptrUpdateConst(PtrId p, int64_t stride);
    void compute(uint32_t n = 1);

    /** Fresh RefId for an index load embedded in a subscript. */
    RefId allocIndexRef() { return prog_.allocRef(); }

    /** Finish; the builder must have no open loops. */
    Program build();

    FunctionalMemory &memory() { return mem_; }

  private:
    std::vector<Node> &currentBody();
    void push(Stmt stmt);

    FunctionalMemory &mem_;
    Program prog_;
    /** Index path of open loops into the node tree. */
    std::vector<Loop *> openLoops_;
};

} // namespace grp

#endif // GRP_COMPILER_BUILDER_HH
