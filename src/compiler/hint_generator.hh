/**
 * @file
 * The hint generator: drives the full Section 4 analysis pipeline
 * over a program and fills the hint table the hardware consumes.
 *
 * Order matters: indirect detection first (it transforms the IR),
 * then induction recognition, spatial locality (Figure 7), pointer
 * idioms (Figure 8, which consumes spatial marks), and finally
 * variable-region sizing (Section 4.4, which refines spatial marks).
 */

#ifndef GRP_COMPILER_HINT_GENERATOR_HH
#define GRP_COMPILER_HINT_GENERATOR_HH

#include "compiler/ir.hh"
#include "core/hint_table.hh"
#include "sim/config.hh"

namespace grp
{

/** Static hint statistics, one row of Table 3. */
struct HintStats
{
    unsigned memInsts = 0;   ///< Static memory reference instructions.
    unsigned spatial = 0;    ///< Marked spatial.
    unsigned pointer = 0;    ///< Marked pointer.
    unsigned recursive = 0;  ///< Marked recursive pointer.
    unsigned indirect = 0;   ///< Indirect prefetch instructions.

    /** Fraction of memory instructions carrying any hint (col 6). */
    double hintedRatio = 0.0;
};

/** Runs the whole compiler pipeline. */
class HintGenerator
{
  public:
    HintGenerator(CompilerPolicy policy, uint64_t l2_bytes)
        : policy_(policy), l2Bytes_(l2_bytes)
    {
    }

    /**
     * The IR-mutating half of the pipeline: indirect detection
     * rewrites gather subscripts into IndirectPrefetch ops. It is the
     * only pass that writes the Program, and it does not depend on
     * the compiler policy — so a transformed program (and any op
     * stream interpreted from it) can be shared across policies,
     * which is what lets a policy sweep record the workload once.
     * Returns the indirect-instruction count (Table 3, col 5).
     * Idempotent only in the trivial sense that it must run exactly
     * once per program — run()/analyze() enforce the split.
     */
    static unsigned transform(Program &prog);

    /**
     * The read-only half: every policy-dependent analysis, writing
     * hints into @p table. @p prog must already be transformed;
     * @p indirect is transform()'s return value (it only feeds the
     * stats row). Every statically allocated RefId receives an entry
     * (possibly with no flags set).
     */
    HintStats analyze(const Program &prog, HintTable &table,
                      unsigned indirect) const;

    /** transform() + analyze(): the standalone single-run path. */
    HintStats
    run(Program &prog, HintTable &table) const
    {
        return analyze(prog, table, transform(prog));
    }

  private:
    CompilerPolicy policy_;
    uint64_t l2Bytes_;
};

} // namespace grp

#endif // GRP_COMPILER_HINT_GENERATOR_HH
