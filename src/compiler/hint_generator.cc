#include "compiler/hint_generator.hh"

#include "compiler/indirect_analysis.hh"
#include "compiler/induction.hh"
#include "compiler/locality.hh"
#include "compiler/pointer_analysis.hh"
#include "compiler/region_size.hh"
#include "compiler/walk.hh"

namespace grp
{

unsigned
HintGenerator::transform(Program &prog)
{
    IndirectAnalysis indirect;
    return indirect.run(prog);
}

HintStats
HintGenerator::analyze(const Program &prog, HintTable &table,
                       unsigned indirect) const
{
    HintStats stats;
    stats.indirect = indirect;

    InductionAnalysis induction;
    induction.run(prog);

    LocalityAnalysis locality(policy_, l2Bytes_);
    locality.run(prog, induction, table);

    PointerAnalysis pointers;
    pointers.run(prog, table);

    RegionSizeAnalysis regions;
    regions.run(prog, table);

    // Make sure every static reference has a (possibly empty) entry,
    // and compute the Table 3 statistics.
    if (prog.nextRefId > 0)
        table.addFlags(prog.nextRefId - 1, 0);

    unsigned hinted = 0;
    auto account = [&](RefId ref) {
        ++stats.memInsts;
        const LoadHints &hints = table.get(ref);
        if (hints.spatial())
            ++stats.spatial;
        if (hints.pointer())
            ++stats.pointer;
        if (hints.recursive())
            ++stats.recursive;
        if (hints.any())
            ++hinted;
    };
    forEachStmt(prog, [&](const Stmt &stmt, const LoopNest &) {
        if (stmt.refId != kInvalidRefId)
            account(stmt.refId);
        for (const Subscript &sub : stmt.subs) {
            if (sub.kind == Subscript::Kind::Indirect &&
                sub.indexRefId != kInvalidRefId) {
                account(sub.indexRefId);
            }
        }
    });
    stats.hintedRatio =
        stats.memInsts ? static_cast<double>(hinted) / stats.memInsts
                       : 0.0;
    return stats;
}

} // namespace grp
