#include "compiler/indirect_analysis.hh"

#include <cstddef>

#include "sim/logging.hh"

namespace grp
{

unsigned
IndirectAnalysis::transformBody(Program &prog, std::vector<Node> &body,
                                std::vector<VarId> &loop_vars)
{
    unsigned inserted = 0;
    for (size_t i = 0; i < body.size(); ++i) {
        Node &node = body[i];
        if (node.kind == Node::Kind::NestedLoop) {
            Loop &loop = node.loop;
            if (loop.kind == Loop::Kind::Counted)
                loop_vars.push_back(loop.var);
            inserted += transformBody(prog, loop.body, loop_vars);
            if (loop.kind == Loop::Kind::Counted)
                loop_vars.pop_back();
            continue;
        }

        Stmt &stmt = node.stmt;
        if (stmt.kind != StmtKind::ArrayRef || loop_vars.empty())
            continue;

        for (const Subscript &sub : stmt.subs) {
            if (sub.kind != Subscript::Kind::Indirect)
                continue;

            // The index expression must be an induction-variable
            // sequence (the b(i) of a(s*b(i)+e)); otherwise the
            // hardware would read an unrelated index block.
            bool affine_in_loop = false;
            for (VarId var : loop_vars)
                affine_in_loop =
                    affine_in_loop || sub.indexExpr.dependsOn(var);
            if (!affine_in_loop)
                continue;

            const ArrayDecl &target = prog.arrays[stmt.array];
            const ArrayDecl &index = prog.arrays[sub.indexArray];

            Stmt pf;
            pf.kind = StmtKind::IndirectPf;
            pf.targetArray = stmt.array;
            pf.indexArray = sub.indexArray;
            pf.indexExpr = sub.indexExpr;
            pf.scale = sub.scale;
            pf.indexOffset = sub.offset;
            // One instruction per index-array cache block.
            pf.everyN = kBlockBytes / index.elemSize;
            (void)target;

            body.insert(body.begin() + static_cast<ptrdiff_t>(i),
                        Node::of(std::move(pf)));
            ++i; // Skip over the statement we just shifted right.
            ++inserted;
            break; // One instruction per reference.
        }
    }
    return inserted;
}

unsigned
IndirectAnalysis::run(Program &prog)
{
    std::vector<VarId> loop_vars;
    return transformBody(prog, prog.top, loop_vars);
}

} // namespace grp
