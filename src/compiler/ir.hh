/**
 * @file
 * The loop-nest intermediate representation shared by the compiler
 * analyses (Section 4) and the workload interpreter.
 *
 * This IR plays the role of the Scale compiler's internal program
 * representation: workload kernels are *written* in it, the hint
 * generator *analyses* it (dependence testing, induction variables,
 * pointer idioms), and the interpreter *executes* it against the
 * functional memory to produce the dynamic instruction trace. Because
 * analysis and execution share one representation, the hints the
 * hardware receives are genuinely derived, never hand-assigned.
 *
 * Shapes covered (mirroring Figures 3-6 of the paper):
 *  - multi-dimensional arrays with affine subscripts, row- or
 *    column-major (Fortran vs C);
 *  - indirect subscripts a[s*b(i)+e];
 *  - non-affine (data-dependent / random) subscripts, which no static
 *    analysis can mark;
 *  - heap arrays of pointers (T** buf, Figure 4);
 *  - induction pointers p += c (Figure 5);
 *  - structure field access and recurrent pointer updates
 *    a = a->next (Figure 6), including random child selection for
 *    tree walks.
 */

#ifndef GRP_COMPILER_IR_HH
#define GRP_COMPILER_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace grp
{

using VarId = int32_t;   ///< Loop induction variable id.
using PtrId = int32_t;   ///< Pointer variable id.
using ArrayId = int32_t; ///< Array id.
using TypeId = int32_t;  ///< Structure type id.

constexpr int32_t kNoId = -1;

/** One c*var term of an affine expression. */
struct AffineTerm
{
    VarId var;
    int64_t coeff;
};

/** An affine function of loop induction variables. */
struct Affine
{
    int64_t constant = 0;
    std::vector<AffineTerm> terms;

    static Affine
    of(int64_t c)
    {
        Affine a;
        a.constant = c;
        return a;
    }

    static Affine
    var(VarId v, int64_t coeff = 1, int64_t c = 0)
    {
        Affine a;
        a.constant = c;
        a.terms.push_back({v, coeff});
        return a;
    }

    /** Coefficient of @p v (0 when absent). */
    int64_t
    coeffOf(VarId v) const
    {
        for (const AffineTerm &term : terms) {
            if (term.var == v)
                return term.coeff;
        }
        return 0;
    }

    bool
    dependsOn(VarId v) const
    {
        return coeffOf(v) != 0;
    }
};

/** How one dimension of an array reference is subscripted. */
struct Subscript
{
    enum class Kind : uint8_t
    {
        AffineExpr, ///< Linear function of induction variables.
        Indirect,   ///< s * b(index) + e, an indirection array.
        Random,     ///< Data-dependent; opaque to static analysis.
    };

    Kind kind = Kind::AffineExpr;
    Affine expr;              ///< AffineExpr payload.

    // Indirect payload: value = scale * b[index] + offset.
    ArrayId indexArray = kNoId;
    Affine indexExpr;
    int64_t scale = 1;
    int64_t offset = 0;
    RefId indexRefId = kInvalidRefId; ///< The b(i) load's static id.

    // Random payload: uniform in [0, randomRange).
    uint64_t randomRange = 0;

    static Subscript
    affine(Affine a)
    {
        Subscript s;
        s.kind = Kind::AffineExpr;
        s.expr = std::move(a);
        return s;
    }

    static Subscript
    indirect(ArrayId index_array, Affine index, int64_t scale = 1,
             int64_t offset = 0)
    {
        Subscript s;
        s.kind = Kind::Indirect;
        s.indexArray = index_array;
        s.indexExpr = std::move(index);
        s.scale = scale;
        s.offset = offset;
        return s;
    }

    static Subscript
    random(uint64_t range)
    {
        Subscript s;
        s.kind = Kind::Random;
        s.randomRange = range;
        return s;
    }
};

/** Statement kinds; one struct with a kind tag keeps the interpreter
 *  and the passes simple. */
enum class StmtKind : uint8_t
{
    ArrayRef,         ///< Load/store a[s0][s1]...
    PtrLoadFromArray, ///< p = a[s] (loads a pointer value).
    PtrAddrOfArray,   ///< p = &a[s] (address arithmetic, no access).
    PtrRef,           ///< Load/store *(p + offset) — field access.
    PtrArrayRef,      ///< Load/store *(p + elemSize*s) — a row of a
                      ///< heap array (Figure 4) or *p of an
                      ///< induction pointer (Figure 5).
    PtrUpdateField,   ///< p = *(p + offset) — list/tree walk step.
    PtrSelectField,   ///< p = *(q + offset chosen from a set) — tree.
    PtrUpdateConst,   ///< p += stride — induction pointer.
    Compute,          ///< `count` non-memory instructions.
    IndirectPf,       ///< GRP indirect prefetch instruction (§3.3.3);
                      ///< inserted by the compiler pass, never by hand.
};

/** One IR statement. */
struct Stmt
{
    StmtKind kind = StmtKind::Compute;
    RefId refId = kInvalidRefId; ///< Static id of the memory access.
    bool isWrite = false;

    // ArrayRef / PtrLoadFromArray / PtrAddrOfArray.
    ArrayId array = kNoId;
    std::vector<Subscript> subs;

    // Pointer statements.
    PtrId ptr = kNoId;     ///< Destination/base pointer.
    PtrId srcPtr = kNoId;  ///< PtrSelectField source.
    int64_t offset = 0;    ///< Field byte offset.
    int64_t stride = 0;    ///< PtrUpdateConst byte stride.
    uint32_t elemSize = 8; ///< PtrArrayRef element size.
    std::vector<int64_t> offsetChoices; ///< PtrSelectField options.

    // Compute.
    uint32_t count = 1;

    // IndirectPf: prefetch targets of `a[scale*b(index)+offset]`.
    ArrayId targetArray = kNoId;
    ArrayId indexArray = kNoId;
    Affine indexExpr;
    int64_t scale = 1;
    int64_t indexOffset = 0;
    uint32_t everyN = 16; ///< Emit once per index-array block.
};

struct Node;

/** A counted or pointer-chasing loop. */
struct Loop
{
    enum class Kind : uint8_t
    {
        Counted,  ///< for (v = lower; v < upper; v += step)
        PtrChase, ///< while (p != 0 && iterations < maxIter)
    };

    Kind kind = Kind::Counted;

    // Counted.
    VarId var = kNoId;
    int64_t lower = 0;
    int64_t upper = 0;
    int64_t step = 1;
    /** False models symbolic bounds the compiler cannot see; the
     *  interpreter still uses `upper`. */
    bool boundKnown = true;

    // PtrChase.
    PtrId chasePtr = kNoId;
    uint64_t maxIter = ~0ull;

    std::vector<Node> body;

    /** Trip count when statically known (0 if not). */
    uint64_t
    tripCount() const
    {
        if (kind != Kind::Counted || !boundKnown || step == 0)
            return 0;
        if ((step > 0 && upper <= lower) || (step < 0 && upper >= lower))
            return 0;
        const int64_t span = step > 0 ? upper - lower : lower - upper;
        const int64_t mag = step > 0 ? step : -step;
        return static_cast<uint64_t>((span + mag - 1) / mag);
    }
};

/** A body element: either a statement or a nested loop. */
struct Node
{
    enum class Kind : uint8_t { Statement, NestedLoop };

    Kind kind;
    Stmt stmt;
    Loop loop;

    static Node
    of(Stmt s)
    {
        Node n;
        n.kind = Kind::Statement;
        n.stmt = std::move(s);
        return n;
    }

    static Node
    of(Loop l)
    {
        Node n;
        n.kind = Kind::NestedLoop;
        n.loop = std::move(l);
        return n;
    }
};

/** An array (static segment or heap). */
struct ArrayDecl
{
    std::string name;
    Addr base = 0;
    uint32_t elemSize = 8;
    std::vector<uint64_t> extents; ///< Outermost dimension first.
    bool columnMajor = false;      ///< Fortran layout.
    bool isHeap = false;
    bool elemIsPointer = false;    ///< T** rows (Figure 4).

    uint64_t
    totalElems() const
    {
        uint64_t n = 1;
        for (uint64_t e : extents)
            n *= e;
        return n;
    }

    /**
     * Element stride (in elements) of dimension @p dim: row-major
     * arrays are contiguous in the last dimension, column-major in
     * the first.
     */
    uint64_t
    dimStrideElems(size_t dim) const
    {
        uint64_t stride = 1;
        if (columnMajor) {
            for (size_t d = 0; d < dim; ++d)
                stride *= extents[d];
        } else {
            for (size_t d = extents.size() - 1; d > dim; --d)
                stride *= extents[d];
        }
        return stride;
    }
};

/** A field of a structure type. */
struct StructField
{
    std::string name;
    int64_t offset;
    bool isPointer = false;
    TypeId pointee = kNoId; ///< Type pointed to (for recursion).
};

/** A structure type. */
struct StructDecl
{
    std::string name;
    uint64_t size = 0;
    std::vector<StructField> fields;

    const StructField *
    fieldAt(int64_t offset) const
    {
        for (const StructField &field : fields) {
            if (field.offset == offset)
                return &field;
        }
        return nullptr;
    }

    bool
    hasPointerField() const
    {
        for (const StructField &field : fields) {
            if (field.isPointer)
                return true;
        }
        return false;
    }
};

/** A pointer variable. */
struct PtrDecl
{
    std::string name;
    TypeId type = kNoId;  ///< Structure type pointed to (kNoId = raw).
    Addr initial = 0;     ///< Value at program start.
};

/** A whole kernel. */
struct Program
{
    std::vector<ArrayDecl> arrays;
    std::vector<StructDecl> structs;
    std::vector<PtrDecl> ptrs;
    std::vector<Node> top;
    RefId nextRefId = 0;
    VarId nextVarId = 0;

    RefId allocRef() { return nextRefId++; }
    VarId allocVar() { return nextVarId++; }
};

} // namespace grp

#endif // GRP_COMPILER_IR_HH
