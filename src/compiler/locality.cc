#include "compiler/locality.hh"

#include "compiler/walk.hh"

namespace grp
{

namespace
{

/** Sentinel for "volume not statically computable". */
constexpr uint64_t kUnknownVolume = ~0ull;

uint64_t
bodyVolume(const std::vector<Node> &body)
{
    uint64_t volume = 0;
    for (const Node &node : body) {
        if (node.kind == Node::Kind::Statement) {
            const Stmt &stmt = node.stmt;
            if (stmt.refId != kInvalidRefId)
                volume += stmt.elemSize ? stmt.elemSize : 8;
            continue;
        }
        const Loop &loop = node.loop;
        const uint64_t trips = loop.tripCount();
        if (trips == 0)
            return kUnknownVolume; // Symbolic bound or pointer chase.
        const uint64_t inner = bodyVolume(loop.body);
        if (inner == kUnknownVolume)
            return kUnknownVolume;
        volume += trips * inner;
    }
    return volume;
}

/** Deepest nest level whose variable @p expr depends on; -1 if
 *  none. */
int
deepestVar(const Affine &expr, const LoopNest &nest)
{
    for (int level = static_cast<int>(nest.size()) - 1; level >= 0;
         --level) {
        if (nest[level]->kind == Loop::Kind::Counted &&
            expr.dependsOn(nest[level]->var)) {
            return level;
        }
    }
    return -1;
}

} // namespace

uint64_t
LocalityAnalysis::volumePerIteration(const Loop &loop)
{
    const uint64_t volume = bodyVolume(loop.body);
    return volume == kUnknownVolume ? 0 : volume;
}

LocalityAnalysis::Reuse
LocalityAnalysis::classifyLinear(const Affine &expr, uint32_t elem_size,
                                 const LoopNest &nest) const
{
    const int carrier = deepestVar(expr, nest);
    if (carrier < 0)
        return Reuse::None; // Address invariant: temporal only.

    const int64_t coeff = expr.coeffOf(nest[carrier]->var);
    const int64_t stride = coeff * static_cast<int64_t>(elem_size);
    if (stride > kSpatialStrideLimit || stride < -kSpatialStrideLimit)
        return Reuse::None; // Consecutive iterations jump regions.

    if (carrier == static_cast<int>(nest.size()) - 1)
        return Reuse::Inner;

    const uint64_t volume = volumePerIteration(*nest[carrier]);
    if (volume == 0)
        return Reuse::OuterUnknown;
    return volume < l2Bytes_ ? Reuse::OuterFits : Reuse::OuterBig;
}

LocalityAnalysis::Reuse
LocalityAnalysis::classifyArrayAccess(const ArrayDecl &array,
                                      const Subscript &sub,
                                      const LoopNest &nest) const
{
    if (sub.kind != Subscript::Kind::AffineExpr)
        return Reuse::None;

    const int carrier = deepestVar(sub.expr, nest);
    if (carrier < 0)
        return Reuse::None;

    const int64_t coeff = sub.expr.coeffOf(nest[carrier]->var);
    const int64_t stride = coeff * static_cast<int64_t>(array.elemSize);
    if (stride > kSpatialStrideLimit || stride < -kSpatialStrideLimit)
        return Reuse::None;

    return carrier == static_cast<int>(nest.size()) - 1
               ? Reuse::Inner
               : (volumePerIteration(*nest[carrier]) == 0
                      ? Reuse::OuterUnknown
                      : (volumePerIteration(*nest[carrier]) < l2Bytes_
                             ? Reuse::OuterFits
                             : Reuse::OuterBig));
}

bool
LocalityAnalysis::shouldMark(Reuse reuse) const
{
    switch (reuse) {
      case Reuse::Inner:
        return true;
      case Reuse::OuterFits:
        return policy_ != CompilerPolicy::Conservative;
      case Reuse::OuterBig:
      case Reuse::OuterUnknown:
        return policy_ == CompilerPolicy::Aggressive;
      case Reuse::None:
        return false;
    }
    return false;
}

void
LocalityAnalysis::run(const Program &prog,
                      const InductionAnalysis &induction,
                      HintTable &table)
{
    // --- Part 1: array references (dependence-testing based) -------
    forEachStmt(prog, [&](const Stmt &stmt, const LoopNest &nest) {
        if (nest.empty() || stmt.refId == kInvalidRefId)
            return;

        switch (stmt.kind) {
          case StmtKind::ArrayRef: {
            const ArrayDecl &array = prog.arrays[stmt.array];
            const size_t sdim = spatialDim(array);

            // Any index load embedded in an indirect subscript is a
            // regular sequential reference of the index array.
            for (const Subscript &sub : stmt.subs) {
                if (sub.kind != Subscript::Kind::Indirect)
                    continue;
                const ArrayDecl &index_array =
                    prog.arrays[sub.indexArray];
                Subscript pseudo = Subscript::affine(sub.indexExpr);
                if (shouldMark(classifyArrayAccess(index_array, pseudo,
                                                   nest))) {
                    table.addFlags(sub.indexRefId, kHintSpatial);
                }
            }

            // A random or indirect subscript in any dimension makes
            // consecutive accesses land in unrelated blocks.
            bool analyzable = true;
            for (size_t d = 0; d < stmt.subs.size(); ++d) {
                if (d != sdim &&
                    stmt.subs[d].kind != Subscript::Kind::AffineExpr) {
                    analyzable = false;
                }
            }
            if (!analyzable)
                return;
            if (shouldMark(classifyArrayAccess(array, stmt.subs[sdim],
                                               nest))) {
                table.addFlags(stmt.refId, kHintSpatial);
            }
            break;
          }
          case StmtKind::PtrLoadFromArray: {
            const ArrayDecl &array = prog.arrays[stmt.array];
            if (shouldMark(classifyArrayAccess(array, stmt.subs[0],
                                               nest))) {
                table.addFlags(stmt.refId, kHintSpatial);
            }
            break;
          }
          case StmtKind::PtrArrayRef: {
            if (stmt.subs[0].kind == Subscript::Kind::AffineExpr &&
                shouldMark(classifyLinear(stmt.subs[0].expr,
                                          stmt.elemSize, nest))) {
                table.addFlags(stmt.refId, kHintSpatial);
            }
            break;
          }
          default:
            break;
        }
    });

    // --- Part 2: pointer propagation fixpoint (Figure 7) ----------
    //
    // Spatial pointers are (a) small-stride induction pointers and
    // (b) pointers loaded by a reference already marked spatial
    // (e.g. p = buf[i] with buf[i] spatial). Dereferences through a
    // spatial pointer are marked spatial.
    bool changed = true;
    std::set<PtrId> spatial_ptrs;
    while (changed) {
        changed = false;
        forEachStmt(prog, [&](const Stmt &stmt, const LoopNest &nest) {
            if (nest.empty())
                return;
            switch (stmt.kind) {
              case StmtKind::PtrLoadFromArray:
                if (table.get(stmt.refId).spatial() &&
                    spatial_ptrs.insert(stmt.ptr).second) {
                    changed = true;
                }
                break;
              case StmtKind::PtrRef:
              case StmtKind::PtrUpdateField: {
                // Figure 7 propagates through *field* accesses
                // (a->f). Indexed accesses through a pointer
                // (p[expr], the buf[i][j] of Figure 4) are instead
                // classified by the dependence analysis above, whose
                // reuse-distance bound applies.
                const bool base_spatial =
                    spatial_ptrs.count(stmt.ptr) ||
                    induction.isSpatialInductionPtr(nest, stmt.ptr);
                if (base_spatial &&
                    !table.get(stmt.refId).spatial()) {
                    table.addFlags(stmt.refId, kHintSpatial);
                    changed = true;
                }
                break;
              }
              case StmtKind::PtrArrayRef: {
                // An induction pointer's indexed dereference (*p of
                // Figure 5) is spatial when the pointer itself
                // strides; reuse-bounded propagation from loaded
                // pointers is handled by classifyLinear.
                if (induction.isSpatialInductionPtr(nest, stmt.ptr) &&
                    !table.get(stmt.refId).spatial()) {
                    table.addFlags(stmt.refId, kHintSpatial);
                    changed = true;
                }
                break;
              }
              default:
                break;
            }
        });
    }
}

} // namespace grp
