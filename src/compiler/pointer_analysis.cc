#include "compiler/pointer_analysis.hh"

#include <map>
#include <set>

#include "compiler/walk.hh"

namespace grp
{

namespace
{

/** True when @p stmt is a field access through a struct-typed
 *  pointer. */
bool
isFieldAccess(const Stmt &stmt)
{
    return stmt.kind == StmtKind::PtrRef ||
           stmt.kind == StmtKind::PtrUpdateField ||
           stmt.kind == StmtKind::PtrSelectField;
}

/** The structure type accessed by @p stmt (kNoId when untyped). */
TypeId
accessedType(const Program &prog, const Stmt &stmt)
{
    const PtrId base =
        stmt.kind == StmtKind::PtrSelectField ? stmt.srcPtr : stmt.ptr;
    if (base == kNoId)
        return kNoId;
    return prog.ptrs[base].type;
}

/** True when @p stmt touches a pointer-typed field of @p type. */
bool
touchesPointerField(const Program &prog, const Stmt &stmt, TypeId type)
{
    if (type == kNoId)
        return false;
    const StructDecl &decl = prog.structs[type];
    if (stmt.kind == StmtKind::PtrUpdateField) {
        const StructField *field = decl.fieldAt(stmt.offset);
        return field && field->isPointer;
    }
    if (stmt.kind == StmtKind::PtrSelectField) {
        for (int64_t offset : stmt.offsetChoices) {
            const StructField *field = decl.fieldAt(offset);
            if (field && field->isPointer)
                return true;
        }
        return false;
    }
    if (stmt.kind == StmtKind::PtrRef) {
        const StructField *field = decl.fieldAt(stmt.offset);
        return field && field->isPointer;
    }
    return false;
}

} // namespace

void
PointerAnalysis::run(const Program &prog, HintTable &table)
{
    // Pass 1: per innermost loop, find the structure types whose
    // pointer fields are accessed.
    std::map<const Loop *, std::set<TypeId>> ptr_field_types;
    forEachStmt(prog, [&](const Stmt &stmt, const LoopNest &nest) {
        if (nest.empty() || !isFieldAccess(stmt))
            return;
        const TypeId type = accessedType(prog, stmt);
        if (type != kNoId && touchesPointerField(prog, stmt, type))
            ptr_field_types[nest.back()].insert(type);
    });

    // Pass 2: mark field accesses and recursion.
    forEachStmt(prog, [&](const Stmt &stmt, const LoopNest &nest) {
        if (nest.empty() || stmt.refId == kInvalidRefId)
            return;

        if (isFieldAccess(stmt)) {
            const TypeId type = accessedType(prog, stmt);
            if (type != kNoId &&
                ptr_field_types[nest.back()].count(type)) {
                table.addFlags(stmt.refId, kHintPointer);
            }

            // Recursion: the update follows a same-typed field
            // (a = a->next with next : struct t *).
            if (stmt.kind == StmtKind::PtrUpdateField ||
                stmt.kind == StmtKind::PtrSelectField) {
                const PtrId dst = stmt.ptr;
                const TypeId dst_type = prog.ptrs[dst].type;
                if (type != kNoId && dst_type == type) {
                    const StructDecl &decl = prog.structs[type];
                    auto recursive_offset = [&](int64_t offset) {
                        const StructField *field = decl.fieldAt(offset);
                        return field && field->isPointer &&
                               field->pointee == type;
                    };
                    bool recursive = false;
                    if (stmt.kind == StmtKind::PtrUpdateField) {
                        recursive = recursive_offset(stmt.offset);
                    } else {
                        for (int64_t offset : stmt.offsetChoices)
                            recursive = recursive ||
                                        recursive_offset(offset);
                    }
                    if (recursive) {
                        table.addFlags(stmt.refId, kHintRecursive |
                                                       kHintPointer);
                    }
                }
            }
        }

        // Heap pointer-array rule: spatial reference into a heap
        // array whose elements are pointers.
        if (stmt.kind == StmtKind::ArrayRef ||
            stmt.kind == StmtKind::PtrLoadFromArray) {
            const ArrayDecl &array = prog.arrays[stmt.array];
            if (array.isHeap && array.elemIsPointer &&
                table.get(stmt.refId).spatial()) {
                table.addFlags(stmt.refId, kHintPointer);
            }
        }
    });
}

} // namespace grp
