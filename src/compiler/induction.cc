#include "compiler/induction.hh"

namespace grp
{

void
InductionAnalysis::run(const Program &prog)
{
    strides_.clear();

    // A pointer is an induction pointer of the innermost loop that
    // both encloses its constant update and contains no other update
    // of the same pointer. A pointer that is also walked through a
    // field update (p = p->next) in the same loop is not a constant
    // induction.
    std::map<std::pair<const Loop *, PtrId>, int64_t> candidates;
    std::set<std::pair<const Loop *, PtrId>> disqualified;

    forEachStmt(prog, [&](const Stmt &stmt, const LoopNest &nest) {
        if (nest.empty())
            return;
        const Loop *inner = nest.back();
        switch (stmt.kind) {
          case StmtKind::PtrUpdateConst: {
            auto key = std::make_pair(inner, stmt.ptr);
            auto [it, fresh] = candidates.emplace(key, stmt.stride);
            if (!fresh && it->second != stmt.stride)
                disqualified.insert(key);
            break;
          }
          case StmtKind::PtrUpdateField:
          case StmtKind::PtrSelectField:
          case StmtKind::PtrLoadFromArray:
          case StmtKind::PtrAddrOfArray:
            // Any non-constant redefinition in the loop disqualifies.
            for (const Loop *loop : nest)
                disqualified.insert({loop, stmt.ptr});
            break;
          default:
            break;
        }
    });

    for (const auto &[key, stride] : candidates) {
        if (!disqualified.count(key))
            strides_[key] = stride;
    }
}

int64_t
InductionAnalysis::strideOf(const Loop *loop, PtrId ptr) const
{
    auto it = strides_.find({loop, ptr});
    return it == strides_.end() ? 0 : it->second;
}

bool
InductionAnalysis::isSpatialInductionPtr(const LoopNest &nest,
                                         PtrId ptr) const
{
    for (const Loop *loop : nest) {
        const int64_t stride = strideOf(loop, ptr);
        if (stride != 0 && stride >= -kSmallStride &&
            stride <= kSmallStride) {
            return true;
        }
    }
    return false;
}

} // namespace grp
