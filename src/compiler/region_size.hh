/**
 * @file
 * Variable-size region analysis (Section 4.4).
 *
 * For a spatially-marked array access a(b*i+c) with element size e
 * inside a singly nested loop, the compiler encodes x ~ log2(b*e)
 * into a 3-bit coefficient (values 0..6; 7 is reserved for fixed
 * 4 KB regions) and records the loop's upper bound. At run time the
 * engine sizes the prefetch region as `loop bound << x` bytes —
 * exactly the span the loop will touch — instead of a full 4 KB.
 */

#ifndef GRP_COMPILER_REGION_SIZE_HH
#define GRP_COMPILER_REGION_SIZE_HH

#include "compiler/ir.hh"
#include "core/hint_table.hh"

namespace grp
{

/** Variable-region size hint generation (GRP/Var). */
class RegionSizeAnalysis
{
  public:
    /** Requires spatial marks to be present in @p table. */
    void run(const Program &prog, HintTable &table);

    /** 3-bit encoding of a byte stride: x < 7 with 2^x closest to
     *  @p stride_bytes (exposed for tests). */
    static uint8_t encodeCoeff(int64_t stride_bytes);
};

} // namespace grp

#endif // GRP_COMPILER_REGION_SIZE_HH
