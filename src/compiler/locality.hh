/**
 * @file
 * Spatial locality analysis: the algorithm of Figure 7.
 *
 * Built on dependence-testing machinery: for each array reference
 * the pass finds the spatial (unit-stride) dimension, checks that it
 * is an affine function of an enclosing induction variable, and
 * classifies the reuse as inner-loop or outer-loop carried. Outer
 * carried reuse is marked spatial only when the estimated reuse
 * distance — the data volume the inner loops touch per iteration of
 * the carrying loop — fits in the L2 (the default policy; §5.4's
 * conservative and aggressive variants move that boundary).
 *
 * The second half of the algorithm handles pointers: induction
 * pointers with small strides are spatial, and spatiality propagates
 * to dereferences of pointers loaded from spatially-marked
 * references (the do/while fixpoint of Figure 7).
 */

#ifndef GRP_COMPILER_LOCALITY_HH
#define GRP_COMPILER_LOCALITY_HH

#include "compiler/induction.hh"
#include "compiler/ir.hh"
#include "core/hint_table.hh"
#include "sim/config.hh"

namespace grp
{

/** Spatial hint generation (arrays + pointers, Figure 7). */
class LocalityAnalysis
{
  public:
    /** Affine strides up to this many bytes per iteration count as
     *  spatial (several accesses landing in one region). */
    static constexpr int64_t kSpatialStrideLimit = 4 * kBlockBytes;

    LocalityAnalysis(CompilerPolicy policy, uint64_t l2_bytes)
        : policy_(policy), l2Bytes_(l2_bytes)
    {
    }

    /** Mark spatial hints for every reference of @p prog into
     *  @p table. Requires @p induction to have been run. */
    void run(const Program &prog, const InductionAnalysis &induction,
             HintTable &table);

    /** Reuse classification of one reference (exposed for tests). */
    enum class Reuse
    {
        None,        ///< No spatial reuse.
        Inner,       ///< Carried by the innermost enclosing loop.
        OuterFits,   ///< Outer-carried; distance fits in the L2.
        OuterBig,    ///< Outer-carried; distance exceeds the L2.
        OuterUnknown ///< Outer-carried; distance not computable.
    };

  private:
    struct RefFacts
    {
        RefId ref;
        Reuse reuse;
    };

    /** Classify an affine access to @p array's spatial dimension. */
    Reuse classifyArrayAccess(const ArrayDecl &array,
                              const Subscript &sub,
                              const LoopNest &nest) const;

    /** Classify a one-dimensional affine pointer-indexed access. */
    Reuse classifyLinear(const Affine &expr, uint32_t elem_size,
                         const LoopNest &nest) const;

    bool shouldMark(Reuse reuse) const;

    /** Bytes touched per iteration of @p loop by everything nested
     *  inside it; 0 when unknown (symbolic bounds). */
    static uint64_t volumePerIteration(const Loop &loop);

    CompilerPolicy policy_;
    uint64_t l2Bytes_;
};

} // namespace grp

#endif // GRP_COMPILER_LOCALITY_HH
