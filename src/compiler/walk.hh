/**
 * @file
 * Tree-walk helpers shared by the compiler passes.
 */

#ifndef GRP_COMPILER_WALK_HH
#define GRP_COMPILER_WALK_HH

#include <functional>
#include <vector>

#include "compiler/ir.hh"

namespace grp
{

/** The stack of loops enclosing a statement, outermost first. */
using LoopNest = std::vector<const Loop *>;

namespace detail
{

template <typename Fn>
void
walkBody(const std::vector<Node> &body, LoopNest &nest, Fn &&fn)
{
    for (const Node &node : body) {
        if (node.kind == Node::Kind::Statement) {
            fn(node.stmt, nest);
        } else {
            nest.push_back(&node.loop);
            walkBody(node.loop.body, nest, fn);
            nest.pop_back();
        }
    }
}

} // namespace detail

/** Visit every statement with its enclosing loop nest. */
template <typename Fn>
void
forEachStmt(const Program &prog, Fn &&fn)
{
    LoopNest nest;
    detail::walkBody(prog.top, nest, fn);
}

/** Visit every loop (outer loops before their inner loops). */
template <typename Fn>
void
forEachLoop(const Program &prog, Fn &&fn)
{
    LoopNest nest;
    std::function<void(const std::vector<Node> &)> walk =
        [&](const std::vector<Node> &body) {
            for (const Node &node : body) {
                if (node.kind != Node::Kind::NestedLoop)
                    continue;
                fn(node.loop, nest);
                nest.push_back(&node.loop);
                walk(node.loop.body);
                nest.pop_back();
            }
        };
    walk(prog.top);
}

/**
 * Index of the spatial (unit-element-stride) dimension of an array:
 * the last dimension for row-major, the first for column-major.
 */
inline size_t
spatialDim(const ArrayDecl &array)
{
    return array.columnMajor ? 0 : array.extents.size() - 1;
}

} // namespace grp

#endif // GRP_COMPILER_WALK_HH
