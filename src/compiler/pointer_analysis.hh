/**
 * @file
 * Pointer and recursive-pointer hint generation: the algorithm of
 * Figure 8.
 *
 *  - A field access is marked *pointer* when a pointer field of the
 *    same structure type is accessed in the same loop.
 *  - A pointer update is marked *recursive* when it replaces a
 *    pointer with a same-typed field of its own structure
 *    (a = a->next, or a tree descend through same-typed children).
 *  - A spatially-marked array reference that loads from a heap array
 *    of pointers is additionally marked *pointer*, so GRP prefetches
 *    the pointed-to rows (the equake/art pattern).
 */

#ifndef GRP_COMPILER_POINTER_ANALYSIS_HH
#define GRP_COMPILER_POINTER_ANALYSIS_HH

#include "compiler/ir.hh"
#include "core/hint_table.hh"

namespace grp
{

/** Pointer/recursive hint generation (Figure 8). */
class PointerAnalysis
{
  public:
    /** Requires spatial marks (LocalityAnalysis) to be in @p table
     *  already for the heap-array rule. */
    void run(const Program &prog, HintTable &table);
};

} // namespace grp

#endif // GRP_COMPILER_POINTER_ANALYSIS_HH
