#include "compiler/builder.hh"

#include "sim/logging.hh"

namespace grp
{

ProgramBuilder::ProgramBuilder(FunctionalMemory &mem) : mem_(mem) {}

ArrayId
ProgramBuilder::array(const std::string &name, uint32_t elem_size,
                      std::vector<uint64_t> extents, ArrayOpts opts)
{
    fatal_if(extents.empty(), "array %s needs at least one extent",
             name.c_str());
    ArrayDecl decl;
    decl.name = name;
    decl.elemSize = elem_size;
    decl.extents = std::move(extents);
    decl.columnMajor = opts.columnMajor;
    decl.isHeap = opts.heap;
    decl.elemIsPointer = opts.elemIsPointer;
    const uint64_t bytes = decl.totalElems() * elem_size;
    decl.base = opts.heap ? mem_.heapAlloc(bytes, kBlockBytes)
                          : mem_.staticAlloc(bytes, kBlockBytes);
    prog_.arrays.push_back(std::move(decl));
    return static_cast<ArrayId>(prog_.arrays.size() - 1);
}

TypeId
ProgramBuilder::structType(const std::string &name, uint64_t size,
                           std::vector<StructField> fields)
{
    StructDecl decl;
    decl.name = name;
    decl.size = size;
    decl.fields = std::move(fields);
    prog_.structs.push_back(std::move(decl));
    return static_cast<TypeId>(prog_.structs.size() - 1);
}

PtrId
ProgramBuilder::ptr(const std::string &name, TypeId type, Addr initial)
{
    PtrDecl decl;
    decl.name = name;
    decl.type = type;
    decl.initial = initial;
    prog_.ptrs.push_back(std::move(decl));
    return static_cast<PtrId>(prog_.ptrs.size() - 1);
}

void
ProgramBuilder::setPtrInitial(PtrId p, Addr value)
{
    prog_.ptrs.at(p).initial = value;
}

std::vector<Node> &
ProgramBuilder::currentBody()
{
    return openLoops_.empty() ? prog_.top : openLoops_.back()->body;
}

void
ProgramBuilder::push(Stmt stmt)
{
    currentBody().push_back(Node::of(std::move(stmt)));
}

VarId
ProgramBuilder::forLoop(int64_t lower, int64_t upper, int64_t step,
                        bool bound_known)
{
    fatal_if(step == 0, "zero loop step");
    Loop loop;
    loop.kind = Loop::Kind::Counted;
    loop.var = prog_.allocVar();
    loop.lower = lower;
    loop.upper = upper;
    loop.step = step;
    loop.boundKnown = bound_known;
    const VarId var = loop.var;
    std::vector<Node> &body = currentBody();
    body.push_back(Node::of(std::move(loop)));
    openLoops_.push_back(&body.back().loop);
    return var;
}

void
ProgramBuilder::whileLoop(PtrId p, uint64_t max_iter)
{
    Loop loop;
    loop.kind = Loop::Kind::PtrChase;
    loop.chasePtr = p;
    loop.maxIter = max_iter;
    std::vector<Node> &body = currentBody();
    body.push_back(Node::of(std::move(loop)));
    openLoops_.push_back(&body.back().loop);
}

void
ProgramBuilder::end()
{
    fatal_if(openLoops_.empty(), "end() without an open loop");
    openLoops_.pop_back();
}

RefId
ProgramBuilder::arrayRef(ArrayId a, std::vector<Subscript> subs,
                         bool is_write)
{
    fatal_if(subs.size() != prog_.arrays.at(a).extents.size(),
             "subscript count mismatch for %s",
             prog_.arrays[a].name.c_str());
    Stmt stmt;
    stmt.kind = StmtKind::ArrayRef;
    stmt.array = a;
    stmt.isWrite = is_write;
    stmt.refId = prog_.allocRef();
    // Indirect subscripts embed an index-array load with its own
    // static identity.
    for (Subscript &sub : subs) {
        if (sub.kind == Subscript::Kind::Indirect)
            sub.indexRefId = prog_.allocRef();
    }
    stmt.subs = std::move(subs);
    const RefId ref = stmt.refId;
    push(std::move(stmt));
    return ref;
}

RefId
ProgramBuilder::ptrLoadFromArray(PtrId p, ArrayId a, Subscript sub)
{
    Stmt stmt;
    stmt.kind = StmtKind::PtrLoadFromArray;
    stmt.ptr = p;
    stmt.array = a;
    stmt.subs.push_back(std::move(sub));
    stmt.refId = prog_.allocRef();
    const RefId ref = stmt.refId;
    push(std::move(stmt));
    return ref;
}

void
ProgramBuilder::ptrAddrOfArray(PtrId p, ArrayId a, Subscript sub)
{
    Stmt stmt;
    stmt.kind = StmtKind::PtrAddrOfArray;
    stmt.ptr = p;
    stmt.array = a;
    stmt.subs.push_back(std::move(sub));
    push(std::move(stmt));
}

RefId
ProgramBuilder::ptrRef(PtrId p, int64_t offset, bool is_write)
{
    Stmt stmt;
    stmt.kind = StmtKind::PtrRef;
    stmt.ptr = p;
    stmt.offset = offset;
    stmt.isWrite = is_write;
    stmt.refId = prog_.allocRef();
    const RefId ref = stmt.refId;
    push(std::move(stmt));
    return ref;
}

RefId
ProgramBuilder::ptrArrayRef(PtrId p, uint32_t elem_size, Subscript sub,
                            bool is_write)
{
    Stmt stmt;
    stmt.kind = StmtKind::PtrArrayRef;
    stmt.ptr = p;
    stmt.elemSize = elem_size;
    stmt.isWrite = is_write;
    stmt.subs.push_back(std::move(sub));
    stmt.refId = prog_.allocRef();
    const RefId ref = stmt.refId;
    push(std::move(stmt));
    return ref;
}

RefId
ProgramBuilder::ptrUpdateField(PtrId p, int64_t offset)
{
    Stmt stmt;
    stmt.kind = StmtKind::PtrUpdateField;
    stmt.ptr = p;
    stmt.offset = offset;
    stmt.refId = prog_.allocRef();
    const RefId ref = stmt.refId;
    push(std::move(stmt));
    return ref;
}

RefId
ProgramBuilder::ptrSelectField(PtrId dst, PtrId src,
                               std::vector<int64_t> offset_choices)
{
    fatal_if(offset_choices.empty(), "ptrSelectField needs choices");
    Stmt stmt;
    stmt.kind = StmtKind::PtrSelectField;
    stmt.ptr = dst;
    stmt.srcPtr = src;
    stmt.offsetChoices = std::move(offset_choices);
    stmt.refId = prog_.allocRef();
    const RefId ref = stmt.refId;
    push(std::move(stmt));
    return ref;
}

void
ProgramBuilder::ptrUpdateConst(PtrId p, int64_t stride)
{
    Stmt stmt;
    stmt.kind = StmtKind::PtrUpdateConst;
    stmt.ptr = p;
    stmt.stride = stride;
    push(std::move(stmt));
}

void
ProgramBuilder::compute(uint32_t n)
{
    Stmt stmt;
    stmt.kind = StmtKind::Compute;
    stmt.count = n;
    push(std::move(stmt));
}

Program
ProgramBuilder::build()
{
    fatal_if(!openLoops_.empty(), "build() with %zu open loops",
             openLoops_.size());
    return std::move(prog_);
}

} // namespace grp
