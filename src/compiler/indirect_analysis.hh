/**
 * @file
 * Indirect array-access detection and prefetch-instruction insertion
 * (Section 4.3).
 *
 * The pass looks for references of the form a(s*b(i)+e) where i is a
 * loop induction variable: a sequentially accessed array b used as an
 * index into a. For each such reference it inserts an explicit
 * indirect prefetch instruction into the loop body conveying
 * (&a[0] + e*elem, s*elem, &b[i]) to the hardware; the instruction
 * fires once per index-array cache block, generating up to 16
 * prefetches each time (§3.3.3).
 */

#ifndef GRP_COMPILER_INDIRECT_ANALYSIS_HH
#define GRP_COMPILER_INDIRECT_ANALYSIS_HH

#include "compiler/ir.hh"

namespace grp
{

/** Indirect reference detection + IR transform. */
class IndirectAnalysis
{
  public:
    /**
     * Transform @p prog, inserting IndirectPf statements.
     * @return Number of static indirect prefetch instructions
     *         inserted (Table 3's last column).
     */
    unsigned run(Program &prog);

  private:
    unsigned transformBody(Program &prog, std::vector<Node> &body,
                           std::vector<VarId> &loop_vars);
};

} // namespace grp

#endif // GRP_COMPILER_INDIRECT_ANALYSIS_HH
