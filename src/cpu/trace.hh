/**
 * @file
 * The dynamic instruction stream consumed by the CPU model.
 *
 * Workload kernels produce TraceOps lazily through the TraceSource
 * interface; each memory op carries the RefId of its static reference
 * so the CPU can attach compiler hints (the "hinted binary").
 */

#ifndef GRP_CPU_TRACE_HH
#define GRP_CPU_TRACE_HH

#include <cstdint>

#include "sim/types.hh"

namespace grp
{

/** Dynamic operation kinds. */
enum class OpKind : uint8_t
{
    Compute,          ///< Non-memory instruction (one issue slot).
    Load,             ///< Data load from addr.
    Store,            ///< Data store to addr.
    IndirectPrefetch, ///< GRP indirect prefetch instruction (§3.3.3).
};

/** One dynamic instruction. */
struct TraceOp
{
    OpKind kind = OpKind::Compute;
    RefId refId = kInvalidRefId;
    Addr addr = 0;      ///< Effective / index-array address.
    Addr base = 0;      ///< Indirect prefetch: target array base.
    uint32_t elemSize = 0; ///< Indirect prefetch: target element size.

    static TraceOp
    compute()
    {
        return TraceOp{};
    }

    static TraceOp
    load(Addr addr, RefId ref)
    {
        TraceOp op;
        op.kind = OpKind::Load;
        op.addr = addr;
        op.refId = ref;
        return op;
    }

    static TraceOp
    store(Addr addr, RefId ref)
    {
        TraceOp op;
        op.kind = OpKind::Store;
        op.addr = addr;
        op.refId = ref;
        return op;
    }

    static TraceOp
    indirect(Addr base, uint32_t elem_size, Addr index_addr, RefId ref)
    {
        TraceOp op;
        op.kind = OpKind::IndirectPrefetch;
        op.base = base;
        op.elemSize = elem_size;
        op.addr = index_addr;
        op.refId = ref;
        return op;
    }
};

/** Lazy producer of the dynamic instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next op; returns false at end of trace. */
    virtual bool next(TraceOp &op) = 0;

    /**
     * Produce a run of consecutive ops at once: points @p ops at an
     * internal buffer that stays valid until the next nextBatch()/
     * next() call and returns the run length (0 at end of trace).
     * The concatenation of batches is element-for-element the next()
     * stream — sources that can expose runs cheaply (the decoded
     * interpreter's compute runs, the sweep replay buffer) override
     * this so the CPU pays one virtual call per run instead of per
     * op. The default forwards to next(), so wrappers that only
     * intercept next() (trace capture) still see every op.
     */
    virtual size_t
    nextBatch(const TraceOp **ops)
    {
        if (!next(one_))
            return 0;
        *ops = &one_;
        return 1;
    }

  private:
    TraceOp one_;
};

} // namespace grp

#endif // GRP_CPU_TRACE_HH
