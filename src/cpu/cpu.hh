/**
 * @file
 * A simplified 4-wide out-of-order core.
 *
 * Models the aspects of the paper's sim-outorder configuration that
 * matter for L2 prefetching studies: a 64-entry reorder buffer, 4-wide
 * issue and in-order 4-wide retirement, full overlap of independent
 * loads (memory-level parallelism bounded by the ROB and the cache
 * MSHRs), and store-buffer semantics for stores. Instruction fetch is
 * assumed perfect (the SPEC kernels studied are data-bound).
 */

#ifndef GRP_CPU_CPU_HH
#define GRP_CPU_CPU_HH

#include <cstdint>
#include <vector>

#include "core/hint_table.hh"
#include "cpu/trace.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace grp
{

/** The timing CPU model. */
class Cpu
{
  public:
    /**
     * @param hints Hint table for the "hinted binary"; nullptr runs
     *        an unhinted binary (all-zero hints, indirect prefetch
     *        instructions elided from the stream).
     */
    Cpu(const SimConfig &config, MemorySystem &mem, EventQueue &events,
        TraceSource &trace, const HintTable *hints,
        obs::StatRegistry &registry = obs::StatRegistry::current());

    /** Advance one cycle: retire then issue. */
    void tick();

    /** Trace exhausted and pipeline drained. */
    bool done() const;

    /** What tick() would do at @p now, for the runner's stall
     *  fast-forward (see docs/PERFORMANCE.md). */
    struct StallState
    {
        /** tick() can neither retire nor change any state other than
         *  the per-cycle stall accounting — the cycle is skippable. */
        bool stalled = false;
        /** Stalled with a full ROB (one robFullStalls per cycle);
         *  false means the trace is drained and nothing is pending. */
        bool robFullPath = false;
        /** When the ROB head retires on its own (kMaxTick while it
         *  waits on a load — the completion event supplies the tick). */
        Tick readyTick = kMaxTick;
    };

    StallState stallState(Tick now) const;

    /** Apply @p cycles skipped stall cycles in one batch: the cycle
     *  count and (on the full-ROB path) one robFullStalls per cycle,
     *  exactly what per-cycle ticking would have accumulated. */
    void fastForward(uint64_t cycles, bool robFullPath);

    /** First tick at which the deadlock watchdog would fire. */
    Tick
    deadlockTick() const
    {
        return lastRetireTick_ + config_.deadlockCycles + 1;
    }

    uint64_t retiredInstructions() const { return retired_; }
    uint64_t cycles() const { return cycles_; }

    double
    ipc() const
    {
        return cycles_ ? static_cast<double>(retired_) / cycles_ : 0.0;
    }

    StatGroup &stats() { return stats_; }

  private:
    struct RobEntry
    {
        bool busy = false;
        bool waitingOnLoad = false;
        Tick readyAt = 0;
        uint32_t generation = 0;
    };

    /** Load-completion callback from the memory system. */
    void loadDone(uint64_t token);

    bool fetchNext();
    bool robFull() const { return robCount_ == robCapacity_; }

    /** Hints for @p ref: the table's entry, or all-zero hints when
     *  running an unhinted binary. */
    const LoadHints &
    hintsFor(RefId ref) const
    {
        static const LoadHints kNoHints{};
        return hints_ ? hints_->get(ref) : kNoHints;
    }

    SimConfig config_;
    MemorySystem &mem_;
    EventQueue &events_;
    TraceSource &trace_;
    const HintTable *hints_;

    // Storage is robEntries rounded up to a power of two so the ring
    // indices advance with a mask instead of a modulo; robCapacity_
    // (robCount_'s ceiling) keeps the architectural ROB size.
    std::vector<RobEntry> robEntries_;
    size_t robMask_ = 0;
    size_t robCapacity_ = 0;
    size_t robHead_ = 0;
    size_t robTail_ = 0;
    size_t robCount_ = 0;

    TraceOp pendingOp_;
    bool havePending_ = false;
    bool traceDone_ = false;

    /** Current trace batch (fetchNext consumes it op by op; the
     *  source keeps the storage valid until the next refill). */
    const TraceOp *batch_ = nullptr;
    size_t batchPos_ = 0;
    size_t batchLen_ = 0;

    uint64_t retired_ = 0;
    uint64_t cycles_ = 0;
    Tick lastRetireTick_ = 0;

    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;

    /** Cached counter handles (lookup once at construction). */
    Counter *robFullStalls_ = nullptr;
    Counter *loads_ = nullptr;
    Counter *stores_ = nullptr;
    Counter *indirectPrefetchOps_ = nullptr;
    Counter *memStalls_ = nullptr;
};

} // namespace grp

#endif // GRP_CPU_CPU_HH
