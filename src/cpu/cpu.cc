#include "cpu/cpu.hh"

#include "obs/host_prof.hh"
#include "sim/logging.hh"

namespace grp
{

Cpu::Cpu(const SimConfig &config, MemorySystem &mem, EventQueue &events,
         TraceSource &trace, const HintTable *hints,
         obs::StatRegistry &registry)
    : config_(config),
      mem_(mem),
      events_(events),
      trace_(trace),
      hints_(hints),
      stats_("cpu"),
      statReg_(stats_, registry)
{
    robCapacity_ = config.cpu.robEntries;
    size_t storage = 1;
    while (storage < robCapacity_)
        storage <<= 1;
    robEntries_.resize(storage);
    robMask_ = storage - 1;
    mem_.setLoadCallback([this](uint64_t token) { loadDone(token); });
    robFullStalls_ = &stats_.counter("robFullStalls");
    loads_ = &stats_.counter("loads");
    stores_ = &stats_.counter("stores");
    indirectPrefetchOps_ = &stats_.counter("indirectPrefetchOps");
    memStalls_ = &stats_.counter("memStalls");
}

void
Cpu::loadDone(uint64_t token)
{
    const size_t slot = static_cast<uint32_t>(token);
    const uint32_t generation = static_cast<uint32_t>(token >> 32);
    panic_if(slot >= robEntries_.size(), "bad load token slot");
    RobEntry &entry = robEntries_[slot];
    panic_if(!entry.busy || !entry.waitingOnLoad ||
             entry.generation != generation,
             "load completion for a stale ROB slot");
    entry.waitingOnLoad = false;
    entry.readyAt = events_.curTick();
}

bool
Cpu::fetchNext()
{
    while (!havePending_) {
        if (batchPos_ == batchLen_) {
            if (traceDone_)
                return false;
            GRP_HOST_SCOPE(2, Interp);
            batchLen_ = trace_.nextBatch(&batch_);
            batchPos_ = 0;
            if (batchLen_ == 0) {
                traceDone_ = true;
                return false;
            }
        }
        const TraceOp &op = batch_[batchPos_++];
        // An unhinted binary contains no indirect prefetch
        // instructions at all, so they cost nothing there.
        if (op.kind == OpKind::IndirectPrefetch &&
            (!hints_ || !config_.usesHints())) {
            continue;
        }
        pendingOp_ = op;
        havePending_ = true;
    }
    return true;
}

void
Cpu::tick()
{
    const Tick now = events_.curTick();
    ++cycles_;

    // Retire up to retireWidth completed instructions in order.
    unsigned retired_now = 0;
    while (retired_now < config_.cpu.retireWidth && robCount_ > 0) {
        RobEntry &head = robEntries_[robHead_];
        if (head.waitingOnLoad || head.readyAt > now)
            break;
        head.busy = false;
        robHead_ = (robHead_ + 1) & robMask_;
        --robCount_;
        ++retired_;
        ++retired_now;
        lastRetireTick_ = now;
    }

    if (robCount_ > 0 && now - lastRetireTick_ > config_.deadlockCycles)
        panic("no instruction retired for %llu cycles: deadlock",
              (unsigned long long)config_.deadlockCycles);

    // Issue up to issueWidth instructions.
    for (unsigned issued = 0; issued < config_.cpu.issueWidth; ++issued) {
        if (robFull()) {
            ++*robFullStalls_;
            break;
        }
        if (!fetchNext())
            break;

        const size_t slot = robTail_;
        RobEntry &entry = robEntries_[slot];
        ++entry.generation;
        const uint64_t token =
            (static_cast<uint64_t>(entry.generation) << 32) | slot;

        bool accepted = true;
        bool waiting = false;
        Tick ready = now + config_.cpu.computeLatency;

        switch (pendingOp_.kind) {
          case OpKind::Compute:
            break;
          case OpKind::Load: {
            // An L1 hit completes synchronously (hit_ready is the
            // completion tick); only misses round-trip through the
            // event queue and the loadDone callback.
            Tick hit_ready = kMaxTick;
            accepted = mem_.load(pendingOp_.addr, pendingOp_.refId,
                                 hintsFor(pendingOp_.refId), token,
                                 &hit_ready);
            if (accepted) {
                ++*loads_;
                if (hit_ready != kMaxTick)
                    ready = hit_ready;
                else
                    waiting = true;
            }
            break;
          }
          case OpKind::Store:
            accepted = mem_.store(pendingOp_.addr, pendingOp_.refId,
                                  hintsFor(pendingOp_.refId));
            if (accepted)
                ++*stores_;
            break;
          case OpKind::IndirectPrefetch:
            mem_.indirectPrefetch(pendingOp_.base, pendingOp_.elemSize,
                                  pendingOp_.addr, pendingOp_.refId);
            ++*indirectPrefetchOps_;
            break;
        }

        if (!accepted) {
            // Structural stall: keep the op pending, stop issuing.
            --entry.generation;
            ++*memStalls_;
            break;
        }

        entry.busy = true;
        entry.waitingOnLoad = waiting;
        entry.readyAt = ready;
        robTail_ = (robTail_ + 1) & robMask_;
        ++robCount_;
        havePending_ = false;
    }
}

bool
Cpu::done() const
{
    return traceDone_ && !havePending_ && robCount_ == 0;
}

Cpu::StallState
Cpu::stallState(Tick now) const
{
    StallState st;
    if (robCount_ == 0)
        return st; // Empty pipeline issues or finishes; not a stall.
    const RobEntry &head = robEntries_[robHead_];
    if (!head.waitingOnLoad && head.readyAt <= now)
        return st; // tick() would retire.
    if (robFull()) {
        // Blocked head, full ROB: tick() only counts a robFullStalls.
        st.stalled = true;
        st.robFullPath = true;
    } else if (traceDone_ && !havePending_) {
        // Blocked head, nothing left to issue: tick() is a pure wait.
        st.stalled = true;
    }
    // Otherwise tick() would fetch/issue (or retry a memory-rejected
    // op, whose per-attempt counters must accrue cycle by cycle) —
    // not skippable.
    if (st.stalled && !head.waitingOnLoad)
        st.readyTick = head.readyAt;
    return st;
}

void
Cpu::fastForward(uint64_t cycles, bool robFullPath)
{
    cycles_ += cycles;
    if (robFullPath)
        *robFullStalls_ += cycles;
}

} // namespace grp
