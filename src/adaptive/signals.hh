/**
 * @file
 * Epoch signal sampling for the adaptive prefetch controller.
 *
 * A Signals sampler wraps a Source — a callable returning one
 * cumulative Sample of the run's observability state (per-run
 * StatRegistry counters, shadow-tag pollution, DRAM channel cycle
 * accounting, prefetch-queue occupancy) — and turns consecutive
 * Samples into per-epoch deltas (EpochSignals). Deltas saturate at
 * zero per field: the harness zeroes the underlying counters at the
 * warmup/measurement boundary, and a sampler primed before that
 * boundary must yield the post-reset cumulative value rather than a
 * huge wrapped difference.
 *
 * The Source indirection is the testing seam: production code uses
 * memorySource() over a live MemorySystem, while unit tests (and the
 * refactored ThrottledSrpEngine tests) drive a hand-rolled Sample
 * through a lambda. Everything here reads only per-run state, so
 * controllers built on it preserve the parallel-sweep determinism
 * invariant.
 */

#ifndef GRP_ADAPTIVE_SIGNALS_HH
#define GRP_ADAPTIVE_SIGNALS_HH

#include <array>
#include <cstdint>
#include <functional>

#include "adaptive/control_plane.hh"

namespace grp
{

class MemorySystem;
class PrefetchEngine;

namespace adaptive
{

/** Cumulative per-hint-class prefetch accounting. */
struct ClassCounts
{
    uint64_t fills = 0;  ///< Measured-window prefetch fills.
    uint64_t useful = 0; ///< Measured-window first-uses.
};

/** One cumulative reading of the run's feedback state. */
struct Sample
{
    uint64_t prefetchesIssued = 0;
    uint64_t prefetchFills = 0;
    uint64_t usefulPrefetches = 0;
    /** Shadow-tag pollution misses (0 when shadow tags are off). */
    uint64_t pollutionMisses = 0;
    uint64_t l2DemandAccesses = 0;
    /** Accounted DRAM channel cycles (all channels, all classes). */
    uint64_t channelCycles = 0;
    /** Idle subset of channelCycles. */
    uint64_t idleCycles = 0;
    /** Instantaneous prefetch-queue depth (not a delta source). */
    uint64_t queueDepth = 0;
    /** Queue capacity (constant; 0 disables occupancy signals). */
    uint64_t queueCapacity = 0;
    std::array<ClassCounts, kNumClasses> byClass{};
};

/** Per-epoch deltas plus the derived ratios the policy consumes. */
struct EpochSignals
{
    uint64_t prefetchesIssued = 0;
    uint64_t prefetchFills = 0;
    uint64_t usefulPrefetches = 0;
    uint64_t pollutionMisses = 0;
    uint64_t l2DemandAccesses = 0;
    uint64_t channelCycles = 0;
    uint64_t idleCycles = 0;
    uint64_t queueDepth = 0;
    uint64_t queueCapacity = 0;
    std::array<ClassCounts, kNumClasses> byClass{};

    /** Epoch fills for @p cls. */
    uint64_t
    classFills(obs::HintClass cls) const
    {
        return byClass[static_cast<std::size_t>(cls)].fills;
    }

    /** Epoch accuracy for @p cls (useful / fills; 0 with no fills). */
    double
    classAccuracy(obs::HintClass cls) const
    {
        const ClassCounts &c = byClass[static_cast<std::size_t>(cls)];
        return c.fills ? static_cast<double>(c.useful) / c.fills : 0.0;
    }

    /** Fraction of accounted channel cycles spent idle (1.0 with no
     *  accounted cycles: an idle memory system has headroom). */
    double
    idleFraction() const
    {
        return channelCycles
                   ? static_cast<double>(idleCycles) / channelCycles
                   : 1.0;
    }

    /** Prefetch-queue occupancy at the sample point (0 when the
     *  capacity is unknown). */
    double
    queueOccupancy() const
    {
        return queueCapacity
                   ? static_cast<double>(queueDepth) / queueCapacity
                   : 0.0;
    }

    /** Pollution misses per demand L2 access. */
    double
    pollutionRate() const
    {
        return l2DemandAccesses ? static_cast<double>(pollutionMisses) /
                                      l2DemandAccesses
                                : 0.0;
    }

    /** Whole-run accuracy across classes (useful / issued). */
    double
    accuracy() const
    {
        return prefetchesIssued ? static_cast<double>(usefulPrefetches) /
                                      prefetchesIssued
                                : 0.0;
    }
};

/** Turns cumulative Samples into saturating per-epoch deltas. */
class Signals
{
  public:
    using Source = std::function<Sample()>;

    explicit Signals(Source source) : source_(std::move(source)) {}

    /** Read the source and return the delta since the previous call
     *  (since construction for the first). Instantaneous fields
     *  (queue depth/capacity) pass through unchanged. */
    EpochSignals sample();

    /** Re-prime on the current source state: the next sample() delta
     *  starts from here. Call after the underlying counters are
     *  zeroed (warmup boundary) so the epoch spanning the reset
     *  carries post-reset activity only. */
    void reprime();

  private:
    static uint64_t
    delta(uint64_t cur, uint64_t prev)
    {
        // Saturate: a counter reset mid-epoch makes cur < prev; the
        // post-reset cumulative value is then the best delta
        // estimate.
        return cur >= prev ? cur - prev : cur;
    }

    Source source_;
    Sample prev_{};
};

/**
 * Build the production Source over a live memory system: mem.* /
 * dram.* registry counters, the per-hint-class fill/use arrays, and
 * @p engine's queue depth (may be nullptr: depth reads 0).
 * @p queue_capacity is the configured prefetch-queue size.
 */
Signals::Source memorySource(MemorySystem &mem,
                             const PrefetchEngine *engine,
                             uint64_t queue_capacity);

} // namespace adaptive
} // namespace grp

#endif // GRP_ADAPTIVE_SIGNALS_HH
