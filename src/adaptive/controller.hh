/**
 * @file
 * The epoch-based feedback controller (the tentpole of the adaptive
 * subsystem).
 *
 * Every epoch the controller reads one EpochSignals bundle from its
 * Signals sampler and re-votes, per managed hint class, on whether
 * the class earned more aggression or less:
 *
 *   poor  := accuracy <= accuracyLow
 *            OR pollution rate > pollutionHigh
 *            OR (channel idle < idleLow AND queue occupancy >
 *                occupancyHigh)                  [congestion]
 *   good  := NOT poor AND accuracy >= accuracyHigh
 *
 * A class must vote the same direction hysteresisEpochs times in a
 * row before any knob moves (an epoch with fewer than minEpochFills
 * fills for the class carries no signal and freezes its streaks);
 * each move shifts the class's ladders one level and resets the
 * streak, so a boundary-oscillating signal can never flap a knob.
 * Raising insertion position and queue priority needs only the
 * accuracy vote; growing the region size or pointer depth — the
 * knobs that buy coverage with bandwidth — additionally requires
 * idle >= idleHigh headroom.
 *
 * Ladders (level 0/1/2):
 *   region size (Spatial)    4 / 16 / 64 blocks  (256 B / 1 KB / 4 KB)
 *   insert position (all)    LRU / mid / MRU
 *   queue priority (all)     0 / 1 / 2           (tiers drain high first)
 *   pointer depth (Recursive) 1 / 3 / uncapped
 *
 * The initial state (full region, LRU insertion, priority 1, full
 * depth) makes epoch 0 behave exactly like GrpVar; the controller
 * only deviates on evidence. All inputs are per-run state, so runs
 * are deterministic at any sweep thread count.
 */

#ifndef GRP_ADAPTIVE_CONTROLLER_HH
#define GRP_ADAPTIVE_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <ostream>

#include "adaptive/control_plane.hh"
#include "adaptive/signals.hh"
#include "obs/stat_registry.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace grp
{
namespace adaptive
{

/** The four knobs the controller drives. Values double as the knob
 *  id carried in ctrlTransition trace records. */
enum class Knob : uint8_t
{
    Size = 0,     ///< Spatial region window cap.
    Insert = 1,   ///< L2 insertion position.
    Priority = 2, ///< Prefetch-queue dequeue tier.
    Depth = 3,    ///< Pointer-recursion depth cap.
};

constexpr std::size_t kNumKnobs = 4;
/** Every ladder has three levels. */
constexpr unsigned kNumLevels = 3;

const char *toString(Knob knob);

/** Epoch-based per-hint-class feedback controller. */
class AdaptiveController
{
  public:
    /**
     * @param config Thresholds and epoch geometry.
     * @param max_ptr_depth Depth the top Depth-ladder level maps to
     *        conceptually (reporting only; the plane encodes it as
     *        "uncapped").
     * @param source Cumulative signal source (see signals.hh).
     * @param registry Registry the "adaptive" stat group joins.
     */
    AdaptiveController(const AdaptiveConfig &config,
                       unsigned max_ptr_depth, Signals::Source source,
                       obs::StatRegistry &registry =
                           obs::StatRegistry::current());

    /** The knob table the hardware reads. */
    const ControlPlane &plane() const { return plane_; }

    /** Evaluate one epoch ending at @p now. */
    void onEpoch(Tick now);

    /** Measurement boundary: zero the controller stats and re-prime
     *  the sampler on the freshly reset counters. Knob levels are
     *  kept — the warmed-up operating point is part of the state
     *  warmup exists to establish. */
    void onWarmupBoundary();

    /** Current ladder level of @p knob for @p cls (0..2). */
    unsigned
    level(obs::HintClass cls, Knob knob) const
    {
        return levels_[static_cast<std::size_t>(cls)]
                      [static_cast<std::size_t>(knob)];
    }

    /** Whether the controller drives @p knob for @p cls. */
    static bool managesKnob(obs::HintClass cls, Knob knob);

    uint64_t epochs() const { return epochs_->value(); }

    /** Total knob moves across all knobs and classes. */
    uint64_t totalTransitions() const;

    /** Spatial region cap in blocks (timeseries hook). */
    unsigned
    spatialRegionBlocks() const
    {
        return plane_.regionBlockCap(obs::HintClass::Spatial);
    }

    /** Human-readable state dump (--adaptive-report). */
    void writeReport(std::ostream &os) const;

    StatGroup &stats() { return stats_; }

  private:
    /** Hint classes with at least one managed knob. */
    static constexpr std::array<obs::HintClass, 4> kManagedClasses = {
        obs::HintClass::Spatial,
        obs::HintClass::Pointer,
        obs::HintClass::Recursive,
        obs::HintClass::Indirect,
    };

    void setLevel(obs::HintClass cls, Knob knob, unsigned level);
    void applyLevel(obs::HintClass cls, Knob knob, unsigned level);
    void raiseClass(obs::HintClass cls, bool bandwidth_headroom);
    void lowerClass(obs::HintClass cls);

    AdaptiveConfig config_;
    unsigned maxPtrDepth_;
    Signals signals_;
    ControlPlane plane_;

    /** Ladder levels, indexed [class][knob]. */
    std::array<std::array<unsigned, kNumKnobs>, kNumClasses> levels_{};
    /** Consecutive same-direction votes, per class. */
    std::array<unsigned, kNumClasses> raiseStreak_{};
    std::array<unsigned, kNumClasses> lowerStreak_{};

    StatGroup stats_;
    Counter *epochs_ = nullptr;
    /** Class-epochs skipped for lack of fills. */
    Counter *lowSignalEpochs_ = nullptr;
    std::array<Counter *, kNumKnobs> transitions_{};
    /** Time-in-state: epochs spent at [class][knob][level]; null for
     *  unmanaged (class, knob) pairs. */
    std::array<std::array<std::array<Counter *, kNumLevels>, kNumKnobs>,
               kNumClasses>
        timeInState_{};
    obs::ScopedStatRegistration statReg_;
};

} // namespace adaptive
} // namespace grp

#endif // GRP_ADAPTIVE_CONTROLLER_HH
