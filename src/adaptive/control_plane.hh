/**
 * @file
 * The control plane between the adaptive controller and the prefetch
 * hardware.
 *
 * The controller (src/adaptive/controller.*) owns a ControlPlane and
 * rewrites its per-hint-class knobs at epoch boundaries; the hardware
 * (GrpEngine, HwPrefetchEngine, RegionQueue, MemorySystem) holds a
 * `const ControlPlane *` and consults it on each decision it covers:
 *
 *  - regionBlockCap: ceiling on the spatial region window, the
 *    4 KB <-> 1 KB <-> 256 B ladder of the issue (64/16/4 blocks);
 *  - insertPos: where prefetch fills land in the L2 recency stack
 *    (LRU <-> mid <-> MRU);
 *  - priority: prefetch-queue dequeue tier (higher drains first);
 *  - ptrDepthCap: ceiling on pointer-recursion depth.
 *
 * A null plane means "no controller": every consumer must behave
 * exactly as before this layer existed, which the knob defaults here
 * also encode (cap 64 = full region, LRU insertion, single priority
 * tier, depth cap above any configurable depth). This file is
 * header-only and depends only on obs/trace.hh (HintClass) so the
 * mem/prefetch/core layers can include it without a link dependency
 * on the controller.
 */

#ifndef GRP_ADAPTIVE_CONTROL_PLANE_HH
#define GRP_ADAPTIVE_CONTROL_PLANE_HH

#include <array>
#include <cstdint>

#include "obs/trace.hh"

namespace grp
{
namespace adaptive
{

/** Number of obs::HintClass values (array extent for per-class
 *  state). */
constexpr std::size_t kNumClasses =
    static_cast<std::size_t>(obs::HintClass::Stride) + 1;

/** Where a prefetch fill lands in the L2 recency stack. */
enum class InsertPos : uint8_t
{
    Lru, ///< Below every live line (paper default, minimal pollution).
    Mid, ///< Halfway up the recency stack.
    Mru, ///< Most recently used (maximal protection).
};

inline const char *
toString(InsertPos pos)
{
    switch (pos) {
      case InsertPos::Lru: return "lru";
      case InsertPos::Mid: return "mid";
      case InsertPos::Mru: return "mru";
    }
    return "?";
}

/** The knob bundle for one hint class. Defaults reproduce the
 *  static (controller-less) hardware exactly. */
struct ClassKnobs
{
    /** Max spatial region window in blocks (power of two). */
    unsigned regionBlockCap = 64;
    /** L2 insertion position for this class's fills. */
    InsertPos insert = InsertPos::Lru;
    /** Dequeue tier in the prefetch queue; tiers drain high to low. */
    uint8_t priority = 1;
    /** Max pointer-recursion depth (255 = uncapped). */
    uint8_t ptrDepthCap = 255;
};

/** Per-hint-class knob table read by the prefetch hardware. */
class ControlPlane
{
  public:
    ClassKnobs &
    knobs(obs::HintClass cls)
    {
        return knobs_[static_cast<std::size_t>(cls)];
    }

    const ClassKnobs &
    knobs(obs::HintClass cls) const
    {
        return knobs_[static_cast<std::size_t>(cls)];
    }

    unsigned
    regionBlockCap(obs::HintClass cls) const
    {
        return knobs(cls).regionBlockCap;
    }

    InsertPos
    insertPos(obs::HintClass cls) const
    {
        return knobs(cls).insert;
    }

    uint8_t
    priority(obs::HintClass cls) const
    {
        return knobs(cls).priority;
    }

    uint8_t
    ptrDepthCap(obs::HintClass cls) const
    {
        return knobs(cls).ptrDepthCap;
    }

    /** Highest priority tier any class currently holds (bounds the
     *  queue's tier scan). */
    uint8_t
    maxPriority() const
    {
        uint8_t max = 0;
        for (const ClassKnobs &k : knobs_)
            if (k.priority > max)
                max = k.priority;
        return max;
    }

  private:
    std::array<ClassKnobs, kNumClasses> knobs_{};
};

} // namespace adaptive
} // namespace grp

#endif // GRP_ADAPTIVE_CONTROL_PLANE_HH
