#include "adaptive/controller.hh"

#include <string>

#include "obs/trace.hh"

namespace grp
{
namespace adaptive
{

namespace
{

/** Region cap in blocks per Size ladder level (256 B / 1 KB / 4 KB
 *  with 64 B blocks). */
constexpr unsigned kSizeBlocks[kNumLevels] = {4, 16, 64};

/** Pointer-depth cap per Depth ladder level; the top level is
 *  "uncapped" so the configured recursion depth rules. */
constexpr uint8_t kDepthCaps[kNumLevels] = {1, 3, 255};

/** Level names used in stat counter names, per knob. */
const char *const kLevelNames[kNumKnobs][kNumLevels] = {
    {"256B", "1K", "4K"},     // Size
    {"Lru", "Mid", "Mru"},    // Insert
    {"Low", "Mid", "High"},   // Priority
    {"1", "3", "Max"},        // Depth
};

/** PascalCase knob names for camelCase counter names. */
const char *const kKnobPascal[kNumKnobs] = {"Size", "Insert",
                                            "Priority", "Depth"};

} // namespace

const char *
toString(Knob knob)
{
    switch (knob) {
      case Knob::Size:     return "size";
      case Knob::Insert:   return "insert";
      case Knob::Priority: return "priority";
      case Knob::Depth:    return "depth";
    }
    return "?";
}

constexpr std::array<obs::HintClass, 4>
    AdaptiveController::kManagedClasses;

bool
AdaptiveController::managesKnob(obs::HintClass cls, Knob knob)
{
    switch (knob) {
      case Knob::Size:
        return cls == obs::HintClass::Spatial;
      case Knob::Depth:
        return cls == obs::HintClass::Recursive;
      case Knob::Insert:
      case Knob::Priority:
        return cls == obs::HintClass::Spatial ||
               cls == obs::HintClass::Pointer ||
               cls == obs::HintClass::Recursive ||
               cls == obs::HintClass::Indirect;
    }
    return false;
}

AdaptiveController::AdaptiveController(const AdaptiveConfig &config,
                                       unsigned max_ptr_depth,
                                       Signals::Source source,
                                       obs::StatRegistry &registry)
    : config_(config), maxPtrDepth_(max_ptr_depth),
      signals_(std::move(source)), stats_("adaptive"),
      statReg_(stats_, registry)
{
    epochs_ = &stats_.counter("epochs");
    lowSignalEpochs_ = &stats_.counter("lowSignalClassEpochs");
    for (std::size_t k = 0; k < kNumKnobs; ++k) {
        transitions_[k] = &stats_.counter(std::string("transitions") +
                                          kKnobPascal[k]);
    }
    for (obs::HintClass cls : kManagedClasses) {
        const std::size_t c = static_cast<std::size_t>(cls);
        for (std::size_t k = 0; k < kNumKnobs; ++k) {
            if (!managesKnob(cls, static_cast<Knob>(k)))
                continue;
            for (unsigned lvl = 0; lvl < kNumLevels; ++lvl) {
                timeInState_[c][k][lvl] = &stats_.counter(
                    std::string(obs::toString(cls)) + kKnobPascal[k] +
                    kLevelNames[k][lvl] + "Epochs");
            }
        }
    }

    // Initial operating point: GrpVar equivalence (full regions, LRU
    // insertion, single priority tier, full depth).
    for (obs::HintClass cls : kManagedClasses) {
        const std::size_t c = static_cast<std::size_t>(cls);
        levels_[c][static_cast<std::size_t>(Knob::Size)] = 2;
        levels_[c][static_cast<std::size_t>(Knob::Insert)] = 0;
        levels_[c][static_cast<std::size_t>(Knob::Priority)] = 1;
        levels_[c][static_cast<std::size_t>(Knob::Depth)] = 2;
        for (std::size_t k = 0; k < kNumKnobs; ++k)
            if (managesKnob(cls, static_cast<Knob>(k)))
                applyLevel(cls, static_cast<Knob>(k), levels_[c][k]);
    }
}

void
AdaptiveController::applyLevel(obs::HintClass cls, Knob knob,
                               unsigned level)
{
    ClassKnobs &k = plane_.knobs(cls);
    switch (knob) {
      case Knob::Size:
        k.regionBlockCap = kSizeBlocks[level];
        break;
      case Knob::Insert:
        k.insert = static_cast<InsertPos>(level);
        break;
      case Knob::Priority:
        k.priority = static_cast<uint8_t>(level);
        break;
      case Knob::Depth:
        k.ptrDepthCap = kDepthCaps[level];
        break;
    }
}

void
AdaptiveController::setLevel(obs::HintClass cls, Knob knob,
                             unsigned level)
{
    const std::size_t c = static_cast<std::size_t>(cls);
    const std::size_t k = static_cast<std::size_t>(knob);
    if (levels_[c][k] == level)
        return;
    levels_[c][k] = level;
    applyLevel(cls, knob, level);
    ++*transitions_[k];
    GRP_TRACE(2, obs::TraceEvent::CtrlTransition, 0, cls,
              static_cast<int>(knob), static_cast<int64_t>(level));
}

void
AdaptiveController::raiseClass(obs::HintClass cls,
                               bool bandwidth_headroom)
{
    const std::size_t c = static_cast<std::size_t>(cls);
    const auto lvl = [&](Knob knob) {
        return levels_[c][static_cast<std::size_t>(knob)];
    };
    if (lvl(Knob::Insert) < kNumLevels - 1)
        setLevel(cls, Knob::Insert, lvl(Knob::Insert) + 1);
    if (lvl(Knob::Priority) < kNumLevels - 1)
        setLevel(cls, Knob::Priority, lvl(Knob::Priority) + 1);
    if (!bandwidth_headroom)
        return;
    // The bandwidth-spending ladders only grow with channel headroom.
    if (managesKnob(cls, Knob::Size) && lvl(Knob::Size) < kNumLevels - 1)
        setLevel(cls, Knob::Size, lvl(Knob::Size) + 1);
    if (managesKnob(cls, Knob::Depth) &&
        lvl(Knob::Depth) < kNumLevels - 1)
        setLevel(cls, Knob::Depth, lvl(Knob::Depth) + 1);
}

void
AdaptiveController::lowerClass(obs::HintClass cls)
{
    const std::size_t c = static_cast<std::size_t>(cls);
    for (std::size_t k = 0; k < kNumKnobs; ++k) {
        if (!managesKnob(cls, static_cast<Knob>(k)))
            continue;
        if (levels_[c][k] > 0)
            setLevel(cls, static_cast<Knob>(k), levels_[c][k] - 1);
    }
}

void
AdaptiveController::onEpoch(Tick)
{
    ++*epochs_;
    const EpochSignals s = signals_.sample();
    const double pollution = s.pollutionRate();
    const double idle = s.idleFraction();
    const bool congested = idle < config_.idleLow &&
                           s.queueOccupancy() > config_.occupancyHigh;

    for (obs::HintClass cls : kManagedClasses) {
        const std::size_t c = static_cast<std::size_t>(cls);
        for (std::size_t k = 0; k < kNumKnobs; ++k)
            if (Counter *t = timeInState_[c][k][levels_[c][k]])
                ++*t;

        if (s.classFills(cls) < config_.minEpochFills) {
            // No signal: freeze the streaks rather than resetting
            // them, so sparse classes still accumulate evidence.
            ++*lowSignalEpochs_;
            continue;
        }

        const double acc = s.classAccuracy(cls);
        const bool poor = acc <= config_.accuracyLow ||
                          pollution > config_.pollutionHigh || congested;
        const bool good = !poor && acc >= config_.accuracyHigh;
        if (good) {
            ++raiseStreak_[c];
            lowerStreak_[c] = 0;
        } else if (poor) {
            ++lowerStreak_[c];
            raiseStreak_[c] = 0;
        } else {
            raiseStreak_[c] = 0;
            lowerStreak_[c] = 0;
        }

        if (raiseStreak_[c] >= config_.hysteresisEpochs) {
            raiseClass(cls, idle >= config_.idleHigh);
            raiseStreak_[c] = 0;
        } else if (lowerStreak_[c] >= config_.hysteresisEpochs) {
            lowerClass(cls);
            lowerStreak_[c] = 0;
        }
    }
}

void
AdaptiveController::onWarmupBoundary()
{
    stats_.reset();
    signals_.reprime();
}

uint64_t
AdaptiveController::totalTransitions() const
{
    uint64_t total = 0;
    for (const Counter *t : transitions_)
        total += t->value();
    return total;
}

void
AdaptiveController::writeReport(std::ostream &os) const
{
    os << "=== Adaptive controller ===\n";
    os << "epochs: " << epochs_->value()
       << "  low-signal class-epochs: " << lowSignalEpochs_->value()
       << "\n";
    os << "transitions:";
    for (std::size_t k = 0; k < kNumKnobs; ++k)
        os << " " << toString(static_cast<Knob>(k)) << "="
           << transitions_[k]->value();
    os << "\n";
    for (obs::HintClass cls : kManagedClasses) {
        const std::size_t c = static_cast<std::size_t>(cls);
        const ClassKnobs &k = plane_.knobs(cls);
        os << "  " << obs::toString(cls) << ": ";
        if (managesKnob(cls, Knob::Size))
            os << "region=" << k.regionBlockCap << "blk ";
        os << "insert=" << toString(k.insert)
           << " priority=" << unsigned(k.priority);
        if (managesKnob(cls, Knob::Depth)) {
            os << " depthCap=";
            if (k.ptrDepthCap == 255)
                os << maxPtrDepth_ << " (uncapped)";
            else
                os << unsigned(k.ptrDepthCap);
        }
        os << "\n";
        for (std::size_t kk = 0; kk < kNumKnobs; ++kk) {
            if (!managesKnob(cls, static_cast<Knob>(kk)))
                continue;
            os << "    " << toString(static_cast<Knob>(kk))
               << " epochs:";
            for (unsigned lvl = 0; lvl < kNumLevels; ++lvl)
                os << " " << kLevelNames[kk][lvl] << "="
                   << timeInState_[c][kk][lvl]->value();
            os << "\n";
        }
    }
}

} // namespace adaptive
} // namespace grp
