#include "adaptive/signals.hh"

#include "mem/memory_system.hh"
#include "mem/prefetch_iface.hh"

namespace grp
{
namespace adaptive
{

EpochSignals
Signals::sample()
{
    const Sample cur = source_();
    EpochSignals out;
    out.prefetchesIssued = delta(cur.prefetchesIssued,
                                 prev_.prefetchesIssued);
    out.prefetchFills = delta(cur.prefetchFills, prev_.prefetchFills);
    out.usefulPrefetches = delta(cur.usefulPrefetches,
                                 prev_.usefulPrefetches);
    out.pollutionMisses = delta(cur.pollutionMisses,
                                prev_.pollutionMisses);
    out.l2DemandAccesses = delta(cur.l2DemandAccesses,
                                 prev_.l2DemandAccesses);
    out.channelCycles = delta(cur.channelCycles, prev_.channelCycles);
    out.idleCycles = delta(cur.idleCycles, prev_.idleCycles);
    out.queueDepth = cur.queueDepth;
    out.queueCapacity = cur.queueCapacity;
    for (std::size_t i = 0; i < kNumClasses; ++i) {
        out.byClass[i].fills = delta(cur.byClass[i].fills,
                                     prev_.byClass[i].fills);
        out.byClass[i].useful = delta(cur.byClass[i].useful,
                                      prev_.byClass[i].useful);
    }
    prev_ = cur;
    return out;
}

void
Signals::reprime()
{
    prev_ = source_();
}

Signals::Source
memorySource(MemorySystem &mem, const PrefetchEngine *engine,
             uint64_t queue_capacity)
{
    return [&mem, engine, queue_capacity] {
        Sample s;
        const StatGroup &ms = mem.stats();
        s.prefetchesIssued = ms.value("prefetchesIssued");
        s.prefetchFills = ms.value("prefetchFills");
        s.usefulPrefetches = ms.value("usefulPrefetches");
        s.pollutionMisses = ms.value("pollutionMisses");
        s.l2DemandAccesses = ms.value("l2DemandAccesses");
        const StatGroup &ds = mem.dram().stats();
        s.idleCycles = ds.value("contentionIdleCycles");
        s.channelCycles = s.idleCycles +
                          ds.value("contentionDemandCycles") +
                          ds.value("contentionPrefetchCycles") +
                          ds.value("contentionWritebackCycles");
        s.queueDepth = engine ? engine->queueDepth() : 0;
        s.queueCapacity = queue_capacity;
        s.byClass = mem.classPrefetchCounts();
        return s;
    };
}

} // namespace adaptive
} // namespace grp
