#include "harness/capture.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/atomic_file.hh"
#include "sim/logging.hh"

namespace grp
{

namespace
{

/** Table 0 of kind-1 containers, indexed by AccessTag. */
std::vector<std::vector<std::string>>
accessTables()
{
    return {{"computeRun", "load", "store", "indirectPrefetch"}};
}

/** Same large stream buffer the Tracer uses: one memcpy per record,
 *  a filesystem write every few thousand. */
constexpr size_t kStreamBufBytes = 256 * 1024;

} // namespace

CaptureTraceSource::CaptureTraceSource(TraceSource &inner,
                                       const std::string &path,
                                       const std::string &workload,
                                       uint64_t seed)
    : inner_(inner), publishPath_(path)
{
    const std::string tmp = path + ".tmp";
    out_ = std::fopen(tmp.c_str(), "wb");
    fatal_if(!out_, "cannot open capture file '%s'", tmp.c_str());
    iobuf_ = std::make_unique<char[]>(kStreamBufBytes);
    std::setvbuf(out_, iobuf_.get(), _IOFBF, kStreamBufBytes);
    writer_ = std::make_unique<obs::bintrace::Writer>(
        out_, obs::bintrace::StreamKind::Access, accessTables(),
        std::vector<std::pair<std::string, std::string>>{
            {"workload", workload},
            {"seed", std::to_string(seed)},
        });
}

CaptureTraceSource::~CaptureTraceSource()
{
    close();
}

void
CaptureTraceSource::flushComputeRun()
{
    if (!computeRun_)
        return;
    uint8_t payload[10];
    const size_t n = obs::bintrace::putVarint(payload, computeRun_);
    computeRun_ = 0;
    writer_->rawRecord(static_cast<uint8_t>(AccessTag::ComputeRun),
                       payload, n, ops_);
}

bool
CaptureTraceSource::next(TraceOp &op)
{
    if (!inner_.next(op)) {
        flushComputeRun();
        return false;
    }
    ++ops_;
    uint8_t payload[4 * 10];
    size_t n = 0;
    switch (op.kind) {
      case OpKind::Compute:
        // Defer: consecutive computes become one counted record.
        ++computeRun_;
        return true;
      case OpKind::Load:
      case OpKind::Store:
        flushComputeRun();
        n = obs::bintrace::putVarint(payload, op.refId);
        n += obs::bintrace::putVarint(payload + n, op.addr);
        writer_->rawRecord(op.kind == OpKind::Load
                               ? static_cast<uint8_t>(AccessTag::Load)
                               : static_cast<uint8_t>(AccessTag::Store),
                           payload, n, ops_);
        return true;
      case OpKind::IndirectPrefetch:
        flushComputeRun();
        n = obs::bintrace::putVarint(payload, op.refId);
        n += obs::bintrace::putVarint(payload + n, op.addr);
        n += obs::bintrace::putVarint(payload + n, op.base);
        n += obs::bintrace::putVarint(payload + n, op.elemSize);
        writer_->rawRecord(
            static_cast<uint8_t>(AccessTag::IndirectPrefetch), payload,
            n, ops_);
        return true;
    }
    return true;
}

void
CaptureTraceSource::close()
{
    if (!out_)
        return;
    flushComputeRun();
    writer_->finalize();
    writer_.reset();
    std::fclose(out_);
    out_ = nullptr;
    obs::publishTempFile(publishPath_ + ".tmp", publishPath_,
                         "capture");
}

ReplayTraceSource::ReplayTraceSource(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "cannot open capture file '%s'", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    data_ = buf.str();

    obs::bintrace::Container container;
    std::string error;
    fatal_if(
        !obs::bintrace::parseContainer(data_, container, &error),
        "'%s' is not a .grpbin capture: %s", path.c_str(),
        error.c_str());
    fatal_if(container.kind != obs::bintrace::StreamKind::Access,
             "'%s' is a lifecycle trace, not an access capture "
             "(inspect it with grptrace; --replay needs a --capture "
             "output)",
             path.c_str());
    fatal_if(!container.finalized,
             "capture '%s' is truncated or unfinalized (the recording "
             "run was killed mid-capture, or this is a stale .tmp "
             "file); refusing to replay a damaged stream",
             path.c_str());

    // The decoder below hard-codes the AccessTag numbering, so refuse
    // containers whose tag table disagrees (a newer writer).
    const std::vector<std::vector<std::string>> expected =
        accessTables();
    fatal_if(container.tables[0] != expected[0],
             "capture '%s' uses an unknown record-tag table (recorded "
             "by a newer writer?)",
             path.c_str());

    const auto workload = container.metaValue("workload");
    const auto seed = container.metaValue("seed");
    fatal_if(!workload || !seed,
             "capture '%s' lacks workload/seed meta", path.c_str());
    workload_ = *workload;
    seed_ = std::strtoull(seed->c_str(), nullptr, 10);
    totalOps_ = container.finalKey;

    const uint8_t *base =
        reinterpret_cast<const uint8_t *>(data_.data());
    cursor_ = base + container.bodyOffset;
    end_ = base + container.footerOffset;
}

bool
ReplayTraceSource::next(TraceOp &op)
{
    if (pendingCompute_) {
        --pendingCompute_;
        ++decoded_;
        op = TraceOp::compute();
        return true;
    }
    while (cursor_ < end_) {
        const uint8_t tag = *cursor_++;
        if (tag == obs::bintrace::kFooterTag) {
            cursor_ = end_;
            return false;
        }
        if (tag == obs::bintrace::kCheckpointTag) {
            uint64_t key, records, warm, counts;
            bool ok = obs::bintrace::readVarint(cursor_, end_, key) &&
                      obs::bintrace::readVarint(cursor_, end_,
                                                records) &&
                      obs::bintrace::readVarint(cursor_, end_, warm) &&
                      obs::bintrace::readVarint(cursor_, end_, counts);
            for (uint64_t i = 0; ok && i < counts; ++i) {
                uint64_t count;
                ok = obs::bintrace::readVarint(cursor_, end_, count);
            }
            fatal_if(!ok, "capture corrupt at checkpoint after op %llu",
                     (unsigned long long)decoded_);
            continue;
        }
        uint64_t a = 0, b = 0, c = 0, d = 0;
        auto field = [&](uint64_t &value) {
            fatal_if(!obs::bintrace::readVarint(cursor_, end_, value),
                     "capture corrupt after op %llu",
                     (unsigned long long)decoded_);
        };
        switch (static_cast<AccessTag>(tag)) {
          case AccessTag::ComputeRun:
            field(a);
            fatal_if(!a, "capture has an empty compute run after op "
                         "%llu",
                     (unsigned long long)decoded_);
            pendingCompute_ = a - 1;
            ++decoded_;
            op = TraceOp::compute();
            return true;
          case AccessTag::Load:
          case AccessTag::Store:
            field(a);
            field(b);
            ++decoded_;
            op = static_cast<AccessTag>(tag) == AccessTag::Load
                     ? TraceOp::load(b, static_cast<RefId>(a))
                     : TraceOp::store(b, static_cast<RefId>(a));
            return true;
          case AccessTag::IndirectPrefetch:
            field(a);
            field(b);
            field(c);
            field(d);
            ++decoded_;
            op = TraceOp::indirect(c, static_cast<uint32_t>(d), b,
                                   static_cast<RefId>(a));
            return true;
        }
        fatal("capture has unknown record tag %u after op %llu",
              (unsigned)tag, (unsigned long long)decoded_);
    }
    return false;
}

} // namespace grp
