/**
 * @file
 * The experiment runner: executes one (workload, configuration)
 * pair end-to-end — build the kernel, run the compiler pipeline,
 * wire CPU + memory + prefetch engine, simulate a fixed instruction
 * window — and collects the metrics the paper reports.
 */

#ifndef GRP_HARNESS_RUNNER_HH
#define GRP_HARNESS_RUNNER_HH

#include <map>
#include <memory>
#include <string>

#include "compiler/hint_generator.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace grp
{

class SweepRecording;

/** Metrics from one simulation run. */
struct RunResult
{
    std::string workload;
    PrefetchScheme scheme = PrefetchScheme::None;
    Perfection perfection = Perfection::None;

    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double ipc = 0.0;

    /** The run stopped early at a beat boundary (SIGINT/SIGTERM via
     *  obs::requestStop()); every exported artefact carries a
     *  matching partial marker. */
    bool partial = false;

    uint64_t trafficBytes = 0;     ///< Fills + writebacks, in bytes.
    uint64_t l2DemandAccesses = 0;
    uint64_t l2MissesTotal = 0;    ///< All L2 demand misses.
    uint64_t l2MissesToMemory = 0; ///< Misses that paid DRAM latency.
    uint64_t prefetchFills = 0;    ///< Prefetch-class DRAM transfers.
    uint64_t usefulPrefetches = 0; ///< Prefetched blocks later used.
    /** First-uses of blocks prefetched before the warmup boundary;
     *  excluded from usefulPrefetches and thus from accuracy(). */
    uint64_t warmupUsefulPrefetches = 0;

    /** Every counter and distribution summary the simulation
     *  registered, keyed "group.stat". */
    obs::StatSnapshot stats;

    /**
     * Useful / issued (0 when nothing was issued). Warmup-era fills
     * are attributed separately (warmupUsefulPrefetches), so the
     * ratio is structurally <= 1. The harness checks the invariant
     * once per run when it populates the result — violations bump
     * mem.accuracyClampEvents (exported as 0 in healthy runs) and
     * abort debug builds — so the clamp here is a silent last resort
     * for hand-built results.
     */
    double
    accuracy() const
    {
        if (!prefetchFills)
            return 0.0;
        const double ratio = static_cast<double>(usefulPrefetches) /
                             static_cast<double>(prefetchFills);
        return ratio > 1.0 ? 1.0 : ratio;
    }

    /** L2 miss rate over demand accesses, percent. */
    double
    missRatePct() const
    {
        return l2DemandAccesses
                   ? 100.0 * static_cast<double>(l2MissesTotal) /
                         static_cast<double>(l2DemandAccesses)
                   : 0.0;
    }

    /** Coverage vs a baseline run, percent (paper's Table 5). */
    double
    coveragePct(const RunResult &base) const
    {
        if (base.l2MissesToMemory == 0)
            return 0.0;
        return 100.0 *
               (1.0 - static_cast<double>(l2MissesToMemory) /
                          static_cast<double>(base.l2MissesToMemory));
    }

    /** Allocated variable-region sizes (blocks -> count). */
    std::map<unsigned, uint64_t> regionSizes;

    HintStats hints; ///< Static compiler statistics (Table 3).
    WorkloadInfo info;
};

/** Observability outputs for a run; empty paths disable each one. */
struct ObsOptions
{
    std::string statsJsonPath;   ///< Registry JSON export.
    std::string statsCsvPath;    ///< Registry CSV export.
    std::string tracePath;       ///< Prefetch lifecycle trace.
    int traceLevel = 1;          ///< Levels <= this are emitted.
    /** Trace encoding; Auto picks .grpbin binary for a ".grpbin"
     *  path, JSONL otherwise. */
    obs::TraceFormat traceFormat = obs::TraceFormat::Auto;
    std::string timeseriesPath;  ///< Queue/channel/MSHR trajectories.
    uint64_t timeseriesBucket = 4096; ///< Cycles between samples.
    std::string siteProfilePath; ///< Per-hint-site profile JSON.
    /** Print the top-N worst-offender sites to stdout (0 = off). */
    int siteReportTop = 0;
    bool dumpStats = false;      ///< Text dump to stdout at the end.
    /** Run the counterfactual shadow tags: classify every demand L2
     *  access as baseline miss / pollution miss / coverage hit and
     *  attribute pollution to the causing (site, hint class). Pure
     *  bookkeeping — never changes timing. */
    bool shadow = false;
    /** Print the counterfactual cost report (classification totals,
     *  per-channel cycle breakdown, worst sites by net cycles) to
     *  stdout; implies shadow and enables the site profiler. */
    bool costReport = false;
    /** Print the adaptive controller's end-of-run state report
     *  (epochs, transitions per knob, time-in-state per class).
     *  Rejected (fatal) when the scheme has no controller. */
    bool adaptiveReport = false;
    /** Host-profiler JSON report path ("-" writes to stdout); empty
     *  disables the report (profiling may still be on via
     *  GRP_HOST_PROF, surfacing through the hostProf.* stat group). */
    std::string hostProfPath;
    /** Runtime host-profiling level for this run (0 disables, 1 run
     *  lifecycle, 2 adds the hot-loop phases); -1 inherits the
     *  thread's level, seeded from GRP_HOST_PROF. */
    int hostProfLevel = -1;
    /** Live-telemetry sidecar (obs/pulse.hh) owned by this run;
     *  empty disables it. Independent of $GRP_PULSE, which instead
     *  multiplexes every run in the process onto one shared
     *  stream. */
    std::string pulsePath;
    /** Beat cadence and watchdog thresholds for the pulse stream. */
    PulseConfig pulse;
    /** Append a provenance block (harness/provenance.hh) to the
     *  stats JSON export. Off by default so existing artefacts stay
     *  byte-identical; grpsim turns it on. */
    bool statsProvenance = false;
};

/** Options for a run. */
struct RunOptions
{
    uint64_t maxInstructions = 1'000'000;
    /** Instructions executed before statistics are reset (cold-start
     *  discard, the role SimPoint plays in the paper). Defaults to
     *  maxInstructions / 4 when left at ~0. */
    uint64_t warmupInstructions = ~0ull;
    uint64_t seed = 42;
    /** Record the CPU's dynamic access stream to this .grpbin file
     *  (kind-1 container, see harness/capture.hh); empty disables. */
    std::string capturePath;
    /** Re-drive the run from a recorded access capture instead of
     *  the interpreter. The capture's (workload, seed) meta must
     *  match this run's, or the run aborts: replaying against a
     *  different functional memory would silently produce garbage. */
    std::string replayPath;
    /**
     * Shared in-memory run context (harness/replay.hh): the run
     * reuses the recording's built workload, functional memory, hint
     * table and recorded access stream instead of rebuilding them.
     * The recording's (workload, seed, policy, L2 size) key must
     * match this run's, or the run aborts. Mutually exclusive with
     * capturePath / replayPath. BenchSweep injects this for grid
     * jobs; null preserves the standalone build-everything path.
     */
    std::shared_ptr<SweepRecording> recording;
    ObsOptions obs;
};

/**
 * Simulate @p workload_name under @p config.
 *
 * The compiler pipeline always runs (its statistics are reported
 * regardless), but the CPU executes the hinted binary only for
 * hint-consuming schemes, matching the paper's methodology of
 * separate binaries.
 */
RunResult runWorkload(const std::string &workload_name,
                      SimConfig config, const RunOptions &options);

/** Read GRP_INSTRUCTIONS from the environment (default @p fallback);
 *  lets bench binaries scale their windows without recompiling. */
uint64_t instructionBudget(uint64_t fallback = 1'000'000);

} // namespace grp

#endif // GRP_HARNESS_RUNNER_HH
