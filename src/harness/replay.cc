#include "harness/replay.hh"

#include <algorithm>

#include "workloads/predecode.hh"
#include "workloads/workload.hh"

namespace grp
{

namespace
{

/** A per-job cursor over a shared recording. Reads are borrowed
 *  spans of the recording's chunk storage — no per-reader buffer and
 *  no copy; a handful of lock acquisitions per simulated run. */
class RecordingReader : public TraceSource
{
  public:
    explicit RecordingReader(std::shared_ptr<SweepRecording> rec)
        : rec_(std::move(rec))
    {
    }

    bool
    next(TraceOp &op) override
    {
        if (pos_ == len_ && !refill())
            return false; // End of the recorded stream.
        op = span_[pos_++];
        return true;
    }

    size_t
    nextBatch(const TraceOp **ops) override
    {
        if (pos_ == len_ && !refill())
            return 0;
        *ops = span_ + pos_;
        const size_t run = len_ - pos_;
        pos_ = len_;
        return run;
    }

  private:
    bool
    refill()
    {
        len_ = rec_->fetchSpan(cursor_, &span_);
        cursor_ += len_;
        pos_ = 0;
        return len_ != 0;
    }
    std::shared_ptr<SweepRecording> rec_;
    uint64_t cursor_ = 0; ///< Absolute position of the next refill.
    const TraceOp *span_ = nullptr;
    size_t pos_ = 0;
    size_t len_ = 0;
};

} // namespace

SweepRecording::SweepRecording(std::string workload, uint64_t seed,
                               uint64_t l2_bytes)
    : workload_(std::move(workload)), seed_(seed), l2Bytes_(l2_bytes)
{
}

void
SweepRecording::ensureBuilt()
{
    std::call_once(buildOnce_, [this] {
        prog_.emplace(makeWorkload(workload_)->build(fmem_, seed_));
        // Only the policy-independent IR transform runs here; the
        // per-policy analyses build lazily in policyHints(), so the
        // program — and the op stream interpreted from it — is
        // shared by every policy in the sweep.
        indirect_ = HintGenerator::transform(*prog_);
        source_ = makeTraceSource(*prog_, fmem_, seed_);
    });
}

SweepRecording::PolicyHints &
SweepRecording::policyHints(CompilerPolicy policy)
{
    ensureBuilt();
    PolicyHints *entry;
    {
        std::lock_guard<std::mutex> lock(hintsMu_);
        entry = &hintsByPolicy_[static_cast<int>(policy)];
    }
    std::call_once(entry->once, [this, entry, policy] {
        HintGenerator generator(policy, l2Bytes_);
        entry->stats =
            generator.analyze(*prog_, entry->table, indirect_);
    });
    return *entry;
}

FunctionalMemory &
SweepRecording::memory()
{
    ensureBuilt();
    return fmem_;
}

const HintTable &
SweepRecording::hints(CompilerPolicy policy)
{
    return policyHints(policy).table;
}

const HintStats &
SweepRecording::hintStats(CompilerPolicy policy)
{
    return policyHints(policy).stats;
}

std::unique_ptr<TraceSource>
SweepRecording::makeReader(std::shared_ptr<SweepRecording> self)
{
    return std::make_unique<RecordingReader>(std::move(self));
}

size_t
SweepRecording::fetchSpan(uint64_t begin, const TraceOp **ops)
{
    ensureBuilt();
    std::lock_guard<std::mutex> lock(mu_);
    // Extend the recording until it covers the chunk holding @p begin
    // (the generation cost is paid once across all readers; whoever
    // asks first generates for everyone). Readers still holding spans
    // are safe: appends land only past every span handed out so far.
    const uint64_t chunk_end = (begin / kChunkOps + 1) * kChunkOps;
    while (recorded_ < chunk_end && !exhausted_) {
        if (genPos_ == genLen_) {
            genLen_ = source_->nextBatch(&gen_);
            genPos_ = 0;
            if (genLen_ == 0) {
                exhausted_ = true;
                break;
            }
        }
        if (recorded_ == chunks_.size() * kChunkOps)
            chunks_.push_back(std::make_unique<TraceOp[]>(kChunkOps));
        const size_t at = recorded_ % kChunkOps;
        const size_t n =
            std::min(kChunkOps - at, genLen_ - genPos_);
        std::copy_n(gen_ + genPos_, n, chunks_.back().get() + at);
        genPos_ += n;
        recorded_ += n;
    }
    if (begin >= recorded_)
        return 0;
    *ops = chunks_[begin / kChunkOps].get() + begin % kChunkOps;
    return std::min<uint64_t>(recorded_, chunk_end) - begin;
}

uint64_t
SweepRecording::opsRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
}

} // namespace grp
