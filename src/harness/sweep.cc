#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>

#include "obs/pulse.hh"
#include "sim/env.hh"

namespace grp
{

namespace
{

SweepOutcome
executeJob(const SweepJob &job)
{
    SweepOutcome outcome;
    outcome.label = job.label;
    obs::HostProfiler &host_prof = obs::HostProfiler::instance();
    const bool profiling = host_prof.level() > 0;
    obs::HostProfile prof_base;
    if (profiling)
        prof_base = host_prof.snapshot();
    const auto start = std::chrono::steady_clock::now();
    // With $GRP_PULSE multiplexing the whole sweep onto one stream,
    // the runner tags this worker's records with the job label.
    obs::setPulseJobLabel(job.label);
    try {
        outcome.result = job.run();
    } catch (const std::exception &e) {
        outcome.failed = true;
        outcome.error = e.what();
    } catch (...) {
        outcome.failed = true;
        outcome.error = "unknown exception";
    }
    obs::setPulseJobLabel(std::string());
    outcome.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (profiling)
        outcome.hostProf = host_prof.snapshot().delta(prof_base);
    return outcome;
}

} // namespace

std::vector<SweepOutcome>
runSweep(std::vector<SweepJob> jobs, unsigned threads)
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;

    if (threads <= 1 || jobs.size() == 1) {
        // Serial mode: the calling thread runs every job in order —
        // bitwise the pre-executor behaviour.
        for (size_t i = 0; i < jobs.size(); ++i)
            outcomes[i] = executeJob(jobs[i]);
        return outcomes;
    }

    // Bounded pool. Workers claim the next unclaimed job index; each
    // outcome lands in its job's slot, so result order is job order
    // regardless of which worker finishes when.
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            outcomes[i] = executeJob(jobs[i]);
        }
    };

    const size_t pool =
        std::min<size_t>(threads, jobs.size());
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (size_t t = 0; t < pool; ++t)
        workers.emplace_back(worker);
    for (std::thread &w : workers)
        w.join();
    return outcomes;
}

std::vector<SweepOutcome>
runSweep(std::vector<SweepJob> jobs)
{
    return runSweep(std::move(jobs), defaultSweepThreads());
}

unsigned
defaultSweepThreads()
{
    // 0 (and unset) defer to the machine's concurrency; anything
    // non-numeric is a fatal diagnostic, not a silent serial run.
    const uint64_t parsed = envInt("GRP_BENCH_THREADS", 0);
    if (parsed > 0)
        return static_cast<unsigned>(parsed);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace grp
