/**
 * @file
 * Recording and replaying the CPU's dynamic access stream.
 *
 * CaptureTraceSource tees the ops an inner TraceSource (normally the
 * IR interpreter) produces into a kind-1 (Access) .grpbin container:
 * every Load/Store/IndirectPrefetch with its RefId, with runs of
 * Compute ops collapsed into one counted record — on pointer-chasing
 * workloads most dynamic instructions are compute padding, so the
 * run-length batching is what keeps captures compact. The container's
 * meta block pins the (workload, seed) pair the stream came from.
 *
 * ReplayTraceSource is the inverse: it re-drives the simulated memory
 * system from a recorded stream instead of the interpreter. Because
 * the interpreter never writes functional memory during execution
 * (Workload::build populates it up front), a replay against the same
 * (workload, seed) reproduces the live run's mem.* counters exactly —
 * and the stream is scheme-independent (IndirectPrefetch ops are
 * always recorded; the CPU filters them by scheme), so one capture
 * can drive sweeps across prefetch configurations.
 */

#ifndef GRP_HARNESS_CAPTURE_HH
#define GRP_HARNESS_CAPTURE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cpu/trace.hh"
#include "obs/bintrace.hh"

namespace grp
{

/** Access-stream record tags (string table 0 of kind-1 containers). */
enum class AccessTag : uint8_t
{
    ComputeRun = 0,       ///< payload: varint run length.
    Load = 1,             ///< payload: varint refId, varint addr.
    Store = 2,            ///< payload: varint refId, varint addr.
    IndirectPrefetch = 3, ///< payload: varint refId, varint indexAddr,
                          ///< varint base, varint elemSize.
};

/** Tees a TraceSource into a .grpbin access capture. */
class CaptureTraceSource : public TraceSource
{
  public:
    /**
     * Capture @p inner's stream to @p path (written as "<path>.tmp",
     * published by rename when the capture closes — a killed run
     * leaves only the .tmp behind). @p workload and @p seed go into
     * the container meta so replay can refuse mismatched configs.
     * Failure to open the file is fatal: a silently dropped capture
     * is worse than a stopped run.
     */
    CaptureTraceSource(TraceSource &inner, const std::string &path,
                       const std::string &workload, uint64_t seed);
    ~CaptureTraceSource() override;

    CaptureTraceSource(const CaptureTraceSource &) = delete;
    CaptureTraceSource &operator=(const CaptureTraceSource &) = delete;

    bool next(TraceOp &op) override;

    /** Flush, finalize and publish the capture (also runs on
     *  destruction). No ops may be pulled afterwards. */
    void close();

    uint64_t opsCaptured() const { return ops_; }

  private:
    void flushComputeRun();

    TraceSource &inner_;
    std::string publishPath_;
    std::FILE *out_ = nullptr;
    std::unique_ptr<char[]> iobuf_;
    std::unique_ptr<obs::bintrace::Writer> writer_;
    uint64_t computeRun_ = 0; ///< Pending batched Compute ops.
    uint64_t ops_ = 0;        ///< Ops seen (the stream's position key).
};

/** Replays a recorded .grpbin access capture as a TraceSource. */
class ReplayTraceSource : public TraceSource
{
  public:
    /** Loads and validates @p path. Fatal when the file is missing,
     *  not an access capture, or truncated (unfinalized): replaying a
     *  damaged stream would silently produce wrong statistics. */
    explicit ReplayTraceSource(const std::string &path);

    bool next(TraceOp &op) override;

    /** The capture's recorded workload name / RNG seed. */
    const std::string &workload() const { return workload_; }
    uint64_t seed() const { return seed_; }

    /** Total ops in the capture (from the finalize footer). */
    uint64_t totalOps() const { return totalOps_; }

  private:
    std::string data_;
    const uint8_t *cursor_ = nullptr;
    const uint8_t *end_ = nullptr;
    uint64_t pendingCompute_ = 0;
    uint64_t decoded_ = 0; ///< Ops handed out (error reporting).
    std::string workload_;
    uint64_t seed_ = 0;
    uint64_t totalOps_ = 0;
};

} // namespace grp

#endif // GRP_HARNESS_CAPTURE_HH
