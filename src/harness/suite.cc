#include "harness/suite.hh"

#include <cstdlib>
#include <filesystem>

#include "sim/logging.hh"

namespace grp
{

std::vector<std::string>
perfSuite()
{
    std::vector<std::string> names;
    for (const std::string &name : workloadNames()) {
        if (makeWorkload(name)->info().negligibleL2)
            continue;
        names.push_back(name);
    }
    return names;
}

std::vector<std::string>
intSuite()
{
    std::vector<std::string> names;
    for (const std::string &name : perfSuite()) {
        if (!makeWorkload(name)->info().isFloat)
            names.push_back(name);
    }
    return names;
}

std::vector<std::string>
fpSuite()
{
    std::vector<std::string> names;
    for (const std::string &name : perfSuite()) {
        if (makeWorkload(name)->info().isFloat)
            names.push_back(name);
    }
    return names;
}

RunResult
runScheme(const std::string &name, PrefetchScheme scheme,
          const RunOptions &options, CompilerPolicy policy)
{
    SimConfig config;
    config.scheme = scheme;
    config.policy = policy;
    return runWorkload(name, config, options);
}

RunResult
runPerfect(const std::string &name, Perfection perfection,
           const RunOptions &options)
{
    SimConfig config;
    config.perfection = perfection;
    return runWorkload(name, config, options);
}

double
speedup(const RunResult &run, const RunResult &base)
{
    return base.ipc > 0.0 ? run.ipc / base.ipc : 0.0;
}

double
trafficRatio(const RunResult &run, const RunResult &base)
{
    return base.trafficBytes
               ? static_cast<double>(run.trafficBytes) /
                     static_cast<double>(base.trafficBytes)
               : 0.0;
}

double
gapFromPerfect(const RunResult &run, const RunResult &perfect)
{
    if (perfect.ipc <= 0.0)
        return 0.0;
    return 100.0 * (1.0 - run.ipc / perfect.ipc);
}

std::string
benchOutPath(const std::string &name)
{
    const char *env = std::getenv("GRP_BENCH_OUT");
    std::filesystem::path dir = env && *env ? env : ".";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        warn("cannot create %s: %s", dir.string().c_str(),
             ec.message().c_str());
    return (dir / (name + ".json")).string();
}

} // namespace grp
