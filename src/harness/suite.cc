#include "harness/suite.hh"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "harness/replay.hh"
#include "obs/host_prof.hh"
#include "obs/json_writer.hh"
#include "sim/env.hh"
#include "sim/logging.hh"

// Build provenance baked in by src/CMakeLists.txt; the fallbacks keep
// out-of-tree builds (tests compiling suite.cc directly) working.
#ifndef GRP_BUILD_COMPILER
#define GRP_BUILD_COMPILER "unknown"
#endif
#ifndef GRP_BUILD_TYPE
#define GRP_BUILD_TYPE "unknown"
#endif
#ifndef GRP_BUILD_FLAGS
#define GRP_BUILD_FLAGS ""
#endif

namespace grp
{

namespace
{

/** Per-job host-profile block for the timing sidecar (emitted only
 *  when the job ran with profiling on). */
void
writeHostProfJson(obs::JsonWriter &json, const obs::HostProfile &prof)
{
    json.beginObject();
    json.kv("level", prof.level);
    json.key("phases");
    json.beginObject();
    for (size_t i = 0; i < obs::kNumHostPhases; ++i) {
        const obs::HostPhaseTotals &totals = prof.phases[i];
        if (!totals.calls)
            continue;
        json.key(obs::toString(static_cast<obs::HostPhase>(i)));
        json.beginObject();
        json.kv("totalNanos", totals.totalNanos);
        json.kv("selfNanos", totals.selfNanos);
        json.kv("calls", totals.calls);
        json.endObject();
    }
    json.endObject();
    json.kv("selfSumNanos", prof.selfSumNanos());
    json.kv("allocCount", prof.allocCount);
    json.kv("allocBytes", prof.allocBytes);
    json.kv("freeCount", prof.freeCount);
    json.kv("peakRssKb", prof.peakRssKb);
    json.endObject();
}

} // namespace

std::vector<std::string>
perfSuite()
{
    std::vector<std::string> names;
    for (const std::string &name : workloadNames()) {
        if (makeWorkload(name)->info().negligibleL2)
            continue;
        names.push_back(name);
    }
    return names;
}

std::vector<std::string>
intSuite()
{
    std::vector<std::string> names;
    for (const std::string &name : perfSuite()) {
        if (!makeWorkload(name)->info().isFloat)
            names.push_back(name);
    }
    return names;
}

std::vector<std::string>
fpSuite()
{
    std::vector<std::string> names;
    for (const std::string &name : perfSuite()) {
        if (makeWorkload(name)->info().isFloat)
            names.push_back(name);
    }
    return names;
}

RunResult
runScheme(const std::string &name, PrefetchScheme scheme,
          const RunOptions &options, CompilerPolicy policy)
{
    SimConfig config;
    config.scheme = scheme;
    config.policy = policy;
    return runWorkload(name, config, options);
}

RunResult
runPerfect(const std::string &name, Perfection perfection,
           const RunOptions &options)
{
    SimConfig config;
    config.perfection = perfection;
    return runWorkload(name, config, options);
}

double
speedup(const RunResult &run, const RunResult &base)
{
    return base.ipc > 0.0 ? run.ipc / base.ipc : 0.0;
}

double
trafficRatio(const RunResult &run, const RunResult &base)
{
    return base.trafficBytes
               ? static_cast<double>(run.trafficBytes) /
                     static_cast<double>(base.trafficBytes)
               : 0.0;
}

double
gapFromPerfect(const RunResult &run, const RunResult &perfect)
{
    if (perfect.ipc <= 0.0)
        return 0.0;
    return 100.0 * (1.0 - run.ipc / perfect.ipc);
}

std::string
benchOutPath(const std::string &name)
{
    const char *env = std::getenv("GRP_BENCH_OUT");
    std::filesystem::path dir = env && *env ? env : ".";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        warn("cannot create %s: %s", dir.string().c_str(),
             ec.message().c_str());
    return (dir / (name + ".json")).string();
}

BenchSweep::BenchSweep(std::string bench_name)
    : name_(std::move(bench_name)),
      replayEnabled_(envInt("GRP_SWEEP_REPLAY", 1) != 0)
{
}

std::shared_ptr<SweepRecording>
BenchSweep::recordingFor(const std::string &name, uint64_t seed)
{
    if (!replayEnabled_)
        return nullptr;
    auto key = std::make_pair(name, seed);
    auto it = recordings_.find(key);
    if (it != recordings_.end())
        return it->second;
    // addScheme/addPerfect always run under the default SimConfig
    // cache geometry, so the recording targets the default L2; the
    // runner re-validates the match per job. The compiler policy is
    // deliberately not part of the key: the op stream is
    // policy-independent and the recording builds per-policy hint
    // tables on demand, so a policy sweep (sens_compiler) interprets
    // each workload once instead of once per policy.
    auto rec = std::make_shared<SweepRecording>(
        name, seed, SimConfig{}.l2.sizeBytes);
    recordings_.emplace(std::move(key), rec);
    return rec;
}

size_t
BenchSweep::add(std::string label, std::function<RunResult()> job)
{
    jobs_.push_back(SweepJob{std::move(label), std::move(job)});
    return jobs_.size() - 1;
}

size_t
BenchSweep::addScheme(const std::string &name, PrefetchScheme scheme,
                      const RunOptions &options, CompilerPolicy policy)
{
    std::string label = name + "/" + toString(scheme);
    if (policy != CompilerPolicy::Default)
        label += std::string("/") + toString(policy);
    RunOptions opts = options;
    if (opts.capturePath.empty() && opts.replayPath.empty())
        opts.recording = recordingFor(name, opts.seed);
    return add(std::move(label),
               [name, scheme, opts = std::move(opts), policy] {
                   return runScheme(name, scheme, opts, policy);
               });
}

size_t
BenchSweep::addPerfect(const std::string &name, Perfection perfection,
                       const RunOptions &options)
{
    RunOptions opts = options;
    if (opts.capturePath.empty() && opts.replayPath.empty()) {
        opts.recording = recordingFor(name, opts.seed);
    }
    return add(name + "/" + toString(perfection),
               [name, perfection, opts = std::move(opts)] {
                   return runPerfect(name, perfection, opts);
               });
}

size_t
BenchSweep::addConfig(std::string label, const std::string &name,
                      const SimConfig &config,
                      const RunOptions &options)
{
    RunOptions opts = options;
    if (opts.capturePath.empty() && opts.replayPath.empty() &&
        config.l2.sizeBytes == SimConfig{}.l2.sizeBytes)
        opts.recording = recordingFor(name, opts.seed);
    return add(std::move(label),
               [name, config, opts = std::move(opts)] {
                   return runWorkload(name, config, opts);
               });
}

void
BenchSweep::run()
{
    threads_ = defaultSweepThreads();
    const auto start = std::chrono::steady_clock::now();
    outcomes_ = runSweep(std::move(jobs_), threads_);
    totalWallSeconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    jobs_.clear();
    recordings_.clear(); // Drop the shared streams' memory.
    for (size_t i = 0; i < outcomes_.size(); ++i) {
        fatal_if(outcomes_[i].failed, "bench %s job %zu failed: %s",
                 name_.c_str(), i, outcomes_[i].error.c_str());
    }
    writeTimings();
}

const RunResult &
BenchSweep::result(size_t index) const
{
    fatal_if(index >= outcomes_.size(),
             "bench %s: result(%zu) out of range (ran %zu jobs)",
             name_.c_str(), index, outcomes_.size());
    return outcomes_[index].result;
}

void
BenchSweep::writeTimings() const
{
    // Timing is non-deterministic by nature, so it lives in a sidecar
    // next to (never inside) the bench's comparable artefact;
    // bench_manifest.py finish folds the sidecars into manifest.json.
    const char *env = std::getenv("GRP_BENCH_OUT");
    std::filesystem::path dir = env && *env ? env : ".";
    dir /= "timings";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cannot create %s: %s", dir.string().c_str(),
             ec.message().c_str());
        return;
    }
    const std::filesystem::path path = dir / (name_ + ".json");
    std::ofstream file(path);
    if (!file) {
        warn("cannot write %s", path.string().c_str());
        return;
    }

    uint64_t instructions = 0;
    for (const SweepOutcome &outcome : outcomes_)
        instructions += outcome.result.instructions;

    obs::JsonWriter json(file);
    json.beginObject();
    json.kv("schema", "grp-bench-timing-v2");
    json.kv("bench", name_);
    json.kv("threads", threads_);
    // Host provenance: timing numbers are only comparable between
    // sidecars that agree here (perf_compare.py downgrades failures
    // to warnings across provenance mismatches).
    json.key("provenance");
    json.beginObject();
    json.kv("compiler", GRP_BUILD_COMPILER);
    json.kv("buildType", GRP_BUILD_TYPE);
    json.kv("cxxFlags", GRP_BUILD_FLAGS);
    json.kv("hostProfMaxLevel", GRP_HOST_PROF_MAX_LEVEL);
    json.kv("hostProfLevel", obs::HostProfiler::envLevel());
    // Present only when GRP_TRACE_ALL forced tracing on (overhead
    // measurement runs); absent means tracing-off, so committed
    // baselines keep matching unforced runs byte-for-byte.
    if (const char *forced = std::getenv("GRP_TRACE_ALL");
        forced && *forced) {
        const char *format = std::getenv("GRP_TRACE_FORMAT");
        const bool jsonl = format && std::string(format) == "jsonl";
        const char *level = std::getenv("GRP_TRACE_LEVEL");
        std::string mode = jsonl ? "jsonl" : "bin";
        mode += "-L";
        mode += (level && *level) ? level : "1";
        json.kv("traceMode", mode);
    }
    json.endObject();
    json.kv("totalWallSeconds", totalWallSeconds_);
    json.kv("simulatedInstructions", instructions);
    json.kv("instructionsPerSecond",
            totalWallSeconds_ > 0.0
                ? static_cast<double>(instructions) / totalWallSeconds_
                : 0.0);
    json.key("jobs");
    json.beginArray();
    for (const SweepOutcome &outcome : outcomes_) {
        json.beginObject();
        json.kv("label", outcome.label);
        json.kv("wallSeconds", outcome.wallSeconds);
        json.kv("instructions", outcome.result.instructions);
        json.kv("instructionsPerSecond",
                outcome.wallSeconds > 0.0
                    ? static_cast<double>(outcome.result.instructions) /
                          outcome.wallSeconds
                    : 0.0);
        if (outcome.hostProf.enabled()) {
            json.key("hostProf");
            writeHostProfJson(json, outcome.hostProf);
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace grp
