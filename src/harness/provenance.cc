#include "harness/provenance.hh"

#include <cstdio>

#include "mem/dram_backend/factory.hh"
#include "obs/json_writer.hh"

// Build provenance baked in by src/CMakeLists.txt; the fallbacks keep
// non-CMake builds (IDE indexers) compiling.
#ifndef GRP_BUILD_COMPILER
#define GRP_BUILD_COMPILER "unknown"
#endif
#ifndef GRP_BUILD_TYPE
#define GRP_BUILD_TYPE "unknown"
#endif
#ifndef GRP_BUILD_FLAGS
#define GRP_BUILD_FLAGS ""
#endif
#ifndef GRP_GIT_SHA
#define GRP_GIT_SHA "unknown"
#endif

namespace grp
{

BuildProvenance
buildProvenance()
{
    return {GRP_GIT_SHA, GRP_BUILD_COMPILER, GRP_BUILD_TYPE,
            GRP_BUILD_FLAGS};
}

namespace
{

class Fnv1a
{
  public:
    void
    mix(uint64_t value)
    {
        for (int byte = 0; byte < 8; ++byte) {
            hash_ ^= (value >> (8 * byte)) & 0xFF;
            hash_ *= 0x100000001b3ull;
        }
    }

    void
    mix(double value)
    {
        // Canonicalise through a fixed decimal rendering rather than
        // raw bits, so an equal-valued config hashes equally across
        // compilers that constant-fold differently.
        char text[64];
        std::snprintf(text, sizeof(text), "%.17g", value);
        for (const char *p = text; *p; ++p) {
            hash_ ^= static_cast<unsigned char>(*p);
            hash_ *= 0x100000001b3ull;
        }
    }

    uint64_t value() const { return hash_; }

  private:
    uint64_t hash_ = 0xcbf29ce484222325ull;
};

} // namespace

uint64_t
configHash(const SimConfig &config)
{
    Fnv1a h;
    // Field order is the canonical serialisation — append new fields
    // at the end of their struct's run so existing hashes only change
    // when a value does.
    const auto cache = [&h](const CacheConfig &c) {
        h.mix(c.sizeBytes);
        h.mix(uint64_t(c.assoc));
        h.mix(uint64_t(c.latency));
        h.mix(uint64_t(c.mshrs));
        h.mix(uint64_t(c.mshrTargets));
    };
    cache(config.l1d);
    cache(config.l2);
    h.mix(uint64_t(config.dram.channels));
    h.mix(uint64_t(config.dram.banksPerChannel));
    h.mix(uint64_t(config.dram.rowBytes));
    h.mix(uint64_t(config.dram.rowHitCycles));
    h.mix(uint64_t(config.dram.rowConflictCycles));
    h.mix(uint64_t(config.dram.transferCycles));
    // The backend name participates only when it is not the default
    // legacy model (resolve it before hashing), so every pre-backend
    // hash — and with it every committed baseline — is unchanged.
    {
        const std::string resolved =
            resolveDramBackendName(config.dram.backend);
        if (resolved != "legacy") {
            for (const char c : resolved) {
                h.mix(uint64_t(static_cast<unsigned char>(c)));
            }
        }
    }
    h.mix(uint64_t(config.cpu.issueWidth));
    h.mix(uint64_t(config.cpu.retireWidth));
    h.mix(uint64_t(config.cpu.robEntries));
    h.mix(uint64_t(config.cpu.computeLatency));
    h.mix(uint64_t(config.region.queueEntries));
    h.mix(uint64_t(config.region.lifo));
    h.mix(uint64_t(config.region.lruInsertion));
    h.mix(uint64_t(config.region.bankAware));
    h.mix(uint64_t(config.region.recursiveDepth));
    h.mix(uint64_t(config.region.blocksPerPointer));
    h.mix(uint64_t(config.region.indirectFanout));
    h.mix(config.adaptive.epochCycles);
    h.mix(config.adaptive.accuracyHigh);
    h.mix(config.adaptive.accuracyLow);
    h.mix(config.adaptive.pollutionHigh);
    h.mix(config.adaptive.idleHigh);
    h.mix(config.adaptive.idleLow);
    h.mix(config.adaptive.occupancyHigh);
    h.mix(uint64_t(config.adaptive.hysteresisEpochs));
    h.mix(config.adaptive.minEpochFills);
    h.mix(uint64_t(config.stride.tableEntries));
    h.mix(uint64_t(config.stride.tableAssoc));
    h.mix(uint64_t(config.stride.streamBuffers));
    h.mix(uint64_t(config.stride.bufferEntries));
    h.mix(uint64_t(config.stride.trainThreshold));
    h.mix(uint64_t(static_cast<int>(config.scheme)));
    h.mix(uint64_t(static_cast<int>(config.perfection)));
    h.mix(uint64_t(static_cast<int>(config.policy)));
    h.mix(config.maxInstructions);
    return h.value();
}

void
writeProvenance(obs::JsonWriter &json, const SimConfig &config)
{
    const BuildProvenance build = buildProvenance();
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  (unsigned long long)configHash(config));
    json.beginObject();
    json.kv("gitSha", build.gitSha);
    json.kv("compiler", build.compiler);
    json.kv("buildType", build.buildType);
    json.kv("cxxFlags", build.cxxFlags);
    json.kv("configHash", hash);
    json.kv("scheme", toString(config.scheme));
    json.kv("policy", toString(config.policy));
    json.endObject();
}

} // namespace grp
