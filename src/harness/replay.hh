/**
 * @file
 * In-memory sweep replay: the shared once-per-(workload, seed,
 * policy) run context that lets a bench sweep re-drive every scheme
 * point from one recorded access stream.
 *
 * A sweep's grid typically crosses a handful of workloads with many
 * scheme/perfection points, and at bench-sized instruction windows
 * the per-job cost is dominated by setup — Workload::build populating
 * functional memory, the compiler pipeline, and interpreter-driven op
 * generation — all of which are pure functions of (workload, seed,
 * policy) and independent of the simulated hardware configuration.
 * SweepRecording computes each of them exactly once and shares the
 * results across every job in the grid:
 *
 *  - the built Program and FunctionalMemory (read-only after build:
 *    the interpreter and the prefetch engines only ever read values,
 *    so concurrent jobs can share one copy),
 *  - the hint table and static hint statistics for the recording's
 *    compiler policy,
 *  - the dynamic access stream, recorded lazily from one interpreter
 *    and replayed to every job through cheap cursor TraceSources.
 *
 * The stream is scheme-independent (IndirectPrefetch ops are always
 * emitted; the CPU filters them by scheme), so one recording drives
 * the whole grid, exactly like an on-disk --capture/--replay pair —
 * but with no file, no serialization, and shared setup. Jobs pulling
 * past the recorded end extend the recording on demand under a lock;
 * replayed results are byte-identical to interpreter-driven runs at
 * any thread count because the recorded stream is deterministic.
 */

#ifndef GRP_HARNESS_REPLAY_HH
#define GRP_HARNESS_REPLAY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "compiler/hint_generator.hh"
#include "compiler/ir.hh"
#include "core/hint_table.hh"
#include "cpu/trace.hh"
#include "mem/functional_memory.hh"
#include "sim/config.hh"

namespace grp
{

/** Shared workload context + recorded access stream for one
 *  (workload, seed, l2 size) sweep key. The op stream is also
 *  compiler-policy-independent — only the policy-blind IR transform
 *  (HintGenerator::transform) writes the Program — so one recording
 *  drives a policy sweep too; per-policy hint tables build lazily on
 *  the side. Thread-safe: any number of sweep jobs may read
 *  concurrently. */
class SweepRecording
{
  public:
    /**
     * Declare the recording's key. Construction is cheap: the
     * workload build, compiler pipeline and interpreter are created
     * lazily by the first accessor, so recordings can be handed out
     * while a bench queues jobs and the (one-time) setup cost lands
     * on whichever worker thread first needs it.
     *
     * @param l2_bytes L2 capacity the compiler pipeline targets; part
     *        of the key because reuse-distance analysis depends on it.
     */
    SweepRecording(std::string workload, uint64_t seed,
                   uint64_t l2_bytes);

    SweepRecording(const SweepRecording &) = delete;
    SweepRecording &operator=(const SweepRecording &) = delete;

    const std::string &workload() const { return workload_; }
    uint64_t seed() const { return seed_; }
    uint64_t l2Bytes() const { return l2Bytes_; }

    /** The shared functional memory (builds on first use). Read-only
     *  by contract: nothing writes functional memory after
     *  Workload::build, which is what makes sharing sound. */
    FunctionalMemory &memory();

    /** Hint table for @p policy (builds on first use; cached per
     *  policy so a policy sweep pays each analysis once). */
    const HintTable &hints(CompilerPolicy policy);

    /** Static compiler statistics for @p policy (Table 3 row; builds
     *  with the table on first use). */
    const HintStats &hintStats(CompilerPolicy policy);

    /**
     * A cursor over the recorded stream, replaying it op-for-op from
     * the beginning. Each job gets its own reader; readers share the
     * recording through @p self and extend it on demand when they
     * pull past the recorded end.
     */
    static std::unique_ptr<TraceSource>
    makeReader(std::shared_ptr<SweepRecording> self);

    /**
     * Borrow a read-only span of the recorded stream starting at
     * absolute position @p begin, generating more ops from the
     * interpreter if the recording is shorter. Sets @p *ops and
     * returns the run length (0 only at end of stream). The span
     * stays valid for the recording's lifetime even while other
     * readers extend it: chunk storage never moves, and writers only
     * append past the returned run. (Readers call this in batches;
     * exposed for tests.)
     */
    size_t fetchSpan(uint64_t begin, const TraceOp **ops);

    /** Ops recorded so far (monotone; for tests/telemetry). */
    uint64_t opsRecorded() const;

  private:
    void ensureBuilt();

    /** One policy's lazily built analysis products. */
    struct PolicyHints
    {
        HintTable table;
        HintStats stats;
        std::once_flag once;
    };
    PolicyHints &policyHints(CompilerPolicy policy);

    const std::string workload_;
    const uint64_t seed_;
    const uint64_t l2Bytes_;

    std::once_flag buildOnce_;
    FunctionalMemory fmem_;
    /** Kept alive for the interpreter (the tree walker holds a
     *  reference into it). */
    std::optional<Program> prog_;
    /** HintGenerator::transform's indirect count (feeds every
     *  policy's stats row). */
    unsigned indirect_ = 0;
    /** Per-policy hint tables, built on first request. Guarded by
     *  hintsMu_ for the map itself; each entry's once flag serializes
     *  its build. Entries are stable (std::map) so returned
     *  references outlive later insertions. */
    std::map<int, PolicyHints> hintsByPolicy_;
    std::mutex hintsMu_;
    std::unique_ptr<TraceSource> source_;

    /** Chunk granularity of the recorded stream (ops per chunk). */
    static constexpr size_t kChunkOps = 4096;

    mutable std::mutex mu_;
    /** Recorded stream in fixed-size chunks (guarded by mu_). Chunk
     *  storage never moves once allocated, which is what lets
     *  fetchSpan hand out stable pointers instead of copying. */
    std::vector<std::unique_ptr<TraceOp[]>> chunks_;
    uint64_t recorded_ = 0;  ///< Ops recorded so far (guarded by mu_).
    bool exhausted_ = false; ///< source_ returned end-of-trace.
    /** Leftover interpreter batch carried across fetchSpan calls. */
    const TraceOp *gen_ = nullptr;
    size_t genPos_ = 0;
    size_t genLen_ = 0;
};

} // namespace grp

#endif // GRP_HARNESS_REPLAY_HH
