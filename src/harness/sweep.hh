/**
 * @file
 * Parallel sweep execution for the bench harness.
 *
 * A sweep is an ordered list of independent simulation jobs (one
 * (workload, configuration) pair each). runSweep() executes them on a
 * bounded pool of worker threads and returns the outcomes in job
 * order, so callers consume results exactly as a serial loop would —
 * the artefacts a bench writes are byte-identical at any thread
 * count.
 *
 * Isolation: every job builds its own EventQueue, FunctionalMemory,
 * RNG (seeded from its RunOptions) and — after the registry-threading
 * refactor — its own StatRegistry, while the remaining per-thread
 * observability singletons (Tracer, SiteProfiler) are thread_local
 * and each job runs wholly on one thread. Jobs therefore share no
 * mutable state and their results cannot depend on scheduling.
 */

#ifndef GRP_HARNESS_SWEEP_HH
#define GRP_HARNESS_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "obs/host_prof.hh"

namespace grp
{

/** One simulation job in a sweep. */
struct SweepJob
{
    /** Identifies the job in timing sidecars ("mcf/GrpVar"). */
    std::string label;
    /** Runs the simulation; executed on a worker thread. Must not
     *  write to shared streams or mutate shared state. */
    std::function<RunResult()> run;
};

/** Result of one sweep job, in the order the jobs were submitted. */
struct SweepOutcome
{
    /** Copied from the job, so timing reports survive the job list. */
    std::string label;
    RunResult result;
    /** The job threw; result is default-constructed and error holds
     *  the exception message. */
    bool failed = false;
    std::string error;
    /** Wall-clock seconds this job took on its worker thread. */
    double wallSeconds = 0.0;
    /** Host-profiler delta over this job (the worker thread's
     *  profiler is thread_local, so concurrent jobs never mix).
     *  All-zero unless profiling was on — check hostProf.enabled(). */
    obs::HostProfile hostProf;
};

/**
 * Execute @p jobs on at most @p threads worker threads and return
 * one outcome per job, ordered by job index (NOT completion order).
 * threads <= 1 runs every job inline on the calling thread, exactly
 * reproducing a serial loop. Exceptions are captured per job; the
 * sweep always completes.
 */
std::vector<SweepOutcome> runSweep(std::vector<SweepJob> jobs,
                                   unsigned threads);

/** Convenience: runSweep(jobs, defaultSweepThreads()). */
std::vector<SweepOutcome> runSweep(std::vector<SweepJob> jobs);

/** Worker count benches use: $GRP_BENCH_THREADS if set and positive,
 *  else std::thread::hardware_concurrency() (min 1). */
unsigned defaultSweepThreads();

} // namespace grp

#endif // GRP_HARNESS_SWEEP_HH
