/**
 * @file
 * Build/run provenance for machine-readable artefacts.
 *
 * A stats export or bench sidecar is only comparable to another when
 * the code, toolchain and configuration behind them are known.
 * bench_manifest.py stamps this for committed bench artefacts from
 * the outside (git + config.hh bytes); this helper is the in-binary
 * equivalent, so `grpsim --provenance` and the `provenance` block of
 * `--stats-json` can answer "what exactly produced this file?" for
 * ad-hoc runs that never pass through the manifest tooling.
 *
 * The git SHA is stamped at CMake configure time (GRP_GIT_SHA); a
 * stale build directory can therefore lag the working tree, which is
 * exactly the situation the field exists to expose. The config hash
 * is FNV-1a over a canonical serialisation of the *runtime*
 * SimConfig values — it changes when any knob differs between two
 * runs, unlike the manifest's hash of the config.hh source bytes.
 */

#ifndef GRP_HARNESS_PROVENANCE_HH
#define GRP_HARNESS_PROVENANCE_HH

#include <cstdint>
#include <string>

#include "sim/config.hh"

namespace grp
{

namespace obs
{
class JsonWriter;
}

/** Compile-time identity of this binary. */
struct BuildProvenance
{
    std::string gitSha;    ///< Configure-time HEAD (may lag the tree).
    std::string compiler;  ///< "GNU 13.2.0"-style id + version.
    std::string buildType; ///< CMAKE_BUILD_TYPE.
    std::string cxxFlags;  ///< Effective optimisation flags.
};

BuildProvenance buildProvenance();

/** FNV-1a over every runtime SimConfig field, in a fixed canonical
 *  order. Two runs with equal hashes simulated the same machine. */
uint64_t configHash(const SimConfig &config);

/** Emit the provenance object (build identity + config hash +
 *  scheme/policy) as the *value* for an already-written key. */
void writeProvenance(obs::JsonWriter &json, const SimConfig &config);

} // namespace grp

#endif // GRP_HARNESS_PROVENANCE_HH
