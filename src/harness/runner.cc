#include "harness/runner.hh"

#include <cstdlib>

#include "core/engine_factory.hh"
#include "core/grp_engine.hh"
#include "cpu/cpu.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/interpreter.hh"

namespace grp
{

uint64_t
instructionBudget(uint64_t fallback)
{
    const char *env = std::getenv("GRP_INSTRUCTIONS");
    if (!env || !*env)
        return fallback;
    const long long parsed = std::atoll(env);
    return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

RunResult
runWorkload(const std::string &workload_name, SimConfig config,
            const RunOptions &options)
{
    auto workload = makeWorkload(workload_name);
    const WorkloadInfo info = workload->info();
    if (info.recursiveDepthOverride != 0)
        config.region.recursiveDepth = info.recursiveDepthOverride;
    config.validate();

    FunctionalMemory fmem;
    Program prog = workload->build(fmem, options.seed);

    HintTable table;
    HintGenerator generator(config.policy, config.l2.sizeBytes);
    const HintStats hint_stats = generator.run(prog, table);

    EventQueue events;
    MemorySystem mem(config, events);
    auto engine = makePrefetchEngine(config, fmem, mem);

    Interpreter interp(prog, fmem, options.seed);
    const HintTable *cpu_hints = config.usesHints() ? &table : nullptr;
    Cpu cpu(config, mem, events, interp, cpu_hints);

    const uint64_t warmup =
        options.warmupInstructions == ~0ull
            ? options.maxInstructions / 4
            : options.warmupInstructions;

    Tick cycle = 0;
    uint64_t warm_instructions = 0;
    uint64_t warm_cycles = 0;
    bool measuring = warmup == 0;
    while (!cpu.done() &&
           cpu.retiredInstructions() <
               options.maxInstructions + warmup) {
        events.advanceTo(cycle);
        cpu.tick();
        mem.tick();
        ++cycle;
        if (!measuring && cpu.retiredInstructions() >= warmup) {
            // End of warmup: discard cold-start statistics.
            mem.resetStats();
            if (engine.get())
                engine->stats().reset();
            warm_instructions = cpu.retiredInstructions();
            warm_cycles = cycle;
            measuring = true;
        }
    }

    RunResult result;
    result.workload = workload_name;
    result.scheme = config.scheme;
    result.perfection = config.perfection;
    result.info = info;
    result.instructions = cpu.retiredInstructions() - warm_instructions;
    result.cycles = cpu.cycles() - warm_cycles;
    result.ipc = result.cycles
                     ? static_cast<double>(result.instructions) /
                           static_cast<double>(result.cycles)
                     : 0.0;
    result.trafficBytes = mem.trafficBytes();
    result.l2DemandAccesses = mem.stats().value("l2DemandAccesses");
    result.l2MissesTotal = mem.stats().value("l2DemandMissesTotal");
    result.l2MissesToMemory = mem.l2DemandMisses();
    result.prefetchFills = mem.stats().value("prefetchFills");
    // Late prefetches (demand merged while in flight) are promoted
    // on fill and therefore already counted in the L2's prefetchHits.
    result.usefulPrefetches = mem.l2().stats().value("prefetchHits");
    result.hints = hint_stats;

    if (auto *grp_engine = dynamic_cast<GrpEngine *>(engine.get())) {
        const Distribution &sizes = grp_engine->regionSizes();
        for (unsigned blocks = 1; blocks <= kBlocksPerRegion;
             blocks <<= 1) {
            const uint64_t count = sizes.count(blocks);
            if (count)
                result.regionSizes[blocks] = count;
        }
    }
    return result;
}

} // namespace grp
