#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "adaptive/controller.hh"
#include "core/engine_factory.hh"
#include "core/grp_engine.hh"
#include "cpu/cpu.hh"
#include "harness/capture.hh"
#include "harness/provenance.hh"
#include "harness/replay.hh"
#include "mem/dram_backend/factory.hh"
#include "mem/memory_system.hh"
#include "obs/atomic_file.hh"
#include "obs/host_prof.hh"
#include "obs/json_writer.hh"
#include "obs/pulse.hh"
#include "obs/site_profile.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/env.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/predecode.hh"

namespace grp
{

namespace
{

/** Opens the global tracer for one run and guarantees it is closed
 *  (and unhooked from the run's clock) when the run ends. */
class ScopedTrace
{
  public:
    ScopedTrace(const ObsOptions &obs, const EventQueue &events,
                bool warming)
    {
        if (obs.tracePath.empty())
            return;
        obs::Tracer &tracer = obs::Tracer::instance();
        // open() warns on failure
        if (!tracer.open(obs.tracePath, obs.traceFormat))
            return;
        active_ = true;
        tracer.setLevel(obs.traceLevel);
        tracer.setClock(&events);
        tracer.setWarmup(warming);
    }

    ~ScopedTrace()
    {
        if (!active_)
            return;
        obs::Tracer &tracer = obs::Tracer::instance();
        tracer.setClock(nullptr);
        tracer.close();
    }

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

  private:
    bool active_ = false;
};

/** Enables the thread's site profiler for one run, registers its
 *  aggregate StatGroup into the run's registry so exports carry the
 *  totals, and disables + wipes it when the run ends. */
class ScopedSiteProfile
{
  public:
    ScopedSiteProfile(const ObsOptions &obs,
                      obs::StatRegistry &registry)
        : active_(!obs.siteProfilePath.empty() ||
                  obs.siteReportTop > 0 || obs.costReport)
    {
        if (!active_)
            return;
        obs::SiteProfiler &prof = obs::SiteProfiler::instance();
        prof.clear();
        prof.setEnabled(true);
        reg_.emplace(prof.stats(), registry);
    }

    ~ScopedSiteProfile()
    {
        if (!active_)
            return;
        obs::SiteProfiler &prof = obs::SiteProfiler::instance();
        prof.setEnabled(false);
        prof.clear();
    }

    ScopedSiteProfile(const ScopedSiteProfile &) = delete;
    ScopedSiteProfile &operator=(const ScopedSiteProfile &) = delete;

    bool active() const { return active_; }

  private:
    bool active_ = false;
    std::optional<obs::ScopedStatRegistration> reg_;
};

/** Applies one run's host-profiling level (an explicit
 *  ObsOptions::hostProfLevel overrides the thread's inherited level)
 *  and captures a baseline snapshot, so profile() reports this run's
 *  delta even when earlier runs on the thread already accumulated
 *  time. Restores the previous level on destruction. */
class ScopedHostProf
{
  public:
    explicit ScopedHostProf(const ObsOptions &obs)
        : prevLevel_(obs::HostProfiler::instance().level())
    {
        obs::HostProfiler &prof = obs::HostProfiler::instance();
        if (obs.hostProfLevel >= 0)
            prof.setLevel(obs.hostProfLevel);
        active_ = prof.level() > 0;
        if (active_)
            base_ = prof.snapshot();
    }

    ~ScopedHostProf()
    {
        obs::HostProfiler::instance().setLevel(prevLevel_);
    }

    ScopedHostProf(const ScopedHostProf &) = delete;
    ScopedHostProf &operator=(const ScopedHostProf &) = delete;

    bool active() const { return active_; }

    /** The profiler's delta since this run began. */
    obs::HostProfile
    profile() const
    {
        return obs::HostProfiler::instance().snapshot().delta(base_);
    }

  private:
    int prevLevel_;
    bool active_ = false;
    obs::HostProfile base_;
};

/** Folds a host profile into a registry-visible stat group: per-phase
 *  <phase>TotalNanos / <phase>SelfNanos / <phase>Calls for every
 *  phase that fired, plus the allocation and RSS aggregates. */
void
fillHostProfStats(StatGroup &group, const obs::HostProfile &profile)
{
    for (size_t i = 0; i < obs::kNumHostPhases; ++i) {
        const obs::HostPhaseTotals &totals = profile.phases[i];
        if (!totals.calls)
            continue;
        const std::string name =
            obs::toString(static_cast<obs::HostPhase>(i));
        group.counter(name + "TotalNanos") += totals.totalNanos;
        group.counter(name + "SelfNanos") += totals.selfNanos;
        group.counter(name + "Calls") += totals.calls;
    }
    group.counter("selfSumNanos") += profile.selfSumNanos();
    group.counter("allocCount") += profile.allocCount;
    group.counter("allocBytes") += profile.allocBytes;
    group.counter("freeCount") += profile.freeCount;
    group.counter("peakRssKb") += profile.peakRssKb;
    group.counter("level") += static_cast<uint64_t>(profile.level);
}

/** Writes the --host-prof JSON report ("-" streams to stdout). */
void
writeHostProfReport(const std::string &path,
                    const obs::HostProfile &profile)
{
    if (path == "-") {
        profile.writeJson(std::cout);
        std::cout << "\n";
        return;
    }
    obs::atomicWriteFile(
        path, [&profile](std::ostream &os) { profile.writeJson(os); },
        "host profile");
}

/** The counterfactual cost report: what prefetching destroyed
 *  (pollution, channel contention) next to what it earned
 *  (coverage), with per-site attribution when the profiler ran. */
void
printCostReport(std::ostream &os, MemorySystem &mem,
                const SimConfig &config, bool profiler_active)
{
    const StatGroup &ms = mem.stats();
    const uint64_t both = ms.value("pollutionBothHits");
    const uint64_t baseline = ms.value("pollutionBaselineMisses");
    const uint64_t pollution = ms.value("pollutionMisses");
    const uint64_t coverage = ms.value("pollutionCoverageHits");
    const uint64_t shadow_misses = ms.value("pollutionShadowMisses");
    const uint64_t real_misses = ms.value("l2DemandMissesTotal");

    os << "counterfactual cost report (shadow tags)\n";
    os << "  demand L2 accesses " << ms.value("l2DemandAccesses")
       << ": hit both " << both << ", baseline misses " << baseline
       << ", coverage hits " << coverage << ", pollution misses "
       << pollution << "\n";
    os << "  pollution attribution: " << ms.value("pollutionAttributed")
       << " charged to a site, " << ms.value("pollutionUnattributed")
       << " unattributed; victim table recorded "
       << ms.value("pollutionVictimsRecorded") << ", dropped "
       << ms.value("pollutionVictimDrops") << " (capacity "
       << mem.victimTable().capacity() << ")\n";
    os << "  identity: coverage - pollution = "
       << (static_cast<int64_t>(coverage) -
           static_cast<int64_t>(pollution))
       << ", shadow misses - real misses = "
       << (static_cast<int64_t>(shadow_misses) -
           static_cast<int64_t>(real_misses)) << "\n";

    os << "  channel cycles (demand/prefetch/writeback/idle):\n";
    for (unsigned ch = 0; ch < config.dram.channels; ++ch) {
        const DramBackend::ChannelCycles c = mem.dram().channelCycles(ch);
        os << "    ch" << ch << ": " << c.demand << " / " << c.prefetch
           << " / " << c.writeback << " / " << c.idle << " (total "
           << c.total() << ")\n";
    }
    os << "  demand request-cycles stalled behind prefetch transfers: "
       << mem.dram().stats().value("contentionDemandStallCycles")
       << "\n";

    if (!profiler_active)
        return;
    const obs::SiteProfiler &prof = obs::SiteProfiler::instance();
    const uint64_t penalty = prof.missPenalty();
    std::vector<
        const std::map<obs::SiteKey, obs::SiteCounters>::value_type *>
        order;
    for (const auto &item : prof.sites())
        order.push_back(&item);
    std::stable_sort(order.begin(), order.end(),
                     [penalty](const auto *a, const auto *b) {
                         return a->second.netCycles(penalty) <
                                b->second.netCycles(penalty);
                     });
    os << "  worst sites by net cycles (useful - pollution) * "
       << penalty << " - contention:\n";
    size_t shown = 0;
    for (const auto *item : order) {
        if (shown++ == 10)
            break;
        const obs::SiteKey &key = item->first;
        const obs::SiteCounters &site = item->second;
        os << "    site " << key.site() << " (" << toString(key.hint)
           << "): useful " << site.useful << ", pollution "
           << site.pollutionCaused << ", contention "
           << site.contentionCycles << ", net "
           << site.netCycles(penalty) << "\n";
    }
}

/**
 * Environment-forced tracing for overhead measurement: with
 * GRP_TRACE_ALL=<dir> set, every run that did not ask for a trace
 * writes one into <dir> anyway — which is how the bench suite prices
 * always-on flight recording without teaching every bench binary a
 * trace flag. GRP_TRACE_FORMAT (bin | jsonl, default bin) picks the
 * encoding and GRP_TRACE_LEVEL (default the ObsOptions default) the
 * level. Filenames carry the pid plus a process-wide counter so
 * concurrent sweep jobs and repeated runs never collide.
 */
void
applyForcedTrace(ObsOptions &obs)
{
    const char *dir = std::getenv("GRP_TRACE_ALL");
    if (!dir || !*dir || !obs.tracePath.empty())
        return;
    static std::atomic<uint64_t> counter{0};
    const char *format = std::getenv("GRP_TRACE_FORMAT");
    const bool jsonl = format && std::string(format) == "jsonl";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ostringstream path;
    path << dir << "/trace-" << getpid() << '-'
         << counter.fetch_add(1) << (jsonl ? ".jsonl" : ".grpbin");
    obs.tracePath = path.str();
    obs.traceLevel = static_cast<int>(envInt(
        "GRP_TRACE_LEVEL", static_cast<uint64_t>(obs.traceLevel)));
}

} // namespace

uint64_t
instructionBudget(uint64_t fallback)
{
    const uint64_t budget = envInt("GRP_INSTRUCTIONS", 0);
    return budget > 0 ? budget : fallback;
}

RunResult
runWorkload(const std::string &workload_name, SimConfig config,
            const RunOptions &options_in)
{
    RunOptions options = options_in;
    applyForcedTrace(options.obs);
    ScopedHostProf host_prof(options.obs);
    GRP_HOST_SCOPE_NAMED(run_scope, 1, Run);
    GRP_HOST_SCOPE_NAMED(setup_scope, 1, Setup);
    auto workload = makeWorkload(workload_name);
    const WorkloadInfo info = workload->info();
    if (info.recursiveDepthOverride != 0)
        config.region.recursiveDepth = info.recursiveDepthOverride;
    // Resolve the DRAM backend up front so everything downstream —
    // the provenance config hash, the cost report's channel walk and
    // the memory system's queue sizing — sees the same resolved name
    // and preset geometry.
    resolveDramBackend(config.dram);
    config.validate();

    // Workload context: built fresh for standalone runs, shared
    // through the sweep recording for grid jobs (harness/replay.hh).
    // The recording's key must match this run exactly — its program,
    // memory image and hint table were computed for that key.
    SweepRecording *rec = options.recording.get();
    if (rec) {
        fatal_if(rec->workload() != workload_name,
                 "sweep recording is for workload '%s', not '%s'",
                 rec->workload().c_str(), workload_name.c_str());
        fatal_if(rec->seed() != options.seed,
                 "sweep recording is for seed %llu, not %llu",
                 (unsigned long long)rec->seed(),
                 (unsigned long long)options.seed);
        fatal_if(rec->l2Bytes() != config.l2.sizeBytes,
                 "sweep recording targets a %llu-byte L2, not %llu",
                 (unsigned long long)rec->l2Bytes(),
                 (unsigned long long)config.l2.sizeBytes);
        fatal_if(!options.capturePath.empty() ||
                     !options.replayPath.empty(),
                 "an in-memory sweep recording is mutually exclusive "
                 "with --capture/--replay");
    }
    FunctionalMemory own_fmem;
    std::optional<Program> own_prog;
    HintTable own_table;
    HintStats hint_stats;
    if (rec) {
        hint_stats = rec->hintStats(config.policy);
    } else {
        own_prog.emplace(workload->build(own_fmem, options.seed));
        HintGenerator generator(config.policy, config.l2.sizeBytes);
        hint_stats = generator.run(*own_prog, own_table);
    }
    FunctionalMemory &fmem = rec ? rec->memory() : own_fmem;
    const HintTable &table =
        rec ? rec->hints(config.policy) : own_table;

    // Every component of this run registers into a run-local registry,
    // so concurrent sweep jobs (and same-thread nested runs) never
    // share or clobber each other's statistics.
    obs::StatRegistry registry;
    EventQueue events;
    MemorySystem mem(config, events, registry);
    if (options.obs.shadow || options.obs.costReport)
        mem.enableShadowTags();
    auto engine = makePrefetchEngine(config, fmem, mem, registry);

    // The feedback controller is a run-local layer above the engine:
    // it samples only this run's registry-backed counters, so sweep
    // determinism is untouched. A null plane everywhere else means
    // the hardware behaves exactly as before.
    fatal_if(options.obs.adaptiveReport &&
                 !config.usesAdaptiveController(),
             "--adaptive-report requires the grp-adaptive scheme");
    std::optional<adaptive::AdaptiveController> controller;
    if (config.usesAdaptiveController()) {
        controller.emplace(config.adaptive, config.region.recursiveDepth,
                           adaptive::memorySource(
                               mem, engine.get(),
                               config.region.queueEntries),
                           registry);
        mem.setControlPlane(&controller->plane());
        if (auto *grp_engine = dynamic_cast<GrpEngine *>(engine.get()))
            grp_engine->setControlPlane(&controller->plane());
    }

    // The CPU's op source: the interpreter normally, a recorded
    // capture under --replay, and a capturing tee around the
    // interpreter under --capture. Replay rebuilds the same
    // functional memory (the workload/seed check above the stream
    // guarantees build() produced identical contents), so the
    // recorded ops reproduce the live run exactly.
    fatal_if(!options.capturePath.empty() &&
                 !options.replayPath.empty(),
             "--capture and --replay are mutually exclusive");
    std::unique_ptr<TraceSource> interp;
    std::optional<ReplayTraceSource> replay;
    std::optional<CaptureTraceSource> capture;
    TraceSource *source = nullptr;
    if (!options.replayPath.empty()) {
        replay.emplace(options.replayPath);
        fatal_if(replay->workload() != workload_name,
                 "capture '%s' records workload '%s', not '%s'",
                 options.replayPath.c_str(),
                 replay->workload().c_str(), workload_name.c_str());
        fatal_if(replay->seed() != options.seed,
                 "capture '%s' records seed %llu, not %llu (functional "
                 "memory would differ)",
                 options.replayPath.c_str(),
                 (unsigned long long)replay->seed(),
                 (unsigned long long)options.seed);
        source = &*replay;
    } else if (rec) {
        interp = SweepRecording::makeReader(options.recording);
        source = interp.get();
    } else {
        interp = makeTraceSource(*own_prog, fmem, options.seed);
        source = interp.get();
    }
    if (!options.capturePath.empty()) {
        capture.emplace(*source, options.capturePath, workload_name,
                        options.seed);
        source = &*capture;
    }
    const HintTable *cpu_hints = config.usesHints() ? &table : nullptr;
    Cpu cpu(config, mem, events, *source, cpu_hints, registry);

    const uint64_t warmup =
        options.warmupInstructions == ~0ull
            ? options.maxInstructions / 4
            : options.warmupInstructions;

    // Live telemetry: a run-owned sidecar (--pulse) or the shared
    // process-wide stream ($GRP_PULSE) that multiplexes every sweep
    // job. With neither, the optional stays empty and the sim loop
    // pays one branch per cycle.
    std::shared_ptr<obs::PulseSink> pulse_sink;
    bool owns_pulse = false;
    if (!options.obs.pulsePath.empty()) {
        pulse_sink =
            std::make_shared<obs::PulseSink>(options.obs.pulsePath);
        owns_pulse = true;
    } else {
        pulse_sink = obs::PulseSink::process();
    }
    std::optional<obs::PulseMeter> pulse;
    if (pulse_sink && pulse_sink->ok()) {
        obs::PulseRunMeta meta;
        if (!owns_pulse) {
            meta.job = !obs::pulseJobLabel().empty()
                           ? obs::pulseJobLabel()
                           : workload_name + "/" +
                                 toString(config.scheme);
        }
        meta.workload = workload_name;
        meta.scheme = toString(config.scheme);
        meta.seed = options.seed;
        meta.targetInstructions = options.maxInstructions + warmup;
        pulse.emplace(pulse_sink, owns_pulse, options.obs.pulse,
                      std::move(meta));
    }
    // Beat-cadence snapshot of the run's key rates; string stat
    // lookups are fine here — this runs a few hundred times per run,
    // not per cycle.
    const auto sample_pulse = [&](Tick now) {
        obs::PulseSample s;
        s.instructions = cpu.retiredInstructions();
        s.cycles = now;
        const StatGroup &ms = mem.stats();
        s.prefetchesIssued = ms.value("prefetchesIssued");
        s.prefetchFills = ms.value("prefetchFills");
        s.usefulPrefetches = ms.value("usefulPrefetches");
        s.pollutionMisses = ms.value("pollutionMisses");
        if (engine) {
            s.queueDepth = engine->queueDepth();
            s.queueCapacity = config.region.queueEntries;
        }
        const StatGroup &ds = mem.dram().stats();
        s.dramIdleCycles = ds.value("contentionIdleCycles");
        s.dramTotalCycles = s.dramIdleCycles +
                            ds.value("contentionDemandCycles") +
                            ds.value("contentionPrefetchCycles") +
                            ds.value("contentionWritebackCycles");
        return s;
    };

    ScopedTrace trace(options.obs, events, warmup > 0);
    ScopedSiteProfile site_profile(options.obs, registry);
    if (site_profile.active()) {
        // Net-cycles prices one avoided/suffered miss at a full
        // memory round trip under this run's DRAM timing.
        obs::SiteProfiler::instance().setMissPenalty(
            config.dram.rowConflictCycles + config.dram.transferCycles);
    }
    std::optional<obs::TimeSeries> series;
    if (!options.obs.timeseriesPath.empty())
        series.emplace(options.obs.timeseriesBucket);
    const uint64_t bucket = options.obs.timeseriesBucket;

    // Stall fast-forward (see docs/PERFORMANCE.md): when the CPU is
    // provably stalled and the memory system has no per-cycle work,
    // jump time straight to the next tick at which anything can
    // change, batch-applying the skipped cycles' accounting. Level-3
    // tracing records a Stall event per throttled cycle, which cannot
    // be batched, so it forces per-cycle stepping.
    const bool fast_forward =
        envInt("GRP_FAST_FORWARD", 1) != 0 &&
        !obs::Tracer::instance().enabled(3);
    setup_scope.stop();

    GRP_HOST_SCOPE_NAMED(loop_scope, 1, SimLoop);
    Tick cycle = 0;
    uint64_t warm_instructions = 0;
    uint64_t warm_cycles = 0;
    bool measuring = warmup == 0;
    bool stopped = false;
    while (!cpu.done() &&
           cpu.retiredInstructions() <
               options.maxInstructions + warmup) {
        {
            GRP_HOST_SCOPE(2, Events);
            events.advanceTo(cycle);
        }
        {
            GRP_HOST_SCOPE(2, CpuTick);
            cpu.tick();
        }
        {
            GRP_HOST_SCOPE(2, MemTick);
            mem.tick();
        }
        if (controller && cycle &&
            cycle % config.adaptive.epochCycles == 0) {
            GRP_HOST_SCOPE(1, Adaptive);
            controller->onEpoch(cycle);
        }
        if (series && cycle % bucket == 0) {
            GRP_HOST_SCOPE(1, Timeseries);
            series->record("prefetchQueueDepth", cycle,
                           engine ? static_cast<double>(
                                        engine->queueDepth())
                                  : 0.0);
            series->record("busyChannels", cycle,
                           mem.dram().busyChannels(cycle));
            // Bank prep visibility exists only on queued backends;
            // gating the track keeps legacy time-series artefacts
            // byte-identical.
            if (mem.dram().queued()) {
                series->record("activeBanks", cycle,
                               mem.dram().activeBanks(cycle));
            }
            series->record("l2MshrInFlight", cycle,
                           mem.l2Mshrs().inFlight());
            series->record("demandQueueDepth", cycle,
                           static_cast<double>(
                               mem.demandQueueDepth()));
            series->record("writebackQueueDepth", cycle,
                           static_cast<double>(
                               mem.writebackQueueDepth()));
            if (controller) {
                series->record("adaptiveSpatialRegionBlocks", cycle,
                               static_cast<double>(
                                   controller->spatialRegionBlocks()));
                series->record("adaptiveTransitions", cycle,
                               static_cast<double>(
                                   controller->totalTransitions()));
            }
        }
        ++cycle;
        if (!measuring && cpu.retiredInstructions() >= warmup) {
            // End of warmup: discard cold-start statistics.
            mem.resetStats();
            if (engine.get())
                engine->stats().reset();
            obs::Tracer::instance().setWarmup(false);
            // Restart the site table with the measured window so its
            // column sums reconcile with the post-reset registry
            // totals (warmup-era fills still in flight attribute to
            // the warmup columns via PrefetchFillInfo::warm).
            obs::SiteProfiler::instance().clear();
            if (controller)
                controller->onWarmupBoundary();
            warm_instructions = cpu.retiredInstructions();
            warm_cycles = cycle;
            measuring = true;
        }
        // Telemetry beats: the instruction trigger is a single
        // compare per cycle; the wall-clock floor and the clean-stop
        // flag read a clock/atomic, so they poll on a coarse cycle
        // mask. The stop check is deliberately independent of pulse
        // enablement — SIGINT winds down cleanly with telemetry off.
        if (pulse && pulse->due(cpu.retiredInstructions()))
            pulse->beat(sample_pulse(cycle));
        if ((cycle & 0x3FFF) == 0) {
            if (obs::stopRequested()) {
                stopped = true;
                break;
            }
            if (pulse && pulse->wallFloorDue())
                pulse->beat(sample_pulse(cycle));
        }
        if (fast_forward) {
            // The iteration for tick (cycle-1) just completed; the
            // next iterations handle ticks cycle, cycle+1, ... Every
            // skipped tick must be one where (a) the CPU can only
            // repeat its stall accounting, (b) no event fires, (c)
            // the memory system only repeats its per-cycle
            // accounting, and (d) no observable (epoch, timeseries
            // bucket, stop/wall poll, deadlock panic) would trigger.
            const Cpu::StallState st = cpu.stallState(cycle - 1);
            if (st.stalled) {
                GRP_HOST_SCOPE(2, Events);
                Tick target =
                    std::min(events.nextEventTick(), st.readyTick);
                target =
                    std::min(target, mem.nextWorkTick(cycle - 1));
                target = std::min(target, cpu.deadlockTick());
                if (controller) {
                    const uint64_t e = config.adaptive.epochCycles;
                    target = std::min(target,
                                      (cycle + e - 1) / e * e);
                }
                if (series) {
                    target = std::min(
                        target, (cycle + bucket - 1) / bucket * bucket);
                }
                // The stop/wall poll fires when the post-increment
                // counter hits a 0x4000 multiple, i.e. during the
                // iteration for tick B-1: never skip past it.
                const Tick poll = ((cycle + 1 + 0x3FFF) & ~0x3FFFull);
                target = std::min(target, poll - 1);
                if (target > cycle) {
                    cpu.fastForward(target - cycle, st.robFullPath);
                    mem.fastForwardTicks(cycle, target);
                    cycle = target;
                }
            }
        }
    }
    loop_scope.stop();
    if (pulse) {
        pulse->finish(sample_pulse(cycle), stopped,
                      stopped ? "interrupted" : "completed");
    }

    GRP_HOST_SCOPE_NAMED(finish_scope, 1, Finish);
    RunResult result;
    result.workload = workload_name;
    result.scheme = config.scheme;
    result.perfection = config.perfection;
    result.partial = stopped;
    result.info = info;
    result.instructions = cpu.retiredInstructions() - warm_instructions;
    result.cycles = cpu.cycles() - warm_cycles;
    result.ipc = result.cycles
                     ? static_cast<double>(result.instructions) /
                           static_cast<double>(result.cycles)
                     : 0.0;
    result.trafficBytes = mem.trafficBytes();
    result.l2DemandAccesses = mem.stats().value("l2DemandAccesses");
    result.l2MissesTotal = mem.stats().value("l2DemandMissesTotal");
    result.l2MissesToMemory = mem.l2DemandMisses();
    result.prefetchFills = mem.stats().value("prefetchFills");
    // Measured-window first-uses only; warmup-era fills consumed
    // after the boundary are attributed separately so accuracy()
    // compares fills and uses over the same window.
    result.usefulPrefetches = mem.stats().value("usefulPrefetches");
    result.warmupUsefulPrefetches =
        mem.stats().value("usefulPrefetchWarmupCarryover");
    // Structural invariant behind RunResult::accuracy(): warmup
    // carryover is attributed separately, so measured-window uses
    // cannot exceed measured-window fills. A violation is an
    // attribution bug — count it (the stat exports as 0 in healthy
    // runs) and abort debug builds.
    if (result.usefulPrefetches > result.prefetchFills) {
        ++mem.stats().counter("accuracyClampEvents");
        warn("accuracy invariant violated: useful %llu > fills %llu",
             (unsigned long long)result.usefulPrefetches,
             (unsigned long long)result.prefetchFills);
        assert(!"useful prefetches exceeded prefetch fills");
    }
    result.hints = hint_stats;

    // When profiling is on, fold the run's host-time attribution into
    // the registry as a hostProf group so every exporter (JSON, CSV,
    // text dump, result.stats) carries it. The group exists only when
    // the profiler is active: GRP_HOST_PROF=0 artefacts stay
    // byte-identical to unprofiled runs.
    std::optional<StatGroup> host_stats;
    std::optional<obs::ScopedStatRegistration> host_stats_reg;
    if (host_prof.active()) {
        host_stats.emplace("hostProf");
        fillHostProfStats(*host_stats, host_prof.profile());
        host_stats_reg.emplace(*host_stats, registry);
    }
    result.stats = registry.snapshot();

    if (auto *grp_engine = dynamic_cast<GrpEngine *>(engine.get())) {
        const Distribution &sizes = grp_engine->regionSizes();
        for (unsigned blocks = 1; blocks <= kBlocksPerRegion;
             blocks <<= 1) {
            const uint64_t count = sizes.count(blocks);
            if (count)
                result.regionSizes[blocks] = count;
        }
    }

    finish_scope.stop();

    GRP_HOST_SCOPE_NAMED(export_scope, 1, StatsExport);
    const ObsOptions &obs = options.obs;
    // Top-level additions to the stats JSON: the partial-run marker
    // (only on interrupted runs) and the provenance block (only when
    // asked). When neither fires the lambda emits nothing and the
    // document is byte-identical to the historical format.
    const auto stats_extra = [&](obs::JsonWriter &json) {
        if (result.partial)
            json.kv("partial", true);
        if (obs.statsProvenance) {
            json.key("provenance");
            writeProvenance(json, config);
        }
    };
    const auto partial_extra = [&](obs::JsonWriter &json) {
        if (result.partial)
            json.kv("partial", true);
    };
    if (!obs.statsJsonPath.empty())
        registry.exportJsonFile(obs.statsJsonPath, stats_extra);
    if (!obs.statsCsvPath.empty())
        registry.exportCsvFile(obs.statsCsvPath);
    if (series)
        series->exportJsonFile(obs.timeseriesPath);
    if (site_profile.active()) {
        obs::SiteProfiler &prof = obs::SiteProfiler::instance();
        if (!obs.siteProfilePath.empty())
            prof.exportJsonFile(obs.siteProfilePath, partial_extra);
        if (obs.siteReportTop > 0)
            prof.writeReport(std::cout,
                             static_cast<size_t>(obs.siteReportTop));
    }
    if (obs.costReport)
        printCostReport(std::cout, mem, config, site_profile.active());
    if (obs.adaptiveReport && controller)
        controller->writeReport(std::cout);
    if (obs.dumpStats)
        registry.dumpText(std::cout);
    export_scope.stop();
    run_scope.stop();

    // Written after the run scope closes so the report prices
    // everything but its own serialization.
    if (host_prof.active() && !obs.hostProfPath.empty())
        writeHostProfReport(obs.hostProfPath, host_prof.profile());
    return result;
}

} // namespace grp
