/**
 * @file
 * Suite-level helpers shared by the bench binaries: benchmark
 * groupings (Figures 10/11), scheme runners, and geometric means.
 */

#ifndef GRP_HARNESS_SUITE_HH
#define GRP_HARNESS_SUITE_HH

#include <string>
#include <vector>

#include "harness/runner.hh"

namespace grp
{

/** All benchmarks with measurable L2 activity (crafty excluded, as
 *  in the paper's performance figures). */
std::vector<std::string> perfSuite();

/** Integer benchmarks (Figure 10 grouping; includes sphinx). */
std::vector<std::string> intSuite();

/** Floating-point benchmarks (Figure 11 grouping). */
std::vector<std::string> fpSuite();

/** Run one workload under a prefetch scheme. */
RunResult runScheme(const std::string &name, PrefetchScheme scheme,
                    const RunOptions &options,
                    CompilerPolicy policy = CompilerPolicy::Default);

/** Run one workload under an idealised cache mode. */
RunResult runPerfect(const std::string &name, Perfection perfection,
                     const RunOptions &options);

/** Speedup of @p run over @p base (IPC ratio). */
double speedup(const RunResult &run, const RunResult &base);

/** Traffic of @p run normalised to @p base. */
double trafficRatio(const RunResult &run, const RunResult &base);

/** Percent gap versus a perfect-L2 run:
 *  100 * (1 - ipc / perfect_ipc). */
double gapFromPerfect(const RunResult &run, const RunResult &perfect);

/**
 * Where a bench binary should write its JSON artefact: $GRP_BENCH_OUT
 * (created if missing) or the current directory, plus "<name>.json".
 */
std::string benchOutPath(const std::string &name);

} // namespace grp

#endif // GRP_HARNESS_SUITE_HH
