/**
 * @file
 * Suite-level helpers shared by the bench binaries: benchmark
 * groupings (Figures 10/11), scheme runners, and geometric means.
 */

#ifndef GRP_HARNESS_SUITE_HH
#define GRP_HARNESS_SUITE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "harness/runner.hh"
#include "harness/sweep.hh"

namespace grp
{

/** All benchmarks with measurable L2 activity (crafty excluded, as
 *  in the paper's performance figures). */
std::vector<std::string> perfSuite();

/** Integer benchmarks (Figure 10 grouping; includes sphinx). */
std::vector<std::string> intSuite();

/** Floating-point benchmarks (Figure 11 grouping). */
std::vector<std::string> fpSuite();

/** Run one workload under a prefetch scheme. */
RunResult runScheme(const std::string &name, PrefetchScheme scheme,
                    const RunOptions &options,
                    CompilerPolicy policy = CompilerPolicy::Default);

/** Run one workload under an idealised cache mode. */
RunResult runPerfect(const std::string &name, Perfection perfection,
                     const RunOptions &options);

/** Speedup of @p run over @p base (IPC ratio). */
double speedup(const RunResult &run, const RunResult &base);

/** Traffic of @p run normalised to @p base. */
double trafficRatio(const RunResult &run, const RunResult &base);

/** Percent gap versus a perfect-L2 run:
 *  100 * (1 - ipc / perfect_ipc). */
double gapFromPerfect(const RunResult &run, const RunResult &perfect);

/**
 * Where a bench binary should write its JSON artefact: $GRP_BENCH_OUT
 * (created if missing) or the current directory, plus "<name>.json".
 */
std::string benchOutPath(const std::string &name);

/**
 * The bench binaries' front end to the sweep executor.
 *
 * Queue every simulation of the bench with add() (the calls only
 * record jobs), execute them all with run() — GRP_BENCH_THREADS
 * workers, default hardware concurrency — then read the results by
 * index in whatever order the bench's tables need. Because results
 * are keyed by submission index, the bench's stdout and JSON
 * artefacts are byte-identical at every thread count; only the wall
 * clock changes. run() also writes a per-job timing sidecar to
 * $GRP_BENCH_OUT/timings/<bench>.json (ignored by bench_compare.py,
 * embedded into manifest.json by bench_manifest.py finish).
 *
 * Jobs queued through addScheme()/addPerfect() share one in-memory
 * sweep recording per (workload, seed) key (harness/replay.hh): the
 * workload build, IR transform and access stream are computed once
 * and every scheme point — across every compiler policy — replays
 * them, which is what makes dense grids cheap. Results are
 * byte-identical
 * to per-job interpretation; set GRP_SWEEP_REPLAY=0 to fall back to
 * fully independent jobs (differential testing). Jobs queued through
 * raw add() never share state.
 */
class BenchSweep
{
  public:
    /** @param bench_name Artefact stem, e.g. "tab01_summary". */
    explicit BenchSweep(std::string bench_name);

    /** Queue one simulation; returns its index for result(). */
    size_t add(std::string label, std::function<RunResult()> job);

    /** Convenience: queue runScheme(name, scheme, options). */
    size_t addScheme(const std::string &name, PrefetchScheme scheme,
                     const RunOptions &options,
                     CompilerPolicy policy = CompilerPolicy::Default);

    /** Convenience: queue runPerfect(name, perfection, options). */
    size_t addPerfect(const std::string &name, Perfection perfection,
                      const RunOptions &options);

    /** Queue runWorkload(name, config, options) under @p label,
     *  sharing the sweep recording when @p config's L2 geometry
     *  matches the recording key (ablation benches varying hardware
     *  knobs or compiler policy reuse one stream per workload). */
    size_t addConfig(std::string label, const std::string &name,
                     const SimConfig &config,
                     const RunOptions &options);

    /** Execute every queued job and write the timing sidecar.
     *  Aborts (fatal) if any job threw. */
    void run();

    /** Result of the @p index-th add() (valid after run()). */
    const RunResult &result(size_t index) const;

    unsigned threads() const { return threads_; }
    double totalWallSeconds() const { return totalWallSeconds_; }

  private:
    void writeTimings() const;

    /** The shared run context for (name, seed), created on first
     *  use; null when GRP_SWEEP_REPLAY=0 disables sharing. The
     *  compiler policy is not part of the key — recordings build
     *  per-policy hint tables on demand over one shared op stream. */
    std::shared_ptr<SweepRecording>
    recordingFor(const std::string &name, uint64_t seed);

    std::string name_;
    std::vector<SweepJob> jobs_;
    std::vector<SweepOutcome> outcomes_;
    unsigned threads_ = 0;
    double totalWallSeconds_ = 0.0;
    bool replayEnabled_ = true;
    std::map<std::pair<std::string, uint64_t>,
             std::shared_ptr<SweepRecording>>
        recordings_;
};

} // namespace grp

#endif // GRP_HARNESS_SUITE_HH
