/**
 * @file
 * Shared parsing for the simulator's numeric environment knobs.
 *
 * Every GRP_* integer variable (GRP_INSTRUCTIONS, GRP_BENCH_THREADS,
 * GRP_TRACE_LEVEL, GRP_HOST_PROF, ...) historically went through
 * atoi-family parsing, which silently turns "200M", "4x" or "-1"
 * into something the user did not ask for — at paper-scale budgets a
 * mistyped instruction count quietly runs the wrong experiment for
 * hours. envInt() centralises the parsing: unset or empty means the
 * fallback, anything that is not a plain non-negative decimal
 * integer is a fatal diagnostic naming the variable.
 */

#ifndef GRP_SIM_ENV_HH
#define GRP_SIM_ENV_HH

#include <cstdint>

namespace grp
{

/**
 * Read the integer environment variable @p name.
 *
 * @return @p fallback when the variable is unset or empty, its value
 *         otherwise. Malformed values — non-digit characters, a sign,
 *         trailing garbage, or overflow past uint64 — are a user
 *         error: fatal() with the variable name and offending text.
 */
uint64_t envInt(const char *name, uint64_t fallback);

} // namespace grp

#endif // GRP_SIM_ENV_HH
