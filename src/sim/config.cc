#include "sim/config.hh"

#include "sim/logging.hh"

namespace grp
{

const char *
toString(PrefetchScheme scheme)
{
    switch (scheme) {
      case PrefetchScheme::None: return "none";
      case PrefetchScheme::Stride: return "stride";
      case PrefetchScheme::Srp: return "srp";
      case PrefetchScheme::GrpFix: return "grp-fix";
      case PrefetchScheme::GrpVar: return "grp-var";
      case PrefetchScheme::PointerHw: return "ptr-hw";
      case PrefetchScheme::PointerHwRec: return "ptr-hw-rec";
      case PrefetchScheme::SrpPlusPointer: return "srp+ptr";
      case PrefetchScheme::SrpThrottled: return "srp-throttled";
      case PrefetchScheme::GrpAdaptive: return "grp-adaptive";
    }
    return "?";
}

const char *
toString(Perfection perfection)
{
    switch (perfection) {
      case Perfection::None: return "real";
      case Perfection::PerfectL2: return "perfect-l2";
      case Perfection::PerfectL1: return "perfect-l1";
    }
    return "?";
}

const char *
toString(CompilerPolicy policy)
{
    switch (policy) {
      case CompilerPolicy::Conservative: return "conservative";
      case CompilerPolicy::Default: return "default";
      case CompilerPolicy::Aggressive: return "aggressive";
    }
    return "?";
}

namespace
{

void
validateCache(const CacheConfig &cache, const char *what)
{
    fatal_if(cache.sizeBytes == 0 || !isPowerOfTwo(cache.sizeBytes),
             "%s size must be a non-zero power of two", what);
    fatal_if(cache.assoc == 0, "%s associativity must be non-zero", what);
    fatal_if(cache.sizeBytes % (cache.assoc * kBlockBytes) != 0,
             "%s size must be divisible by assoc * block size", what);
    const uint64_t sets = cache.sizeBytes / (cache.assoc * kBlockBytes);
    fatal_if(!isPowerOfTwo(sets), "%s set count must be a power of two",
             what);
    fatal_if(cache.mshrs == 0, "%s needs at least one MSHR", what);
}

} // namespace

void
PulseConfig::validate() const
{
    fatal_if(dropPct < 0.0 || dropPct >= 100.0,
             "pulse drop threshold must be in [0, 100) percent");
    fatal_if(dropSustainBeats == 0,
             "pulse drop streak must be at least one beat");
}

void
SimConfig::validate() const
{
    validateCache(l1d, "L1D");
    validateCache(l2, "L2");
    fatal_if(l2.sizeBytes < l1d.sizeBytes,
             "L2 must be at least as large as L1D");
    fatal_if(dram.channels == 0 || !isPowerOfTwo(dram.channels),
             "channel count must be a power of two");
    fatal_if(dram.banksPerChannel == 0 ||
             !isPowerOfTwo(dram.banksPerChannel),
             "bank count must be a power of two");
    fatal_if(dram.rowBytes < kBlockBytes ||
             !isPowerOfTwo(dram.rowBytes),
             "row size must be a power of two >= one block");
    fatal_if(cpu.issueWidth == 0 || cpu.retireWidth == 0 ||
             cpu.robEntries == 0, "CPU widths/ROB must be non-zero");
    fatal_if(region.queueEntries == 0, "prefetch queue must be non-empty");
    fatal_if(region.recursiveDepth > 7,
             "recursion counter is 3 bits (max 7)");
    fatal_if(stride.tableEntries == 0 || stride.tableAssoc == 0 ||
             stride.tableEntries % stride.tableAssoc != 0,
             "stride table shape invalid");
    fatal_if(stride.streamBuffers == 0 || stride.bufferEntries == 0,
             "stream buffer shape invalid");
    fatal_if(adaptive.epochCycles == 0,
             "adaptive epoch length must be non-zero");
    fatal_if(adaptive.hysteresisEpochs == 0,
             "adaptive hysteresis must be at least one epoch");
    fatal_if(adaptive.accuracyLow < 0.0 ||
             adaptive.accuracyHigh > 1.0 ||
             adaptive.accuracyLow > adaptive.accuracyHigh,
             "adaptive accuracy thresholds must satisfy "
             "0 <= low <= high <= 1");
    fatal_if(adaptive.idleLow < 0.0 || adaptive.idleHigh > 1.0 ||
             adaptive.idleLow > adaptive.idleHigh,
             "adaptive idle thresholds must satisfy 0 <= low <= high <= 1");
    fatal_if(adaptive.occupancyHigh <= 0.0 ||
             adaptive.occupancyHigh > 1.0,
             "adaptive occupancy threshold must be in (0, 1]");
    fatal_if(adaptive.pollutionHigh < 0.0,
             "adaptive pollution threshold must be non-negative");
}

} // namespace grp
