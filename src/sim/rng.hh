/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use xoshiro256** so that workload traces are bit-identical across
 * platforms and standard-library versions (std::mt19937 would also be
 * portable, but this is lighter and fully under our control).
 */

#ifndef GRP_SIM_RNG_HH
#define GRP_SIM_RNG_HH

#include <cstdint>

namespace grp
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialise state from a seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        // Simple modulo; bias is irrelevant for workload synthesis.
        return next() % bound;
    }

    /** Uniform value in [lo, hi). */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** True with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state_[4];
};

} // namespace grp

#endif // GRP_SIM_RNG_HH
