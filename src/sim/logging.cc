#include "sim/logging.hh"

#include <cstdarg>
#include <stdexcept>

namespace grp
{

namespace
{
bool g_quiet = false;
} // namespace

void
setQuiet(bool quiet)
{
    g_quiet = quiet;
}

bool
quiet()
{
    return g_quiet;
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string result;
    if (needed > 0) {
        result.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(result.data(), result.size(), fmt, args_copy);
        result.resize(static_cast<size_t>(needed));
    }
    va_end(args_copy);
    return result;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throw rather than abort so tests can use EXPECT_THROW on invariant
    // violations; main()s that do not catch still terminate loudly.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!g_quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!g_quiet)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace grp
