/**
 * @file
 * Lightweight statistics: named counters, distributions and derived
 * ratios, grouped per component and dumpable as text.
 */

#ifndef GRP_SIM_STATS_HH
#define GRP_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace grp
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t n) { value_ += n; return *this; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** A bucketed distribution over small integer sample values. */
class Distribution
{
  public:
    /** Record one sample of @p value. */
    void
    sample(uint64_t value)
    {
        if (buckets_.size() <= value)
            buckets_.resize(value + 1, 0);
        ++buckets_[value];
        ++samples_;
        sum_ += value;
    }

    uint64_t samples() const { return samples_; }
    uint64_t sum() const { return sum_; }

    double
    mean() const
    {
        return samples_ ? static_cast<double>(sum_) / samples_ : 0.0;
    }

    /** Count of samples equal to @p value. */
    uint64_t
    count(uint64_t value) const
    {
        return value < buckets_.size() ? buckets_[value] : 0;
    }

    /** Fraction of samples equal to @p value (0 if no samples). */
    double
    fraction(uint64_t value) const
    {
        return samples_ ? static_cast<double>(count(value)) / samples_ : 0.0;
    }

    size_t maxValue() const { return buckets_.empty() ? 0
                                                      : buckets_.size() - 1; }

    /**
     * The @p p-th percentile of the recorded samples (p in [0, 100]):
     * the smallest recorded value v such that at least p percent of
     * all samples are <= v.
     *
     * An empty distribution has no percentiles: debug builds assert;
     * release builds return 0, which callers must treat as "no data"
     * (guard with samples() before calling when 0 is a legal sample
     * value).
     */
    uint64_t percentile(double p) const;

    void
    reset()
    {
        buckets_.clear();
        samples_ = 0;
        sum_ = 0;
    }

  private:
    std::vector<uint64_t> buckets_;
    uint64_t samples_ = 0;
    uint64_t sum_ = 0;
};

/**
 * A named group of statistics. Components register their counters at
 * construction; dump() prints "group.name value" lines.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name; returns a reference. */
    Counter &
    counter(const std::string &stat_name)
    {
        return counters_[stat_name];
    }

    /** Register a distribution under @p stat_name. */
    Distribution &
    distribution(const std::string &stat_name)
    {
        return distributions_[stat_name];
    }

    /** Read a counter value (0 if absent). */
    uint64_t
    value(const std::string &stat_name) const
    {
        auto it = counters_.find(stat_name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    const std::string &name() const { return name_; }

    /** All counters, keyed by stat name (exporters iterate these). */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /** All distributions, keyed by stat name. */
    const std::map<std::string, Distribution> &distributions() const
    {
        return distributions_;
    }

    /** Print all stats to @p os as "group.stat value" lines. */
    void dump(std::ostream &os) const;

    /** Reset every stat in the group to zero. */
    void reset();

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

/** Geometric mean of a vector of positive values (1.0 when empty). */
double geometricMean(const std::vector<double> &values);

} // namespace grp

#endif // GRP_SIM_STATS_HH
