/**
 * @file
 * Error and status reporting, modelled on gem5's logging.hh.
 *
 * panic()  - an internal simulator invariant was violated (a bug in us).
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, impossible parameters).
 * warn()   - something is suspicious but the simulation continues.
 * inform() - plain status output.
 */

#ifndef GRP_SIM_LOGGING_HH
#define GRP_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace grp
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable/disable warn()/inform() output (tests silence it). */
void setQuiet(bool quiet);
bool quiet();

} // namespace grp

#define panic(...) \
    ::grp::panicImpl(__FILE__, __LINE__, ::grp::csprintf(__VA_ARGS__))
#define fatal(...) \
    ::grp::fatalImpl(__FILE__, __LINE__, ::grp::csprintf(__VA_ARGS__))
#define warn(...) ::grp::warnImpl(::grp::csprintf(__VA_ARGS__))
#define inform(...) ::grp::informImpl(::grp::csprintf(__VA_ARGS__))

#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // GRP_SIM_LOGGING_HH
