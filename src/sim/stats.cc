#include "sim/stats.hh"

#include <cmath>

namespace grp
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat, counter] : counters_)
        os << name_ << '.' << stat << ' ' << counter.value() << '\n';
    for (const auto &[stat, dist] : distributions_) {
        os << name_ << '.' << stat << ".samples " << dist.samples() << '\n';
        os << name_ << '.' << stat << ".mean " << dist.mean() << '\n';
    }
}

void
StatGroup::reset()
{
    for (auto &[stat, counter] : counters_)
        counter.reset();
    for (auto &[stat, dist] : distributions_)
        dist.reset();
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace grp
