#include "sim/stats.hh"

#include <cassert>
#include <cmath>

namespace grp
{

uint64_t
Distribution::percentile(double p) const
{
    assert(samples_ != 0 && "percentile() on an empty distribution");
    if (!samples_)
        return 0; // Release builds: "no data", see header comment.
    if (p >= 100.0)
        return maxValue();
    // Rank of the percentile sample, at least 1 (p <= 0 gives the
    // smallest recorded value).
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples_)));
    if (rank == 0)
        rank = 1;
    uint64_t cumulative = 0;
    for (size_t value = 0; value < buckets_.size(); ++value) {
        cumulative += buckets_[value];
        if (cumulative >= rank)
            return value;
    }
    return maxValue();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat, counter] : counters_)
        os << name_ << '.' << stat << ' ' << counter.value() << '\n';
    for (const auto &[stat, dist] : distributions_) {
        os << name_ << '.' << stat << ".samples " << dist.samples() << '\n';
        os << name_ << '.' << stat << ".mean " << dist.mean() << '\n';
    }
}

void
StatGroup::reset()
{
    for (auto &[stat, counter] : counters_)
        counter.reset();
    for (auto &[stat, dist] : distributions_)
        dist.reset();
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace grp
