#include "sim/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "sim/logging.hh"

namespace grp
{

uint64_t
envInt(const char *name, uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    // Digits only: strtoull would silently accept "-1" (wrapping to
    // 2^64-1), leading whitespace and trailing garbage ("20k").
    for (const char *p = env; *p; ++p) {
        fatal_if(!std::isdigit(static_cast<unsigned char>(*p)),
                 "%s='%s' is not a non-negative integer", name, env);
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    fatal_if(errno == ERANGE || *end != '\0',
             "%s='%s' does not fit a 64-bit unsigned integer", name,
             env);
    return static_cast<uint64_t>(parsed);
}

} // namespace grp
