/**
 * @file
 * Central simulator configuration.
 *
 * Defaults reproduce the machine configuration of the GRP paper
 * (Section 5.1): 1.6 GHz 4-way issue out-of-order core with a 64-entry
 * RUU, 64 KB 2-way split L1s (3-cycle), unified 1 MB 4-way L2
 * (12-cycle), 8 MSHRs per cache, and a 4-channel 800 MHz Rambus-style
 * memory system. The SRP prefetch queue has 32 entries with LIFO
 * scheduling; the stride predictor uses a 1K-entry 4-way table feeding
 * 8 stream buffers of 8 entries each.
 */

#ifndef GRP_SIM_CONFIG_HH
#define GRP_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace grp
{

/** Which prefetching scheme drives the L2 prefetch hardware. */
enum class PrefetchScheme
{
    None,           ///< No prefetching (baseline).
    Stride,         ///< Sherwood-style strided stream buffers.
    Srp,            ///< Scheduled region prefetching (no hints).
    GrpFix,         ///< GRP with fixed 4 KB regions.
    GrpVar,         ///< GRP with compiler variable-size regions.
    PointerHw,      ///< Pure hardware pointer prefetching (Fig 9).
    PointerHwRec,   ///< Pure hardware recursive pointer prefetching.
    SrpPlusPointer, ///< SRP combined with HW pointer prefetching.
    SrpThrottled,   ///< SRP with a dynamic accuracy governor
                    ///< (the related-work class of §1).
    GrpAdaptive,    ///< GRP/Var plus the epoch-based feedback
                    ///< controller (src/adaptive/): per-hint-class
                    ///< region size, queue priority, L2 insertion
                    ///< position and pointer depth are retuned from
                    ///< runtime signals every epoch.
};

/** Idealised cache modes for the limit studies in Figure 1. */
enum class Perfection
{
    None,      ///< Realistic hierarchy.
    PerfectL2, ///< Every L2 access hits (12-cycle L2).
    PerfectL1, ///< Every L1 access hits (3-cycle L1).
};

/** Compiler spatial-marking policy (Section 5.4). */
enum class CompilerPolicy
{
    Conservative, ///< Spatial only when reuse is in the innermost loop.
    Default,      ///< Reuse distance bounded by the L2 capacity.
    Aggressive,   ///< Spatial even when reuse distance exceeds the L2.
};

const char *toString(PrefetchScheme scheme);
const char *toString(Perfection perfection);
const char *toString(CompilerPolicy policy);

/** Parameters of one cache level. */
struct CacheConfig
{
    uint64_t sizeBytes = 0;
    unsigned assoc = 0;
    unsigned latency = 0;     ///< Hit latency in CPU cycles.
    unsigned mshrs = 8;       ///< Outstanding distinct-block misses.
    unsigned mshrTargets = 8; ///< Coalesced requests per MSHR.
};

/** Rambus-style DRAM system parameters (in CPU cycles). */
struct DramConfig
{
    unsigned channels = 4;
    unsigned banksPerChannel = 16;
    unsigned rowBytes = 2048;
    /** Bank access when the row is already open. */
    unsigned rowHitCycles = 56;
    /** Precharge + activate + access on a row conflict. */
    unsigned rowConflictCycles = 120;
    /** Channel data-bus occupancy per 64 B transfer. */
    unsigned transferCycles = 32;
    /**
     * DRAM backend selection: "legacy" (the immediate Rambus-style
     * model above) or a cycle-accurate timing preset ("ddr4-2400",
     * "hbm2", "lpddr4" — see mem/dram_backend/presets.hh; presets
     * also override the geometry fields). Empty resolves through the
     * GRP_DRAM environment variable, defaulting to legacy, so every
     * existing configuration is untouched. Resolved names other than
     * legacy participate in the provenance config hash.
     */
    std::string backend;
};

/** Out-of-order core parameters. */
struct CpuConfig
{
    unsigned issueWidth = 4;
    unsigned retireWidth = 4;
    unsigned robEntries = 64;
    unsigned computeLatency = 1;
};

/** Region prefetch queue (SRP/GRP) parameters. */
struct RegionPrefetchConfig
{
    unsigned queueEntries = 32;
    bool lifo = true;          ///< LIFO scheduling (paper default).
    bool lruInsertion = true;  ///< Fill prefetches at LRU position.
    bool bankAware = true;     ///< Prefer prefetches to open DRAM rows.
    /** Recursion depth for `recursive pointer` hints (paper: 6). */
    unsigned recursiveDepth = 6;
    /** Blocks fetched per discovered pointer (paper: 2). */
    unsigned blocksPerPointer = 2;
    /** Max prefetch addresses per indirect instruction (paper: 16). */
    unsigned indirectFanout = 16;
};

/** Epoch-based adaptive prefetch controller (src/adaptive/). */
struct AdaptiveConfig
{
    /** Cycles between controller evaluations. */
    uint64_t epochCycles = 2048;
    /** Per-class accuracy at/above which an epoch votes to raise the
     *  class's knobs (more aggressive). */
    double accuracyHigh = 0.60;
    /** Per-class accuracy at/below which an epoch votes to lower
     *  them (less aggressive). */
    double accuracyLow = 0.20;
    /** Pollution misses per demand L2 access above which every class
     *  votes to lower (needs shadow tags; 0 signal without them). */
    double pollutionHigh = 0.02;
    /** Channel idle fraction required before a raise may also grow
     *  the region size / pointer depth (bandwidth headroom gate). */
    double idleHigh = 0.50;
    /** Idle fraction below which a saturated prefetch queue counts
     *  as congestion (votes to lower). */
    double idleLow = 0.10;
    /** Queue occupancy above which (with idle below idleLow) the
     *  epoch counts as congested. */
    double occupancyHigh = 0.75;
    /** Consecutive same-direction epochs required before any knob
     *  moves (hysteresis against boundary oscillation). */
    unsigned hysteresisEpochs = 2;
    /** Epochs with fewer prefetch fills than this for a class carry
     *  no signal for it: streaks neither grow nor reset. */
    uint64_t minEpochFills = 8;
};

/**
 * Live run telemetry (src/obs/pulse): beat cadence and the stall
 * watchdog's thresholds. Enablement and the sidecar path live in
 * ObsOptions (harness/runner.hh); off by default, and a pulse-off
 * run carries zero telemetry residue.
 */
struct PulseConfig
{
    /** Simulated instructions between beats; 0 derives one from the
     *  run's instruction budget (~1% of it, minimum 1000). */
    uint64_t intervalInstructions = 0;
    /** Force a beat when this many wall-clock milliseconds pass
     *  without the instruction interval elapsing, so a stalled run
     *  keeps pulsing and the watchdog can see it (0 disables the
     *  floor — beats then fire on instruction count only). */
    uint64_t wallFloorMillis = 250;
    /** Watchdog: a beat whose host inst/s falls more than this many
     *  percent below the rolling baseline counts toward a collapse
     *  streak... */
    double dropPct = 50.0;
    /** ...and a streak this many consecutive beats long emits a
     *  `pulse.warn` record (and a nonzero `grpmon --check`). */
    unsigned dropSustainBeats = 3;

    /** Throws (fatal) on nonsensical thresholds. */
    void validate() const;
};

/** Stride prefetcher (PDSB stride component) parameters. */
struct StrideConfig
{
    unsigned tableEntries = 1024;
    unsigned tableAssoc = 4;
    unsigned streamBuffers = 8;
    unsigned bufferEntries = 8;
    unsigned trainThreshold = 2; ///< Confirmations before allocation.
};

/** Full system configuration. */
struct SimConfig
{
    CacheConfig l1d{64 * 1024, 2, 3, 8, 8};
    CacheConfig l2{1024 * 1024, 4, 12, 8, 8};
    DramConfig dram;
    CpuConfig cpu;
    RegionPrefetchConfig region;
    AdaptiveConfig adaptive;
    StrideConfig stride;

    PrefetchScheme scheme = PrefetchScheme::None;
    Perfection perfection = Perfection::None;
    CompilerPolicy policy = CompilerPolicy::Default;

    /** Stop after this many retired instructions (0 = whole trace). */
    uint64_t maxInstructions = 0;

    /** Safety net against deadlock bugs: abort if a single
     *  instruction stays at the ROB head this many cycles. */
    uint64_t deadlockCycles = 2'000'000;

    /** Throws (fatal) on inconsistent parameters. */
    void validate() const;

    /** True when the scheme consumes compiler hints. */
    bool
    usesHints() const
    {
        return scheme == PrefetchScheme::GrpFix ||
               scheme == PrefetchScheme::GrpVar ||
               scheme == PrefetchScheme::GrpAdaptive;
    }

    /** True when the scheme carries an adaptive controller. */
    bool
    usesAdaptiveController() const
    {
        return scheme == PrefetchScheme::GrpAdaptive;
    }

    /** True when the scheme includes region prefetching. */
    bool
    usesRegions() const
    {
        return scheme == PrefetchScheme::Srp ||
               scheme == PrefetchScheme::SrpPlusPointer ||
               scheme == PrefetchScheme::SrpThrottled || usesHints();
    }

    /** True when the scheme scans returned lines for pointers. */
    bool
    usesPointerScan() const
    {
        return scheme == PrefetchScheme::PointerHw ||
               scheme == PrefetchScheme::PointerHwRec ||
               scheme == PrefetchScheme::SrpPlusPointer || usesHints();
    }
};

} // namespace grp

#endif // GRP_SIM_CONFIG_HH
