/**
 * @file
 * A minimal tick-ordered event queue.
 *
 * The memory system uses this for DRAM completion events and other
 * fixed-latency responses; the CPU model is ticked directly by the
 * top-level simulation loop for speed.
 */

#ifndef GRP_SIM_EVENT_QUEUE_HH
#define GRP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace grp
{

/** Tick-ordered queue of callbacks; FIFO among same-tick events. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute time @p when (>= curTick()). */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < curTick_, "scheduling event in the past "
                 "(%llu < %llu)", (unsigned long long)when,
                 (unsigned long long)curTick_);
        heap_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** True iff no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t size() const { return heap_.size(); }

    /** Tick of the next pending event (kMaxTick if none). */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? kMaxTick : heap_.top().when;
    }

    /**
     * Advance time to @p now, running every event scheduled at or
     * before @p now in (tick, insertion) order.
     */
    void
    advanceTo(Tick now)
    {
        panic_if(now < curTick_, "time cannot move backwards");
        while (!heap_.empty() && heap_.top().when <= now) {
            // Copy out before popping: the callback may schedule more.
            Event ev = heap_.top();
            heap_.pop();
            curTick_ = ev.when;
            ev.cb();
        }
        curTick_ = now;
    }

    /** Run every pending event; returns the final tick. */
    Tick
    drain()
    {
        while (!heap_.empty())
            advanceTo(heap_.top().when);
        return curTick_;
    }

    /** Reset to time zero, dropping pending events. */
    void
    reset()
    {
        heap_ = {};
        curTick_ = 0;
        nextSeq_ = 0;
    }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick curTick_ = 0;
    uint64_t nextSeq_ = 0;
};

} // namespace grp

#endif // GRP_SIM_EVENT_QUEUE_HH
