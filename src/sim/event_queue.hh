/**
 * @file
 * A minimal tick-ordered event queue.
 *
 * The memory system uses this for DRAM completion events and other
 * fixed-latency responses; the CPU model is ticked directly by the
 * top-level simulation loop for speed.
 */

#ifndef GRP_SIM_EVENT_QUEUE_HH
#define GRP_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace grp
{

/** Tick-ordered queue of callbacks; FIFO among same-tick events. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute time @p when (>= curTick()). */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < curTick_, "scheduling event in the past "
                 "(%llu < %llu)", (unsigned long long)when,
                 (unsigned long long)curTick_);
        heap_.push_back(Event{when, nextSeq_++, std::move(cb)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** True iff no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t size() const { return heap_.size(); }

    /** Tick of the next pending event (kMaxTick if none). */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? kMaxTick : heap_.front().when;
    }

    /**
     * Advance time to @p now, running every event scheduled at or
     * before @p now in (tick, insertion) order.
     */
    void
    advanceTo(Tick now)
    {
        panic_if(now < curTick_, "time cannot move backwards");
        while (!heap_.empty() && heap_.front().when <= now) {
            // Move out before popping: the callback may schedule more.
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            Event ev = std::move(heap_.back());
            heap_.pop_back();
            curTick_ = ev.when;
            ev.cb();
        }
        curTick_ = now;
    }

    /** Run every pending event; returns the final tick. */
    Tick
    drain()
    {
        while (!heap_.empty())
            advanceTo(heap_.front().when);
        return curTick_;
    }

    /** Reset to time zero, dropping pending events. */
    void
    reset()
    {
        heap_.clear();
        curTick_ = 0;
        nextSeq_ = 0;
    }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    // A hand-rolled binary heap (std::push_heap/std::pop_heap) rather
    // than std::priority_queue: top() on the adapter is const, which
    // forces a copy of the Event (and its std::function) per pop;
    // here the hot path moves events out instead.
    std::vector<Event> heap_;
    Tick curTick_ = 0;
    uint64_t nextSeq_ = 0;
};

} // namespace grp

#endif // GRP_SIM_EVENT_QUEUE_HH
