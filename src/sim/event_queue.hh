/**
 * @file
 * A minimal tick-ordered event queue.
 *
 * The memory system uses this for DRAM completion events and other
 * fixed-latency responses; the CPU model is ticked directly by the
 * top-level simulation loop for speed.
 */

#ifndef GRP_SIM_EVENT_QUEUE_HH
#define GRP_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace grp
{

/**
 * Move-only callable with inline storage sized for the simulator's
 * event captures. Replaces std::function on the event hot path:
 * every scheduled completion used to heap-allocate (and free) one
 * control block per event, which showed up in the host profile. A
 * capture that fits the inline buffer now lives in the heap_ vector
 * itself — scheduling and running an event touches no allocator.
 * Oversized captures fall back to the heap transparently.
 */
class InlineCallback
{
  public:
    /** Sized for the largest hot capture ([this, MemRequest]). */
    static constexpr size_t kInlineBytes = 64;

    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&fn) // NOLINT: implicit like std::function.
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            manage_ = &manageInline<Fn>;
        } else {
            ::new (static_cast<void *>(storage_))
                (Fn *)(new Fn(std::forward<F>(fn)));
            manage_ = &manageHeap<Fn>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    void operator()() { manage_(Op::Invoke, this, nullptr); }

    explicit operator bool() const { return manage_ != nullptr; }

  private:
    /** One manager function per stored type keeps the object at one
     *  code pointer plus the buffer (no separate vtable / control
     *  block). Relocate move-constructs into @p dst and destroys the
     *  source — what the heap's sift operations need. */
    enum class Op
    {
        Invoke,
        Relocate,
        Destroy,
    };
    using Manager = void (*)(Op, InlineCallback *, InlineCallback *);

    template <typename Fn>
    static void
    manageInline(Op op, InlineCallback *self, InlineCallback *dst)
    {
        Fn *fn = std::launder(reinterpret_cast<Fn *>(self->storage_));
        switch (op) {
          case Op::Invoke:
            (*fn)();
            break;
          case Op::Relocate:
            ::new (static_cast<void *>(dst->storage_))
                Fn(std::move(*fn));
            fn->~Fn();
            break;
          case Op::Destroy:
            fn->~Fn();
            break;
        }
    }

    template <typename Fn>
    static void
    manageHeap(Op op, InlineCallback *self, InlineCallback *dst)
    {
        Fn **slot = std::launder(
            reinterpret_cast<Fn **>(self->storage_));
        switch (op) {
          case Op::Invoke:
            (**slot)();
            break;
          case Op::Relocate:
            ::new (static_cast<void *>(dst->storage_)) (Fn *)(*slot);
            break;
          case Op::Destroy:
            delete *slot;
            break;
        }
    }

    void
    moveFrom(InlineCallback &&other) noexcept
    {
        manage_ = other.manage_;
        if (manage_) {
            manage_(Op::Relocate, &other, this);
            other.manage_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (manage_) {
            manage_(Op::Destroy, this, nullptr);
            manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    Manager manage_ = nullptr;
};

/** Tick-ordered queue of callbacks; FIFO among same-tick events. */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Schedule @p cb to run at absolute time @p when (>= curTick()). */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < curTick_, "scheduling event in the past "
                 "(%llu < %llu)", (unsigned long long)when,
                 (unsigned long long)curTick_);
        heap_.push_back(Event{when, nextSeq_++, std::move(cb)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** True iff no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t size() const { return heap_.size(); }

    /** Tick of the next pending event (kMaxTick if none). */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? kMaxTick : heap_.front().when;
    }

    /**
     * Advance time to @p now, running every event scheduled at or
     * before @p now in (tick, insertion) order.
     */
    void
    advanceTo(Tick now)
    {
        panic_if(now < curTick_, "time cannot move backwards");
        while (!heap_.empty() && heap_.front().when <= now) {
            // Move out before popping: the callback may schedule more.
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            Event ev = std::move(heap_.back());
            heap_.pop_back();
            curTick_ = ev.when;
            ev.cb();
        }
        curTick_ = now;
    }

    /** Run every pending event; returns the final tick. */
    Tick
    drain()
    {
        while (!heap_.empty())
            advanceTo(heap_.front().when);
        return curTick_;
    }

    /** Reset to time zero, dropping pending events. */
    void
    reset()
    {
        heap_.clear();
        curTick_ = 0;
        nextSeq_ = 0;
    }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    // A hand-rolled binary heap (std::push_heap/std::pop_heap) rather
    // than std::priority_queue: top() on the adapter is const, which
    // forces a copy of the Event per pop (and InlineCallback is
    // move-only anyway); here the hot path moves events out instead.
    std::vector<Event> heap_;
    Tick curTick_ = 0;
    uint64_t nextSeq_ = 0;
};

} // namespace grp

#endif // GRP_SIM_EVENT_QUEUE_HH
