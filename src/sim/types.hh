/**
 * @file
 * Fundamental simulator types and address arithmetic helpers.
 *
 * The whole simulator works on 64-bit virtual/physical addresses, a
 * 64-byte cache block and a 4 KB prefetch region, matching the
 * configuration used in the GRP paper (Wang et al., ISCA 2003).
 */

#ifndef GRP_SIM_TYPES_HH
#define GRP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace grp
{

/** Simulated time, in CPU cycles. */
using Tick = uint64_t;

/** Simulated memory address (we use a flat address space). */
using Addr = uint64_t;

/** Static memory-reference identifier (the "PC" of a load/store). */
using RefId = uint32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid reference id. */
constexpr RefId kInvalidRefId = std::numeric_limits<RefId>::max();

/** Cache block size in bytes (paper: 64 B). */
constexpr unsigned kBlockBytes = 64;
/** log2(kBlockBytes). */
constexpr unsigned kBlockShift = 6;

/** Prefetch region size in bytes (paper: 4 KB). */
constexpr unsigned kRegionBytes = 4096;
/** log2(kRegionBytes). */
constexpr unsigned kRegionShift = 12;
/** Number of cache blocks per region (64). */
constexpr unsigned kBlocksPerRegion = kRegionBytes / kBlockBytes;

/** Align an address down to its cache block. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kBlockBytes - 1);
}

/** Align an address down to its 4 KB region. */
constexpr Addr
regionAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kRegionBytes - 1);
}

/** Index of the block containing @p addr within its region [0, 64). */
constexpr unsigned
blockInRegion(Addr addr)
{
    return static_cast<unsigned>((addr >> kBlockShift) &
                                 (kBlocksPerRegion - 1));
}

/** Block number (address divided by block size). */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> kBlockShift;
}

/** True iff @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 for powers of two. */
constexpr unsigned
floorLog2(uint64_t value)
{
    unsigned result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

/** Smallest power of two >= @p value (value must be >= 1). */
constexpr uint64_t
nextPowerOfTwo(uint64_t value)
{
    uint64_t result = 1;
    while (result < value)
        result <<= 1;
    return result;
}

} // namespace grp

#endif // GRP_SIM_TYPES_HH
