#include "core/grp_engine.hh"

#include <algorithm>

#include "obs/host_prof.hh"
#include "obs/site_profile.hh"
#include "sim/logging.hh"

namespace grp
{

GrpEngine::GrpEngine(const SimConfig &config, const FunctionalMemory &mem,
                     obs::StatRegistry &registry)
    : config_(config),
      mem_(mem),
      queue_(config.region.queueEntries, config.region.lifo,
             config.region.bankAware, registry),
      scanner_(mem),
      stats_("grpEngine"),
      statReg_(stats_, registry)
{
    fatal_if(!config.usesHints(),
             "GrpEngine requires the GrpFix, GrpVar or GrpAdaptive "
             "scheme");
    missesUnhinted_ = &stats_.counter("missesUnhinted");
    regionsAllocated_ = &stats_.counter("regionsAllocated");
    regionsUpdated_ = &stats_.counter("regionsUpdated");
    linesScanned_ = &stats_.counter("linesScanned");
    pointersFound_ = &stats_.counter("pointersFound");
    indirectOps_ = &stats_.counter("indirectOps");
    indirectTargets_ = &stats_.counter("indirectTargets");
    candidatesOffered_ = &stats_.counter("candidatesOffered");
}

void
GrpEngine::setPresenceTest(RegionQueue::PresenceTest test)
{
    queue_.setPresenceTest(std::move(test));
}

void
GrpEngine::setControlPlane(const adaptive::ControlPlane *plane)
{
    plane_ = plane;
    queue_.setControlPlane(plane);
}

void
GrpEngine::onL2DemandMiss(Addr addr, RefId ref, const LoadHints &hints)
{
    GRP_HOST_SCOPE(2, EngineNotify);
    // The compiler's hint gates the spatial engine: misses without a
    // spatial mark do not trigger region prefetches at all. Pointer
    // and recursive hints need no action here — the memory system
    // already armed the miss's MSHR counter; the scan runs on fill.
    if (!hints.spatial()) {
        ++*missesUnhinted_;
        return;
    }
    GRP_TRACE(2, obs::TraceEvent::HintTrigger, blockAlign(addr),
              obs::HintClass::Spatial, -1, -1, false, ref);
    GRP_PROFILE(noteTrigger(ref, obs::HintClass::Spatial));
    unsigned window =
        variableRegions() ? hints.regionBlocks(kBlocksPerRegion)
                          : kBlocksPerRegion;
    // The adaptive region-size ladder caps the hinted window; both
    // are powers of two, so the min stays one.
    if (plane_) {
        window = std::min(
            window, plane_->regionBlockCap(obs::HintClass::Spatial));
    }
    const unsigned allocated =
        queue_.noteSpatialMiss(addr, window, 0, ref,
                               obs::HintClass::Spatial);
    if (allocated) {
        ++*regionsAllocated_;
        regionSizes_.sample(allocated);
    } else {
        ++*regionsUpdated_;
    }
}

void
GrpEngine::onFill(Addr block_addr, uint8_t ptr_depth, ReqClass)
{
    GRP_HOST_SCOPE(2, EngineNotify);
    if (ptr_depth == 0)
        return;
    std::array<Addr, 8> pointers;
    const unsigned found = scanner_.scan(block_addr, pointers);
    *linesScanned_ += 1;
    *pointersFound_ += found;
    // Chases deeper than one level came from a recursive-pointer
    // hint; attribute their candidates separately (Table 5).
    const obs::HintClass hint = ptr_depth > 1
                                    ? obs::HintClass::Recursive
                                    : obs::HintClass::Pointer;
    if (found > 0) {
        GRP_TRACE(2, obs::TraceEvent::HintTrigger, block_addr, hint,
                  -1, found);
        GRP_PROFILE(noteTrigger(kInvalidRefId, hint));
    }
    for (unsigned i = 0; i < found; ++i) {
        queue_.addPointerTarget(pointers[i],
                                config_.region.blocksPerPointer,
                                static_cast<uint8_t>(ptr_depth - 1),
                                kInvalidRefId, hint);
    }
}

void
GrpEngine::indirectPrefetch(Addr base, unsigned elem_size,
                            Addr index_addr, RefId ref)
{
    GRP_HOST_SCOPE(2, EngineNotify);
    // Read the cache block containing &b[i]; every 4-byte word in it
    // is treated as an index into a (§3.3.3). The hardware cannot
    // know the live extent of b, so words past the end of the array
    // generate prefetches too — exactly the over-fetch the paper's
    // design accepts for its simplicity.
    ++*indirectOps_;
    GRP_TRACE(2, obs::TraceEvent::HintTrigger, blockAlign(index_addr),
              obs::HintClass::Indirect, -1, -1, false, ref);
    GRP_PROFILE(noteTrigger(ref, obs::HintClass::Indirect));
    const Addr block = blockAlign(index_addr);
    const unsigned fanout = config_.region.indirectFanout;
    for (unsigned i = 0; i < kBlockBytes / 4 && i < fanout; ++i) {
        const uint32_t index = mem_.read32(block + 4ull * i);
        const Addr target =
            base + static_cast<uint64_t>(index) * elem_size;
        queue_.addPointerTarget(target, 1, 0, ref,
                                obs::HintClass::Indirect);
        ++*indirectTargets_;
    }
}

std::optional<PrefetchCandidate>
GrpEngine::dequeuePrefetch(const DramBackend &dram, unsigned channel)
{
    GRP_HOST_SCOPE(2, EngineDequeue);
    auto candidate = queue_.dequeue(dram, channel);
    if (candidate)
        ++*candidatesOffered_;
    return candidate;
}

void
GrpEngine::reset()
{
    queue_.clear();
    stats_.reset();
    regionSizes_.reset();
}

} // namespace grp
