/**
 * @file
 * Creates the prefetch engine matching a configuration's scheme and
 * wires its presence test to the memory system.
 */

#ifndef GRP_CORE_ENGINE_FACTORY_HH
#define GRP_CORE_ENGINE_FACTORY_HH

#include <memory>

#include "mem/functional_memory.hh"
#include "mem/memory_system.hh"
#include "mem/prefetch_iface.hh"
#include "sim/config.hh"

namespace grp
{

/**
 * Build the engine for @p config.scheme (nullptr for
 * PrefetchScheme::None), attach it to @p mem and point its presence
 * test at @p mem's L2 and MSHRs. The engine's stat groups register
 * into @p registry (normally the same per-run registry @p mem uses).
 */
std::unique_ptr<PrefetchEngine>
makePrefetchEngine(const SimConfig &config, const FunctionalMemory &fmem,
                   MemorySystem &mem,
                   obs::StatRegistry &registry =
                       obs::StatRegistry::current());

} // namespace grp

#endif // GRP_CORE_ENGINE_FACTORY_HH
