/**
 * @file
 * The GRP load-hint encoding (Section 3.3 of the paper).
 *
 * In the paper the compiler conveys hints through unused Alpha
 * VAX-format floating-point load opcodes; here they are a small value
 * type attached to every static memory reference and propagated with
 * requests through the memory hierarchy, which is the same
 * information channel.
 *
 * This header is intentionally header-only so the memory substrate can
 * carry hints in requests without linking against the GRP core.
 */

#ifndef GRP_CORE_HINTS_HH
#define GRP_CORE_HINTS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace grp
{

/** Bit flags for the five hint classes. */
enum HintFlag : uint8_t
{
    kHintSpatial = 1 << 0,   ///< Reference has spatial locality.
    kHintPointer = 1 << 1,   ///< Structure contains followed pointers.
    kHintRecursive = 1 << 2, ///< Pointers are followed recursively.
    kHintSizeValid = 1 << 3, ///< sizeCoeff/loopBound are meaningful.
};

/** The coefficient value reserved for "use the fixed region size". */
constexpr uint8_t kFixedRegionCoeff = 7;

/**
 * Compiler hints attached to one static load/store.
 *
 * `sizeCoeff` is the 3-bit encoding of Section 4.4: for an access
 * pattern a(b*i + c) with element size e the compiler encodes
 * x ~ log2(b*e), and the engine prefetches `loopBound << x` bytes.
 * The value 7 selects fixed-size (4 KB) regions.
 */
struct LoadHints
{
    uint8_t flags = 0;
    uint8_t sizeCoeff = kFixedRegionCoeff;
    /** Loop upper bound conveyed by the special instruction (§3.3.2). */
    uint32_t loopBound = 0;

    bool spatial() const { return flags & kHintSpatial; }
    bool pointer() const { return flags & kHintPointer; }
    bool recursive() const { return flags & kHintRecursive; }
    bool sizeValid() const { return flags & kHintSizeValid; }
    bool any() const { return flags != 0; }

    /**
     * Number of blocks to prefetch around a spatial miss.
     *
     * @param fixed_blocks The fixed region size in blocks (64).
     * @return Region size in blocks, a power of two in [2, fixed_blocks].
     */
    unsigned
    regionBlocks(unsigned fixed_blocks) const
    {
        if (!sizeValid() || sizeCoeff == kFixedRegionCoeff ||
            loopBound == 0) {
            return fixed_blocks;
        }
        const uint64_t bytes =
            static_cast<uint64_t>(loopBound) << sizeCoeff;
        uint64_t blocks = (bytes + kBlockBytes - 1) / kBlockBytes;
        blocks = nextPowerOfTwo(blocks < 2 ? 2 : blocks);
        if (blocks > fixed_blocks)
            blocks = fixed_blocks;
        return static_cast<unsigned>(blocks);
    }

    /** Initial 3-bit pointer-chase depth for a miss with these hints. */
    unsigned
    pointerDepth(unsigned recursive_depth) const
    {
        if (recursive())
            return recursive_depth;
        if (pointer())
            return 1;
        return 0;
    }

    std::string
    describe() const
    {
        std::string out;
        auto add = [&out](const char *name) {
            if (!out.empty())
                out += '|';
            out += name;
        };
        if (spatial())
            add("spatial");
        if (pointer())
            add("pointer");
        if (recursive())
            add("recursive");
        if (sizeValid())
            add("size");
        if (out.empty())
            out = "none";
        return out;
    }

    bool
    operator==(const LoadHints &other) const
    {
        return flags == other.flags && sizeCoeff == other.sizeCoeff &&
               loopBound == other.loopBound;
    }
};

} // namespace grp

#endif // GRP_CORE_HINTS_HH
