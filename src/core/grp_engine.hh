/**
 * @file
 * The Guided Region Prefetching engine — the paper's contribution
 * (Section 3.3).
 *
 * GRP is the SRP hardware regulated by compiler hints:
 *
 *  - A *spatial* hint gates region allocation: only misses the
 *    compiler marked spatial start a region prefetch.
 *  - A *size* hint (GRP/Var) shrinks the region to
 *    `loop bound << coefficient` bytes, cutting useless traffic when
 *    the spatial reuse does not span the full 4 KB region.
 *  - *pointer* / *recursive pointer* hints arm the stateless pointer
 *    scanner on the miss's returned line; a 3-bit counter in the
 *    MSHRs/queue entries (1 for pointer, 6 for recursive) bounds the
 *    chase depth, and each discovered pointer prefetches two blocks.
 *  - An explicit *indirect* prefetch instruction conveys
 *    (&a[0], sizeof(a[0]), &b[i]); the engine reads the index block
 *    and prefetches a + elem * b[k] for each of its 16 words.
 */

#ifndef GRP_CORE_GRP_ENGINE_HH
#define GRP_CORE_GRP_ENGINE_HH

#include "mem/functional_memory.hh"
#include "mem/prefetch_iface.hh"
#include "prefetch/pointer_scanner.hh"
#include "prefetch/region_queue.hh"
#include "sim/config.hh"

namespace grp
{

/** The hint-regulated prefetch engine. */
class GrpEngine : public PrefetchEngine
{
  public:
    /**
     * @param config scheme must be GrpFix, GrpVar or GrpAdaptive.
     * @param mem Functional memory (pointer scanning and indirect
     *        index reads need line contents).
     */
    GrpEngine(const SimConfig &config, const FunctionalMemory &mem,
              obs::StatRegistry &registry =
                  obs::StatRegistry::current());

    void setPresenceTest(RegionQueue::PresenceTest test);

    /** Attach the adaptive control plane (not owned): caps the
     *  spatial window and priority-tiers the queue. A null plane
     *  keeps GrpVar behavior exactly. */
    void setControlPlane(const adaptive::ControlPlane *plane);

    void onL2DemandMiss(Addr addr, RefId ref,
                        const LoadHints &hints) override;
    void onFill(Addr block_addr, uint8_t ptr_depth,
                ReqClass cls) override;
    std::optional<PrefetchCandidate>
    dequeuePrefetch(const DramBackend &dram, unsigned channel) override;
    void indirectPrefetch(Addr base, unsigned elem_size,
                          Addr index_addr, RefId ref) override;

    StatGroup &stats() override { return stats_; }

    size_t queueDepth() const override { return queue_.size(); }

    /** Distribution of allocated region sizes in blocks (Table 4). */
    const Distribution &regionSizes() const { return regionSizes_; }

    RegionQueue &queue() { return queue_; }

    void reset() override;

  private:
    bool variableRegions() const
    {
        return config_.scheme == PrefetchScheme::GrpVar ||
               config_.scheme == PrefetchScheme::GrpAdaptive;
    }

    SimConfig config_;
    const FunctionalMemory &mem_;
    const adaptive::ControlPlane *plane_ = nullptr;
    RegionQueue queue_;
    PointerScanner scanner_;
    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;
    Distribution regionSizes_;

    /** Cached counter handles (lookup once at construction). */
    Counter *missesUnhinted_ = nullptr;
    Counter *regionsAllocated_ = nullptr;
    Counter *regionsUpdated_ = nullptr;
    Counter *linesScanned_ = nullptr;
    Counter *pointersFound_ = nullptr;
    Counter *indirectOps_ = nullptr;
    Counter *indirectTargets_ = nullptr;
    Counter *candidatesOffered_ = nullptr;
};

} // namespace grp

#endif // GRP_CORE_GRP_ENGINE_HH
