#include "core/engine_factory.hh"

#include "adaptive/signals.hh"
#include "core/grp_engine.hh"
#include "prefetch/hw_engine.hh"
#include "prefetch/stride.hh"
#include "prefetch/throttled_srp.hh"

namespace grp
{

std::unique_ptr<PrefetchEngine>
makePrefetchEngine(const SimConfig &config, const FunctionalMemory &fmem,
                   MemorySystem &mem, obs::StatRegistry &registry)
{
    std::unique_ptr<PrefetchEngine> engine;
    auto present = [&mem](Addr addr) {
        return mem.l2().contains(addr) ||
               mem.l2Mshrs().find(addr) != nullptr;
    };

    switch (config.scheme) {
      case PrefetchScheme::None:
        break;
      case PrefetchScheme::Stride:
        engine = std::make_unique<StridePrefetcher>(config, registry);
        break;
      case PrefetchScheme::Srp:
      case PrefetchScheme::PointerHw:
      case PrefetchScheme::PointerHwRec:
      case PrefetchScheme::SrpPlusPointer: {
        auto hw = std::make_unique<HwPrefetchEngine>(config, fmem,
                                                     registry);
        hw->setPresenceTest(present);
        engine = std::move(hw);
        break;
      }
      case PrefetchScheme::SrpThrottled: {
        // The governor samples its accuracy epochs from the run's
        // mem.* counters (queue depth is unused: capacity 0).
        auto throttled = std::make_unique<ThrottledSrpEngine>(
            config, adaptive::memorySource(mem, nullptr, 0), 0.20, 64,
            registry);
        throttled->setPresenceTest(present);
        engine = std::move(throttled);
        break;
      }
      case PrefetchScheme::GrpFix:
      case PrefetchScheme::GrpVar:
      case PrefetchScheme::GrpAdaptive: {
        auto grp_engine = std::make_unique<GrpEngine>(config, fmem,
                                                      registry);
        grp_engine->setPresenceTest(present);
        engine = std::move(grp_engine);
        break;
      }
    }

    mem.setPrefetchEngine(engine.get());
    return engine;
}

} // namespace grp
