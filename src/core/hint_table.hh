/**
 * @file
 * The static hint table: per-static-reference compiler hints.
 *
 * The paper encodes hints in unused load opcodes of the binary; this
 * table plays the role of the hinted binary. The hint generator
 * (compiler passes) fills it; the CPU attaches the entry for a
 * reference's RefId to every dynamic access it issues.
 */

#ifndef GRP_CORE_HINT_TABLE_HH
#define GRP_CORE_HINT_TABLE_HH

#include <vector>

#include "core/hints.hh"
#include "sim/types.hh"

namespace grp
{

/** Dense RefId -> LoadHints map. */
class HintTable
{
  public:
    /** Set the hints for @p ref, growing the table as needed. */
    void
    set(RefId ref, const LoadHints &hints)
    {
        if (table_.size() <= ref)
            table_.resize(ref + 1);
        table_[ref] = hints;
    }

    /** Hints for @p ref (empty hints when never set). */
    const LoadHints &
    get(RefId ref) const
    {
        static const LoadHints kNone{};
        return ref < table_.size() ? table_[ref] : kNone;
    }

    /** Merge flag bits into @p ref's entry. */
    void
    addFlags(RefId ref, uint8_t flags)
    {
        if (table_.size() <= ref)
            table_.resize(ref + 1);
        table_[ref].flags |= flags;
    }

    size_t size() const { return table_.size(); }

    /** Count entries whose flags include @p flag. */
    size_t
    countWith(uint8_t flag) const
    {
        size_t n = 0;
        for (const LoadHints &hints : table_) {
            if (hints.flags & flag)
                ++n;
        }
        return n;
    }

    void clear() { table_.clear(); }

  private:
    std::vector<LoadHints> table_;
};

} // namespace grp

#endif // GRP_CORE_HINT_TABLE_HH
