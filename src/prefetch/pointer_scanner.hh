/**
 * @file
 * The stateless hardware pointer test of Section 3.2.
 *
 * When a line returns from memory, the engine checks each of the
 * eight aligned 8-byte values in the 64-byte block against the start
 * and end addresses of the simulated heap (base-and-bounds). Any
 * value that falls inside the heap is treated as a pointer and
 * becomes a prefetch target.
 */

#ifndef GRP_PREFETCH_POINTER_SCANNER_HH
#define GRP_PREFETCH_POINTER_SCANNER_HH

#include <array>

#include "mem/functional_memory.hh"
#include "sim/types.hh"

namespace grp
{

/** Scans returned cache lines for heap addresses. */
class PointerScanner
{
  public:
    explicit PointerScanner(const FunctionalMemory &mem) : mem_(mem) {}

    /**
     * Scan the block containing @p block_addr.
     *
     * @param out Receives the discovered pointer values.
     * @return Number of pointers found (0..8).
     *
     * Pointers back into the scanned block itself are skipped: the
     * block is by definition already present.
     */
    unsigned
    scan(Addr block_addr, std::array<Addr, 8> &out) const
    {
        std::array<uint64_t, 8> words;
        mem_.readBlock(block_addr, words);
        const Addr base = blockAlign(block_addr);
        unsigned found = 0;
        for (uint64_t word : words) {
            if (!mem_.looksLikeHeapPointer(word))
                continue;
            if (blockAlign(word) == base)
                continue;
            out[found++] = word;
        }
        return found;
    }

  private:
    const FunctionalMemory &mem_;
};

} // namespace grp

#endif // GRP_PREFETCH_POINTER_SCANNER_HH
