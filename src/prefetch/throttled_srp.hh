/**
 * @file
 * An accuracy-throttled SRP variant — the class of scheme the paper
 * contrasts GRP against in Section 1: "While some schemes throttle
 * prefetching when the accuracy drops below a threshold, they then
 * miss opportunities for issuing useful prefetches" (citing Dahlgren
 * and Stenstrom). This engine wraps the SRP region hardware with a
 * purely dynamic accuracy monitor: no compiler information at all.
 *
 * It exists as an extension/ablation point: bench/ext_throttle
 * compares SRP, throttled SRP and GRP to show that dynamic
 * throttling cuts traffic by sacrificing coverage, where GRP's
 * static hints cut traffic while keeping it.
 */

#ifndef GRP_PREFETCH_THROTTLED_SRP_HH
#define GRP_PREFETCH_THROTTLED_SRP_HH

#include "mem/functional_memory.hh"
#include "mem/prefetch_iface.hh"
#include "prefetch/region_queue.hh"
#include "sim/config.hh"

namespace grp
{

/** SRP with a dynamic accuracy governor. */
class ThrottledSrpEngine : public PrefetchEngine
{
  public:
    /** Issue statistics are evaluated once per window. */
    static constexpr unsigned kWindow = 256;

    /**
     * @param accuracy_floor Minimum useful/issued ratio; below it
     *        the engine pauses until demand misses accumulate.
     * @param resume_misses Demand misses required to resume.
     */
    ThrottledSrpEngine(const SimConfig &config,
                       double accuracy_floor = 0.20,
                       unsigned resume_misses = 64,
                       obs::StatRegistry &registry =
                           obs::StatRegistry::current());

    void setPresenceTest(RegionQueue::PresenceTest test);

    void onL2DemandMiss(Addr addr, RefId ref,
                        const LoadHints &hints) override;
    void onPrefetchUseful(Addr block_addr) override;
    std::optional<PrefetchCandidate>
    dequeuePrefetch(const DramSystem &dram, unsigned channel) override;

    StatGroup &stats() override { return stats_; }
    bool throttled() const { return throttled_; }

    size_t queueDepth() const override { return queue_.size(); }

    void reset() override;

  private:
    SimConfig config_;
    RegionQueue queue_;
    double accuracyFloor_;
    unsigned resumeMisses_;

    uint64_t windowIssued_ = 0;
    uint64_t windowUseful_ = 0;
    bool throttled_ = false;
    unsigned missesWhileThrottled_ = 0;

    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;

    /** Cached counter handles (lookup once at construction). */
    Counter *missesWhileThrottledCounter_ = nullptr;
    Counter *resumes_ = nullptr;
    Counter *regionsAllocated_ = nullptr;
    Counter *regionsUpdated_ = nullptr;
    Counter *throttleEvents_ = nullptr;
};

} // namespace grp

#endif // GRP_PREFETCH_THROTTLED_SRP_HH
