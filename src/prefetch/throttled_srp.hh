/**
 * @file
 * An accuracy-throttled SRP variant — the class of scheme the paper
 * contrasts GRP against in Section 1: "While some schemes throttle
 * prefetching when the accuracy drops below a threshold, they then
 * miss opportunities for issuing useful prefetches" (citing Dahlgren
 * and Stenstrom). This engine wraps the SRP region hardware with a
 * purely dynamic accuracy monitor: no compiler information at all.
 *
 * The accuracy signal comes from an adaptive::Signals epoch sampler
 * over the run's mem.* counters (the same sampler the adaptive
 * controller uses) rather than private issue/use accounting: every
 * kWindow dequeues the engine reads one delta of issued vs. useful
 * prefetches and pauses when the ratio is below the floor.
 *
 * It exists as an extension/ablation point: bench/ext_throttle and
 * bench/ext_adaptive compare SRP, throttled SRP and GRP variants to
 * show that global dynamic throttling cuts traffic by sacrificing
 * coverage, where hint-guided (and per-class adaptive) schemes keep
 * it.
 */

#ifndef GRP_PREFETCH_THROTTLED_SRP_HH
#define GRP_PREFETCH_THROTTLED_SRP_HH

#include "adaptive/signals.hh"
#include "mem/functional_memory.hh"
#include "mem/prefetch_iface.hh"
#include "prefetch/region_queue.hh"
#include "sim/config.hh"

namespace grp
{

/** SRP with a dynamic accuracy governor. */
class ThrottledSrpEngine : public PrefetchEngine
{
  public:
    /** Issue statistics are evaluated once per window. */
    static constexpr unsigned kWindow = 256;

    /**
     * @param source Cumulative signal source the accuracy epochs are
     *        sampled from (production: adaptive::memorySource over
     *        the run's MemorySystem; tests: a synthetic lambda).
     * @param accuracy_floor Minimum useful/issued ratio; below it
     *        the engine pauses until demand misses accumulate.
     * @param resume_misses Demand misses required to resume.
     */
    ThrottledSrpEngine(const SimConfig &config,
                       adaptive::Signals::Source source,
                       double accuracy_floor = 0.20,
                       unsigned resume_misses = 64,
                       obs::StatRegistry &registry =
                           obs::StatRegistry::current());

    void setPresenceTest(RegionQueue::PresenceTest test);

    void onL2DemandMiss(Addr addr, RefId ref,
                        const LoadHints &hints) override;
    std::optional<PrefetchCandidate>
    dequeuePrefetch(const DramBackend &dram, unsigned channel) override;

    StatGroup &stats() override { return stats_; }
    bool throttled() const { return throttled_; }

    size_t queueDepth() const override { return queue_.size(); }

    void reset() override;

  private:
    SimConfig config_;
    RegionQueue queue_;
    double accuracyFloor_;
    unsigned resumeMisses_;

    adaptive::Signals signals_;
    /** Dequeues since the last accuracy evaluation. */
    uint64_t dequeuesSinceEval_ = 0;
    bool throttled_ = false;
    /** missesWhileThrottled counter value when the current pause
     *  began (resume progress is the delta; the counter IS the
     *  accounting — no duplicate raw member). */
    uint64_t throttleStartMisses_ = 0;

    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;

    /** Cached counter handles (lookup once at construction). */
    Counter *missesWhileThrottledCounter_ = nullptr;
    Counter *resumes_ = nullptr;
    Counter *regionsAllocated_ = nullptr;
    Counter *regionsUpdated_ = nullptr;
    Counter *throttleEvents_ = nullptr;
};

} // namespace grp

#endif // GRP_PREFETCH_THROTTLED_SRP_HH
