#include "prefetch/hw_engine.hh"

#include "obs/host_prof.hh"
#include "obs/site_profile.hh"
#include "sim/logging.hh"

namespace grp
{

HwPrefetchEngine::HwPrefetchEngine(const SimConfig &config,
                                   const FunctionalMemory &mem,
                                   obs::StatRegistry &registry)
    : config_(config),
      queue_(config.region.queueEntries, config.region.lifo,
             config.region.bankAware, registry),
      scanner_(mem),
      stats_("hwEngine"),
      statReg_(stats_, registry)
{
    fatal_if(config.usesHints(),
             "HwPrefetchEngine cannot run hint-based schemes; "
             "use GrpEngine");
    regionsAllocated_ = &stats_.counter("regionsAllocated");
    regionsUpdated_ = &stats_.counter("regionsUpdated");
    linesScanned_ = &stats_.counter("linesScanned");
    pointersFound_ = &stats_.counter("pointersFound");
    candidatesOffered_ = &stats_.counter("candidatesOffered");
}

bool
HwPrefetchEngine::usesRegions() const
{
    return config_.scheme == PrefetchScheme::Srp ||
           config_.scheme == PrefetchScheme::SrpPlusPointer;
}

bool
HwPrefetchEngine::usesPointers() const
{
    return config_.scheme == PrefetchScheme::PointerHw ||
           config_.scheme == PrefetchScheme::PointerHwRec ||
           config_.scheme == PrefetchScheme::SrpPlusPointer;
}

void
HwPrefetchEngine::setPresenceTest(RegionQueue::PresenceTest test)
{
    queue_.setPresenceTest(std::move(test));
}

void
HwPrefetchEngine::onL2DemandMiss(Addr addr, RefId ref, const LoadHints &)
{
    GRP_HOST_SCOPE(2, EngineNotify);
    // SRP prefetches the full 4 KB region on every L2 miss, with no
    // selectivity at all — the coverage/traffic trade the paper's
    // hints improve on. The triggering reference still attributes the
    // region for the tracer and site profiler, even though the
    // hardware itself ignores it.
    if (!usesRegions())
        return;
    GRP_TRACE(2, obs::TraceEvent::HintTrigger, blockAlign(addr),
              obs::HintClass::Spatial, -1, -1, false, ref);
    GRP_PROFILE(noteTrigger(ref, obs::HintClass::Spatial));
    if (queue_.noteSpatialMiss(addr, kBlocksPerRegion, 0, ref)) {
        ++*regionsAllocated_;
    } else {
        ++*regionsUpdated_;
    }
}

void
HwPrefetchEngine::onFill(Addr block_addr, uint8_t ptr_depth, ReqClass)
{
    GRP_HOST_SCOPE(2, EngineNotify);
    if (!usesPointers() || ptr_depth == 0)
        return;
    std::array<Addr, 8> pointers;
    const unsigned found = scanner_.scan(block_addr, pointers);
    *linesScanned_ += 1;
    *pointersFound_ += found;
    const obs::HintClass hint = ptr_depth > 1
                                    ? obs::HintClass::Recursive
                                    : obs::HintClass::Pointer;
    if (found > 0) {
        GRP_TRACE(2, obs::TraceEvent::HintTrigger, block_addr, hint,
                  -1, found);
        GRP_PROFILE(noteTrigger(kInvalidRefId, hint));
    }
    for (unsigned i = 0; i < found; ++i) {
        queue_.addPointerTarget(pointers[i],
                                config_.region.blocksPerPointer,
                                static_cast<uint8_t>(ptr_depth - 1),
                                kInvalidRefId, hint);
    }
}

std::optional<PrefetchCandidate>
HwPrefetchEngine::dequeuePrefetch(const DramBackend &dram,
                                  unsigned channel)
{
    GRP_HOST_SCOPE(2, EngineDequeue);
    auto candidate = queue_.dequeue(dram, channel);
    if (candidate)
        ++*candidatesOffered_;
    return candidate;
}

void
HwPrefetchEngine::reset()
{
    queue_.clear();
    stats_.reset();
}

} // namespace grp
