/**
 * @file
 * The pure-hardware prefetch engines: SRP, stateless pointer
 * prefetching, recursive pointer prefetching, and the SRP+pointer
 * combination — every scheme of the paper that needs no compiler
 * hints. GRP (the hint-regulated engine) lives in core/grp_engine.hh.
 */

#ifndef GRP_PREFETCH_HW_ENGINE_HH
#define GRP_PREFETCH_HW_ENGINE_HH

#include "mem/functional_memory.hh"
#include "mem/prefetch_iface.hh"
#include "prefetch/pointer_scanner.hh"
#include "prefetch/region_queue.hh"
#include "sim/config.hh"

namespace grp
{

/** Hardware-only prefetch engine (no compiler hints). */
class HwPrefetchEngine : public PrefetchEngine
{
  public:
    /**
     * @param scheme One of Srp, PointerHw, PointerHwRec,
     *        SrpPlusPointer.
     */
    HwPrefetchEngine(const SimConfig &config,
                     const FunctionalMemory &mem,
                     obs::StatRegistry &registry =
                         obs::StatRegistry::current());

    void setPresenceTest(RegionQueue::PresenceTest test);

    /** Attach the adaptive control plane (not owned): priority-tiers
     *  the prefetch queue. A null plane keeps queue-order dequeue. */
    void
    setControlPlane(const adaptive::ControlPlane *plane)
    {
        queue_.setControlPlane(plane);
    }

    void onL2DemandMiss(Addr addr, RefId ref,
                        const LoadHints &hints) override;
    void onFill(Addr block_addr, uint8_t ptr_depth,
                ReqClass cls) override;
    std::optional<PrefetchCandidate>
    dequeuePrefetch(const DramBackend &dram, unsigned channel) override;

    StatGroup &stats() override { return stats_; }
    RegionQueue &queue() { return queue_; }

    size_t queueDepth() const override { return queue_.size(); }

    void reset() override;

  private:
    bool usesRegions() const;
    bool usesPointers() const;

    SimConfig config_;
    RegionQueue queue_;
    PointerScanner scanner_;
    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;

    /** Cached counter handles (lookup once at construction). */
    Counter *regionsAllocated_ = nullptr;
    Counter *regionsUpdated_ = nullptr;
    Counter *linesScanned_ = nullptr;
    Counter *pointersFound_ = nullptr;
    Counter *candidatesOffered_ = nullptr;
};

} // namespace grp

#endif // GRP_PREFETCH_HW_ENGINE_HH
