#include "prefetch/region_queue.hh"

#include <bit>
#include <limits>

#include "obs/site_profile.hh"
#include "sim/logging.hh"

namespace grp
{

namespace
{

inline std::size_t
classIndex(obs::HintClass cls)
{
    return static_cast<std::size_t>(cls);
}

} // namespace

RegionQueue::RegionQueue(unsigned capacity, bool lifo, bool bank_aware,
                         obs::StatRegistry &registry)
    : nextSeq_(std::numeric_limits<uint64_t>::max()),
      capacity_(capacity),
      lifo_(lifo),
      bankAware_(bank_aware),
      statReg_(stats_, registry)
{
    fatal_if(capacity == 0, "prefetch queue capacity must be non-zero");
    slots_.resize(capacity_ + 1);
    for (unsigned i = 0; i < slots_.size(); ++i)
        slots_[i].nextAll = i + 1 < slots_.size() ? int(i) + 1 : -1;
    freeHead_ = 0;
    clsHead_.fill(-1);
    clsTail_.fill(-1);
    entriesDropped_ = &stats_.counter("entriesDropped");
    candidatesDropped_ = &stats_.counter("candidatesDropped");
    regionsQueued_ = &stats_.counter("regionsQueued");
    pointerTargetsQueued_ = &stats_.counter("pointerTargetsQueued");
    candidatesDequeued_ = &stats_.counter("candidatesDequeued");
    occupancyHighWater_ = &stats_.counter("occupancyHighWater");
}

int
RegionQueue::allocSlot()
{
    panic_if(freeHead_ < 0, "slot pool exhausted");
    const int idx = freeHead_;
    freeHead_ = slots_[idx].nextAll;
    slots_[idx].used = true;
    return idx;
}

void
RegionQueue::linkFront(int idx)
{
    Slot &slot = slots_[idx];
    slot.seq = nextSeq_--;

    slot.prevAll = -1;
    slot.nextAll = allHead_;
    if (allHead_ >= 0)
        slots_[allHead_].prevAll = idx;
    allHead_ = idx;
    if (allTail_ < 0)
        allTail_ = idx;

    const std::size_t cls = classIndex(slot.entry.hintClass);
    slot.prevCls = -1;
    slot.nextCls = clsHead_[cls];
    if (clsHead_[cls] >= 0)
        slots_[clsHead_[cls]].prevCls = idx;
    clsHead_[cls] = idx;
    if (clsTail_[cls] < 0)
        clsTail_[cls] = idx;

    ++size_;
}

void
RegionQueue::removeSlot(int idx)
{
    Slot &slot = slots_[idx];

    if (slot.prevAll >= 0)
        slots_[slot.prevAll].nextAll = slot.nextAll;
    else
        allHead_ = slot.nextAll;
    if (slot.nextAll >= 0)
        slots_[slot.nextAll].prevAll = slot.prevAll;
    else
        allTail_ = slot.prevAll;

    const std::size_t cls = classIndex(slot.entry.hintClass);
    if (slot.prevCls >= 0)
        slots_[slot.prevCls].nextCls = slot.nextCls;
    else
        clsHead_[cls] = slot.nextCls;
    if (slot.nextCls >= 0)
        slots_[slot.nextCls].prevCls = slot.prevCls;
    else
        clsTail_[cls] = slot.prevCls;

    slot.used = false;
    slot.nextAll = freeHead_;
    freeHead_ = idx;
    --size_;
}

RegionQueue::Slot *
RegionQueue::findCovering(uint64_t block_num)
{
    for (int i = allHead_; i >= 0; i = slots_[i].nextAll) {
        RegionEntry &entry = slots_[i].entry;
        if (block_num >= entry.baseBlock &&
            block_num < entry.baseBlock + entry.numBlocks) {
            return &slots_[i];
        }
    }
    return nullptr;
}

uint64_t
RegionQueue::buildWindowVector(uint64_t base_block, unsigned blocks,
                               uint64_t exclude_block) const
{
    uint64_t vec = 0;
    for (unsigned i = 0; i < blocks; ++i) {
        const uint64_t block = base_block + i;
        if (block == exclude_block)
            continue;
        if (present_ && present_(block << kBlockShift))
            continue;
        vec |= 1ull << i;
    }
    return vec;
}

void
RegionQueue::pushFront(RegionEntry entry)
{
    const int entry_blocks = std::popcount(entry.bitvec);
    GRP_TRACE(2, obs::TraceEvent::Enqueue,
              entry.baseBlock << kBlockShift, entry.hintClass, -1,
              entry_blocks, false, entry.refId);
    GRP_PROFILE(noteEnqueue(entry.refId, entry.hintClass,
                            static_cast<uint64_t>(entry_blocks)));
    const int idx = allocSlot();
    slots_[idx].entry = entry;
    linkFront(idx);
    while (size_ > capacity_) {
        const RegionEntry &victim = slots_[allTail_].entry;
        const int victim_blocks = std::popcount(victim.bitvec);
        dropped_ += victim_blocks;
        ++*entriesDropped_;
        *candidatesDropped_ += static_cast<uint64_t>(victim_blocks);
        GRP_TRACE(2, obs::TraceEvent::Drop,
                  victim.baseBlock << kBlockShift, victim.hintClass, -1,
                  victim_blocks, false, victim.refId);
        GRP_PROFILE(noteDrop(victim.refId, victim.hintClass,
                             static_cast<uint64_t>(victim_blocks)));
        removeSlot(allTail_);
    }
    // Counters only go up: advance the high-water mark by its delta.
    if (size_ > highWater_) {
        *occupancyHighWater_ += size_ - highWater_;
        highWater_ = size_;
    }
}

unsigned
RegionQueue::noteSpatialMiss(Addr miss_addr, unsigned window_blocks,
                             uint8_t ptr_depth, RefId ref,
                             obs::HintClass hint)
{
    panic_if(window_blocks == 0 || window_blocks > kBlocksPerRegion ||
             !isPowerOfTwo(window_blocks),
             "window must be a power of two in [1, 64]");
    const uint64_t miss_block = blockNumber(miss_addr);

    if (Slot *slot = findCovering(miss_block)) {
        // Second miss to a queued region: clear the miss block's bit,
        // restart the scan just after it and move the entry to the
        // head of the queue.
        RegionEntry &entry = slot->entry;
        const unsigned pos =
            static_cast<unsigned>(miss_block - entry.baseBlock);
        entry.bitvec &= ~(1ull << pos);
        entry.index = (pos + 1) % entry.numBlocks;
        const RegionEntry updated = entry;
        removeSlot(static_cast<int>(slot - slots_.data()));
        if (updated.bitvec != 0)
            pushFront(updated);
        return 0;
    }

    // The window is the aligned group of window_blocks blocks
    // containing the miss (window_blocks == 64 gives the full 4 KB
    // region of the original SRP design).
    const uint64_t base = miss_block & ~static_cast<uint64_t>(
                              window_blocks - 1);
    RegionEntry entry;
    entry.baseBlock = base;
    entry.numBlocks = window_blocks;
    entry.bitvec = buildWindowVector(base, window_blocks, miss_block);
    entry.index = static_cast<unsigned>((miss_block - base + 1) %
                                        window_blocks);
    entry.ptrDepth = ptr_depth;
    entry.refId = ref;
    entry.hintClass = hint;
    if (entry.bitvec != 0) {
        ++*regionsQueued_;
        pushFront(entry);
    }
    return window_blocks;
}

void
RegionQueue::addPointerTarget(Addr target, unsigned blocks,
                              uint8_t ptr_depth, RefId ref,
                              obs::HintClass hint)
{
    panic_if(blocks == 0 || blocks > kBlocksPerRegion,
             "bad pointer window size");
    const uint64_t base = blockNumber(target);

    if (Slot *slot = findCovering(base)) {
        // Already queued (common for pointers into the same object):
        // just deepen the chase if this request would go further.
        if (ptr_depth > slot->entry.ptrDepth)
            slot->entry.ptrDepth = ptr_depth;
        return;
    }

    RegionEntry entry;
    entry.baseBlock = base;
    entry.numBlocks = blocks;
    entry.bitvec = buildWindowVector(base, blocks, ~0ull);
    entry.index = 0;
    entry.ptrDepth = ptr_depth;
    entry.refId = ref;
    entry.hintClass = hint;
    if (entry.bitvec != 0) {
        ++*pointerTargetsQueued_;
        pushFront(entry);
    }
}

std::optional<PrefetchCandidate>
RegionQueue::dequeue(const DramBackend &dram, unsigned channel)
{
    if (!plane_)
        return dequeueTier(dram, channel, -1);
    // Priority tiers drain high to low: a candidate from a
    // lower-priority class is offered only when no higher tier has
    // one for this channel. Equal priorities across all classes
    // reduce to the classic single pass.
    for (int tier = plane_->maxPriority(); tier >= 0; --tier) {
        if (auto candidate = dequeueTier(dram, channel, tier))
            return candidate;
    }
    return std::nullopt;
}

std::optional<PrefetchCandidate>
RegionQueue::dequeueTier(const DramBackend &dram, unsigned channel,
                         int tier)
{
    // First choice: a candidate on this channel whose DRAM row is
    // already open; fallback: the first candidate on this channel in
    // queue order (within the tier, when one is given).
    int fallback_slot = -1;
    unsigned fallback_pos = 0;

    auto scan_entry = [&](int idx) -> std::optional<unsigned> {
        const RegionEntry &entry = slots_[idx].entry;
        for (unsigned step = 0; step < entry.numBlocks; ++step) {
            const unsigned pos = (entry.index + step) % entry.numBlocks;
            if (!(entry.bitvec & (1ull << pos)))
                continue;
            const Addr addr = (entry.baseBlock + pos) << kBlockShift;
            if (dram.channelOf(addr) != channel)
                continue;
            if (!bankAware_ || dram.rowOpen(addr))
                return pos;
            if (fallback_slot < 0) {
                fallback_slot = idx;
                fallback_pos = pos;
            }
        }
        return std::nullopt;
    };

    auto take = [&](int idx, unsigned pos) {
        RegionEntry &entry = slots_[idx].entry;
        PrefetchCandidate candidate;
        candidate.blockAddr = (entry.baseBlock + pos) << kBlockShift;
        candidate.ptrDepth = entry.ptrDepth;
        candidate.refId = entry.refId;
        candidate.hintClass = entry.hintClass;
        ++*candidatesDequeued_;
        entry.bitvec &= ~(1ull << pos);
        if (entry.bitvec == 0)
            removeSlot(idx);
        return candidate;
    };

    if (tier < 0) {
        // Classic single pass in queue order over every entry.
        if (lifo_) {
            for (int i = allHead_; i >= 0; i = slots_[i].nextAll) {
                if (auto pos = scan_entry(i))
                    return take(i, *pos);
            }
        } else {
            for (int i = allTail_; i >= 0; i = slots_[i].prevAll) {
                if (auto pos = scan_entry(i))
                    return take(i, *pos);
            }
        }
    } else {
        // Merge the class lists whose priority matches this tier by
        // seq — exactly the entries the filtered full walk visited,
        // in exactly its order, without touching other classes.
        std::array<int, kNumClasses> cursors;
        std::size_t ncur = 0;
        for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
            if (plane_->priority(static_cast<obs::HintClass>(cls)) !=
                tier) {
                continue;
            }
            const int head = lifo_ ? clsHead_[cls] : clsTail_[cls];
            if (head >= 0)
                cursors[ncur++] = head;
        }
        while (ncur > 0) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < ncur; ++i) {
                const uint64_t a = slots_[cursors[i]].seq;
                const uint64_t b = slots_[cursors[best]].seq;
                // Front pushes take descending seq, so front-to-back
                // (LIFO scan) order is ascending seq.
                if (lifo_ ? a < b : a > b)
                    best = i;
            }
            const int idx = cursors[best];
            if (auto pos = scan_entry(idx))
                return take(idx, *pos);
            const int next =
                lifo_ ? slots_[idx].nextCls : slots_[idx].prevCls;
            if (next >= 0)
                cursors[best] = next;
            else
                cursors[best] = cursors[--ncur];
        }
    }

    if (fallback_slot >= 0)
        return take(fallback_slot, fallback_pos);
    return std::nullopt;
}

void
RegionQueue::clear()
{
    for (unsigned i = 0; i < slots_.size(); ++i) {
        slots_[i].used = false;
        slots_[i].nextAll = i + 1 < slots_.size() ? int(i) + 1 : -1;
    }
    freeHead_ = 0;
    allHead_ = -1;
    allTail_ = -1;
    clsHead_.fill(-1);
    clsTail_.fill(-1);
    size_ = 0;
    nextSeq_ = std::numeric_limits<uint64_t>::max();
    dropped_ = 0;
    stats_.reset();
    highWater_ = 0;
}

} // namespace grp
