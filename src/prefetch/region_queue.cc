#include "prefetch/region_queue.hh"

#include <bit>

#include "obs/site_profile.hh"
#include "sim/logging.hh"

namespace grp
{

RegionQueue::RegionQueue(unsigned capacity, bool lifo, bool bank_aware,
                         obs::StatRegistry &registry)
    : capacity_(capacity),
      lifo_(lifo),
      bankAware_(bank_aware),
      statReg_(stats_, registry)
{
    fatal_if(capacity == 0, "prefetch queue capacity must be non-zero");
    entriesDropped_ = &stats_.counter("entriesDropped");
    candidatesDropped_ = &stats_.counter("candidatesDropped");
    regionsQueued_ = &stats_.counter("regionsQueued");
    pointerTargetsQueued_ = &stats_.counter("pointerTargetsQueued");
    candidatesDequeued_ = &stats_.counter("candidatesDequeued");
    occupancyHighWater_ = &stats_.counter("occupancyHighWater");
}

RegionEntry *
RegionQueue::findCovering(uint64_t block_num)
{
    for (RegionEntry &entry : entries_) {
        if (block_num >= entry.baseBlock &&
            block_num < entry.baseBlock + entry.numBlocks) {
            return &entry;
        }
    }
    return nullptr;
}

uint64_t
RegionQueue::buildWindowVector(uint64_t base_block, unsigned blocks,
                               uint64_t exclude_block) const
{
    uint64_t vec = 0;
    for (unsigned i = 0; i < blocks; ++i) {
        const uint64_t block = base_block + i;
        if (block == exclude_block)
            continue;
        if (present_ && present_(block << kBlockShift))
            continue;
        vec |= 1ull << i;
    }
    return vec;
}

void
RegionQueue::pushFront(RegionEntry entry)
{
    const int entry_blocks = std::popcount(entry.bitvec);
    GRP_TRACE(2, obs::TraceEvent::Enqueue,
              entry.baseBlock << kBlockShift, entry.hintClass, -1,
              entry_blocks, false, entry.refId);
    GRP_PROFILE(noteEnqueue(entry.refId, entry.hintClass,
                            static_cast<uint64_t>(entry_blocks)));
    entries_.push_front(entry);
    while (entries_.size() > capacity_) {
        const RegionEntry &victim = entries_.back();
        const int victim_blocks = std::popcount(victim.bitvec);
        dropped_ += victim_blocks;
        ++*entriesDropped_;
        *candidatesDropped_ += static_cast<uint64_t>(victim_blocks);
        GRP_TRACE(2, obs::TraceEvent::Drop,
                  victim.baseBlock << kBlockShift, victim.hintClass, -1,
                  victim_blocks, false, victim.refId);
        GRP_PROFILE(noteDrop(victim.refId, victim.hintClass,
                             static_cast<uint64_t>(victim_blocks)));
        entries_.pop_back();
    }
    // Counters only go up: advance the high-water mark by its delta.
    if (entries_.size() > highWater_) {
        *occupancyHighWater_ += entries_.size() - highWater_;
        highWater_ = entries_.size();
    }
}

unsigned
RegionQueue::noteSpatialMiss(Addr miss_addr, unsigned window_blocks,
                             uint8_t ptr_depth, RefId ref,
                             obs::HintClass hint)
{
    panic_if(window_blocks == 0 || window_blocks > kBlocksPerRegion ||
             !isPowerOfTwo(window_blocks),
             "window must be a power of two in [1, 64]");
    const uint64_t miss_block = blockNumber(miss_addr);

    if (RegionEntry *entry = findCovering(miss_block)) {
        // Second miss to a queued region: clear the miss block's bit,
        // restart the scan just after it and move the entry to the
        // head of the queue.
        const unsigned pos =
            static_cast<unsigned>(miss_block - entry->baseBlock);
        entry->bitvec &= ~(1ull << pos);
        entry->index = (pos + 1) % entry->numBlocks;
        RegionEntry updated = *entry;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (&*it == entry) {
                entries_.erase(it);
                break;
            }
        }
        if (updated.bitvec != 0)
            pushFront(updated);
        return 0;
    }

    // The window is the aligned group of window_blocks blocks
    // containing the miss (window_blocks == 64 gives the full 4 KB
    // region of the original SRP design).
    const uint64_t base = miss_block & ~static_cast<uint64_t>(
                              window_blocks - 1);
    RegionEntry entry;
    entry.baseBlock = base;
    entry.numBlocks = window_blocks;
    entry.bitvec = buildWindowVector(base, window_blocks, miss_block);
    entry.index = static_cast<unsigned>((miss_block - base + 1) %
                                        window_blocks);
    entry.ptrDepth = ptr_depth;
    entry.refId = ref;
    entry.hintClass = hint;
    if (entry.bitvec != 0) {
        ++*regionsQueued_;
        pushFront(entry);
    }
    return window_blocks;
}

void
RegionQueue::addPointerTarget(Addr target, unsigned blocks,
                              uint8_t ptr_depth, RefId ref,
                              obs::HintClass hint)
{
    panic_if(blocks == 0 || blocks > kBlocksPerRegion,
             "bad pointer window size");
    const uint64_t base = blockNumber(target);

    if (RegionEntry *entry = findCovering(base)) {
        // Already queued (common for pointers into the same object):
        // just deepen the chase if this request would go further.
        if (ptr_depth > entry->ptrDepth)
            entry->ptrDepth = ptr_depth;
        return;
    }

    RegionEntry entry;
    entry.baseBlock = base;
    entry.numBlocks = blocks;
    entry.bitvec = buildWindowVector(base, blocks, ~0ull);
    entry.index = 0;
    entry.ptrDepth = ptr_depth;
    entry.refId = ref;
    entry.hintClass = hint;
    if (entry.bitvec != 0) {
        ++*pointerTargetsQueued_;
        pushFront(entry);
    }
}

std::optional<PrefetchCandidate>
RegionQueue::dequeue(const DramSystem &dram, unsigned channel)
{
    if (!plane_)
        return dequeueTier(dram, channel, -1);
    // Priority tiers drain high to low: a candidate from a
    // lower-priority class is offered only when no higher tier has
    // one for this channel. Equal priorities across all classes
    // reduce to the classic single pass.
    for (int tier = plane_->maxPriority(); tier >= 0; --tier) {
        if (auto candidate = dequeueTier(dram, channel, tier))
            return candidate;
    }
    return std::nullopt;
}

std::optional<PrefetchCandidate>
RegionQueue::dequeueTier(const DramSystem &dram, unsigned channel,
                         int tier)
{
    // First choice: a candidate on this channel whose DRAM row is
    // already open; fallback: the first candidate on this channel in
    // queue order (within the tier, when one is given).
    RegionEntry *fallback_entry = nullptr;
    unsigned fallback_pos = 0;

    auto in_tier = [&](const RegionEntry &entry) {
        return tier < 0 || plane_->priority(entry.hintClass) == tier;
    };

    auto scan_entry = [&](RegionEntry &entry)
        -> std::optional<unsigned> {
        if (!in_tier(entry))
            return std::nullopt;
        for (unsigned step = 0; step < entry.numBlocks; ++step) {
            const unsigned pos = (entry.index + step) % entry.numBlocks;
            if (!(entry.bitvec & (1ull << pos)))
                continue;
            const Addr addr = (entry.baseBlock + pos) << kBlockShift;
            if (dram.channelOf(addr) != channel)
                continue;
            if (!bankAware_ || dram.rowOpen(addr))
                return pos;
            if (!fallback_entry) {
                fallback_entry = &entry;
                fallback_pos = pos;
            }
        }
        return std::nullopt;
    };

    auto take = [&](RegionEntry &entry, unsigned pos) {
        PrefetchCandidate candidate;
        candidate.blockAddr = (entry.baseBlock + pos) << kBlockShift;
        candidate.ptrDepth = entry.ptrDepth;
        candidate.refId = entry.refId;
        candidate.hintClass = entry.hintClass;
        ++*candidatesDequeued_;
        entry.bitvec &= ~(1ull << pos);
        if (entry.bitvec == 0) {
            for (auto it = entries_.begin(); it != entries_.end(); ++it) {
                if (&*it == &entry) {
                    entries_.erase(it);
                    break;
                }
            }
        }
        return candidate;
    };

    if (lifo_) {
        for (RegionEntry &entry : entries_) {
            if (auto pos = scan_entry(entry))
                return take(entry, *pos);
        }
    } else {
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
            if (auto pos = scan_entry(*it))
                return take(*it, *pos);
        }
    }

    if (fallback_entry)
        return take(*fallback_entry, fallback_pos);
    return std::nullopt;
}

void
RegionQueue::clear()
{
    entries_.clear();
    dropped_ = 0;
    stats_.reset();
    highWater_ = 0;
}

} // namespace grp
