#include "prefetch/throttled_srp.hh"

#include "obs/host_prof.hh"
#include "obs/site_profile.hh"
#include "sim/logging.hh"

namespace grp
{

ThrottledSrpEngine::ThrottledSrpEngine(const SimConfig &config,
                                       adaptive::Signals::Source source,
                                       double accuracy_floor,
                                       unsigned resume_misses,
                                       obs::StatRegistry &registry)
    : config_(config),
      queue_(config.region.queueEntries, config.region.lifo,
             config.region.bankAware, registry),
      accuracyFloor_(accuracy_floor),
      resumeMisses_(resume_misses),
      signals_(std::move(source)),
      stats_("throttledSrp"),
      statReg_(stats_, registry)
{
    fatal_if(accuracy_floor < 0.0 || accuracy_floor > 1.0,
             "accuracy floor must be in [0, 1]");
    missesWhileThrottledCounter_ =
        &stats_.counter("missesWhileThrottled");
    resumes_ = &stats_.counter("resumes");
    regionsAllocated_ = &stats_.counter("regionsAllocated");
    regionsUpdated_ = &stats_.counter("regionsUpdated");
    throttleEvents_ = &stats_.counter("throttleEvents");
}

void
ThrottledSrpEngine::setPresenceTest(RegionQueue::PresenceTest test)
{
    queue_.setPresenceTest(std::move(test));
}

void
ThrottledSrpEngine::onL2DemandMiss(Addr addr, RefId ref,
                                   const LoadHints &)
{
    GRP_HOST_SCOPE(2, EngineNotify);
    if (throttled_) {
        // The misses a paused prefetcher fails to cover are exactly
        // the opportunity cost the paper calls out. The counter is
        // the only accounting; resume progress is its delta since
        // the pause began (saturating: a stat reset at the warmup
        // boundary restarts the pause, not the run).
        ++*missesWhileThrottledCounter_;
        const uint64_t cur = missesWhileThrottledCounter_->value();
        const uint64_t since = cur >= throttleStartMisses_
                                   ? cur - throttleStartMisses_
                                   : cur;
        if (since >= resumeMisses_) {
            throttled_ = false;
            // Drop the paused era from the next accuracy epoch.
            signals_.reprime();
            dequeuesSinceEval_ = 0;
            ++*resumes_;
        } else {
            return; // No region allocation while paused.
        }
    }
    GRP_TRACE(2, obs::TraceEvent::HintTrigger, blockAlign(addr),
              obs::HintClass::Spatial, -1, -1, false, ref);
    GRP_PROFILE(noteTrigger(ref, obs::HintClass::Spatial));
    if (queue_.noteSpatialMiss(addr, kBlocksPerRegion, 0, ref)) {
        ++*regionsAllocated_;
    } else {
        ++*regionsUpdated_;
    }
}

std::optional<PrefetchCandidate>
ThrottledSrpEngine::dequeuePrefetch(const DramBackend &dram,
                                    unsigned channel)
{
    GRP_HOST_SCOPE(2, EngineDequeue);
    if (throttled_)
        return std::nullopt;

    auto candidate = queue_.dequeue(dram, channel);
    if (!candidate)
        return std::nullopt;

    if (++dequeuesSinceEval_ >= kWindow) {
        dequeuesSinceEval_ = 0;
        const adaptive::EpochSignals epoch = signals_.sample();
        // A window with no issued prefetches carries no signal
        // (filters can eat every dequeue): hold the current state.
        if (epoch.prefetchesIssued > 0 &&
            epoch.accuracy() < accuracyFloor_) {
            throttled_ = true;
            throttleStartMisses_ =
                missesWhileThrottledCounter_->value();
            queue_.clear();
            ++*throttleEvents_;
        }
    }
    return candidate;
}

void
ThrottledSrpEngine::reset()
{
    queue_.clear();
    dequeuesSinceEval_ = 0;
    throttled_ = false;
    throttleStartMisses_ = 0;
    signals_.reprime();
    stats_.reset();
}

} // namespace grp
