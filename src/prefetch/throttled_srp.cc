#include "prefetch/throttled_srp.hh"

#include "obs/site_profile.hh"
#include "sim/logging.hh"

namespace grp
{

ThrottledSrpEngine::ThrottledSrpEngine(const SimConfig &config,
                                       double accuracy_floor,
                                       unsigned resume_misses,
                                       obs::StatRegistry &registry)
    : config_(config),
      queue_(config.region.queueEntries, config.region.lifo,
             config.region.bankAware, registry),
      accuracyFloor_(accuracy_floor),
      resumeMisses_(resume_misses),
      stats_("throttledSrp"),
      statReg_(stats_, registry)
{
    fatal_if(accuracy_floor < 0.0 || accuracy_floor > 1.0,
             "accuracy floor must be in [0, 1]");
    missesWhileThrottledCounter_ =
        &stats_.counter("missesWhileThrottled");
    resumes_ = &stats_.counter("resumes");
    regionsAllocated_ = &stats_.counter("regionsAllocated");
    regionsUpdated_ = &stats_.counter("regionsUpdated");
    throttleEvents_ = &stats_.counter("throttleEvents");
}

void
ThrottledSrpEngine::setPresenceTest(RegionQueue::PresenceTest test)
{
    queue_.setPresenceTest(std::move(test));
}

void
ThrottledSrpEngine::onL2DemandMiss(Addr addr, RefId ref,
                                   const LoadHints &)
{
    if (throttled_) {
        // The misses a paused prefetcher fails to cover are exactly
        // the opportunity cost the paper calls out.
        ++*missesWhileThrottledCounter_;
        if (++missesWhileThrottled_ >= resumeMisses_) {
            throttled_ = false;
            missesWhileThrottled_ = 0;
            windowIssued_ = 0;
            windowUseful_ = 0;
            ++*resumes_;
        } else {
            return; // No region allocation while paused.
        }
    }
    GRP_TRACE(2, obs::TraceEvent::HintTrigger, blockAlign(addr),
              obs::HintClass::Spatial, -1, -1, false, ref);
    GRP_PROFILE(noteTrigger(ref, obs::HintClass::Spatial));
    if (queue_.noteSpatialMiss(addr, kBlocksPerRegion, 0, ref)) {
        ++*regionsAllocated_;
    } else {
        ++*regionsUpdated_;
    }
}

void
ThrottledSrpEngine::onPrefetchUseful(Addr)
{
    ++windowUseful_;
}

std::optional<PrefetchCandidate>
ThrottledSrpEngine::dequeuePrefetch(const DramSystem &dram,
                                    unsigned channel)
{
    if (throttled_)
        return std::nullopt;

    auto candidate = queue_.dequeue(dram, channel);
    if (!candidate)
        return std::nullopt;

    ++windowIssued_;
    if (windowIssued_ >= kWindow) {
        const double accuracy =
            static_cast<double>(windowUseful_) /
            static_cast<double>(windowIssued_);
        if (accuracy < accuracyFloor_) {
            throttled_ = true;
            missesWhileThrottled_ = 0;
            queue_.clear();
            ++*throttleEvents_;
        }
        windowIssued_ = 0;
        windowUseful_ = 0;
    }
    return candidate;
}

void
ThrottledSrpEngine::reset()
{
    queue_.clear();
    windowIssued_ = 0;
    windowUseful_ = 0;
    throttled_ = false;
    missesWhileThrottled_ = 0;
    stats_.reset();
}

} // namespace grp
