/**
 * @file
 * The SRP/GRP prefetch queue (Section 3.1).
 *
 * Each entry describes an aligned window of prefetch-candidate blocks:
 * a base block number, a 64-bit candidate vector, and an index field
 * marking where the scan starts (the block after the triggering
 * miss). New entries are pushed at the head; the queue has a fixed
 * capacity (32) and old entries fall off the bottom. Dequeue order is
 * LIFO (newest region first) and optionally bank-aware, preferring
 * candidates whose DRAM row is already open.
 *
 * Pointer and indirect prefetches reuse the same entry format with
 * small windows (2 blocks per pointer) and a pointer-chase depth.
 */

#ifndef GRP_PREFETCH_REGION_QUEUE_HH
#define GRP_PREFETCH_REGION_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "adaptive/control_plane.hh"
#include "mem/dram.hh"
#include "mem/request.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace grp
{

/** One prefetch queue entry: a window of candidate blocks. */
struct RegionEntry
{
    uint64_t baseBlock = 0; ///< Block number of the window base.
    uint64_t bitvec = 0;    ///< Bit i set => base+i is a candidate.
    unsigned numBlocks = 0; ///< Window size in blocks (<= 64).
    unsigned index = 0;     ///< Scan start position within the window.
    uint8_t ptrDepth = 0;   ///< Pointer-chase depth of resulting fills.
    RefId refId = kInvalidRefId;
    /** Hint class attributed to candidates from this window. */
    obs::HintClass hintClass = obs::HintClass::None;
};

/** Fixed-capacity prefetch candidate queue. */
class RegionQueue
{
  public:
    using PresenceTest = std::function<bool(Addr)>;

    /**
     * @param capacity Maximum entries (paper: 32).
     * @param lifo Scan newest entries first (paper default).
     * @param bank_aware Prefer candidates with an open DRAM row.
     */
    RegionQueue(unsigned capacity, bool lifo, bool bank_aware,
                obs::StatRegistry &registry =
                    obs::StatRegistry::current());

    /** Blocks already present/in-flight are excluded from windows. */
    void setPresenceTest(PresenceTest test) { present_ = std::move(test); }

    /** Attach the adaptive control plane (not owned). Dequeue then
     *  drains per-hint-class priority tiers high to low; a null plane
     *  (the default) keeps the single-pass queue-order scan. */
    void setControlPlane(const adaptive::ControlPlane *plane)
    {
        plane_ = plane;
    }

    /**
     * Record an L2 miss at @p miss_addr within a spatial window of
     * @p window_blocks blocks (a power of two; 64 = full region).
     * Updates the existing entry covering the miss or allocates a
     * new one at the head.
     *
     * @return Window size allocated, or 0 when the miss only updated
     *         an existing entry.
     */
    unsigned noteSpatialMiss(Addr miss_addr, unsigned window_blocks,
                             uint8_t ptr_depth, RefId ref,
                             obs::HintClass hint =
                                 obs::HintClass::Spatial);

    /**
     * Queue a pointer-target window of @p blocks blocks starting at
     * @p target's block (paper: 2 blocks per pointer).
     */
    void addPointerTarget(Addr target, unsigned blocks,
                          uint8_t ptr_depth, RefId ref,
                          obs::HintClass hint =
                              obs::HintClass::Pointer);

    /** Take the next candidate for @p channel, if any. */
    std::optional<PrefetchCandidate>
    dequeue(const DramBackend &dram, unsigned channel);

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    unsigned capacity() const { return capacity_; }

    /** Total candidate blocks dropped when old entries fell off. */
    uint64_t droppedCandidates() const { return dropped_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    void clear();

  private:
    /**
     * Entries live in a fixed pool of capacity + 1 slots (one spare
     * so a push can link before the eviction check) threaded onto two
     * intrusive lists: a global queue-order list, and one list per
     * hint class. A tier scan used to walk every entry and filter by
     * class priority — O(entries) per tier, repeated for each tier —
     * and now merges only the class lists whose priority matches the
     * tier. The seq field makes the merge order well-defined: front
     * pushes take descending values, so ascending seq IS front-to-back
     * queue order and the k-way merge reproduces the filtered walk
     * exactly (the ordering-equivalence test in
     * tests/test_region_queue.cc checks this against a reference
     * deque implementation).
     */
    struct Slot
    {
        RegionEntry entry;
        uint64_t seq = 0;
        int prevAll = -1;
        int nextAll = -1;
        int prevCls = -1;
        int nextCls = -1;
        bool used = false;
    };

    static constexpr std::size_t kNumClasses = adaptive::kNumClasses;

    int allocSlot();
    /** Unlink @p idx from both lists and return it to the free list. */
    void removeSlot(int idx);
    void linkFront(int idx);

    Slot *findCovering(uint64_t block_num);
    void pushFront(RegionEntry entry);
    /** One scan pass over entries whose class priority equals
     *  @p tier (-1 scans every entry: the classic behavior). */
    std::optional<PrefetchCandidate>
    dequeueTier(const DramBackend &dram, unsigned channel, int tier);
    uint64_t buildWindowVector(uint64_t base_block, unsigned blocks,
                               uint64_t exclude_block) const;

    std::vector<Slot> slots_;
    int freeHead_ = -1;
    int allHead_ = -1;
    int allTail_ = -1;
    std::array<int, kNumClasses> clsHead_;
    std::array<int, kNumClasses> clsTail_;
    size_t size_ = 0;
    /** Descending per-push sequence (see Slot). */
    uint64_t nextSeq_;
    unsigned capacity_;
    bool lifo_;
    bool bankAware_;
    PresenceTest present_;
    const adaptive::ControlPlane *plane_ = nullptr;
    uint64_t dropped_ = 0;
    /** Occupancy high-water mark mirrored into the counter (Counter
     *  supports only ++/+=, so the mark advances by deltas). */
    size_t highWater_ = 0;
    StatGroup stats_{"regionQueue"};
    obs::ScopedStatRegistration statReg_;

    /** Cached counter handles (lookup once at construction). */
    Counter *entriesDropped_ = nullptr;
    Counter *candidatesDropped_ = nullptr;
    Counter *regionsQueued_ = nullptr;
    Counter *pointerTargetsQueued_ = nullptr;
    Counter *candidatesDequeued_ = nullptr;
    Counter *occupancyHighWater_ = nullptr;
};

} // namespace grp

#endif // GRP_PREFETCH_REGION_QUEUE_HH
