/**
 * @file
 * The stride prefetcher baseline: the stride component of Sherwood,
 * Sair and Calder's predictor-directed stream buffers (MICRO-33),
 * as compared against in Section 5 of the GRP paper.
 *
 * A PC-indexed, 4-way, 1K-entry history table learns per-load
 * strides with a two-bit confidence scheme. Confident loads allocate
 * one of 8 stream buffers, each of which runs up to 8 blocks ahead of
 * the demand stream. Stream prefetches are issued through the same
 * access prioritizer as SRP/GRP prefetches and fill into the L2 at
 * the low-priority (LRU) position, so the comparison between schemes
 * isolates *what* is prefetched, not *how* fills are treated.
 */

#ifndef GRP_PREFETCH_STRIDE_HH
#define GRP_PREFETCH_STRIDE_HH

#include <cstdint>
#include <vector>

#include "mem/prefetch_iface.hh"
#include "obs/stat_registry.hh"
#include "sim/config.hh"

namespace grp
{

/** Stride-directed stream-buffer prefetcher. */
class StridePrefetcher : public PrefetchEngine
{
  public:
    explicit StridePrefetcher(const SimConfig &config,
                              obs::StatRegistry &registry =
                                  obs::StatRegistry::current());

    void onL2DemandAccess(Addr addr, RefId ref, const LoadHints &hints,
                          bool hit) override;
    std::optional<PrefetchCandidate>
    dequeuePrefetch(const DramBackend &dram, unsigned channel) override;

    StatGroup &stats() override { return stats_; }

    size_t queueDepth() const override { return liveStreams(); }

    void reset() override;

    /** Visible for tests: the learned stride for @p ref, or 0. */
    int64_t strideFor(RefId ref) const;
    /** Visible for tests: number of live streams. */
    unsigned liveStreams() const;

  private:
    struct TableEntry
    {
        bool valid = false;
        RefId tag = kInvalidRefId;
        Addr lastAddr = 0;
        int64_t stride = 0;
        unsigned confidence = 0;
        uint64_t lruStamp = 0;
    };

    struct Stream
    {
        bool valid = false;
        RefId ref = kInvalidRefId;
        Addr nextAddr = 0;    ///< Next block to prefetch.
        int64_t strideBlocks = 0;
        unsigned credits = 0; ///< Blocks still allowed in flight/ahead.
        uint64_t lruStamp = 0;
    };

    TableEntry *lookup(RefId ref);
    TableEntry &allocate(RefId ref);
    void allocateStream(RefId ref, Addr addr, int64_t stride_bytes);
    void anchorStream(Stream &stream, Addr addr, int64_t stride_blocks);

    SimConfig config_;
    unsigned sets_;
    std::vector<TableEntry> table_;
    std::vector<Stream> streams_;
    uint64_t nextStamp_ = 1;
    unsigned rrCursor_ = 0;
    StatGroup stats_;
    obs::ScopedStatRegistration statReg_;

    /** Cached counter handles (lookup once at construction). */
    Counter *streamsAllocated_ = nullptr;
    Counter *pageBoundaryStops_ = nullptr;
    Counter *candidatesOffered_ = nullptr;
};

} // namespace grp

#endif // GRP_PREFETCH_STRIDE_HH
