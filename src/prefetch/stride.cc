#include "prefetch/stride.hh"

#include "mem/dram.hh"

#include <cstdlib>

#include "obs/host_prof.hh"
#include "sim/logging.hh"

namespace grp
{

StridePrefetcher::StridePrefetcher(const SimConfig &config,
                                   obs::StatRegistry &registry)
    : config_(config),
      sets_(config.stride.tableEntries / config.stride.tableAssoc),
      stats_("stride"),
      statReg_(stats_, registry)
{
    table_.resize(config.stride.tableEntries);
    streams_.resize(config.stride.streamBuffers);
    streamsAllocated_ = &stats_.counter("streamsAllocated");
    pageBoundaryStops_ = &stats_.counter("pageBoundaryStops");
    candidatesOffered_ = &stats_.counter("candidatesOffered");
}

StridePrefetcher::TableEntry *
StridePrefetcher::lookup(RefId ref)
{
    const unsigned set = ref % sets_;
    TableEntry *base = &table_[set * config_.stride.tableAssoc];
    for (unsigned way = 0; way < config_.stride.tableAssoc; ++way) {
        if (base[way].valid && base[way].tag == ref)
            return &base[way];
    }
    return nullptr;
}

StridePrefetcher::TableEntry &
StridePrefetcher::allocate(RefId ref)
{
    const unsigned set = ref % sets_;
    TableEntry *base = &table_[set * config_.stride.tableAssoc];
    TableEntry *victim = base;
    for (unsigned way = 0; way < config_.stride.tableAssoc; ++way) {
        if (!base[way].valid) {
            victim = &base[way];
            break;
        }
        if (base[way].lruStamp < victim->lruStamp)
            victim = &base[way];
    }
    *victim = TableEntry{};
    victim->valid = true;
    victim->tag = ref;
    return *victim;
}

void
StridePrefetcher::allocateStream(RefId ref, Addr addr,
                                 int64_t stride_bytes)
{
    // Convert to a block-granularity stride, keeping the direction.
    int64_t stride_blocks = stride_bytes / int64_t(kBlockBytes);
    if (stride_blocks == 0)
        stride_blocks = stride_bytes > 0 ? 1 : -1;

    // Already streaming for this PC? Keep it alive, and re-anchor
    // ahead of the demand if it has fallen behind (a stream that
    // trails the misses prefetches blocks that already missed).
    for (Stream &stream : streams_) {
        if (stream.valid && stream.ref == ref) {
            stream.lruStamp = nextStamp_++;
            stream.credits = config_.stride.bufferEntries;
            const int64_t ahead =
                (static_cast<int64_t>(stream.nextAddr) -
                 static_cast<int64_t>(blockAlign(addr))) *
                (stride_blocks > 0 ? 1 : -1);
            if (ahead <= 0)
                anchorStream(stream, addr, stride_blocks);
            return;
        }
    }

    Stream *victim = &streams_[0];
    for (Stream &stream : streams_) {
        if (!stream.valid) {
            victim = &stream;
            break;
        }
        if (stream.lruStamp < victim->lruStamp)
            victim = &stream;
    }
    victim->valid = true;
    victim->ref = ref;
    victim->strideBlocks = stride_blocks;
    victim->credits = config_.stride.bufferEntries;
    victim->lruStamp = nextStamp_++;
    anchorStream(*victim, addr, stride_blocks);
    if (victim->valid)
        ++*streamsAllocated_;
}

void
StridePrefetcher::anchorStream(Stream &stream, Addr addr,
                               int64_t stride_blocks)
{
    const Addr next = blockAlign(
        static_cast<Addr>(static_cast<int64_t>(blockAlign(addr)) +
                          stride_blocks * int64_t(kBlockBytes)));
    // A short-stride stream may not be armed across a 4 KB page
    // boundary (see dequeuePrefetch).
    const int64_t stride_bytes =
        stride_blocks * int64_t(kBlockBytes);
    const bool short_stride =
        stride_bytes < int64_t(kRegionBytes) &&
        stride_bytes > -int64_t(kRegionBytes);
    if (short_stride && regionAlign(next) != regionAlign(addr)) {
        stream.valid = false;
        ++*pageBoundaryStops_;
        return;
    }
    stream.nextAddr = next;
}

void
StridePrefetcher::onL2DemandAccess(Addr addr, RefId ref,
                                   const LoadHints &, bool hit)
{
    GRP_HOST_SCOPE(2, EngineNotify);
    if (ref == kInvalidRefId)
        return;

    TableEntry *entry = lookup(ref);
    if (!entry) {
        entry = &allocate(ref);
        entry->lastAddr = addr;
        entry->lruStamp = nextStamp_++;
        return;
    }
    entry->lruStamp = nextStamp_++;

    const int64_t observed = static_cast<int64_t>(addr) -
                             static_cast<int64_t>(entry->lastAddr);
    if (observed == 0)
        return;
    if (observed == entry->stride) {
        if (entry->confidence < 3)
            ++entry->confidence;
    } else {
        entry->stride = observed;
        entry->confidence = 0;
    }
    entry->lastAddr = addr;

    // Confident strided loads keep a stream running; the stream is
    // (re)armed on misses, the moment prefetching can actually help.
    if (!hit && entry->confidence >= config_.stride.trainThreshold) {
        allocateStream(ref, addr, entry->stride);
        return;
    }

    // Demand consumption replenishes the lookahead credit, but a
    // stream never runs more than bufferEntries strides ahead of the
    // demand stream — the fixed depth of a real stream buffer.
    for (Stream &stream : streams_) {
        if (!stream.valid || stream.ref != ref)
            continue;
        stream.lruStamp = nextStamp_++;
        const int64_t stride_bytes =
            stream.strideBlocks * int64_t(kBlockBytes);
        const int64_t ahead_bytes =
            static_cast<int64_t>(stream.nextAddr) -
            static_cast<int64_t>(blockAlign(addr));
        const int64_t steps_ahead =
            stride_bytes != 0 ? ahead_bytes / stride_bytes : 0;
        const int64_t buffer =
            static_cast<int64_t>(config_.stride.bufferEntries);
        if (steps_ahead <= 0 || steps_ahead > buffer + 1) {
            // Fell behind or ran away: re-anchor at the demand.
            anchorStream(stream, addr, stream.strideBlocks);
            stream.credits = config_.stride.bufferEntries;
        } else {
            // nextAddr is the next block to issue, so the stream is
            // steps_ahead - 1 issued blocks ahead of this demand.
            stream.credits = static_cast<unsigned>(
                buffer - (steps_ahead - 1));
        }
        break;
    }
}

std::optional<PrefetchCandidate>
StridePrefetcher::dequeuePrefetch(const DramBackend &dram,
                                  unsigned channel)
{
    GRP_HOST_SCOPE(2, EngineDequeue);
    const unsigned count = static_cast<unsigned>(streams_.size());
    for (unsigned i = 0; i < count; ++i) {
        Stream &stream = streams_[(rrCursor_ + i) % count];
        if (!stream.valid || stream.credits == 0)
            continue;
        if (dram.channelOf(stream.nextAddr) != channel)
            continue;
        PrefetchCandidate candidate;
        candidate.blockAddr = stream.nextAddr;
        candidate.refId = stream.ref;
        candidate.ptrDepth = 0;
        candidate.hintClass = obs::HintClass::Stride;
        const Addr next = static_cast<Addr>(
            static_cast<int64_t>(stream.nextAddr) +
            stream.strideBlocks * int64_t(kBlockBytes));
        // Short-stride streams are stopped at 4 KB page boundaries
        // (the classic stream-buffer constraint: the next physical
        // page is unknown); the next miss re-arms the stream.
        // Streams whose stride exceeds a page jump pages anyway.
        const bool short_stride =
            stream.strideBlocks * int64_t(kBlockBytes) <
                int64_t(kRegionBytes) &&
            stream.strideBlocks * int64_t(kBlockBytes) >
                -int64_t(kRegionBytes);
        if (short_stride &&
            regionAlign(next) != regionAlign(stream.nextAddr)) {
            stream.valid = false;
            ++*pageBoundaryStops_;
        } else {
            stream.nextAddr = next;
            --stream.credits;
        }
        rrCursor_ = (rrCursor_ + i + 1) % count;
        ++*candidatesOffered_;
        return candidate;
    }
    return std::nullopt;
}

int64_t
StridePrefetcher::strideFor(RefId ref) const
{
    const TableEntry *entry =
        const_cast<StridePrefetcher *>(this)->lookup(ref);
    return entry ? entry->stride : 0;
}

unsigned
StridePrefetcher::liveStreams() const
{
    unsigned live = 0;
    for (const Stream &stream : streams_) {
        if (stream.valid)
            ++live;
    }
    return live;
}

void
StridePrefetcher::reset()
{
    for (TableEntry &entry : table_)
        entry = TableEntry{};
    for (Stream &stream : streams_)
        stream = Stream{};
    nextStamp_ = 1;
    rrCursor_ = 0;
    stats_.reset();
}

} // namespace grp
