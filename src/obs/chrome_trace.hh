/**
 * @file
 * Chrome/Perfetto trace-event export.
 *
 * Renders a parsed prefetch lifecycle trace (and optionally a PR-1
 * time-series dump) as one Chrome trace_event JSON document, the
 * format chrome://tracing and https://ui.perfetto.dev load directly.
 * Each prefetch becomes an async span — opened at Issue (or at Fill
 * for stream-buffer prefetches, which never touch a channel), marked
 * at Fill, closed at FirstUse or EvictedUnused — on a per-hint-class
 * track, so queue pressure, fill latency and dead time are visible
 * on a real timeline instead of only as end-of-run aggregates.
 * Queue-level events (triggers, enqueues, drops, filters, stalls)
 * appear as instants; time-series trajectories become counter
 * tracks. Simulated cycles map 1:1 to trace microseconds.
 */

#ifndef GRP_OBS_CHROME_TRACE_HH
#define GRP_OBS_CHROME_TRACE_HH

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_reader.hh"

namespace grp
{
namespace obs
{

class JsonValue;

/**
 * Write @p lines as a Chrome trace_event JSON object document.
 *
 * @param timeseries A parsed grp-timeseries-v1 document whose series
 *        become counter tracks; nullptr for none.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceLine> &lines,
                      const JsonValue *timeseries = nullptr);

/** writeChromeTrace to @p path (false when the file cannot be
 *  opened). */
bool writeChromeTraceFile(const std::string &path,
                          const std::vector<TraceLine> &lines,
                          const JsonValue *timeseries = nullptr);

} // namespace obs
} // namespace grp

#endif // GRP_OBS_CHROME_TRACE_HH
