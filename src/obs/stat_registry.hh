/**
 * @file
 * A registry of every live StatGroup in one simulation.
 *
 * Components (caches, MSHR files, DRAM, the memory system, the CPU,
 * the prefetch queue and every prefetch engine) register their stat
 * group on construction via a ScopedStatRegistration member and
 * deregister on destruction, so at any point the registry describes
 * exactly the live simulation. Registries are per-run values, not a
 * process singleton: the harness creates one per runWorkload() call
 * and threads it through the component constructors, and components
 * built without an explicit registry fall back to the calling
 * thread's StatRegistry::current(). The registry renders every group as
 * text (the historical dump format), JSON or CSV, and can snapshot
 * all values into a plain-data StatSnapshot that outlives the
 * components — the harness populates RunResult from such a snapshot.
 *
 * Duplicate group names are legal (tests build several caches at
 * once); lookups resolve to the most recently registered group, and
 * the exporters suffix older duplicates with "#2", "#3", ... so no
 * registered group is ever silently dropped.
 */

#ifndef GRP_OBS_STAT_REGISTRY_HH
#define GRP_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace grp
{
namespace obs
{

class JsonWriter;

/** Summary of one Distribution at snapshot time. */
struct DistSummary
{
    uint64_t samples = 0;
    uint64_t sum = 0;
    double mean = 0.0;
    uint64_t maxValue = 0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
};

/** A value-type copy of every registered stat ("group.stat" keys). */
struct StatSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, DistSummary> distributions;

    /** Counter value by dotted name; 0 when absent. */
    uint64_t value(const std::string &dotted_name) const;
    bool hasCounter(const std::string &dotted_name) const;
};

/** Registry of live StatGroups with machine-readable exporters. */
class StatRegistry
{
  public:
    /**
     * The calling thread's default registry. Components that are not
     * handed an explicit registry register here, so two simulations
     * can coexist in one process as long as they live on different
     * threads (the sweep executor gives every job its own thread) or
     * pass explicit registries. There is deliberately no process-wide
     * singleton any more.
     */
    static StatRegistry &current();

    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    void add(StatGroup *group);
    void remove(StatGroup *group);

    size_t size() const { return groups_.size(); }

    /** Registered groups in registration order. */
    const std::vector<StatGroup *> &groups() const { return groups_; }

    /** Most recently registered group named @p name, or nullptr. */
    const StatGroup *find(const std::string &name) const;

    /** Counter lookup by "group.stat"; 0 when absent. Duplicate
     *  group names resolve to the newest registration. */
    uint64_t value(const std::string &dotted_name) const;

    /** Copy every stat into a snapshot (newest-wins on name
     *  collisions, matching value()). */
    StatSnapshot snapshot() const;

    /** Emit every group (older duplicates suffixed "#N") as one JSON
     *  document: {"schema": ..., "groups": {name: {counters,
     *  distributions}}}. @p extra, when set, appends additional
     *  top-level members after "groups" (the harness uses it for the
     *  partial-run marker and the provenance block); an absent or
     *  no-op @p extra leaves the document byte-identical to the
     *  historical format. */
    void exportJson(std::ostream &os,
                    const std::function<void(JsonWriter &)> &extra =
                        {}) const;

    /** Emit "group,stat,value" CSV rows (distributions expand to
     *  .samples/.sum/.mean/.max/.p50/.p90/.p99 rows). */
    void exportCsv(std::ostream &os) const;

    /** Write exportJson()/exportCsv() output to @p path ("-" streams
     *  to stdout); returns false (with a warn) when the file cannot
     *  be opened. */
    bool exportJsonFile(const std::string &path,
                        const std::function<void(JsonWriter &)>
                            &extra = {}) const;
    bool exportCsvFile(const std::string &path) const;

    /** Text dump of every group in the classic "group.stat value"
     *  format, in registration order. */
    void dumpText(std::ostream &os) const;

    /** Reset every registered group. */
    void resetAll();

  private:
    /** Group names with older duplicates suffixed, parallel to
     *  groups_. */
    std::vector<std::string> exportNames() const;

    std::vector<StatGroup *> groups_;
};

/** Registers a StatGroup for the lifetime of the holding component. */
class ScopedStatRegistration
{
  public:
    explicit ScopedStatRegistration(StatGroup &group)
        : ScopedStatRegistration(group, StatRegistry::current())
    {}

    ScopedStatRegistration(StatGroup &group, StatRegistry &registry)
        : registry_(&registry), group_(&group)
    {
        registry_->add(group_);
    }

    ~ScopedStatRegistration() { registry_->remove(group_); }

    ScopedStatRegistration(const ScopedStatRegistration &) = delete;
    ScopedStatRegistration &
    operator=(const ScopedStatRegistration &) = delete;

  private:
    StatRegistry *registry_;
    StatGroup *group_;
};

/** Summarise one distribution (quantiles included). */
DistSummary summarise(const Distribution &dist);

} // namespace obs
} // namespace grp

#endif // GRP_OBS_STAT_REGISTRY_HH
