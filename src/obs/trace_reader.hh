/**
 * @file
 * Offline reading and analysis of prefetch lifecycle traces.
 *
 * The Tracer writes one JSON object per line (JSONL); this module is
 * the other half of that contract: it parses trace files back into
 * records, replays each block's lifecycle through a small state
 * machine to check the invariants the simulator is supposed to
 * uphold (every fill was issued, every first-use had a fill, no
 * event touches a block that is not live), and recomputes the
 * per-hint-class and per-site accuracy/timeliness aggregates from
 * the raw events — independently of the simulator's own counters,
 * which is exactly what makes the cross-check worth having. The
 * `grptrace` CLI is the main consumer.
 */

#ifndef GRP_OBS_TRACE_READER_HH
#define GRP_OBS_TRACE_READER_HH

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace grp
{
namespace obs
{

/** Inverse of toString(TraceEvent); nullopt for unknown names. */
std::optional<TraceEvent> parseTraceEvent(const std::string &name);

/** Inverse of toString(HintClass); nullopt for unknown names. */
std::optional<HintClass> parseHintClass(const std::string &name);

/** One parsed trace line (absent fields keep the writer's
 *  omitted-value defaults). */
struct TraceLine
{
    Tick t = 0;
    TraceEvent event = TraceEvent::Issue;
    Addr addr = 0;
    HintClass hint = HintClass::None;
    int channel = -1;
    int64_t extra = -1;
    /** Attributed static reference, or -1 when the line had none. */
    int64_t site = -1;
    bool warm = false;
    bool carry = false;
};

/** The outcome of parsing one trace file. */
struct TraceParseResult
{
    std::vector<TraceLine> lines;
    /** Messages for lines that failed to parse ("line N: why");
     *  malformed lines are skipped, not fatal. */
    std::vector<std::string> errors;
    /** The file itself could not be opened. */
    bool openFailed = false;
    /** The input was a .grpbin binary trace. */
    bool binary = false;
    /** Binary input had no finalize footer: the writer never closed
     *  it (crash / kill / stale .tmp). The intact prefix is still in
     *  lines, and errors carries one distinct, actionable message. */
    bool truncated = false;
};

TraceParseResult readTrace(std::istream &is);

/** Parse an in-memory trace of either format (sniffs the .grpbin
 *  magic, falls back to JSONL) — the stdin path of grptrace. */
TraceParseResult readTraceData(const std::string &data);

/** Read @p path in either format (magic-sniffed). */
TraceParseResult readTraceFile(const std::string &path);

/** Render one parsed line back to the canonical JSONL form (with
 *  trailing newline) via the Tracer's own formatter, so a binary
 *  trace converts to byte-identical JSONL. */
std::string jsonlLine(const TraceLine &line);

/** One lifecycle invariant violation found during replay. */
struct InvariantViolation
{
    size_t line = 0; ///< 1-based index into the parsed lines.
    std::string message;
};

/** Offline funnel aggregates for one hint class or one site
 *  (measured-window events only; warm* columns count warmup-era
 *  events separately, mirroring the simulator's attribution). */
struct FunnelStats
{
    uint64_t triggers = 0;
    uint64_t enqueued = 0;   ///< Candidate blocks (sum of counts).
    uint64_t dropped = 0;
    uint64_t issued = 0;
    uint64_t filtered = 0;
    uint64_t fills = 0;
    uint64_t useful = 0;
    uint64_t evictedUnused = 0;
    uint64_t warmFills = 0;
    uint64_t warmUseful = 0;
    /** Shadow-classified demand misses charged to this class/site. */
    uint64_t pollutionMisses = 0;

    /** Fill-to-first-use distances (the FirstUse extra field). */
    Distribution fillToUse;

    /** Useful / fills over the measured window. */
    double
    accuracy() const
    {
        return fills ? static_cast<double>(useful) /
                           static_cast<double>(fills)
                     : 0.0;
    }
};

/** Everything analyzeTrace() derives from a parsed trace. */
struct TraceAnalysis
{
    uint64_t records = 0;
    uint64_t warmupRecords = 0;
    /** Lifecycle violations, in line order (empty = trace is
     *  consistent). */
    std::vector<InvariantViolation> violations;
    /** Blocks still live (filled, neither used nor evicted) when the
     *  trace ended — expected at end of run, reported for context. */
    uint64_t liveAtEnd = 0;
    /** Issues still unfilled when the trace ended. */
    uint64_t inFlightAtEnd = 0;
    /** Enqueue events were present, so issue-coverage was checked. */
    bool coverageChecked = false;
    /** EvictVictim events were present (shadow tags were on), so
     *  pollution-attribution consistency was checked. */
    bool pollutionChecked = false;
    /** Adaptive-controller knob moves (CtrlTransition records). */
    uint64_t controllerTransitions = 0;

    std::map<HintClass, FunnelStats> byClass;
    /** Keyed by site id (-1 = unattributed). */
    std::map<int64_t, FunnelStats> bySite;
};

/**
 * Replay @p lines through the per-block lifecycle state machine and
 * recompute the funnel aggregates.
 *
 * Checked invariants:
 *  - a Fill must follow an Issue for the same block (stride-hint
 *    fills are exempt: stream-buffer hits fill without a channel
 *    issue);
 *  - a FirstUse must hit a filled block (carry-flagged uses are
 *    exempt: their fill predates a stats reset);
 *  - an EvictedUnused must evict a filled block;
 *  - a block is never issued twice without an intervening
 *    use/eviction, and never filled twice;
 *  - when the trace contains Enqueue events (level >= 2), every
 *    non-stride Issue must fall inside a previously enqueued
 *    region window;
 *  - when the trace contains EvictVictim events (shadow tags on),
 *    every attributed PollutionMiss must name a block a prior
 *    EvictVictim recorded (and not yet consumed).
 */
TraceAnalysis analyzeTrace(const std::vector<TraceLine> &lines);

} // namespace obs
} // namespace grp

#endif // GRP_OBS_TRACE_READER_HH
