#include "obs/chrome_trace.hh"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "obs/json_reader.hh"
#include "obs/json_writer.hh"

namespace grp
{
namespace obs
{

namespace
{

constexpr int kPid = 1;

/** One track (Chrome "thread") per hint class, in enum order. */
int
tidOf(HintClass hint)
{
    return static_cast<int>(hint) + 1;
}

/** Emits one trace_event object with the fields every phase
 *  shares. */
class EventEmitter
{
  public:
    explicit EventEmitter(JsonWriter &w) : w_(w) {}

    JsonWriter &
    common(const char *ph, const char *name, Tick ts, int tid)
    {
        w_.beginObject();
        w_.kv("ph", ph);
        w_.kv("name", name);
        w_.kv("pid", kPid);
        w_.kv("tid", tid);
        w_.kv("ts", static_cast<uint64_t>(ts));
        return w_;
    }

    /** Async phases (b/n/e) additionally carry a category and a
     *  span id. */
    JsonWriter &
    async(const char *ph, const char *name, Tick ts, int tid,
          const std::string &id)
    {
        common(ph, name, ts, tid);
        w_.kv("cat", "prefetch");
        w_.kv("id", id);
        return w_;
    }

  private:
    JsonWriter &w_;
};

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TraceLine> &lines,
                 const JsonValue *timeseries)
{
    JsonWriter w(os, /*pretty=*/false);
    EventEmitter emit(w);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    // Track names. Chrome sorts tracks by tid; the enum order
    // (spatial, pointer, recursive, indirect, stride) is the order
    // the paper discusses the hint classes in.
    emit.common("M", "process_name", 0, 0);
    w.key("args").beginObject().kv("name", "grpsim").endObject();
    w.endObject();
    for (HintClass hint :
         {HintClass::None, HintClass::Spatial, HintClass::Pointer,
          HintClass::Recursive, HintClass::Indirect,
          HintClass::Stride}) {
        emit.common("M", "thread_name", 0, tidOf(hint));
        w.key("args").beginObject();
        w.kv("name", hint == HintClass::None
                         ? "unattributed"
                         : toString(hint));
        w.endObject();
        w.endObject();
    }

    // Span ids must be unique per arc, not per block: a block can be
    // prefetched again after eviction, so the id is addr + a
    // per-block generation counter.
    std::unordered_map<Addr, uint64_t> generation;
    std::unordered_map<Addr, std::string> open;
    // Running pollution-miss count, emitted as a counter track so the
    // cost accumulates visibly alongside the lifecycle arcs.
    uint64_t pollutionMisses = 0;
    auto openArc = [&](const TraceLine &line) {
        std::ostringstream id;
        id << "0x" << std::hex << line.addr << std::dec << "#"
           << generation[line.addr]++;
        open[line.addr] = id.str();
        return open[line.addr];
    };

    for (const TraceLine &line : lines) {
        const int tid = tidOf(line.hint);
        switch (line.event) {
          case TraceEvent::Issue: {
            emit.async("b", toString(line.hint), line.t, tid,
                       openArc(line));
            w.key("args").beginObject();
            w.kv("addr", line.addr);
            w.kv("site", line.site);
            if (line.extra >= 0)
                w.kv("ptrDepth", line.extra);
            if (line.warm)
                w.kv("warm", true);
            w.endObject();
            w.endObject();
            break;
          }
          case TraceEvent::Fill: {
            auto it = open.find(line.addr);
            // Stream-buffer prefetches fill without an issue: the
            // fill opens their arc.
            const std::string &id = it != open.end()
                                        ? it->second
                                        : openArc(line);
            emit.async(it != open.end() ? "n" : "b",
                       toString(line.hint), line.t, tid, id);
            w.key("args").beginObject();
            w.kv("addr", line.addr);
            w.kv("phase", "fill");
            w.endObject();
            w.endObject();
            break;
          }
          case TraceEvent::FirstUse:
          case TraceEvent::EvictedUnused: {
            const bool used = line.event == TraceEvent::FirstUse;
            auto it = open.find(line.addr);
            if (it == open.end()) {
                // Carryover use of a fill that predates the trace.
                emit.common("i", used ? "carryoverUse" : "evicted",
                            line.t, tid);
                w.kv("s", "t");
                w.key("args").beginObject().kv("addr", line.addr);
                w.endObject();
                w.endObject();
                break;
            }
            emit.async("e", toString(line.hint), line.t, tid,
                       it->second);
            w.key("args").beginObject();
            w.kv("outcome", used ? "used" : "evictedUnused");
            if (used && line.extra >= 0)
                w.kv("fillToUse", line.extra);
            w.endObject();
            w.endObject();
            open.erase(it);
            break;
          }
          case TraceEvent::PollutionMiss: {
            ++pollutionMisses;
            emit.common("i", "pollutionMiss", line.t, tid);
            w.kv("s", "t");
            w.key("args").beginObject();
            w.kv("addr", line.addr);
            if (line.site >= 0)
                w.kv("site", line.site);
            w.endObject();
            w.endObject();
            emit.common("C", "pollutionMisses", line.t, 0);
            w.key("args").beginObject();
            w.kv("value", pollutionMisses);
            w.endObject();
            w.endObject();
            break;
          }
          case TraceEvent::HintTrigger:
          case TraceEvent::Enqueue:
          case TraceEvent::Drop:
          case TraceEvent::Filtered:
          case TraceEvent::EvictVictim:
          case TraceEvent::CtrlTransition:
          case TraceEvent::Stall: {
            emit.common("i", toString(line.event), line.t, tid);
            w.kv("s", "t");
            w.key("args").beginObject();
            w.kv("addr", line.addr);
            if (line.extra >= 0)
                w.kv("count", line.extra);
            if (line.site >= 0)
                w.kv("site", line.site);
            w.endObject();
            w.endObject();
            break;
          }
        }
    }

    // Time-series trajectories as counter tracks.
    if (timeseries) {
        const JsonValue *series = timeseries->find("series");
        if (series && series->isObject()) {
            for (const auto &[name, traj] : series->asObject()) {
                const JsonValue *t = traj.find("t");
                const JsonValue *v = traj.find("v");
                if (!t || !v || !t->isArray() || !v->isArray())
                    continue;
                const size_t n = std::min(t->asArray().size(),
                                          v->asArray().size());
                for (size_t i = 0; i < n; ++i) {
                    emit.common("C", name.c_str(),
                                static_cast<Tick>(
                                    t->asArray()[i].asNumber()),
                                0);
                    w.key("args").beginObject();
                    w.kv("value", v->asArray()[i].asNumber());
                    w.endObject();
                    w.endObject();
                }
            }
        }
    }

    w.endArray();
    w.endObject();
}

bool
writeChromeTraceFile(const std::string &path,
                     const std::vector<TraceLine> &lines,
                     const JsonValue *timeseries)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeChromeTrace(os, lines, timeseries);
    return os.good();
}

} // namespace obs
} // namespace grp
