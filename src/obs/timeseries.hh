/**
 * @file
 * Cycle-bucketed time-series sampling.
 *
 * The harness samples throttling-relevant signals — prefetch queue
 * depth, busy DRAM channels, L2 MSHR pressure — once per bucket and
 * dumps the run's trajectories as one JSON document, making the
 * access prioritizer's behaviour over time visible instead of only
 * its end-of-run aggregates.
 */

#ifndef GRP_OBS_TIMESERIES_HH
#define GRP_OBS_TIMESERIES_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace grp
{
namespace obs
{

/** Named (tick, value) trajectories sharing one sampling bucket. */
class TimeSeries
{
  public:
    explicit TimeSeries(uint64_t bucket_cycles);

    uint64_t bucket() const { return bucket_; }

    /** Record one sample of @p series at @p cycle. */
    void record(const std::string &series, Tick cycle, double value);

    size_t seriesCount() const { return series_.size(); }
    size_t samples(const std::string &series) const;

    /** {"schema": ..., "bucket": N, "series": {name: {"t": [...],
     *  "v": [...]}}} */
    void exportJson(std::ostream &os) const;
    bool exportJsonFile(const std::string &path) const;

  private:
    struct Series
    {
        std::vector<Tick> ticks;
        std::vector<double> values;
    };

    uint64_t bucket_;
    std::map<std::string, Series> series_;
};

} // namespace obs
} // namespace grp

#endif // GRP_OBS_TIMESERIES_HH
