/**
 * @file
 * Per-hint-site prefetch profiling.
 *
 * GRP's compiler/hardware cooperation operates at the granularity of
 * one annotated load: a static reference (RefId, the simulator's
 * "PC") whose hints gate an engine. The engine-level StatGroups
 * aggregate away exactly that axis, so this profiler keeps a table
 * keyed by (site, hint class) and accumulates the full funnel for
 * each one — hint triggers, candidates enqueued/dropped, prefetches
 * issued/filtered, fills, useful first-uses vs. evicted-unused, and
 * a fill-to-use latency Distribution. The table is the per-site
 * accuracy/timeliness feedback signal that runtime-guided throttling
 * (see ROADMAP.md) will consume, and it is what `grpsim
 * --site-profile` exports.
 *
 * Attribution mirrors the StatRegistry counters exactly: noteIssue()
 * is called where mem.prefetchesIssued increments, noteUseful(warm =
 * false) where mem.usefulPrefetches increments, and the harness
 * clears the table at the warmup/measurement boundary alongside
 * resetStats() — so summing any column over the sites reconciles
 * with the engine-level totals.
 *
 * Overhead control matches the tracer: every emission site goes
 * through the GRP_PROFILE() macro, a single predictable branch when
 * profiling is off and compiled out entirely when GRP_TRACE_MAX_LEVEL
 * is 0.
 */

#ifndef GRP_OBS_SITE_PROFILE_HH
#define GRP_OBS_SITE_PROFILE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/stats.hh"

namespace grp
{
namespace obs
{
class JsonWriter;
}
}
#include "sim/types.hh"

namespace grp
{
namespace obs
{

/** One (annotated load, hint class) table key. Unattributed
 *  candidates (hardware-discovered pointer targets, carryover uses)
 *  profile under site() == -1. */
struct SiteKey
{
    RefId ref = kInvalidRefId;
    HintClass hint = HintClass::None;

    /** The exported site id: the RefId, or -1 when unattributed. */
    int64_t
    site() const
    {
        return ref == kInvalidRefId ? -1 : static_cast<int64_t>(ref);
    }

    bool
    operator<(const SiteKey &other) const
    {
        if (ref != other.ref)
            return ref < other.ref;
        return hint < other.hint;
    }
};

/** The accumulated funnel for one site. */
struct SiteCounters
{
    uint64_t triggers = 0;      ///< Hint triggers observed.
    uint64_t enqueued = 0;      ///< Candidate blocks queued.
    uint64_t dropped = 0;       ///< Candidate blocks lost to overflow.
    uint64_t issued = 0;        ///< Prefetches started on a channel.
    uint64_t filtered = 0;      ///< Candidates already present.
    uint64_t fills = 0;         ///< Measured-window fills completed.
    uint64_t useful = 0;        ///< Measured-window first-uses.
    uint64_t evictedUnused = 0; ///< Fills evicted untouched.
    uint64_t warmupFills = 0;   ///< Fills of warmup-era requests.
    uint64_t warmupUseful = 0;  ///< First-uses of warmup-era fills.
    /** Demand misses the shadow tags charged to this site's evictions
     *  (counterfactual pollution cost). */
    uint64_t pollutionCaused = 0;
    /** Demand request-cycles queued behind this site's in-flight
     *  prefetch transfers (channel contention cost). */
    uint64_t contentionCycles = 0;

    /** Fill-to-first-use latency, measured-window samples only. */
    Distribution fillToUse;

    /** Useful / issued for this site (0 when nothing was issued). */
    double
    accuracy() const
    {
        return issued ? static_cast<double>(useful) /
                            static_cast<double>(issued)
                      : 0.0;
    }

    /** Fills that never helped: evicted unused, the ranking signal
     *  for the worst-offender report. */
    uint64_t wasted() const { return evictedUnused; }

    /** Counterfactual net benefit in cycles: hits earned minus hits
     *  destroyed, each priced at @p miss_penalty (a memory round
     *  trip), minus cycles demands queued behind this site's
     *  transfers. Negative: the site costs more than it saves. */
    int64_t
    netCycles(uint64_t miss_penalty) const
    {
        const int64_t delta = static_cast<int64_t>(useful) -
                              static_cast<int64_t>(pollutionCaused);
        return delta * static_cast<int64_t>(miss_penalty) -
               static_cast<int64_t>(contentionCycles);
    }
};

/** The per-thread per-site profiler (mirrors Tracer's lifecycle:
 *  the harness enables it for one run and clears it at the
 *  measurement boundary; per-thread so concurrent sweep jobs
 *  profile independently). */
class SiteProfiler
{
  public:
    static SiteProfiler &instance();

    SiteProfiler() : stats_("siteProfile") {}
    SiteProfiler(const SiteProfiler &) = delete;
    SiteProfiler &operator=(const SiteProfiler &) = delete;

    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Wipe the table and the aggregate stats (does not change
     *  enabled()); the harness calls this at the warmup boundary so
     *  the table covers exactly the measured window. */
    void clear();

    void noteTrigger(RefId ref, HintClass hint);
    void noteEnqueue(RefId ref, HintClass hint, uint64_t candidates);
    void noteDrop(RefId ref, HintClass hint, uint64_t candidates);
    void noteIssue(RefId ref, HintClass hint);
    void noteFiltered(RefId ref, HintClass hint);
    void noteFill(RefId ref, HintClass hint, bool warm);
    void noteUseful(RefId ref, HintClass hint, uint64_t distance,
                    bool warm);
    void noteEvictedUnused(RefId ref, HintClass hint, bool warm);
    /** A shadow-classified pollution miss was charged to the site. */
    void notePollutionMiss(RefId ref, HintClass hint);
    /** @p waiting demand requests spent a cycle queued behind the
     *  site's in-flight prefetch transfer. */
    void noteContention(RefId ref, HintClass hint, uint64_t waiting);

    /** Cycles one avoided (or suffered) miss is worth in the
     *  net-cycles score; the harness sets it to the configured DRAM
     *  row-conflict + transfer time. */
    void setMissPenalty(uint64_t cycles) { missPenalty_ = cycles; }
    uint64_t missPenalty() const { return missPenalty_; }

    size_t siteCount() const { return table_.size(); }
    const std::map<SiteKey, SiteCounters> &sites() const
    {
        return table_;
    }

    /** Counters for one site, or nullptr when never seen. */
    const SiteCounters *find(RefId ref, HintClass hint) const;

    /** Aggregate StatGroup ("siteProfile.*"); the harness registers
     *  it into the StatRegistry while profiling is active, so the
     *  registry JSON carries the profile totals. */
    StatGroup &stats() { return stats_; }

    /** Sites ranked worst-first: most wasted fills, then fewest
     *  useful per issued. */
    std::vector<const std::map<SiteKey, SiteCounters>::value_type *>
    ranked() const;

    /** One JSON document (schema grp-site-profile-v1): ranked site
     *  array plus the aggregate totals. @p extra, when set, appends
     *  top-level members (the harness adds the partial-run marker);
     *  absent, the document matches the historical format
     *  byte-for-byte. */
    void exportJson(std::ostream &os,
                    const std::function<void(JsonWriter &)> &extra =
                        {}) const;
    bool exportJsonFile(const std::string &path,
                        const std::function<void(JsonWriter &)>
                            &extra = {}) const;

    /** Human-readable worst-offenders table (top @p top_n sites). */
    void writeReport(std::ostream &os, size_t top_n) const;

  private:
    SiteCounters &entry(RefId ref, HintClass hint);

    bool enabled_ = false;
    std::map<SiteKey, SiteCounters> table_;
    StatGroup stats_;
    /** Default: 120-cycle row conflict + 32-cycle transfer. */
    uint64_t missPenalty_ = 152;
};

} // namespace obs
} // namespace grp

/** Route one SiteProfiler::noteX(...) call through the compile-away
 *  guard: removed entirely when GRP_TRACE_MAX_LEVEL is 0, a single
 *  branch when profiling is disabled. */
#define GRP_PROFILE(...)                                              \
    do {                                                              \
        if constexpr (GRP_TRACE_MAX_LEVEL > 0) {                      \
            ::grp::obs::SiteProfiler &prof_ =                         \
                ::grp::obs::SiteProfiler::instance();                 \
            if (prof_.enabled())                                      \
                prof_.__VA_ARGS__;                                    \
        }                                                             \
    } while (0)

#endif // GRP_OBS_SITE_PROFILE_HH
