#include "obs/site_profile.hh"

#include "obs/host_prof.hh"

#include <algorithm>

#include "obs/atomic_file.hh"
#include "obs/json_writer.hh"
#include "obs/stat_registry.hh"
#include "sim/logging.hh"

namespace grp
{
namespace obs
{

SiteProfiler &
SiteProfiler::instance()
{
    thread_local SiteProfiler profiler;
    return profiler;
}

void
SiteProfiler::clear()
{
    table_.clear();
    stats_.reset();
}

SiteCounters &
SiteProfiler::entry(RefId ref, HintClass hint)
{
    const SiteKey key{ref, hint};
    auto it = table_.find(key);
    if (it == table_.end()) {
        it = table_.emplace(key, SiteCounters{}).first;
        ++stats_.counter("sitesTracked");
    }
    return it->second;
}

void
SiteProfiler::noteTrigger(RefId ref, HintClass hint)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    ++entry(ref, hint).triggers;
    ++stats_.counter("triggers");
}

void
SiteProfiler::noteEnqueue(RefId ref, HintClass hint, uint64_t candidates)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    entry(ref, hint).enqueued += candidates;
    stats_.counter("enqueued") += candidates;
}

void
SiteProfiler::noteDrop(RefId ref, HintClass hint, uint64_t candidates)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    entry(ref, hint).dropped += candidates;
    stats_.counter("dropped") += candidates;
}

void
SiteProfiler::noteIssue(RefId ref, HintClass hint)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    ++entry(ref, hint).issued;
    ++stats_.counter("issued");
}

void
SiteProfiler::noteFiltered(RefId ref, HintClass hint)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    ++entry(ref, hint).filtered;
    ++stats_.counter("filtered");
}

void
SiteProfiler::noteFill(RefId ref, HintClass hint, bool warm)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    SiteCounters &site = entry(ref, hint);
    if (warm) {
        ++site.warmupFills;
        ++stats_.counter("warmupFills");
    } else {
        ++site.fills;
        ++stats_.counter("fills");
    }
}

void
SiteProfiler::noteUseful(RefId ref, HintClass hint, uint64_t distance,
                         bool warm)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    SiteCounters &site = entry(ref, hint);
    if (warm) {
        ++site.warmupUseful;
        ++stats_.counter("warmupUseful");
    } else {
        ++site.useful;
        site.fillToUse.sample(distance);
        ++stats_.counter("useful");
    }
}

void
SiteProfiler::noteEvictedUnused(RefId ref, HintClass hint, bool warm)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    ++entry(ref, hint).evictedUnused;
    ++stats_.counter("evictedUnused");
    if (warm)
        ++stats_.counter("warmupEvictedUnused");
}

void
SiteProfiler::notePollutionMiss(RefId ref, HintClass hint)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    ++entry(ref, hint).pollutionCaused;
    ++stats_.counter("pollutionCaused");
}

void
SiteProfiler::noteContention(RefId ref, HintClass hint, uint64_t waiting)
{
    GRP_HOST_SCOPE(2, SiteProfile);
    entry(ref, hint).contentionCycles += waiting;
    stats_.counter("contentionCycles") += waiting;
}

const SiteCounters *
SiteProfiler::find(RefId ref, HintClass hint) const
{
    auto it = table_.find(SiteKey{ref, hint});
    return it == table_.end() ? nullptr : &it->second;
}

std::vector<const std::map<SiteKey, SiteCounters>::value_type *>
SiteProfiler::ranked() const
{
    std::vector<const std::map<SiteKey, SiteCounters>::value_type *>
        order;
    order.reserve(table_.size());
    for (const auto &item : table_)
        order.push_back(&item);
    std::stable_sort(order.begin(), order.end(),
                     [](const auto *a, const auto *b) {
                         if (a->second.wasted() != b->second.wasted())
                             return a->second.wasted() >
                                    b->second.wasted();
                         return a->second.accuracy() <
                                b->second.accuracy();
                     });
    return order;
}

void
SiteProfiler::exportJson(
    std::ostream &os,
    const std::function<void(JsonWriter &)> &extra) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "grp-site-profile-v1");
    w.kv("missPenalty", missPenalty_);
    w.key("totals").beginObject();
    for (const auto &[name, counter] : stats_.counters())
        w.kv(name, counter.value());
    w.endObject();
    w.key("sites").beginArray();
    for (const auto *item : ranked()) {
        const SiteKey &key = item->first;
        const SiteCounters &site = item->second;
        w.beginObject();
        w.kv("site", key.site());
        w.kv("hint", toString(key.hint));
        w.kv("triggers", site.triggers);
        w.kv("enqueued", site.enqueued);
        w.kv("dropped", site.dropped);
        w.kv("issued", site.issued);
        w.kv("filtered", site.filtered);
        w.kv("fills", site.fills);
        w.kv("useful", site.useful);
        w.kv("evictedUnused", site.evictedUnused);
        w.kv("warmupFills", site.warmupFills);
        w.kv("warmupUseful", site.warmupUseful);
        w.kv("accuracy", site.accuracy());
        w.kv("pollutionCaused", site.pollutionCaused);
        w.kv("contentionCycles", site.contentionCycles);
        w.kv("netCycles", site.netCycles(missPenalty_));
        const DistSummary lat = summarise(site.fillToUse);
        w.key("fillToUse").beginObject();
        w.kv("samples", lat.samples);
        w.kv("mean", lat.mean);
        w.kv("p50", lat.p50);
        w.kv("p90", lat.p90);
        w.kv("p99", lat.p99);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    if (extra)
        extra(w);
    w.endObject();
}

bool
SiteProfiler::exportJsonFile(
    const std::string &path,
    const std::function<void(JsonWriter &)> &extra) const
{
    return atomicWriteFile(
        path,
        [this, &extra](std::ostream &os) { exportJson(os, extra); },
        "site-profile");
}

void
SiteProfiler::writeReport(std::ostream &os, size_t top_n) const
{
    os << "site profile: " << table_.size() << " (site, hint) entries; "
       << "worst offenders by evicted-unused fills "
       << "(netCyc prices a miss at " << missPenalty_ << " cycles)\n";
    char line[224];
    std::snprintf(line, sizeof(line),
                  "%8s %-10s %9s %8s %8s %8s %8s %7s %8s %8s %9s %11s\n",
                  "site", "hint", "triggers", "issued", "fills",
                  "useful", "evicted", "acc%", "p90lat", "pollut",
                  "contCyc", "netCyc");
    os << line;
    size_t shown = 0;
    for (const auto *item : ranked()) {
        if (shown++ == top_n)
            break;
        const SiteKey &key = item->first;
        const SiteCounters &site = item->second;
        const uint64_t p90 = site.fillToUse.samples()
                                 ? site.fillToUse.percentile(90.0)
                                 : 0;
        std::snprintf(line, sizeof(line),
                      "%8lld %-10s %9llu %8llu %8llu %8llu %8llu "
                      "%7.1f %8llu %8llu %9llu %11lld\n",
                      static_cast<long long>(key.site()),
                      toString(key.hint),
                      static_cast<unsigned long long>(site.triggers),
                      static_cast<unsigned long long>(site.issued),
                      static_cast<unsigned long long>(site.fills),
                      static_cast<unsigned long long>(site.useful),
                      static_cast<unsigned long long>(
                          site.evictedUnused),
                      100.0 * site.accuracy(),
                      static_cast<unsigned long long>(p90),
                      static_cast<unsigned long long>(
                          site.pollutionCaused),
                      static_cast<unsigned long long>(
                          site.contentionCycles),
                      static_cast<long long>(
                          site.netCycles(missPenalty_)));
        os << line;
    }
}

} // namespace obs
} // namespace grp
