/**
 * @file
 * The `.grpbin` binary flight-recorder trace container.
 *
 * JSONL tracing costs one snprintf and ~60-120 bytes per record —
 * cheap enough for 20k-instruction debugging runs, far too expensive
 * to leave on at paper-scale (200M-instruction) windows. This module
 * is the compact alternative: varint-encoded, delta-timestamped
 * binary records in a self-describing container that the Tracer can
 * emit instead of JSONL, with offline tooling doing the heavy
 * lifting. Two stream kinds share the container:
 *
 *  - Lifecycle (kind 0): every GRP_TRACE event type, field-for-field
 *    equivalent to the JSONL records (a converted trace is
 *    byte-identical to a natively emitted one).
 *  - Access (kind 1): the RefId-tagged demand-access stream the CPU
 *    consumed, recorded for trace-driven replay (src/harness/capture).
 *
 * Container layout (all integers LEB128 varints unless noted):
 *
 *   header   "GRPB", u8 version, u8 kind, u16 reserved (zero)
 *            meta: n, then n x (key string, value string)
 *            tables: t, then t x (s, then s x string)
 *            (strings are varint length + bytes; table 0 names the
 *            record tags, so readers never depend on enum numbering)
 *   body     records; tag bytes below 0xFE index table 0. Lifecycle
 *            streams pack the hint class into the tag byte — tag =
 *            hint_index * |table 0| + event_index, decodable from the
 *            table sizes alone (hint 0 is "none", mirroring the JSONL
 *            writer omitting the hint field) — and delta-encode both
 *            timestamps (modular delta from the previous record's
 *            tick) and addresses (zigzag delta from the previous
 *            record's address — region prefetching touches
 *            near-sequential blocks, so most deltas fit one byte; the
 *            address base resets to 0 at every checkpoint so an
 *            indexed seek can prime it without reading the prefix)
 *   0xFE     checkpoint: key (cumulative tick / op count), record
 *            index, warm-record count, then per-event cumulative
 *            record counts (one per table-0 entry) — a seekable
 *            snapshot: decoding may resume at any checkpoint with the
 *            delta clock primed from `key`
 *   0xFF     footer: checkpoint directory (offset, key, record index
 *            per entry), total records, final key
 *   trailer  u64 LE footer offset, "GRPE" (8+4 fixed bytes)
 *
 * The trailer doubles as the finalize marker: a file without it was
 * truncated (crash, kill, or a stale .tmp) and readers report that as
 * a distinct condition while still scanning the intact prefix.
 */

#ifndef GRP_OBS_BINTRACE_HH
#define GRP_OBS_BINTRACE_HH

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hh"
#include "obs/trace_reader.hh"
#include "sim/types.hh"

namespace grp
{
namespace obs
{
namespace bintrace
{

constexpr char kMagic[4] = {'G', 'R', 'P', 'B'};
constexpr char kEndMagic[4] = {'G', 'R', 'P', 'E'};
constexpr uint8_t kVersion = 1;
/** Trailer bytes: u64 footer offset + end magic. */
constexpr size_t kTrailerBytes = 8 + 4;

/** What the record stream carries. */
enum class StreamKind : uint8_t
{
    Lifecycle = 0, ///< GRP_TRACE prefetch lifecycle events.
    Access = 1,    ///< RefId-tagged CPU access stream (replay).
};

/** Reserved tag bytes (real record tags index string table 0). */
constexpr uint8_t kCheckpointTag = 0xFE;
constexpr uint8_t kFooterTag = 0xFF;

/** Records between checkpoints (the writer's default cadence). */
constexpr uint64_t kDefaultCheckpointInterval = 8192;

/** Lifecycle record field-presence flags (mirrors which fields the
 *  JSONL writer omits, so conversion is exact; the hint class needs
 *  no flag — it lives in the tag byte, with index 0 meaning "none",
 *  i.e. the field the JSONL writer omits). */
enum LifecycleFlags : uint8_t
{
    kHasAddr = 1 << 0,
    kHasChannel = 1 << 1,
    kHasExtra = 1 << 2,
    kHasSite = 1 << 3,
    kIsWarm = 1 << 4,
    kIsCarry = 1 << 5,
};

/** Append @p value to @p buf as LEB128; returns bytes written
 *  (at most 10). */
size_t putVarint(uint8_t *buf, uint64_t value);

/** Decode one LEB128 varint from [@p p, @p end); advances @p p.
 *  Returns false on truncation or overlong (> 10 byte) input. */
bool readVarint(const uint8_t *&p, const uint8_t *end, uint64_t &value);

/** Zigzag-fold a modular difference so small negative deltas encode
 *  as small varints (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...). */
inline uint64_t
zigzag(uint64_t delta)
{
    const int64_t d = static_cast<int64_t>(delta);
    return (static_cast<uint64_t>(d) << 1) ^
           static_cast<uint64_t>(d >> 63);
}

/** Inverse of zigzag(). */
inline uint64_t
unzigzag(uint64_t value)
{
    return (value >> 1) ^ (~(value & 1) + 1);
}

/** One checkpoint directory entry. */
struct CheckpointRef
{
    uint64_t offset = 0; ///< Byte offset of the 0xFE tag.
    /** Cumulative position key: the delta-clock value (lifecycle:
     *  tick of the preceding record; access: ops so far). */
    uint64_t key = 0;
    uint64_t recordIndex = 0; ///< Records before the checkpoint.
};

/** Parsed container header + footer (not the records themselves). */
struct Container
{
    uint8_t version = 0;
    StreamKind kind = StreamKind::Lifecycle;
    std::vector<std::pair<std::string, std::string>> meta;
    std::vector<std::vector<std::string>> tables;
    size_t bodyOffset = 0; ///< First record byte.
    /** The finalize trailer was present and consistent. */
    bool finalized = false;
    size_t footerOffset = 0; ///< Valid iff finalized.
    std::vector<CheckpointRef> checkpoints; ///< Iff finalized.
    uint64_t totalRecords = 0;              ///< Iff finalized.
    uint64_t finalKey = 0;                  ///< Iff finalized.

    /** First meta value for @p key, if any. */
    std::optional<std::string> metaValue(std::string_view key) const;
};

/** True iff @p data starts with the .grpbin magic. */
bool isBinary(std::string_view data);

/**
 * Parse the header and (when the trailer is present) the footer.
 * Returns false only for structurally unusable input (bad magic,
 * corrupt header) with @p error set; a missing/inconsistent trailer
 * is NOT an error here — it parses with finalized == false so the
 * caller can scan the prefix and report truncation distinctly.
 */
bool parseContainer(std::string_view data, Container &out,
                    std::string *error);

/**
 * The streaming writer behind Tracer (lifecycle) and the capture
 * sidecar (access). Writes through an already-open stdio stream the
 * caller owns; finalize() must run before the stream is closed for
 * the file to carry the footer + trailer.
 */
class Writer
{
  public:
    /**
     * Writes the container header immediately.
     *
     * @param tables Table 0 must name the record tags.
     * @param checkpoint_interval Records between checkpoints (0
     *        disables checkpoints; the footer is still written).
     */
    Writer(std::FILE *out, StreamKind kind,
           std::vector<std::vector<std::string>> tables,
           std::vector<std::pair<std::string, std::string>> meta = {},
           uint64_t checkpoint_interval = kDefaultCheckpointInterval);

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    /** Emit one lifecycle record (Lifecycle streams only). */
    void record(const TraceRecord &rec, Tick tick, bool warm);

    /** Emit one pre-encoded record (Access streams): @p tag indexes
     *  table 0, @p payload holds the already-varint-encoded fields,
     *  @p key_after is the cumulative position key (ops so far). */
    void rawRecord(uint8_t tag, const uint8_t *payload, size_t len,
                   uint64_t key_after);

    /** Write the checkpoint directory, footer and trailer. Records
     *  must not be emitted afterwards. Idempotent. */
    void finalize();

    uint64_t recordsWritten() const { return records_; }
    uint64_t bytesWritten() const { return bytes_; }

  private:
    void emit(const uint8_t *buf, size_t len);
    void maybeCheckpoint();

    std::FILE *out_;
    StreamKind kind_;
    /** |table 0|: the modulus of the joint (hint, event) tag byte. */
    size_t eventCount_;
    uint64_t interval_;
    uint64_t sinceCheckpoint_ = 0;
    uint64_t records_ = 0;
    uint64_t bytes_ = 0;
    uint64_t warmRecords_ = 0;
    uint64_t key_ = 0; ///< Delta clock (lifecycle) / op count (access).
    uint64_t addrKey_ = 0; ///< Address-delta base (lifecycle).
    std::vector<uint64_t> tagCounts_;
    std::vector<CheckpointRef> checkpoints_;
    bool finalized_ = false;
};

/**
 * Decode a lifecycle .grpbin into the JSONL reader's TraceLine
 * representation. Unknown tags/hints (a newer writer) skip the record
 * with a "record N:" error; a missing trailer sets truncated and adds
 * one distinct, actionable error, after scanning the intact prefix.
 */
TraceParseResult readLifecycle(std::string_view data);

/** Record filter for the indexed query mode. */
struct QueryFilter
{
    /** Inclusive tick window; records outside it are skipped. */
    std::optional<Tick> fromTick;
    std::optional<Tick> toTick;
    /** Exact site match (-1 selects unattributed records). */
    std::optional<int64_t> site;
    std::optional<TraceEvent> event;
};

struct QueryResult
{
    std::vector<TraceLine> lines;
    /** Records actually decoded (< total when the index seeked). */
    uint64_t recordsScanned = 0;
    /** The checkpoint directory was used to skip the prefix. */
    bool seeked = false;
    std::vector<std::string> errors;
    bool truncated = false;
};

/**
 * Scan @p data for records matching @p filter. With @p use_index and
 * a finalized file whose filter has a fromTick bound, decoding starts
 * at the last checkpoint at or before the window instead of at the
 * first record, and stops once past toTick.
 */
QueryResult query(std::string_view data, const QueryFilter &filter,
                  bool use_index = true);

} // namespace bintrace
} // namespace obs
} // namespace grp

#endif // GRP_OBS_BINTRACE_HH
