#include "obs/trace_reader.hh"

#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>

#include "obs/bintrace.hh"
#include "obs/json_reader.hh"

namespace grp
{
namespace obs
{

namespace
{

/** Region windows are at most kBlocksPerRegion blocks, so an issue
 *  belongs to an enqueued window iff it lands within one region size
 *  of the window's base. */
constexpr uint64_t kWindowSpanBytes = kBlocksPerRegion * kBlockBytes;

} // namespace

std::optional<TraceEvent>
parseTraceEvent(const std::string &name)
{
    const TraceEvent all[] = {
        TraceEvent::HintTrigger, TraceEvent::Enqueue,
        TraceEvent::Drop,        TraceEvent::Issue,
        TraceEvent::Stall,       TraceEvent::Filtered,
        TraceEvent::Fill,        TraceEvent::FirstUse,
        TraceEvent::EvictedUnused, TraceEvent::EvictVictim,
        TraceEvent::PollutionMiss, TraceEvent::CtrlTransition,
    };
    for (TraceEvent event : all) {
        if (name == toString(event))
            return event;
    }
    return std::nullopt;
}

std::optional<HintClass>
parseHintClass(const std::string &name)
{
    const HintClass all[] = {
        HintClass::None,      HintClass::Spatial,
        HintClass::Pointer,   HintClass::Recursive,
        HintClass::Indirect,  HintClass::Stride,
    };
    for (HintClass hint : all) {
        if (name == toString(hint))
            return hint;
    }
    return std::nullopt;
}

TraceParseResult
readTrace(std::istream &is)
{
    TraceParseResult result;
    std::string line;
    size_t lineno = 0;
    auto fail = [&](const std::string &why) {
        std::ostringstream msg;
        msg << "line " << lineno << ": " << why;
        result.errors.push_back(msg.str());
    };

    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string error;
        auto doc = parseJson(line, &error);
        if (!doc || !doc->isObject()) {
            fail(doc ? "not a JSON object" : error);
            continue;
        }

        TraceLine rec;
        const JsonValue *ev = doc->find("ev");
        if (!ev || !ev->isString()) {
            fail("missing \"ev\"");
            continue;
        }
        const auto event = parseTraceEvent(ev->asString());
        if (!event) {
            fail("unknown event '" + ev->asString() + "'");
            continue;
        }
        rec.event = *event;

        if (const JsonValue *t = doc->find("t"); t && t->isNumber())
            rec.t = static_cast<Tick>(t->asNumber());
        if (const JsonValue *a = doc->find("addr"); a && a->isNumber())
            rec.addr = static_cast<Addr>(a->asNumber());
        if (const JsonValue *h = doc->find("hint")) {
            const auto hint =
                h->isString() ? parseHintClass(h->asString())
                              : std::nullopt;
            if (!hint) {
                fail("unknown hint class");
                continue;
            }
            rec.hint = *hint;
        }
        if (const JsonValue *c = doc->find("ch"); c && c->isNumber())
            rec.channel = static_cast<int>(c->asNumber());
        if (const JsonValue *x = doc->find("x"); x && x->isNumber())
            rec.extra = static_cast<int64_t>(x->asNumber());
        if (const JsonValue *s = doc->find("site"); s && s->isNumber())
            rec.site = static_cast<int64_t>(s->asNumber());
        if (const JsonValue *w = doc->find("warm"))
            rec.warm = w->asBool();
        if (const JsonValue *c = doc->find("carry"))
            rec.carry = c->asBool();
        result.lines.push_back(rec);
    }
    return result;
}

TraceParseResult
readTraceData(const std::string &data)
{
    if (bintrace::isBinary(data))
        return bintrace::readLifecycle(data);
    std::istringstream is(data);
    return readTrace(is);
}

TraceParseResult
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        TraceParseResult result;
        result.openFailed = true;
        result.errors.push_back("cannot open '" + path + "'");
        return result;
    }
    // Sniff the container magic: binary traces must be slurped (the
    // decoder seeks into the checkpoint directory); JSONL can stream.
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    const bool binary = is.gcount() == 4 &&
                        bintrace::isBinary(std::string(magic, 4));
    is.clear();
    is.seekg(0);
    if (!binary)
        return readTrace(is);
    std::ostringstream buf;
    buf << is.rdbuf();
    return bintrace::readLifecycle(buf.str());
}

std::string
jsonlLine(const TraceLine &line)
{
    TraceRecord rec(line.event, line.addr, line.hint, line.channel,
                    line.extra, line.carry,
                    line.site < 0 ? kInvalidRefId
                                  : static_cast<RefId>(line.site));
    char buf[256];
    const size_t n =
        formatTraceLine(buf, sizeof(buf), line.t, rec, line.warm);
    return std::string(buf, n);
}

TraceAnalysis
analyzeTrace(const std::vector<TraceLine> &lines)
{
    TraceAnalysis out;
    out.records = lines.size();

    // Lifecycle per block: absent = idle, false = issued (in
    // flight), true = filled (resident, unused).
    std::unordered_map<Addr, bool> state;
    // Base addresses of enqueued windows, for issue coverage.
    std::set<Addr> windows;
    // Blocks a prefetch fill evicted and a pollution miss could be
    // charged against (EvictVictim seen, not yet consumed).
    std::set<Addr> victims;

    for (const TraceLine &line : lines) {
        if (out.coverageChecked == false &&
            line.event == TraceEvent::Enqueue)
            out.coverageChecked = true;
        if (out.pollutionChecked == false &&
            line.event == TraceEvent::EvictVictim)
            out.pollutionChecked = true;
    }

    size_t lineno = 0;
    auto violate = [&](const std::string &why) {
        out.violations.push_back({lineno, why});
    };
    auto hexaddr = [](Addr addr) {
        std::ostringstream os;
        os << "block 0x" << std::hex << addr;
        return os.str();
    };

    for (const TraceLine &line : lines) {
        ++lineno;
        if (line.warm)
            ++out.warmupRecords;
        if (line.event == TraceEvent::Stall)
            continue; // No hint/site attribution to accumulate.
        if (line.event == TraceEvent::CtrlTransition) {
            // Controller knob moves touch no block lifecycle; check
            // the knob-id/level encoding and count the move.
            if (line.channel < 0 || line.channel > 3)
                violate("controller transition with knob id " +
                        std::to_string(line.channel) +
                        " outside [0, 3]");
            if (line.extra < 0 || line.extra > 2)
                violate("controller transition with level " +
                        std::to_string(line.extra) +
                        " outside [0, 2]");
            ++out.controllerTransitions;
            continue;
        }

        FunnelStats &cls = out.byClass[line.hint];
        FunnelStats &site = out.bySite[line.site];
        const uint64_t count =
            line.extra > 0 ? static_cast<uint64_t>(line.extra) : 1;

        // The measured-window columns mirror the simulator's
        // post-warmup counters, so warmup-era queue/issue records
        // (warm flag) feed the state machine but not the funnel.
        switch (line.event) {
          case TraceEvent::HintTrigger:
            if (!line.warm) {
                ++cls.triggers;
                ++site.triggers;
            }
            break;
          case TraceEvent::Enqueue:
            if (!line.warm) {
                cls.enqueued += count;
                site.enqueued += count;
            }
            windows.insert(line.addr);
            break;
          case TraceEvent::Drop:
            if (!line.warm) {
                cls.dropped += count;
                site.dropped += count;
            }
            break;
          case TraceEvent::Stall:
          case TraceEvent::CtrlTransition:
            break; // Handled (continued) above.
          case TraceEvent::Filtered:
            if (!line.warm) {
                ++cls.filtered;
                ++site.filtered;
            }
            break;
          case TraceEvent::Issue: {
            auto it = state.find(line.addr);
            if (it != state.end()) {
                violate(hexaddr(line.addr) + (it->second
                            ? " issued while already resident"
                            : " issued while already in flight"));
            }
            state[line.addr] = false;
            if (out.coverageChecked &&
                line.hint != HintClass::Stride) {
                // The covering window's base is the largest enqueued
                // base <= the issue address within one region span.
                auto window = windows.upper_bound(line.addr);
                const bool covered =
                    window != windows.begin() &&
                    line.addr - *--window < kWindowSpanBytes;
                if (!covered)
                    violate(hexaddr(line.addr) +
                            " issued without a covering enqueue");
            }
            if (!line.warm) {
                ++cls.issued;
                ++site.issued;
            }
            break;
          }
          case TraceEvent::Fill: {
            auto it = state.find(line.addr);
            if (it == state.end()) {
                // Stream-buffer hits fill without a channel issue.
                if (line.hint != HintClass::Stride)
                    violate(hexaddr(line.addr) +
                            " filled without an issue");
            } else if (it->second) {
                violate(hexaddr(line.addr) + " filled twice");
            }
            state[line.addr] = true;
            // A fill is warmup-era when emitted during warmup or
            // carry-flagged (its request predates the boundary).
            if (line.warm || line.carry) {
                ++cls.warmFills;
                ++site.warmFills;
            } else {
                ++cls.fills;
                ++site.fills;
            }
            break;
          }
          case TraceEvent::FirstUse: {
            auto it = state.find(line.addr);
            if (it == state.end() || !it->second) {
                // A carry-flagged use consumes a fill that predates
                // a stats reset; the fill may predate the trace too.
                if (!line.carry)
                    violate(hexaddr(line.addr) +
                            (it == state.end()
                                 ? " used without a fill"
                                 : " used while still in flight"));
            }
            if (it != state.end())
                state.erase(it);
            if (line.warm || line.carry) {
                ++cls.warmUseful;
                ++site.warmUseful;
            } else {
                ++cls.useful;
                ++site.useful;
                if (line.extra >= 0) {
                    cls.fillToUse.sample(
                        static_cast<uint64_t>(line.extra));
                    site.fillToUse.sample(
                        static_cast<uint64_t>(line.extra));
                }
            }
            break;
          }
          case TraceEvent::EvictedUnused: {
            auto it = state.find(line.addr);
            if (it == state.end() || !it->second) {
                violate(hexaddr(line.addr) +
                        (it == state.end()
                             ? " evicted without a fill"
                             : " evicted while still in flight"));
            }
            if (it != state.end())
                state.erase(it);
            ++cls.evictedUnused;
            ++site.evictedUnused;
            break;
          }
          case TraceEvent::EvictVictim:
            // The victim's own lifecycle (if it was a prefetch) is
            // traced separately via EvictedUnused; this record only
            // arms the pollution-attribution check.
            victims.insert(line.addr);
            break;
          case TraceEvent::PollutionMiss: {
            if (line.site >= 0 && out.pollutionChecked) {
                auto it = victims.find(line.addr);
                if (it == victims.end())
                    violate(hexaddr(line.addr) +
                            " pollution miss attributed without a "
                            "recorded victim");
                else
                    victims.erase(it);
            }
            if (!line.warm) {
                ++cls.pollutionMisses;
                ++site.pollutionMisses;
            }
            break;
          }
        }
    }

    for (const auto &[addr, filled] : state) {
        (void)addr;
        if (filled)
            ++out.liveAtEnd;
        else
            ++out.inFlightAtEnd;
    }
    return out;
}

} // namespace obs
} // namespace grp
