#include "obs/atomic_file.hh"

#include <cstdio>
#include <fstream>

#include "sim/logging.hh"

namespace grp
{
namespace obs
{

bool
atomicWriteFile(const std::string &path,
                const std::function<void(std::ostream &)> &emit,
                const char *what)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            warn("cannot open %s file '%s'", what, tmp.c_str());
            return false;
        }
        emit(os);
        os.flush();
        if (!os) {
            warn("failed writing %s file '%s'", what, tmp.c_str());
            os.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    return publishTempFile(tmp, path, what);
}

bool
publishTempFile(const std::string &tmp_path, const std::string &path,
                const char *what)
{
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        warn("cannot publish %s file '%s' (rename failed)", what,
             path.c_str());
        std::remove(tmp_path.c_str());
        return false;
    }
    return true;
}

} // namespace obs
} // namespace grp
