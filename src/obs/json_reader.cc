#include "obs/json_reader.hh"

#include <cctype>
#include <cstdlib>

namespace grp
{
namespace obs
{

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = object_.find(name);
    return it == object_.end() ? nullptr : &it->second;
}

const JsonValue *
JsonValue::findPath(const std::string &dotted) const
{
    const JsonValue *node = this;
    size_t start = 0;
    while (node && start <= dotted.size()) {
        const size_t dot = dotted.find('.', start);
        const std::string part =
            dotted.substr(start, dot == std::string::npos
                                     ? std::string::npos
                                     : dot - start);
        node = node->find(part);
        if (dot == std::string::npos)
            return node;
        start = dot + 1;
    }
    return nullptr;
}

/** Recursive-descent parser over a string buffer (befriended by
 *  JsonValue; must live in grp::obs, not an anonymous namespace). */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out, std::string &error)
    {
        if (!parseValue(out, error))
            return false;
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing characters at offset " +
                    std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    fail(std::string &error, const std::string &what)
    {
        error = what + " at offset " + std::to_string(pos_);
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t len = 0;
        while (word[len])
            ++len;
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseString(std::string &out, std::string &error)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail(error, "expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail(error, "truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail(error, "truncated \\u escape");
                const unsigned code = static_cast<unsigned>(
                    std::strtoul(text_.substr(pos_, 4).c_str(),
                                 nullptr, 16));
                pos_ += 4;
                // The writer only emits \u for control characters;
                // decode the BMP subset as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail(error, "bad escape");
            }
        }
        if (pos_ >= text_.size())
            return fail(error, "unterminated string");
        ++pos_; // Closing quote.
        return true;
    }

    bool
    parseValue(JsonValue &out, std::string &error)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail(error, "unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind_ = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string name;
                if (!parseString(name, error))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail(error, "expected ':'");
                ++pos_;
                JsonValue member;
                if (!parseValue(member, error))
                    return false;
                out.object_.emplace(std::move(name), std::move(member));
                skipWs();
                if (pos_ >= text_.size())
                    return fail(error, "unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail(error, "expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind_ = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue element;
                if (!parseValue(element, error))
                    return false;
                out.array_.push_back(std::move(element));
                skipWs();
                if (pos_ >= text_.size())
                    return fail(error, "unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail(error, "expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.string_, error);
        }
        if (c == 't') {
            if (!literal("true"))
                return fail(error, "bad literal");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return fail(error, "bad literal");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return fail(error, "bad literal");
            out.kind_ = JsonValue::Kind::Null;
            return true;
        }
        // Number.
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double parsed = std::strtod(start, &end);
        if (end == start)
            return fail(error, "expected value");
        pos_ += static_cast<size_t>(end - start);
        out.kind_ = JsonValue::Kind::Number;
        out.number_ = parsed;
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

std::unique_ptr<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    auto value = std::make_unique<JsonValue>();
    std::string local_error;
    JsonParser parser(text);
    if (!parser.parse(*value, local_error)) {
        if (error)
            *error = local_error;
        return nullptr;
    }
    return value;
}

} // namespace obs
} // namespace grp
