/**
 * @file
 * Counterfactual shadow tags and pollution-victim attribution.
 *
 * ShadowTags is a tag-only replica of the real L2 that replays the
 * demand stream but never accepts prefetch fills: it models the cache
 * the program would have seen with prefetching switched off. Probing
 * real and shadow together classifies every demand L2 access into
 * four outcomes:
 *
 *   hit both      — prefetching changed nothing;
 *   baseline miss — missed in both: the miss exists with or without
 *                   prefetching;
 *   pollution miss— hit in shadow, missed in real: a prefetch-caused
 *                   eviction cost us a hit we would otherwise have
 *                   had;
 *   coverage hit  — hit in real, missed in shadow: prefetching earned
 *                   a hit the baseline cache would have missed.
 *
 * By construction the classification satisfies, over any window in
 * which all four counters accumulate together,
 *
 *   coverageHits - pollutionMisses == shadowMisses - realMisses
 *
 * exactly (both sides equal the same partition of the demand stream),
 * which is the identity tests/test_shadow_tags.cc asserts end to end.
 *
 * VictimTable charges each pollution miss to the prefetch that caused
 * it: when a prefetch fill evicts a live block from the real L2, the
 * victim's address is recorded against the (RefId, HintClass) of the
 * responsible prefetch in a bounded FIFO table; a later pollution
 * miss on that address takes the entry and attributes the cost to the
 * hint site, feeding the SiteProfiler's net-cycles ledger.
 *
 * Both structures are pure bookkeeping: they never influence timing,
 * so enabling them cannot perturb the simulation they observe.
 */

#ifndef GRP_OBS_SHADOW_TAGS_HH
#define GRP_OBS_SHADOW_TAGS_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.hh"
#include "sim/types.hh"

namespace grp
{
namespace obs
{

/** Tag-only LRU shadow cache mirroring the real L2's geometry. */
class ShadowTags
{
  public:
    /** @p sets and @p assoc must match the shadowed cache (sets a
     *  power of two, as the real cache enforces). */
    ShadowTags(unsigned sets, unsigned assoc);

    /**
     * Replay one demand access: probe, touch LRU on a hit, allocate
     * (evicting LRU) on a miss — the shadow cache sees every demand
     * as a hit-or-fill, never a prefetch.
     *
     * @return true when the block was present before this access.
     */
    bool access(Addr block_addr);

    /** Replay a demand-class allocation that bypasses the classified
     *  access path (L1 victim writebacks allocating in the L2). */
    void allocate(Addr block_addr);

    /** The block is currently present (no LRU update; tests). */
    bool contains(Addr block_addr) const;

    unsigned sets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    void reset();

  private:
    struct Line
    {
        Addr tag = 0;
        uint64_t lruStamp = 0;
        bool valid = false;
    };

    unsigned setIndex(Addr block_addr) const;
    Addr tagOf(Addr block_addr) const;
    const Line *findLine(Addr block_addr) const;

    unsigned numSets_;
    unsigned assoc_;
    std::vector<Line> lines_;
    uint64_t nextStamp_ = 1;
};

/** Bounded FIFO map from evicted-victim block address to the
 *  (RefId, HintClass) of the prefetch whose fill evicted it. */
class VictimTable
{
  public:
    struct Entry
    {
        RefId ref = kInvalidRefId;
        HintClass hint = HintClass::None;
    };

    explicit VictimTable(size_t capacity = kDefaultCapacity);

    /** Remember that @p victim_block was evicted by a prefetch from
     *  @p ref / @p hint; re-recording overwrites the attribution
     *  (the newest eviction is the one a future miss pays for). */
    void record(Addr victim_block, RefId ref, HintClass hint);

    /** Consume the entry for @p victim_block (a pollution miss was
     *  charged); nullopt when the table never saw it or dropped it. */
    std::optional<Entry> take(Addr victim_block);

    size_t size() const { return map_.size(); }
    size_t capacity() const { return capacity_; }
    /** Entries evicted by the capacity bound before being taken. */
    uint64_t drops() const { return drops_; }
    uint64_t recorded() const { return recorded_; }

    void reset();

    static constexpr size_t kDefaultCapacity = 4096;

  private:
    struct Stored
    {
        Entry entry;
        uint64_t seq = 0;
    };

    /** Pop FIFO entries until the live map fits the capacity;
     *  stale FIFO entries (superseded by a re-record) are skipped. */
    void enforceCapacity();

    size_t capacity_;
    std::unordered_map<Addr, Stored> map_;
    std::deque<std::pair<Addr, uint64_t>> fifo_;
    uint64_t seq_ = 0;
    uint64_t drops_ = 0;
    uint64_t recorded_ = 0;
};

} // namespace obs
} // namespace grp

#endif // GRP_OBS_SHADOW_TAGS_HH
