#include "obs/pulse.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <unistd.h>

#include "obs/atomic_file.hh"
#include "obs/json_reader.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"

namespace grp
{
namespace obs
{

namespace
{

/// Written once by the signal handler, polled by the sim loop.
std::atomic<bool> stopFlag{false};

thread_local std::string currentJobLabel;

uint64_t
steadyNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const char *
recordName(PulseSink::Record kind)
{
    switch (kind) {
      case PulseSink::Record::Start: return "start";
      case PulseSink::Record::Beat: return "beat";
      case PulseSink::Record::Warn: return "warn";
      case PulseSink::Record::JobEnd: return "jobEnd";
    }
    return "?";
}

} // namespace

void
requestStop()
{
    stopFlag.store(true, std::memory_order_relaxed);
}

bool
stopRequested()
{
    return stopFlag.load(std::memory_order_relaxed);
}

void
clearStopRequest()
{
    stopFlag.store(false, std::memory_order_relaxed);
}

void
setPulseJobLabel(std::string label)
{
    currentJobLabel = std::move(label);
}

const std::string &
pulseJobLabel()
{
    return currentJobLabel;
}

PulseSink::PulseSink(std::string path) : path_(std::move(path))
{
    live_.open(path_, std::ios::trunc);
    ok_ = live_.good();
    if (!ok_)
        warn("cannot open pulse sidecar '%s'", path_.c_str());
    epochNanos_ = steadyNanos();
}

PulseSink::~PulseSink()
{
    // A sink nobody sealed (the process-wide $GRP_PULSE sink, or an
    // exception unwinding past the harness) still gets a best-effort
    // seal so readers can tell "writer exited" from "writer died".
    // Partial only when a stop was actually requested: a sweep whose
    // jobs all finished seals complete at process exit.
    seal(stopRequested(), "exit");
}

uint64_t
PulseSink::monotonicNanos() const
{
    const uint64_t now = steadyNanos();
    return now >= epochNanos_ ? now - epochNanos_ : 0;
}

void
PulseSink::append(Record kind,
                  const std::function<void(JsonWriter &)> &fields)
{
    if (!ok_)
        return;
    std::lock_guard<std::mutex> guard(mutex_);
    if (sealed_)
        return;
    std::ostringstream line;
    JsonWriter json(line, /*pretty=*/false);
    json.beginObject();
    json.kv("ev", recordName(kind));
    json.kv("seq", nextSeq_++);
    json.kv("tMonoNs", monotonicNanos());
    if (fields)
        fields(json);
    json.endObject();
    if (kind == Record::Beat)
        ++beats_;
    else if (kind == Record::Warn)
        ++warnings_;
    lines_.push_back(line.str());
    // Flush whole lines so a live tail (and a killed writer's
    // leftovers) always parse up to the last newline.
    live_ << lines_.back() << '\n' << std::flush;
}

void
PulseSink::seal(bool partial, const char *reason,
                const std::function<void(JsonWriter &)> &fields)
{
    if (!ok_)
        return;
    std::lock_guard<std::mutex> guard(mutex_);
    if (sealed_)
        return;
    sealed_ = true;
    std::ostringstream line;
    JsonWriter json(line, /*pretty=*/false);
    json.beginObject();
    json.kv("ev", "seal");
    json.kv("seq", nextSeq_++);
    json.kv("tMonoNs", monotonicNanos());
    json.kv("beats", beats_);
    json.kv("warnings", warnings_);
    json.kv("partial", partial);
    json.kv("reason", reason);
    if (fields)
        fields(json);
    json.endObject();
    lines_.push_back(line.str());
    live_ << lines_.back() << '\n' << std::flush;
    live_.close();
    // Republish the complete stream through the tmp+rename
    // discipline: the sealed artefact at the published path is
    // all-or-nothing even if the live appends raced a reader.
    atomicWriteFile(
        path_,
        [this](std::ostream &os) {
            for (const std::string &l : lines_)
                os << l << '\n';
        },
        "pulse stream");
}

const std::shared_ptr<PulseSink> &
PulseSink::process()
{
    static const std::shared_ptr<PulseSink> sink = [] {
        const char *path = std::getenv("GRP_PULSE");
        if (!path || !*path)
            return std::shared_ptr<PulseSink>();
        return std::make_shared<PulseSink>(path);
    }();
    return sink;
}

PulseMeter::PulseMeter(std::shared_ptr<PulseSink> sink, bool owns_sink,
                       PulseConfig config, PulseRunMeta meta)
    : sink_(std::move(sink)), ownsSink_(owns_sink),
      config_(config), meta_(std::move(meta))
{
    config_.validate();
    interval_ = config_.intervalInstructions;
    if (interval_ == 0) {
        // ~1% of the run — ~100 beats regardless of budget — but
        // never so fine that beat overhead becomes measurable.
        interval_ = meta_.targetInstructions / 100;
        if (interval_ < 1000)
            interval_ = 1000;
    }
    nextBeatInstructions_ = interval_;
    lastBeatNanos_ = sink_ ? sink_->monotonicNanos() : 0;
    if (!sink_)
        return;
    sink_->append(PulseSink::Record::Start, [this](JsonWriter &json) {
        json.kv("schema", "grp-pulse-v1");
        if (!meta_.job.empty())
            json.kv("job", meta_.job);
        json.kv("workload", meta_.workload);
        json.kv("scheme", meta_.scheme);
        json.kv("seed", meta_.seed);
        json.kv("targetInstructions", meta_.targetInstructions);
        json.kv("intervalInstructions", interval_);
        json.kv("wallFloorMillis", config_.wallFloorMillis);
        json.kv("pid", static_cast<uint64_t>(::getpid()));
    });
}

bool
PulseMeter::wallFloorDue() const
{
    if (!sink_ || config_.wallFloorMillis == 0)
        return false;
    const uint64_t elapsed = sink_->monotonicNanos() - lastBeatNanos_;
    return elapsed >= config_.wallFloorMillis * 1'000'000ull;
}

void
PulseMeter::beat(const PulseSample &sample)
{
    if (!sink_ || finished_)
        return;
    emitBeat(sample, sink_->monotonicNanos());
}

void
PulseMeter::emitBeat(const PulseSample &sample, uint64_t nowNanos)
{
    // The warmup boundary resets the mem-stat counters, so a
    // cumulative value can step backwards once per run; treat that
    // beat's delta as the post-reset value rather than wrapping.
    const auto delta = [](uint64_t cur, uint64_t prev) {
        return cur >= prev ? cur - prev : cur;
    };
    const uint64_t dInstructions = delta(sample.instructions,
                                         prev_.instructions);
    const uint64_t dCycles = delta(sample.cycles, prev_.cycles);
    const uint64_t dIssued = delta(sample.prefetchesIssued,
                                   prev_.prefetchesIssued);
    const uint64_t dFills = delta(sample.prefetchFills,
                                  prev_.prefetchFills);
    const uint64_t dUseful = delta(sample.usefulPrefetches,
                                   prev_.usefulPrefetches);
    const uint64_t dPollution = delta(sample.pollutionMisses,
                                      prev_.pollutionMisses);
    const uint64_t dNanos = nowNanos > lastBeatNanos_
                                ? nowNanos - lastBeatNanos_
                                : 1;
    const double instPerSec =
        static_cast<double>(dInstructions) * 1e9 /
        static_cast<double>(dNanos);
    const double occupancy =
        sample.queueCapacity
            ? static_cast<double>(sample.queueDepth) /
                  static_cast<double>(sample.queueCapacity)
            : 0.0;
    const uint64_t dIdle = delta(sample.dramIdleCycles,
                                 prev_.dramIdleCycles);
    const uint64_t dDramTotal = delta(sample.dramTotalCycles,
                                      prev_.dramTotalCycles);
    const double idleFrac =
        dDramTotal ? static_cast<double>(dIdle) /
                         static_cast<double>(dDramTotal)
                   : 0.0;

    sink_->append(PulseSink::Record::Beat, [&](JsonWriter &json) {
        if (!meta_.job.empty())
            json.kv("job", meta_.job);
        json.kv("instructions", sample.instructions);
        json.kv("cycles", sample.cycles);
        json.kv("instPerSec", instPerSec);
        json.kv("dInstructions", dInstructions);
        json.kv("dCycles", dCycles);
        json.kv("issued", sample.prefetchesIssued);
        json.kv("fills", sample.prefetchFills);
        json.kv("useful", sample.usefulPrefetches);
        json.kv("pollution", sample.pollutionMisses);
        json.kv("dIssued", dIssued);
        json.kv("dFills", dFills);
        json.kv("dUseful", dUseful);
        json.kv("dPollution", dPollution);
        json.kv("queueDepth", sample.queueDepth);
        json.kv("queueOccupancy", occupancy);
        json.kv("dramIdleFrac", idleFrac);
    });
    ++beats_;

    // --- Stall watchdog -------------------------------------------
    // Zero retired instructions since the last beat is only
    // observable because the wall floor keeps forcing beats; the
    // instruction trigger can never fire with dInstructions == 0.
    // Require real simulated progress (dCycles) behind the zero:
    // wall time with few cycles means the host thread was merely
    // descheduled (an oversubscribed sweep), not that the simulation
    // is wedged — a wedged sim burns cycles without retiring.
    constexpr uint64_t kStallMinCycles = 4096;
    if (dInstructions == 0) {
        if (dCycles >= kStallMinCycles) {
            ++stallStreak_;
            ++warnings_;
            sink_->append(PulseSink::Record::Warn,
                          [&](JsonWriter &json) {
                              if (!meta_.job.empty())
                                  json.kv("job", meta_.job);
                              json.kv("kind", "stall");
                              json.kv("instructions",
                                      sample.instructions);
                              json.kv("dCycles", dCycles);
                              json.kv("stalledBeats", stallStreak_);
                          });
        }
    } else {
        stallStreak_ = 0;
        // inst/s collapse: sustained drop below the EMA baseline.
        // The baseline learns only from healthy beats so a long
        // slowdown cannot drag it down and mask itself.
        if (baselineInstPerSec_ <= 0.0) {
            baselineInstPerSec_ = instPerSec;
        } else {
            const double floor =
                baselineInstPerSec_ * (1.0 - config_.dropPct / 100.0);
            if (instPerSec < floor) {
                ++dropStreak_;
                if (dropStreak_ == config_.dropSustainBeats) {
                    ++warnings_;
                    sink_->append(
                        PulseSink::Record::Warn,
                        [&](JsonWriter &json) {
                            if (!meta_.job.empty())
                                json.kv("job", meta_.job);
                            json.kv("kind", "slowdown");
                            json.kv("instPerSec", instPerSec);
                            json.kv("baselineInstPerSec",
                                    baselineInstPerSec_);
                            json.kv("dropPct", config_.dropPct);
                            json.kv("sustainedBeats", dropStreak_);
                        });
                }
            } else {
                dropStreak_ = 0;
                baselineInstPerSec_ = 0.75 * baselineInstPerSec_ +
                                      0.25 * instPerSec;
            }
        }
    }

    prev_ = sample;
    lastBeatNanos_ = nowNanos;
    nextBeatInstructions_ = sample.instructions + interval_;
}

void
PulseMeter::finish(const PulseSample &sample, bool partial,
                   const char *reason)
{
    if (!sink_ || finished_)
        return;
    finished_ = true;
    if (sample.instructions > prev_.instructions)
        emitBeat(sample, sink_->monotonicNanos());
    if (ownsSink_) {
        sink_->seal(partial, reason, [&](JsonWriter &json) {
            json.kv("instructions", sample.instructions);
            json.kv("targetInstructions", meta_.targetInstructions);
        });
    } else {
        sink_->append(PulseSink::Record::JobEnd,
                      [&](JsonWriter &json) {
                          if (!meta_.job.empty())
                              json.kv("job", meta_.job);
                          json.kv("partial", partial);
                          json.kv("reason", reason);
                          json.kv("instructions", sample.instructions);
                          json.kv("targetInstructions",
                                  meta_.targetInstructions);
                          json.kv("beats", beats_);
                          json.kv("warnings", warnings_);
                      });
    }
}

const char *
toString(PulseVerdict verdict)
{
    switch (verdict) {
      case PulseVerdict::Healthy: return "healthy";
      case PulseVerdict::Stalled: return "stalled";
      case PulseVerdict::Truncated: return "truncated";
      case PulseVerdict::Malformed: return "malformed";
    }
    return "?";
}

namespace
{

uint64_t
numField(const JsonValue &record, const char *name, uint64_t fallback = 0)
{
    const JsonValue *v = record.find(name);
    return v && v->isNumber() ? static_cast<uint64_t>(v->asNumber())
                              : fallback;
}

double
doubleField(const JsonValue &record, const char *name)
{
    const JsonValue *v = record.find(name);
    return v && v->isNumber() ? v->asNumber() : 0.0;
}

std::string
stringField(const JsonValue &record, const char *name)
{
    const JsonValue *v = record.find(name);
    return v && v->isString() ? v->asString() : std::string();
}

} // namespace

PulseAnalysis
analyzePulse(std::istream &is)
{
    PulseAnalysis out;
    bool malformed = false;
    uint64_t stallWarnings = 0;
    bool haveSeq = false;
    uint64_t lastSeq = 0;
    uint64_t lastNanos = 0;
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);
    // Ring of recent beat (instructions, tMonoNs) pairs per job for
    // the rolling inst/s the monitor's ETA uses.
    struct RecentBeat { uint64_t instructions; uint64_t nanos; };
    std::map<std::string, std::vector<RecentBeat>> recent;
    constexpr size_t kRollingWindow = 8;

    for (size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].empty())
            continue;
        std::string error;
        const auto record = parseJson(lines[i], &error);
        if (!record || !record->isObject()) {
            // A torn final line is the expected tail of a live (or
            // killed) writer; a torn *interior* line is corruption.
            if (i + 1 == lines.size()) {
                out.tornTail = true;
            } else {
                malformed = true;
                out.problems.push_back(
                    "unparseable record at line " +
                    std::to_string(i + 1) + ": " + error);
            }
            continue;
        }
        ++out.records;
        if (out.sealed) {
            malformed = true;
            out.problems.push_back(
                "record after seal at line " + std::to_string(i + 1));
        }
        const uint64_t seq = numField(*record, "seq");
        if (haveSeq && seq <= lastSeq) {
            malformed = true;
            out.problems.push_back(
                "seq not strictly increasing at line " +
                std::to_string(i + 1) + " (" +
                std::to_string(lastSeq) + " -> " +
                std::to_string(seq) + ")");
        }
        lastSeq = seq;
        haveSeq = true;
        const uint64_t nanos = numField(*record, "tMonoNs");
        if (nanos < lastNanos) {
            malformed = true;
            out.problems.push_back(
                "tMonoNs decreased at line " + std::to_string(i + 1));
        }
        lastNanos = nanos;

        const std::string ev = stringField(*record, "ev");
        const std::string jobName = stringField(*record, "job");
        PulseJobSummary &job = out.jobs[jobName];
        job.job = jobName;
        job.lastSeq = seq;
        if (ev == "start") {
            job.workload = stringField(*record, "workload");
            job.scheme = stringField(*record, "scheme");
            job.targetInstructions =
                numField(*record, "targetInstructions");
        } else if (ev == "beat") {
            ++out.beats;
            ++job.beats;
            const uint64_t instructions =
                numField(*record, "instructions");
            if (instructions < job.instructions) {
                malformed = true;
                out.problems.push_back(
                    "instructions decreased for job '" + jobName +
                    "' at line " + std::to_string(i + 1));
            }
            job.instructions = instructions;
            job.cycles = numField(*record, "cycles");
            job.lastBeatNanos = nanos;
            job.lastInstPerSec = doubleField(*record, "instPerSec");
            job.queueOccupancy =
                doubleField(*record, "queueOccupancy");
            job.dramIdleFrac = doubleField(*record, "dramIdleFrac");
            auto &ring = recent[jobName];
            ring.push_back({instructions, nanos});
            if (ring.size() > kRollingWindow)
                ring.erase(ring.begin());
        } else if (ev == "warn") {
            ++out.warnings;
            ++job.warnings;
            // Only stall warnings drive the verdict. A slowdown warn
            // compares wall-clock inst/s against an EMA baseline, so
            // a descheduled host thread (noisy CI runner, an
            // oversubscribed sweep) can emit one during a perfectly
            // healthy run; stall warns are gated on *simulated*
            // cycles burned without retirement and cannot.
            if (stringField(*record, "kind") == "stall")
                ++stallWarnings;
        } else if (ev == "jobEnd") {
            job.ended = true;
            job.partial = record->find("partial") &&
                          record->find("partial")->asBool();
        } else if (ev == "seal") {
            out.sealed = true;
            out.partial = record->find("partial") &&
                          record->find("partial")->asBool();
            // The seal closes every job that had no explicit jobEnd
            // (single-run streams have no jobEnd records at all).
            for (auto &[jname, j] : out.jobs) {
                if (!j.ended) {
                    j.ended = true;
                    j.partial = out.partial;
                }
            }
        } else {
            malformed = true;
            out.problems.push_back("unknown record type '" + ev +
                                   "' at line " +
                                   std::to_string(i + 1));
        }
    }
    // The anonymous job slot exists only when single-run records
    // carried no job field; drop it if it never saw any records
    // (e.g. an empty stream).
    if (auto it = out.jobs.find(""); it != out.jobs.end() &&
                                     it->second.beats == 0 &&
                                     it->second.workload.empty())
        out.jobs.erase(it);

    for (auto &[name, job] : out.jobs) {
        const auto &ring = recent[name];
        if (ring.size() >= 2) {
            const uint64_t dInst =
                ring.back().instructions - ring.front().instructions;
            const uint64_t dNanos =
                ring.back().nanos > ring.front().nanos
                    ? ring.back().nanos - ring.front().nanos
                    : 1;
            job.rollingInstPerSec = static_cast<double>(dInst) * 1e9 /
                                    static_cast<double>(dNanos);
        } else {
            job.rollingInstPerSec = job.lastInstPerSec;
        }
    }

    if (malformed) {
        out.verdict = PulseVerdict::Malformed;
    } else if (!out.sealed) {
        out.verdict = PulseVerdict::Truncated;
        out.problems.push_back("stream has no seal record");
    } else if (stallWarnings > 0) {
        out.verdict = PulseVerdict::Stalled;
        out.problems.push_back(std::to_string(stallWarnings) +
                               " stall warning(s) in stream");
    }
    return out;
}

} // namespace obs
} // namespace grp
