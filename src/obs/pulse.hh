/**
 * @file
 * Live run telemetry: progress pulses for long simulations.
 *
 * Every other observability surface in this repo (stats exports,
 * traces, site profiles, the host profiler) materialises after a run
 * finishes — a paper-scale 200M-instruction job is a black box while
 * it runs, and a killed job yields nothing. The pulse subsystem fixes
 * both: the harness periodically snapshots a small fixed set of key
 * rates (instructions, cycles, host inst/s, prefetch
 * issued/fill/useful/pollution deltas, prefetch-queue occupancy, DRAM
 * idle fraction) and appends one self-contained JSONL record per beat
 * to a pulse sidecar that `examples/grpmon` can tail while the run is
 * alive.
 *
 * Beats are instruction-count-driven (every N simulated instructions;
 * N defaults to ~1% of the run's budget) with a wall-clock floor: a
 * run that stops retiring instructions still beats every
 * `wallFloorMillis`, which is what lets the stall watchdog flag
 * zero-progress beats and sustained inst/s collapses as `warn`
 * records instead of going silent exactly when monitoring matters
 * most.
 *
 * Crash-safety has two layers, mirroring the trace sinks:
 *  - while the run is live, records are appended and flushed one
 *    complete line at a time, so a tailing reader sees only whole
 *    records and a `kill -9` leaves a readable prefix;
 *  - on clean close the whole stream plus a final `seal` record is
 *    republished through the atomic_file tmp+rename discipline, so
 *    the sealed artefact at the published path is always complete.
 * A stream without a seal record is a *distinct, detectable*
 * condition (`analyzePulse` reports Truncated), exactly like an
 * unfinalized `.grpbin` trace.
 *
 * Multiplexing: a PulseSink is thread-safe and can carry many runs —
 * the sweep executor points every job's meter at one shared sink
 * (`PulseSink::process()`, configured by $GRP_PULSE), each record
 * tagged with its job id, so a whole bench sweep becomes one
 * monitorable stream. Sequence numbers and monotonic timestamps are
 * assigned under the sink lock and are therefore strictly monotone
 * across the whole stream regardless of job interleaving.
 *
 * Record schema (`grp-pulse-v1`, one JSON object per line; `job`
 * appears only in multiplexed streams):
 *
 *   {"ev":"start","schema":"grp-pulse-v1","seq":0,"tMonoNs":...,
 *    "job":...,"workload":"mcf","scheme":"grp-var","seed":42,
 *    "targetInstructions":250000,"intervalInstructions":2500,
 *    "wallFloorMillis":250,"pid":1234}
 *   {"ev":"beat","seq":1,"tMonoNs":...,"instructions":...,
 *    "cycles":...,"instPerSec":...,"dInstructions":...,"dCycles":...,
 *    "issued":...,"fills":...,"useful":...,"pollution":...,
 *    "dIssued":...,"dFills":...,"dUseful":...,"dPollution":...,
 *    "queueDepth":...,"queueOccupancy":0.09,"dramIdleFrac":0.71}
 *   {"ev":"warn","kind":"stall"|"slowdown","seq":...,...}
 *   {"ev":"jobEnd","seq":...,"job":...,"partial":false,...}
 *   {"ev":"seal","seq":...,"beats":N,"warnings":K,"partial":false,
 *    "reason":"completed"|"interrupted"|"exit"}
 */

#ifndef GRP_OBS_PULSE_HH
#define GRP_OBS_PULSE_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace grp
{
namespace obs
{

class JsonWriter;

/** @name Clean-stop request (SIGINT/SIGTERM plumbing).
 *  The signal handler calls requestStop() (async-signal-safe); the
 *  harness polls stopRequested() at beat-boundary cadence and winds
 *  the run down through the normal export path with a partial
 *  marker, instead of losing everything. */
///@{
void requestStop();
bool stopRequested();
void clearStopRequest();
///@}

/** The sweep executor labels each worker's current job here
 *  (thread-local), so the runner's pulse meter can tag records with
 *  the human-readable job id ("mcf/GrpVar"). Empty when the thread
 *  is not running a sweep job. */
void setPulseJobLabel(std::string label);
const std::string &pulseJobLabel();

/**
 * One pulse stream: an append-only JSONL sidecar shared by any
 * number of concurrently-running meters. All methods are
 * thread-safe; record order, sequence numbers and timestamps are
 * serialised by one lock (beats are rare — contention is not a
 * concern).
 */
class PulseSink
{
  public:
    enum class Record { Start, Beat, Warn, JobEnd };

    /** Open @p path for live appending (truncates a leftover file
     *  from an earlier run). ok() reports failure; a failed sink
     *  swallows appends, so callers need no error paths. */
    explicit PulseSink(std::string path);

    /** Seals with reason "exit" when nobody sealed explicitly (the
     *  process-wide $GRP_PULSE sink closes this way). */
    ~PulseSink();

    PulseSink(const PulseSink &) = delete;
    PulseSink &operator=(const PulseSink &) = delete;

    bool ok() const { return ok_; }
    const std::string &path() const { return path_; }

    /**
     * Append one record: "{"ev":...,"seq":N,"tMonoNs":T, <fields>}".
     * @p fields fills the record's payload into an already-open
     * object (the sink writes ev/seq/tMonoNs first and closes the
     * object after). No-op after seal().
     */
    void append(Record kind,
                const std::function<void(JsonWriter &)> &fields);

    /**
     * Write the final seal record and republish the complete stream
     * atomically (tmp + rename). @p fields may add payload (final
     * instruction totals); beats/warnings counts are the sink's own.
     * Idempotent — only the first seal wins.
     */
    void seal(bool partial, const char *reason,
              const std::function<void(JsonWriter &)> &fields = {});

    /** Nanoseconds since the sink opened (the stream's monotonic
     *  clock). */
    uint64_t monotonicNanos() const;

    /**
     * The process-wide sink configured by $GRP_PULSE (empty/unset →
     * nullptr). Lets whole bench sweeps pulse without flag plumbing,
     * exactly like GRP_TRACE_ALL forces tracing. Sealed at process
     * exit; a killed process leaves a readable, detectably-unsealed
     * stream.
     */
    static const std::shared_ptr<PulseSink> &process();

  private:
    std::string path_;
    std::ofstream live_;
    bool ok_ = false;
    mutable std::mutex mutex_;
    uint64_t nextSeq_ = 0;
    uint64_t beats_ = 0;
    uint64_t warnings_ = 0;
    bool sealed_ = false;
    std::vector<std::string> lines_; ///< For the atomic final seal.
    uint64_t epochNanos_ = 0;        ///< steady_clock at open.
};

/** Everything one beat snapshots; the harness fills it from the
 *  run's registry/engine/DRAM state. All counters cumulative —
 *  the meter derives the deltas (tolerating the warmup-boundary
 *  counter reset). */
struct PulseSample
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t prefetchesIssued = 0;
    uint64_t prefetchFills = 0;
    uint64_t usefulPrefetches = 0;
    uint64_t pollutionMisses = 0; ///< 0 unless shadow tags are on.
    uint64_t queueDepth = 0;
    uint64_t queueCapacity = 0;   ///< 0 when the engine has no queue.
    uint64_t dramIdleCycles = 0;  ///< Cumulative, all channels.
    uint64_t dramTotalCycles = 0; ///< Cumulative accounted cycles.
};

/** Static identity of the run a meter describes (the start
 *  record). */
struct PulseRunMeta
{
    std::string job;      ///< Empty outside multiplexed streams.
    std::string workload;
    std::string scheme;
    uint64_t seed = 0;
    /** warmup + measured instructions — the denominator grpmon's
     *  progress/ETA uses. */
    uint64_t targetInstructions = 0;
};

/**
 * Per-run beat cadence + watchdog. Owned by the harness for the
 * duration of one runWorkload() call; everything here runs at beat
 * cadence, so the only hot-loop cost is the due() compare.
 */
class PulseMeter
{
  public:
    /** Emits the start record. @p owns_sink: true when the sink
     *  carries only this run (finish() seals it); false for a shared
     *  multiplexed sink (finish() emits a jobEnd record instead). */
    PulseMeter(std::shared_ptr<PulseSink> sink, bool owns_sink,
               PulseConfig config, PulseRunMeta meta);

    PulseMeter(const PulseMeter &) = delete;
    PulseMeter &operator=(const PulseMeter &) = delete;

    /** The instruction-count trigger — the hot-loop check. */
    bool
    due(uint64_t instructions) const
    {
        return instructions >= nextBeatInstructions_;
    }

    /** The wall-clock floor trigger (poll at a coarse cycle mask:
     *  it reads the clock). */
    bool wallFloorDue() const;

    /** Emit one beat record and run the watchdog over it. */
    void beat(const PulseSample &sample);

    /** Final accounting: emits a last beat when progress happened
     *  since the previous one, then seals the owned sink (or emits
     *  jobEnd on a shared one) with the partial marker. */
    void finish(const PulseSample &sample, bool partial,
                const char *reason);

    uint64_t beats() const { return beats_; }
    uint64_t warnings() const { return warnings_; }
    uint64_t intervalInstructions() const { return interval_; }

  private:
    void emitBeat(const PulseSample &sample, uint64_t nowNanos);

    std::shared_ptr<PulseSink> sink_;
    bool ownsSink_;
    PulseConfig config_;
    PulseRunMeta meta_;
    uint64_t interval_ = 0;
    uint64_t nextBeatInstructions_ = 0;
    uint64_t lastBeatNanos_ = 0;
    PulseSample prev_;
    bool finished_ = false;

    uint64_t beats_ = 0;
    uint64_t warnings_ = 0;
    double baselineInstPerSec_ = 0.0; ///< Rolling EMA of beat inst/s.
    unsigned stallStreak_ = 0;
    unsigned dropStreak_ = 0;
};

/** Offline verdict over a pulse stream (grpmon --check). Precedence:
 *  a structurally broken stream is Malformed even if also unsealed;
 *  an unsealed stream is Truncated; a sealed stream with warn
 *  records is Stalled; otherwise Healthy. A *partial* sealed stream
 *  (clean SIGINT stop) is still Healthy — partiality is reported
 *  separately. */
enum class PulseVerdict
{
    Healthy,
    Stalled,
    Truncated,
    Malformed,
};

const char *toString(PulseVerdict verdict);

/** Per-job rollup of a (possibly multiplexed) stream. */
struct PulseJobSummary
{
    std::string job;
    std::string workload;
    std::string scheme;
    uint64_t targetInstructions = 0;
    uint64_t instructions = 0; ///< Latest beat's cumulative count.
    uint64_t cycles = 0;
    uint64_t beats = 0;
    uint64_t warnings = 0;
    uint64_t lastSeq = 0;
    uint64_t lastBeatNanos = 0;
    double lastInstPerSec = 0.0;
    /** Host inst/s over the last few beats (ETA denominator). */
    double rollingInstPerSec = 0.0;
    double queueOccupancy = 0.0;
    double dramIdleFrac = 0.0;
    bool ended = false;
    bool partial = false;
};

/** What analyzePulse() found. */
struct PulseAnalysis
{
    PulseVerdict verdict = PulseVerdict::Healthy;
    /** Human-readable findings behind a non-Healthy verdict. */
    std::vector<std::string> problems;
    uint64_t records = 0;
    uint64_t beats = 0;
    uint64_t warnings = 0;
    bool sealed = false;
    bool partial = false;
    /** The last line did not parse — the torn tail of a live or
     *  killed writer (Truncated, not Malformed). */
    bool tornTail = false;
    std::map<std::string, PulseJobSummary> jobs;
};

/**
 * Validate and summarise a pulse stream: every line parses, `seq`
 * strictly increases, `tMonoNs` never decreases, per-job
 * instruction counters never decrease, nothing follows the seal.
 */
PulseAnalysis analyzePulse(std::istream &is);

} // namespace obs
} // namespace grp

#endif // GRP_OBS_PULSE_HH
