#include "obs/bintrace.hh"

#include <cstring>

#include "sim/logging.hh"

namespace grp
{
namespace obs
{
namespace bintrace
{

namespace
{

/** Largest encodable record: tag + flags + 6 varints of <= 10 bytes. */
constexpr size_t kMaxRecordBytes = 2 + 6 * 10;

void
putString(std::vector<uint8_t> &out, std::string_view text)
{
    uint8_t buf[10];
    const size_t n = putVarint(buf, text.size());
    out.insert(out.end(), buf, buf + n);
    out.insert(out.end(), text.begin(), text.end());
}

bool
readString(const uint8_t *&p, const uint8_t *end, std::string &out)
{
    uint64_t len = 0;
    if (!readVarint(p, end, len) ||
        len > static_cast<uint64_t>(end - p))
        return false;
    out.assign(reinterpret_cast<const char *>(p),
               static_cast<size_t>(len));
    p += len;
    return true;
}

/** The four fixed header bytes after the magic. */
constexpr size_t kFixedHeaderBytes = 4 + 1 + 1 + 2;

} // namespace

size_t
putVarint(uint8_t *buf, uint64_t value)
{
    size_t n = 0;
    do {
        uint8_t byte = value & 0x7f;
        value >>= 7;
        if (value)
            byte |= 0x80;
        buf[n++] = byte;
    } while (value);
    return n;
}

bool
readVarint(const uint8_t *&p, const uint8_t *end, uint64_t &value)
{
    value = 0;
    unsigned shift = 0;
    while (p != end && shift < 70) {
        const uint8_t byte = *p++;
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
        shift += 7;
    }
    return false;
}

std::optional<std::string>
Container::metaValue(std::string_view key) const
{
    for (const auto &[k, v] : meta) {
        if (k == key)
            return v;
    }
    return std::nullopt;
}

bool
isBinary(std::string_view data)
{
    return data.size() >= 4 &&
           std::memcmp(data.data(), kMagic, 4) == 0;
}

bool
parseContainer(std::string_view data, Container &out,
               std::string *error)
{
    auto fail = [&](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    if (!isBinary(data))
        return fail("not a .grpbin trace (bad magic)");
    if (data.size() < kFixedHeaderBytes)
        return fail("header truncated");
    const uint8_t *base =
        reinterpret_cast<const uint8_t *>(data.data());
    const uint8_t *end = base + data.size();
    const uint8_t *p = base + 4;
    out.version = *p++;
    if (out.version != kVersion)
        return fail("unsupported .grpbin version");
    const uint8_t kind = *p++;
    if (kind > static_cast<uint8_t>(StreamKind::Access))
        return fail("unknown stream kind");
    out.kind = static_cast<StreamKind>(kind);
    p += 2; // reserved

    uint64_t n = 0;
    if (!readVarint(p, end, n) || n > 1024)
        return fail("corrupt meta section");
    out.meta.clear();
    for (uint64_t i = 0; i < n; ++i) {
        std::string key, value;
        if (!readString(p, end, key) || !readString(p, end, value))
            return fail("corrupt meta section");
        out.meta.emplace_back(std::move(key), std::move(value));
    }

    uint64_t tables = 0;
    if (!readVarint(p, end, tables) || tables > 16)
        return fail("corrupt string tables");
    out.tables.clear();
    for (uint64_t t = 0; t < tables; ++t) {
        uint64_t strings = 0;
        if (!readVarint(p, end, strings) || strings > 253)
            return fail("corrupt string tables");
        std::vector<std::string> table;
        for (uint64_t s = 0; s < strings; ++s) {
            std::string name;
            if (!readString(p, end, name))
                return fail("corrupt string tables");
            table.push_back(std::move(name));
        }
        out.tables.push_back(std::move(table));
    }
    if (out.tables.empty() || out.tables[0].empty())
        return fail("missing record-tag table");
    out.bodyOffset = static_cast<size_t>(p - base);

    // The trailer, when present and consistent, locates the footer.
    out.finalized = false;
    if (data.size() < out.bodyOffset + kTrailerBytes ||
        std::memcmp(end - 4, kEndMagic, 4) != 0)
        return true; // Unfinalized: scannable prefix only.
    uint64_t footer_offset = 0;
    std::memcpy(&footer_offset, end - kTrailerBytes, 8);
    if (footer_offset < out.bodyOffset ||
        footer_offset >= data.size() - kTrailerBytes ||
        base[footer_offset] != kFooterTag)
        return true; // Trailer bytes are not a consistent finalize.

    const uint8_t *f = base + footer_offset + 1;
    const uint8_t *fend = end - kTrailerBytes;
    uint64_t checkpoints = 0;
    if (!readVarint(f, fend, checkpoints))
        return true;
    std::vector<CheckpointRef> refs;
    for (uint64_t i = 0; i < checkpoints; ++i) {
        CheckpointRef ref;
        if (!readVarint(f, fend, ref.offset) ||
            !readVarint(f, fend, ref.key) ||
            !readVarint(f, fend, ref.recordIndex))
            return true;
        refs.push_back(ref);
    }
    uint64_t total = 0, final_key = 0;
    if (!readVarint(f, fend, total) ||
        !readVarint(f, fend, final_key))
        return true;
    out.footerOffset = static_cast<size_t>(footer_offset);
    out.checkpoints = std::move(refs);
    out.totalRecords = total;
    out.finalKey = final_key;
    out.finalized = true;
    return true;
}

Writer::Writer(std::FILE *out, StreamKind kind,
               std::vector<std::vector<std::string>> tables,
               std::vector<std::pair<std::string, std::string>> meta,
               uint64_t checkpoint_interval)
    : out_(out), kind_(kind), interval_(checkpoint_interval)
{
    panic_if(tables.empty() || tables[0].empty(),
             "bintrace writer needs a record-tag table");
    eventCount_ = tables[0].size();
    panic_if(kind == StreamKind::Lifecycle &&
                 (tables.size() < 2 ||
                  eventCount_ * tables[1].size() >= kCheckpointTag),
             "lifecycle tag space (|events| x |hints|) must fit "
             "below the checkpoint tag");
    tagCounts_.assign(eventCount_, 0);

    std::vector<uint8_t> header;
    header.insert(header.end(), kMagic, kMagic + 4);
    header.push_back(kVersion);
    header.push_back(static_cast<uint8_t>(kind));
    header.push_back(0);
    header.push_back(0);
    uint8_t buf[10];
    size_t n = putVarint(buf, meta.size());
    header.insert(header.end(), buf, buf + n);
    for (const auto &[key, value] : meta) {
        putString(header, key);
        putString(header, value);
    }
    n = putVarint(buf, tables.size());
    header.insert(header.end(), buf, buf + n);
    for (const auto &table : tables) {
        n = putVarint(buf, table.size());
        header.insert(header.end(), buf, buf + n);
        for (const std::string &name : table)
            putString(header, name);
    }
    emit(header.data(), header.size());
}

void
Writer::emit(const uint8_t *buf, size_t len)
{
    std::fwrite(buf, 1, len, out_);
    bytes_ += len;
}

void
Writer::record(const TraceRecord &rec, Tick tick, bool warm)
{
    panic_if(kind_ != StreamKind::Lifecycle,
             "lifecycle record on a non-lifecycle stream");
    uint8_t buf[kMaxRecordBytes];
    const uint8_t event_tag = static_cast<uint8_t>(rec.event);
    // The tag byte jointly encodes (hint, event); hint index 0 is
    // HintClass::None — exactly the records whose JSONL line omits
    // the hint field, so no presence flag is needed.
    buf[0] = static_cast<uint8_t>(
        static_cast<size_t>(rec.hint) * eventCount_ + event_tag);
    uint8_t flags = 0;
    if (rec.addr)
        flags |= kHasAddr;
    if (rec.channel >= 0)
        flags |= kHasChannel;
    if (rec.extra >= 0)
        flags |= kHasExtra;
    if (rec.site != kInvalidRefId)
        flags |= kHasSite;
    if (warm)
        flags |= kIsWarm;
    if (rec.carryover)
        flags |= kIsCarry;
    buf[1] = flags;
    // Modular delta: decoding adds it back mod 2^64, so even a
    // non-monotonic clock round-trips exactly.
    size_t n = 2 + putVarint(buf + 2, tick - key_);
    if (flags & kHasAddr) {
        // Zigzag delta from the previous record's address: region
        // prefetching walks near-sequential blocks, so most deltas
        // fit one byte where a raw address takes five.
        n += putVarint(buf + n, zigzag(rec.addr - addrKey_));
        addrKey_ = rec.addr;
    }
    if (flags & kHasChannel)
        n += putVarint(buf + n, static_cast<uint64_t>(rec.channel));
    if (flags & kHasExtra)
        n += putVarint(buf + n, static_cast<uint64_t>(rec.extra));
    if (flags & kHasSite)
        n += putVarint(buf + n, rec.site);
    emit(buf, n);
    key_ = tick;
    ++records_;
    if (event_tag < tagCounts_.size())
        ++tagCounts_[event_tag];
    if (warm)
        ++warmRecords_;
    ++sinceCheckpoint_;
    maybeCheckpoint();
}

void
Writer::rawRecord(uint8_t tag, const uint8_t *payload, size_t len,
                  uint64_t key_after)
{
    uint8_t head = tag;
    emit(&head, 1);
    emit(payload, len);
    key_ = key_after;
    ++records_;
    if (tag < tagCounts_.size())
        ++tagCounts_[tag];
    ++sinceCheckpoint_;
    maybeCheckpoint();
}

void
Writer::maybeCheckpoint()
{
    if (!interval_ || sinceCheckpoint_ < interval_)
        return;
    sinceCheckpoint_ = 0;
    // Indexed seeks prime the address base to 0 at a checkpoint, so
    // the writer must reset it too (the next record pays one full
    // address, every later one is a delta again).
    addrKey_ = 0;
    checkpoints_.push_back({bytes_, key_, records_});
    std::vector<uint8_t> cp;
    cp.push_back(kCheckpointTag);
    uint8_t buf[10];
    size_t n = putVarint(buf, key_);
    cp.insert(cp.end(), buf, buf + n);
    n = putVarint(buf, records_);
    cp.insert(cp.end(), buf, buf + n);
    n = putVarint(buf, warmRecords_);
    cp.insert(cp.end(), buf, buf + n);
    n = putVarint(buf, tagCounts_.size());
    cp.insert(cp.end(), buf, buf + n);
    for (uint64_t count : tagCounts_) {
        n = putVarint(buf, count);
        cp.insert(cp.end(), buf, buf + n);
    }
    emit(cp.data(), cp.size());
}

void
Writer::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    const uint64_t footer_offset = bytes_;
    std::vector<uint8_t> footer;
    footer.push_back(kFooterTag);
    uint8_t buf[10];
    size_t n = putVarint(buf, checkpoints_.size());
    footer.insert(footer.end(), buf, buf + n);
    for (const CheckpointRef &ref : checkpoints_) {
        n = putVarint(buf, ref.offset);
        footer.insert(footer.end(), buf, buf + n);
        n = putVarint(buf, ref.key);
        footer.insert(footer.end(), buf, buf + n);
        n = putVarint(buf, ref.recordIndex);
        footer.insert(footer.end(), buf, buf + n);
    }
    n = putVarint(buf, records_);
    footer.insert(footer.end(), buf, buf + n);
    n = putVarint(buf, key_);
    footer.insert(footer.end(), buf, buf + n);
    uint8_t trailer[kTrailerBytes];
    std::memcpy(trailer, &footer_offset, 8);
    std::memcpy(trailer + 8, kEndMagic, 4);
    footer.insert(footer.end(), trailer, trailer + kTrailerBytes);
    emit(footer.data(), footer.size());
}

namespace
{

/** Per-stream decode context resolved once from the string tables:
 *  tag -> TraceEvent and hint index -> HintClass, with unknown names
 *  kept as nullopt so newer writers degrade to skipped records. */
struct LifecycleTables
{
    std::vector<std::optional<TraceEvent>> events;
    std::vector<std::optional<HintClass>> hints;
};

LifecycleTables
resolveTables(const Container &container)
{
    LifecycleTables tables;
    for (const std::string &name : container.tables[0])
        tables.events.push_back(parseTraceEvent(name));
    if (container.tables.size() > 1) {
        for (const std::string &name : container.tables[1])
            tables.hints.push_back(parseHintClass(name));
    }
    return tables;
}

enum class DecodeStatus
{
    Ok,        ///< One record decoded into the output line.
    Skipped,   ///< Valid framing, unknown name; error recorded.
    Checkpoint,///< Consumed a checkpoint record.
    Footer,    ///< Reached the footer tag; scanning is done.
    Truncated, ///< Ran out of bytes mid-record.
};

/**
 * Decode one body item at @p p, advancing it. @p key is the delta
 * clock and @p addr_key the address-delta base (both primed when
 * seeking: key from the checkpoint directory, addr_key to 0 — the
 * writer resets its base at every checkpoint). @p index counts
 * records for error messages.
 */
DecodeStatus
decodeOne(const uint8_t *&p, const uint8_t *end,
          const LifecycleTables &tables, uint64_t &key,
          uint64_t &addr_key, uint64_t index, TraceLine &line,
          std::string *error)
{
    const uint8_t tag = *p++;
    if (tag == kFooterTag)
        return DecodeStatus::Footer;
    if (tag == kCheckpointTag) {
        uint64_t cp_key, records, warm, counts;
        if (!readVarint(p, end, cp_key) ||
            !readVarint(p, end, records) ||
            !readVarint(p, end, warm) || !readVarint(p, end, counts))
            return DecodeStatus::Truncated;
        for (uint64_t i = 0; i < counts; ++i) {
            uint64_t count;
            if (!readVarint(p, end, count))
                return DecodeStatus::Truncated;
        }
        addr_key = 0; // Mirrors the writer's checkpoint reset.
        return DecodeStatus::Checkpoint;
    }
    if (p == end)
        return DecodeStatus::Truncated;
    const uint8_t flags = *p++;
    uint64_t dt = 0;
    if (!readVarint(p, end, dt))
        return DecodeStatus::Truncated;
    key += dt;
    line = TraceLine{};
    line.t = key;
    uint64_t value = 0;
    if (flags & kHasAddr) {
        if (!readVarint(p, end, value))
            return DecodeStatus::Truncated;
        addr_key += unzigzag(value);
        line.addr = addr_key;
    }
    // The tag jointly encodes (hint, event) modulo the file's own
    // event-table size, so the split is well-defined even for tables
    // a newer writer grew.
    const size_t event_index = tag % tables.events.size();
    const size_t hint_index = tag / tables.events.size();
    if (flags & kHasChannel) {
        if (!readVarint(p, end, value))
            return DecodeStatus::Truncated;
        line.channel = static_cast<int>(value);
    }
    if (flags & kHasExtra) {
        if (!readVarint(p, end, value))
            return DecodeStatus::Truncated;
        line.extra = static_cast<int64_t>(value);
    }
    if (flags & kHasSite) {
        if (!readVarint(p, end, value))
            return DecodeStatus::Truncated;
        line.site = static_cast<int64_t>(value);
    }
    line.warm = flags & kIsWarm;
    line.carry = flags & kIsCarry;

    if (!tables.events[event_index]) {
        if (error)
            *error = "record " + std::to_string(index + 1) +
                     ": unknown event tag " + std::to_string(tag);
        return DecodeStatus::Skipped;
    }
    line.event = *tables.events[event_index];
    // Hint index 0 is the omitted-field default (HintClass::None).
    if (hint_index) {
        if (hint_index >= tables.hints.size() ||
            !tables.hints[hint_index]) {
            if (error)
                *error = "record " + std::to_string(index + 1) +
                         ": unknown hint index " +
                         std::to_string(hint_index);
            return DecodeStatus::Skipped;
        }
        line.hint = *tables.hints[hint_index];
    }
    return DecodeStatus::Ok;
}

constexpr const char *kTruncatedMessage =
    "truncated or unfinalized .grpbin trace: the finalize footer is "
    "missing (the run was killed mid-trace, or this is a stale .tmp "
    "file); records up to the damage were scanned";

} // namespace

TraceParseResult
readLifecycle(std::string_view data)
{
    TraceParseResult result;
    result.binary = true;
    Container container;
    std::string error;
    if (!parseContainer(data, container, &error)) {
        result.errors.push_back(error);
        return result;
    }
    if (container.kind != StreamKind::Lifecycle) {
        result.errors.push_back(
            "not a lifecycle trace (this .grpbin holds an access "
            "capture stream; replay it with grpsim --replay)");
        return result;
    }
    const LifecycleTables tables = resolveTables(container);
    const uint8_t *base =
        reinterpret_cast<const uint8_t *>(data.data());
    const uint8_t *p = base + container.bodyOffset;
    const uint8_t *end =
        base + (container.finalized
                    ? container.footerOffset
                    : data.size());
    uint64_t key = 0;
    uint64_t addr_key = 0;
    uint64_t index = 0;
    bool saw_footer = false;
    while (p < end) {
        TraceLine line;
        const DecodeStatus status = decodeOne(
            p, end, tables, key, addr_key, index, line, &error);
        if (status == DecodeStatus::Truncated) {
            result.truncated = true;
            break;
        }
        if (status == DecodeStatus::Footer) {
            saw_footer = true;
            break;
        }
        if (status == DecodeStatus::Checkpoint)
            continue;
        ++index;
        if (status == DecodeStatus::Skipped) {
            result.errors.push_back(error);
            continue;
        }
        result.lines.push_back(line);
    }
    if (!container.finalized && !saw_footer) {
        result.truncated = true;
        result.errors.push_back(kTruncatedMessage);
    }
    return result;
}

bintrace::QueryResult
query(std::string_view data, const QueryFilter &filter, bool use_index)
{
    QueryResult result;
    Container container;
    std::string error;
    if (!parseContainer(data, container, &error)) {
        result.errors.push_back(error);
        return result;
    }
    if (container.kind != StreamKind::Lifecycle) {
        result.errors.push_back("not a lifecycle trace");
        return result;
    }
    const LifecycleTables tables = resolveTables(container);
    const uint8_t *base =
        reinterpret_cast<const uint8_t *>(data.data());
    const uint8_t *p = base + container.bodyOffset;
    const uint8_t *end =
        base + (container.finalized ? container.footerOffset
                                    : data.size());
    uint64_t key = 0;
    uint64_t addr_key = 0;
    uint64_t index = 0;

    // Indexed seek: resume at the last checkpoint whose key (the
    // preceding record's tick) is below the window start. Trace ticks
    // are non-decreasing, so nothing before it can match.
    if (use_index && container.finalized && filter.fromTick) {
        const CheckpointRef *best = nullptr;
        for (const CheckpointRef &ref : container.checkpoints) {
            if (ref.key < *filter.fromTick)
                best = &ref;
            else
                break;
        }
        if (best) {
            // Skip the checkpoint record itself (it re-states what
            // the directory entry already told us).
            p = base + best->offset;
            key = best->key;
            index = best->recordIndex;
            result.seeked = true;
        }
    }

    while (p < end) {
        TraceLine line;
        const DecodeStatus status = decodeOne(
            p, end, tables, key, addr_key, index, line, &error);
        if (status == DecodeStatus::Truncated) {
            result.truncated = true;
            result.errors.push_back(kTruncatedMessage);
            break;
        }
        if (status == DecodeStatus::Footer)
            break;
        if (status == DecodeStatus::Checkpoint)
            continue;
        ++index;
        ++result.recordsScanned;
        if (status == DecodeStatus::Skipped) {
            result.errors.push_back(error);
            continue;
        }
        if (filter.toTick && line.t > *filter.toTick)
            break; // Ticks are non-decreasing: done.
        if (filter.fromTick && line.t < *filter.fromTick)
            continue;
        if (filter.site && line.site != *filter.site)
            continue;
        if (filter.event && line.event != *filter.event)
            continue;
        result.lines.push_back(line);
    }
    if (!container.finalized && !result.truncated) {
        result.truncated = true;
        result.errors.push_back(kTruncatedMessage);
    }
    return result;
}

} // namespace bintrace
} // namespace obs
} // namespace grp
