#include "obs/shadow_tags.hh"

#include "sim/logging.hh"

namespace grp
{
namespace obs
{

ShadowTags::ShadowTags(unsigned sets, unsigned assoc)
    : numSets_(sets), assoc_(assoc)
{
    fatal_if(numSets_ == 0 || !isPowerOfTwo(numSets_) || assoc_ == 0,
             "shadow-tag geometry must match a real cache");
    lines_.resize(static_cast<size_t>(numSets_) * assoc_);
}

unsigned
ShadowTags::setIndex(Addr block_addr) const
{
    return static_cast<unsigned>(blockNumber(block_addr) &
                                 (numSets_ - 1));
}

Addr
ShadowTags::tagOf(Addr block_addr) const
{
    return blockNumber(block_addr) / numSets_;
}

const ShadowTags::Line *
ShadowTags::findLine(Addr block_addr) const
{
    const Addr tag = tagOf(block_addr);
    const Line *set =
        &lines_[static_cast<size_t>(setIndex(block_addr)) * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (set[way].valid && set[way].tag == tag)
            return &set[way];
    }
    return nullptr;
}

bool
ShadowTags::access(Addr block_addr)
{
    if (const Line *line = findLine(block_addr)) {
        const_cast<Line *>(line)->lruStamp = nextStamp_++;
        return true;
    }
    allocate(block_addr);
    return false;
}

void
ShadowTags::allocate(Addr block_addr)
{
    if (const Line *line = findLine(block_addr)) {
        const_cast<Line *>(line)->lruStamp = nextStamp_++;
        return;
    }
    Line *set =
        &lines_[static_cast<size_t>(setIndex(block_addr)) * assoc_];
    Line *victim = nullptr;
    for (unsigned way = 0; way < assoc_; ++way) {
        Line &line = set[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tagOf(block_addr);
    victim->lruStamp = nextStamp_++;
}

bool
ShadowTags::contains(Addr block_addr) const
{
    return findLine(block_addr) != nullptr;
}

void
ShadowTags::reset()
{
    for (Line &line : lines_)
        line = Line{};
    nextStamp_ = 1;
}

VictimTable::VictimTable(size_t capacity) : capacity_(capacity)
{
    fatal_if(capacity_ == 0, "victim table needs a non-zero capacity");
}

void
VictimTable::record(Addr victim_block, RefId ref, HintClass hint)
{
    Stored &stored = map_[victim_block];
    stored.entry = Entry{ref, hint};
    stored.seq = ++seq_;
    fifo_.emplace_back(victim_block, stored.seq);
    ++recorded_;
    enforceCapacity();
}

std::optional<VictimTable::Entry>
VictimTable::take(Addr victim_block)
{
    auto it = map_.find(victim_block);
    if (it == map_.end())
        return std::nullopt;
    const Entry entry = it->second.entry;
    // The stale FIFO node is skipped lazily by enforceCapacity().
    map_.erase(it);
    return entry;
}

void
VictimTable::enforceCapacity()
{
    // Re-records leave stale FIFO nodes behind; bound the queue at
    // twice the live capacity so lazy skipping stays O(1) amortised.
    while (map_.size() > capacity_ || fifo_.size() > 2 * capacity_) {
        const auto [addr, seq] = fifo_.front();
        fifo_.pop_front();
        auto it = map_.find(addr);
        if (it != map_.end() && it->second.seq == seq) {
            map_.erase(it);
            ++drops_;
        }
    }
}

void
VictimTable::reset()
{
    map_.clear();
    fifo_.clear();
    seq_ = 0;
    drops_ = 0;
    recorded_ = 0;
}

} // namespace obs
} // namespace grp
