/**
 * @file
 * Prefetch lifecycle tracing.
 *
 * A per-thread, low-overhead event sink that records each
 * prefetch's full arc as one JSON object per line (JSONL):
 * the hint class that triggered it, queue enqueue / drop, memory
 * channel issue vs. demand-priority stall, fill, and finally
 * first-use or evicted-unused. Per-hint-class accuracy and
 * prefetch-to-use distance distributions (the paper's Table 5
 * attribution claims) can be recomputed from a level-2 trace.
 *
 * Overhead control is two-layered:
 *  - Runtime: every emission site is guarded by a branch on the
 *    tracer's level; with tracing off (level 0, the default) the
 *    cost is one predictable compare per site.
 *  - Compile time: sites are emitted through the GRP_TRACE(level,
 *    ...) macro, which `if constexpr`-eliminates any site above
 *    GRP_TRACE_MAX_LEVEL. Building with -DGRP_TRACE_MAX_LEVEL=0
 *    compiles tracing out entirely.
 *
 * Event levels:
 *  1 — lifecycle: issue, fill, firstUse, evictedUnused
 *  2 — queue: hintTrigger, enqueue, drop, filtered; pollution
 *      attribution: evictVictim, pollutionMiss (shadow tags);
 *      adaptive controller knob moves: ctrlTransition
 *  3 — per-cycle: demand-priority / MSHR-reservation stalls
 */

#ifndef GRP_OBS_TRACE_HH
#define GRP_OBS_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace grp
{

class EventQueue;

namespace obs
{

namespace bintrace
{
class Writer;
}

/** On-disk encoding of a lifecycle trace. */
enum class TraceFormat : uint8_t
{
    Auto,   ///< By extension: ".grpbin" is binary, anything else JSONL.
    Jsonl,  ///< One JSON object per line (human-greppable).
    Binary, ///< .grpbin flight-recorder container (obs/bintrace).
};

/** Resolve Auto against @p path (see TraceFormat::Auto). */
TraceFormat resolveTraceFormat(const std::string &path,
                               TraceFormat requested);

/** The lifecycle .grpbin string tables: table 0 maps tag bytes to
 *  event names, table 1 maps hint indices to class names. */
std::vector<std::vector<std::string>> lifecycleTables();

/** Which prefetch source / hint class produced a candidate. */
enum class HintClass : uint8_t
{
    None = 0,  ///< No attribution (unhinted or unknown).
    Spatial,   ///< Spatial region (SRP region or `spatial` hint).
    Pointer,   ///< One-level pointer target.
    Recursive, ///< Recursive pointer chase target.
    Indirect,  ///< Indirect prefetch instruction target.
    Stride,    ///< Stride stream-buffer prefetch.
};

const char *toString(HintClass hint);

/** Lifecycle event types (see file comment for levels). */
enum class TraceEvent : uint8_t
{
    HintTrigger,   ///< An L2 miss reached an engine with its hints.
    Enqueue,       ///< A candidate window entered the prefetch queue.
    Drop,          ///< Queue overflow dropped a window's candidates.
    Issue,         ///< A prefetch request started on a DRAM channel.
    Stall,         ///< The prioritizer refused prefetches this cycle.
    Filtered,      ///< A candidate was already present / in flight.
    Fill,          ///< A prefetch fill completed into the L2.
    FirstUse,      ///< A demand first touched a prefetched block.
    EvictedUnused, ///< A prefetched block was evicted untouched.
    EvictVictim,   ///< A prefetch fill evicted a live L2 block; the
                   ///< record carries the victim address and the
                   ///< responsible prefetch's hint/site (shadow-tag
                   ///< pollution attribution, level 2).
    PollutionMiss, ///< A demand miss the shadow tags classify as
                   ///< prefetch-caused; hint/site name the charged
                   ///< prefetch when the victim table attributed it.
    CtrlTransition, ///< The adaptive controller moved a knob for a
                    ///< hint class (level 2). The record reuses the
                    ///< channel field for the knob id (0 region
                    ///< size, 1 insert position, 2 queue priority,
                    ///< 3 pointer depth) and extra for the new
                    ///< ladder level (0..2).
};

const char *toString(TraceEvent event);

/** Trace level of each event type. */
int traceLevelOf(TraceEvent event);

/** One trace emission. Fields with default values are omitted from
 *  the output line. */
struct TraceRecord
{
    TraceRecord(TraceEvent event_, Addr addr_ = 0,
                HintClass hint_ = HintClass::None, int channel_ = -1,
                int64_t extra_ = -1, bool carryover_ = false,
                RefId site_ = kInvalidRefId)
        : event(event_), addr(addr_), hint(hint_), channel(channel_),
          extra(extra_), carryover(carryover_), site(site_)
    {}

    TraceEvent event;
    Addr addr;
    HintClass hint;
    int channel;
    /** Event-specific payload: candidate count for Enqueue/Drop,
     *  pointer depth for Issue, fill-to-use cycles for FirstUse. */
    int64_t extra;
    /** The record is attributed to the warmup era (fills whose
     *  request predates the measurement boundary, and first-uses of
     *  such fills). */
    bool carryover;
    /** Static reference ("PC") the event is attributed to; omitted
     *  from the line when invalid (hardware-discovered targets). */
    RefId site;
};

/**
 * Render one record as the canonical JSONL trace line (including the
 * trailing newline). The Tracer's JSONL sink and the .grpbin-to-JSONL
 * converter both use this, so a converted binary trace is
 * byte-identical to a natively emitted one.
 *
 * @return Bytes written into @p buf (capacity @p cap).
 */
size_t formatTraceLine(char *buf, size_t cap, Tick tick,
                       const TraceRecord &rec, bool warm);

/** The per-thread trace sink (JSONL or .grpbin binary). */
class Tracer
{
  public:
    /**
     * The calling thread's tracer. Per-thread rather than
     * process-wide so concurrent sweep jobs (one job per pool
     * thread) trace independently; each run opens, flips and closes
     * its own sink via ScopedTrace.
     */
    static Tracer &instance();

    Tracer() = default;
    ~Tracer();
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Start writing to @p path; enables emission once a level > 0 is
     * set. Returns false when the file cannot be opened. The stream
     * gets a large (256 KB) output buffer so records pay one memcpy,
     * not one syscall, each.
     *
     * Crash safety: the trace is written to "<path>.tmp" and
     * published with one rename when close() finalizes it, like
     * every JSON artefact (obs/atomic_file) — readers never see a
     * partial file at @p path, and a crashed run leaves only the
     * .tmp behind. The sentinel path "-" streams to stdout instead
     * (no rename; binary streams still carry their footer, so a
     * piped consumer sees a finalized container).
     */
    bool open(const std::string &path,
              TraceFormat format = TraceFormat::Auto);

    /** Flush, finalize (binary footer), close and publish the sink;
     *  tracing reverts to disabled. Also runs on destruction, so
     *  buffered records are never lost. */
    void close();

    /** The resolved format of the open sink. */
    TraceFormat format() const { return format_; }

    /** Records between binary checkpoints for subsequently opened
     *  sinks (0 disables checkpoints; default 8192). */
    void setCheckpointInterval(uint64_t records)
    {
        checkpointInterval_ = records;
    }

    void setLevel(int level) { level_ = level; }
    int level() const { return level_; }

    /** Cycle source for timestamps (cleared with nullptr). */
    void setClock(const EventQueue *events) { clock_ = events; }

    /** Mark records as warmup-era until flipped (the harness flips
     *  this at the measurement boundary). */
    void setWarmup(bool warmup) { warmup_ = warmup; }
    bool warmup() const { return warmup_; }

    /** Cheap per-site guard: a sink is open and @p lvl is enabled. */
    bool
    enabled(int lvl) const
    {
        return out_ != nullptr && lvl <= level_;
    }

    /** Emit one record (caller must have checked enabled()). */
    void record(const TraceRecord &rec);

    uint64_t recordsWritten() const { return records_; }

  private:
    /** stdio stream buffer size; large enough that --trace runs do
     *  a filesystem write every few thousand records, not every
     *  record. */
    static constexpr size_t kStreamBufBytes = 256 * 1024;

    std::FILE *out_ = nullptr;
    /** Backing storage handed to setvbuf(); must outlive out_. */
    std::unique_ptr<char[]> iobuf_;
    /** Binary encoder when format_ == Binary (owns no stream). */
    std::unique_ptr<bintrace::Writer> bin_;
    TraceFormat format_ = TraceFormat::Jsonl;
    /** Writing to stdout ("-"): flush instead of close + publish. */
    bool toStdout_ = false;
    /** Publication target; the open stream writes publishPath_+".tmp". */
    std::string publishPath_;
    uint64_t checkpointInterval_ = 8192;
    int level_ = 0;
    const EventQueue *clock_ = nullptr;
    bool warmup_ = false;
    uint64_t records_ = 0;
};

} // namespace obs
} // namespace grp

/** Highest trace level compiled into the binary; 0 removes every
 *  emission site. */
#ifndef GRP_TRACE_MAX_LEVEL
#define GRP_TRACE_MAX_LEVEL 3
#endif

/** Emit a TraceRecord at @p lvl; compiled out above
 *  GRP_TRACE_MAX_LEVEL, a single branch when tracing is off. */
#define GRP_TRACE(lvl, ...)                                           \
    do {                                                              \
        if constexpr ((lvl) <= GRP_TRACE_MAX_LEVEL) {                 \
            ::grp::obs::Tracer &tracer_ =                             \
                ::grp::obs::Tracer::instance();                       \
            if (tracer_.enabled(lvl))                                 \
                tracer_.record(::grp::obs::TraceRecord(__VA_ARGS__)); \
        }                                                             \
    } while (0)

#endif // GRP_OBS_TRACE_HH
