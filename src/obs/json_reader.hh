/**
 * @file
 * A minimal recursive-descent JSON parser.
 *
 * Exists so the test suite (and any downstream tooling) can validate
 * and inspect the JSON artefacts the observability layer emits —
 * stats exports, time-series dumps and trace records — without an
 * external dependency. Supports the full JSON grammar the writer
 * produces: objects, arrays, strings (with the writer's escapes),
 * numbers, booleans and null.
 */

#ifndef GRP_OBS_JSON_READER_HH
#define GRP_OBS_JSON_READER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace grp
{
namespace obs
{

/** One parsed JSON value (a small DOM node). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }

    double asNumber() const { return number_; }
    bool asBool() const { return bool_; }
    const std::string &asString() const { return string_; }
    const std::vector<JsonValue> &asArray() const { return array_; }
    const std::map<std::string, JsonValue> &asObject() const
    {
        return object_;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** Member lookup through nested objects ("a.b.c"). */
    const JsonValue *findPath(const std::string &dotted) const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    double number_ = 0.0;
    bool bool_ = false;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/**
 * Parse @p text as one JSON document.
 *
 * @param[out] error Filled with a message on failure.
 * @return The parsed value, or std::nullopt on malformed input
 *         (including trailing garbage).
 */
std::unique_ptr<JsonValue> parseJson(const std::string &text,
                                     std::string *error = nullptr);

} // namespace obs
} // namespace grp

#endif // GRP_OBS_JSON_READER_HH
