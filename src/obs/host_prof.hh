/**
 * @file
 * Host-side self-profiling: where does the simulator's own wall
 * time go?
 *
 * The ROADMAP's 10-100x inst/s goal needs an attribution substrate
 * before any tuning: this profiler carves one simulation run into a
 * static tree of phases (setup, the main cycle loop, interpreter
 * dispatch, cache probes, MSHR bookkeeping, DRAM service, prefetch
 * engine work, stats/trace overhead, export) and accumulates
 * total/self host time and call counts per phase, per thread. A
 * malloc/free counter pair plus a peak-RSS probe make allocation
 * churn in the hot loop visible next to the time it costs.
 *
 * Overhead control is two-layered, exactly like the tracer:
 *  - Runtime: every GRP_HOST_SCOPE site costs one thread-local load
 *    and one predictable compare while profiling is off (level 0,
 *    the default).
 *  - Compile time: sites above GRP_HOST_PROF_MAX_LEVEL are template
 *    no-ops the optimiser deletes; building with
 *    -DGRP_HOST_PROF_MAX_LEVEL=0 removes every site and the
 *    allocation hooks, producing a binary with zero profiling
 *    residue.
 *
 * Phase levels:
 *  1 — run lifecycle: Run, Setup, SimLoop, Adaptive, Timeseries,
 *      Finish, StatsExport. Per-run granularity; cheap enough to
 *      leave enabled for whole bench sweeps (the timing sidecars).
 *  2 — hot loop: Events, CpuTick, Interp, MemTick, MemAccess,
 *      L2Access, Mshr, EngineNotify, DramServe, PrefetchIssue,
 *      TraceEmit, SiteProfile. Per-cycle / per-access scopes; only
 *      for attribution runs (grpsim --host-prof), where the profiler
 *      itself becomes a visible phase cost.
 *
 * Timing uses the CPU's raw cycle counter (rdtsc / cntvct_el0) and
 * calibrates ticks to nanoseconds against steady_clock over the
 * process lifetime, so a scope costs two register reads, not two
 * clock_gettime calls. Self time is exact by construction: each
 * scope subtracts its children's elapsed ticks, so the self times of
 * all phases partition the root's total.
 *
 * Accumulation is thread-local (like Tracer and SiteProfiler), so
 * concurrent sweep jobs profile independently and need no locks;
 * the sweep executor snapshots the worker's profiler around each job
 * and stores the delta in the job's outcome.
 */

#ifndef GRP_OBS_HOST_PROF_HH
#define GRP_OBS_HOST_PROF_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

/** Highest host-profiling level compiled into the binary; 0 removes
 *  every scope site and the allocation hooks. */
#ifndef GRP_HOST_PROF_MAX_LEVEL
#define GRP_HOST_PROF_MAX_LEVEL 2
#endif

namespace grp
{
namespace obs
{

/** Phases host time is attributed to (a static tree; parents are
 *  display metadata — actual nesting follows the runtime scope
 *  stack). */
enum class HostPhase : uint8_t
{
    Run = 0,       ///< One whole runWorkload() call (the root).
    Setup,         ///< Workload build, compiler pipeline, wiring.
    SimLoop,       ///< The main cycle loop.
    Events,        ///< EventQueue::advanceTo (DRAM fill callbacks).
    CpuTick,       ///< Cpu::tick — retire + issue.
    Interp,        ///< Interpreter dispatch (next op).
    MemTick,       ///< MemorySystem::tick — channel arbitration.
    MemAccess,     ///< L1/L2 demand path (load/store).
    L2Access,      ///< L2 probe + miss classification on L1 miss.
    Mshr,          ///< MSHR find/allocate/target/deallocate.
    EngineNotify,  ///< Engine observes a demand access/miss/fill.
    DramServe,     ///< DRAM bank/row timing for one request.
    PrefetchIssue, ///< Prefetch arbitration incl. engine dequeue.
    EngineDequeue, ///< Engine dequeues/filters one candidate.
    TraceEmit,     ///< Tracer::record formatting + buffering.
    SiteProfile,   ///< SiteProfiler table updates.
    Adaptive,      ///< Adaptive controller epoch.
    Timeseries,    ///< Time-series sampling.
    Finish,        ///< Result assembly + invariant checks.
    StatsExport,   ///< Registry/trace/profile exports + reports.
    NumPhases
};

constexpr size_t kNumHostPhases =
    static_cast<size_t>(HostPhase::NumPhases);

const char *toString(HostPhase phase);

/** Profiling level of each phase (see file comment). */
int hostProfLevelOf(HostPhase phase);

/** Nominal parent for display trees (Run for top-level phases;
 *  Run maps to itself). */
HostPhase hostPhaseParent(HostPhase phase);

/** Accumulated host time for one phase. */
struct HostPhaseTotals
{
    uint64_t totalNanos = 0; ///< Wall time inside the phase.
    uint64_t selfNanos = 0;  ///< totalNanos minus child phases.
    uint64_t calls = 0;      ///< Scope entries.
};

/** A plain-data snapshot of one thread's profiler. Snapshots
 *  subtract (delta()) so callers can attribute a window — one sweep
 *  job, one run — out of a long-lived thread profiler. */
struct HostProfile
{
    std::array<HostPhaseTotals, kNumHostPhases> phases{};
    uint64_t allocCount = 0; ///< operator new calls.
    uint64_t allocBytes = 0; ///< Bytes requested from operator new.
    uint64_t freeCount = 0;  ///< operator delete calls.
    uint64_t peakRssKb = 0;  ///< Process peak RSS (not windowed).
    int level = 0;           ///< Runtime level during the window.

    const HostPhaseTotals &
    phase(HostPhase p) const
    {
        return phases[static_cast<size_t>(p)];
    }

    bool enabled() const { return level > 0; }

    /** Sum of every phase's selfNanos; equals the root phases'
     *  total elapsed time by construction. */
    uint64_t selfSumNanos() const;

    /** Counters in *this minus @p since (peak RSS and level are
     *  taken from *this — they are not windowed quantities). */
    HostProfile delta(const HostProfile &since) const;

    /** One JSON object: {"level", "phases": {name: {totalNanos,
     *  selfNanos, calls}}, "allocCount", ...}. Phases with zero
     *  calls are omitted. */
    void writeJson(std::ostream &os) const;
};

/**
 * Process-wide high-water mark of every thread's profiling level: a
 * scope site first compares its level against this plain shared load
 * and only touches the thread-local profiler (a function call plus a
 * TLS access) when some thread could want it. The mark only rises —
 * lowering a thread's level keeps sites at the slower exact check —
 * so the fast path can use a relaxed load with no downward races.
 * With profiling off (the perf-gate default is level 1) this is what
 * makes the per-op/per-cycle level-2 sites nearly free.
 */
extern std::atomic<int> hostProfCeiling;

/** The per-thread host profiler. */
class HostProfiler
{
  public:
    /** The calling thread's profiler. Seeded with the GRP_HOST_PROF
     *  environment level, so bench sweeps profile without flag
     *  plumbing. */
    static HostProfiler &instance();

    HostProfiler();
    HostProfiler(const HostProfiler &) = delete;
    HostProfiler &operator=(const HostProfiler &) = delete;

    int level() const { return level_; }

    /** Clamped to 0 when sites are compiled away, so callers that
     *  gate work on level() never see a level no site can honour. */
    void
    setLevel(int level)
    {
        level_ = GRP_HOST_PROF_MAX_LEVEL > 0 ? level : 0;
        // Raise (never lower) the process-wide ceiling so scope
        // sites on every thread notice the new level.
        int ceiling = hostProfCeiling.load(std::memory_order_relaxed);
        while (ceiling < level_ &&
               !hostProfCeiling.compare_exchange_weak(
                   ceiling, level_, std::memory_order_relaxed)) {
        }
    }

    /** Parse GRP_HOST_PROF once per process (0 when unset). */
    static int envLevel();

    /** Current totals, including the elapsed-so-far contribution of
     *  scopes still open on this thread (so a snapshot taken inside
     *  the run still partitions: self times sum to root total). */
    HostProfile snapshot() const;

    /** Zero every accumulator (open scopes keep their start times:
     *  their full elapsed will be re-accounted at exit, so reset
     *  only between runs, not inside one). */
    void reset();

    /** @name Scope-internal interface (used by HostScope). */
    ///@{
    struct PhaseAccum
    {
        uint64_t ticks = 0;
        uint64_t selfTicks = 0;
        uint64_t calls = 0;
    };

    struct OpenScope
    {
        OpenScope *parent;
        uint64_t startTicks;
        uint64_t childTicks;
        HostPhase phase;
    };

    OpenScope *currentScope() const { return current_; }
    void setCurrentScope(OpenScope *scope) { current_ = scope; }

    void
    close(const OpenScope &scope, uint64_t end_ticks)
    {
        const uint64_t elapsed = end_ticks - scope.startTicks;
        PhaseAccum &acc = accum_[static_cast<size_t>(scope.phase)];
        acc.ticks += elapsed;
        acc.selfTicks += elapsed - scope.childTicks;
        ++acc.calls;
        if (scope.parent)
            scope.parent->childTicks += elapsed;
        current_ = scope.parent;
    }
    ///@}

  private:
    std::array<PhaseAccum, kNumHostPhases> accum_{};
    OpenScope *current_ = nullptr;
    int level_ = 0;
};

/** Raw host tick counter (rdtsc / cntvct_el0 / steady_clock). */
uint64_t hostTicksNow();

/** Convert a host-tick delta to nanoseconds using the process-wide
 *  calibration (tick source vs steady_clock). */
uint64_t hostTicksToNanos(uint64_t ticks);

/** Thread-local allocation counters maintained by the global
 *  operator new/delete replacements in host_prof.cc (zero, and the
 *  hooks absent, when GRP_HOST_PROF_MAX_LEVEL is 0). */
struct HostAllocCounters
{
    uint64_t allocCount = 0;
    uint64_t allocBytes = 0;
    uint64_t freeCount = 0;
};

HostAllocCounters hostAllocCounters();

/** Process peak RSS in KB (getrusage), 0 when unavailable. */
uint64_t hostPeakRssKb();

/** RAII phase scope. The Enabled=false specialisation is an empty
 *  object the optimiser deletes — the compile-away arm of
 *  GRP_HOST_SCOPE. */
template <bool Enabled>
class HostScope
{
  public:
    HostScope(HostPhase, int) {}
    void stop() {}
    HostScope(const HostScope &) = delete;
    HostScope &operator=(const HostScope &) = delete;
};

template <>
class HostScope<true>
{
  public:
    HostScope(HostPhase phase, int lvl)
    {
        if (lvl > hostProfCeiling.load(std::memory_order_relaxed))
            return;
        HostProfiler &prof = HostProfiler::instance();
        if (lvl > prof.level())
            return;
        prof_ = &prof;
        scope_.parent = prof.currentScope();
        scope_.startTicks = hostTicksNow();
        scope_.childTicks = 0;
        scope_.phase = phase;
        prof.setCurrentScope(&scope_);
    }

    ~HostScope() { stop(); }

    /** Close the scope before the enclosing block ends (phases that
     *  follow each other in one function body). */
    void
    stop()
    {
        if (prof_) {
            prof_->close(scope_, hostTicksNow());
            prof_ = nullptr;
        }
    }

    HostScope(const HostScope &) = delete;
    HostScope &operator=(const HostScope &) = delete;

  private:
    HostProfiler *prof_ = nullptr;
    HostProfiler::OpenScope scope_{};
};

} // namespace obs
} // namespace grp

#define GRP_HOST_SCOPE_CAT2(a, b) a##b
#define GRP_HOST_SCOPE_CAT(a, b) GRP_HOST_SCOPE_CAT2(a, b)

/** Attribute the enclosing block to @p phase at profiling level
 *  @p lvl; compiled out above GRP_HOST_PROF_MAX_LEVEL, a single
 *  branch when profiling is off. */
#define GRP_HOST_SCOPE(lvl, phase)                                    \
    ::grp::obs::HostScope<((lvl) <= GRP_HOST_PROF_MAX_LEVEL)>         \
        GRP_HOST_SCOPE_CAT(grp_host_scope_, __COUNTER__)(             \
            ::grp::obs::HostPhase::phase, (lvl))

/** Like GRP_HOST_SCOPE, but names the scope object so the caller can
 *  stop() it before the block ends (sequential phases in one
 *  function body). */
#define GRP_HOST_SCOPE_NAMED(name, lvl, phase)                        \
    ::grp::obs::HostScope<((lvl) <= GRP_HOST_PROF_MAX_LEVEL)> name(   \
        ::grp::obs::HostPhase::phase, (lvl))

#endif // GRP_OBS_HOST_PROF_HH
