#include "obs/host_prof.hh"

#include <chrono>
#include <cstdlib>
#include <new>

#include "obs/json_writer.hh"
#include "sim/env.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace grp
{
namespace obs
{

const char *
toString(HostPhase phase)
{
    switch (phase) {
      case HostPhase::Run:           return "run";
      case HostPhase::Setup:         return "setup";
      case HostPhase::SimLoop:       return "simLoop";
      case HostPhase::Events:        return "events";
      case HostPhase::CpuTick:       return "cpuTick";
      case HostPhase::Interp:        return "interp";
      case HostPhase::MemTick:       return "memTick";
      case HostPhase::MemAccess:     return "memAccess";
      case HostPhase::L2Access:      return "l2Access";
      case HostPhase::Mshr:          return "mshr";
      case HostPhase::EngineNotify:  return "engineNotify";
      case HostPhase::DramServe:     return "dramServe";
      case HostPhase::PrefetchIssue: return "prefetchIssue";
      case HostPhase::EngineDequeue: return "engineDequeue";
      case HostPhase::TraceEmit:     return "traceEmit";
      case HostPhase::SiteProfile:   return "siteProfile";
      case HostPhase::Adaptive:      return "adaptive";
      case HostPhase::Timeseries:    return "timeseries";
      case HostPhase::Finish:        return "finish";
      case HostPhase::StatsExport:   return "statsExport";
      case HostPhase::NumPhases:     break;
    }
    return "?";
}

int
hostProfLevelOf(HostPhase phase)
{
    switch (phase) {
      case HostPhase::Run:
      case HostPhase::Setup:
      case HostPhase::SimLoop:
      case HostPhase::Adaptive:
      case HostPhase::Timeseries:
      case HostPhase::Finish:
      case HostPhase::StatsExport:
        return 1;
      case HostPhase::Events:
      case HostPhase::CpuTick:
      case HostPhase::Interp:
      case HostPhase::MemTick:
      case HostPhase::MemAccess:
      case HostPhase::L2Access:
      case HostPhase::Mshr:
      case HostPhase::EngineNotify:
      case HostPhase::DramServe:
      case HostPhase::PrefetchIssue:
      case HostPhase::EngineDequeue:
      case HostPhase::TraceEmit:
      case HostPhase::SiteProfile:
        return 2;
      case HostPhase::NumPhases:
        break;
    }
    return 2;
}

HostPhase
hostPhaseParent(HostPhase phase)
{
    switch (phase) {
      case HostPhase::Run:
        return HostPhase::Run;
      case HostPhase::Setup:
      case HostPhase::SimLoop:
      case HostPhase::Finish:
      case HostPhase::StatsExport:
        return HostPhase::Run;
      case HostPhase::Events:
      case HostPhase::CpuTick:
      case HostPhase::MemTick:
      case HostPhase::Adaptive:
      case HostPhase::Timeseries:
        return HostPhase::SimLoop;
      case HostPhase::Interp:
      case HostPhase::MemAccess:
        return HostPhase::CpuTick;
      case HostPhase::L2Access:
        return HostPhase::MemAccess;
      case HostPhase::Mshr:
      case HostPhase::EngineNotify:
        return HostPhase::L2Access;
      case HostPhase::DramServe:
      case HostPhase::PrefetchIssue:
        return HostPhase::MemTick;
      case HostPhase::EngineDequeue:
        return HostPhase::PrefetchIssue;
      case HostPhase::TraceEmit:
      case HostPhase::SiteProfile:
        return HostPhase::SimLoop;
      case HostPhase::NumPhases:
        break;
    }
    return HostPhase::Run;
}

// ---------------------------------------------------------------------
// Tick source + calibration.
//
// Scopes read the CPU's raw cycle counter (two register reads per
// scope); nanoseconds only matter at snapshot time, when the tick
// delta is converted through a process-wide ratio calibrated once
// against steady_clock (the first conversion widens a too-small
// window by spinning briefly — sub-millisecond, once). The ratio is
// then fixed for the process lifetime: every conversion must use the
// SAME ratio, or equal tick counts (a leaf phase's total vs. self)
// convert to different nano values and snapshot deltas drift.

namespace
{

#if defined(__x86_64__) || defined(__i386__)
constexpr bool kTicksAreNanos = false;

inline uint64_t
rawTicks()
{
    return __builtin_ia32_rdtsc();
}
#elif defined(__aarch64__)
constexpr bool kTicksAreNanos = false;

inline uint64_t
rawTicks()
{
    uint64_t value;
    asm volatile("mrs %0, cntvct_el0" : "=r"(value));
    return value;
}
#else
constexpr bool kTicksAreNanos = true;

inline uint64_t
rawTicks()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}
#endif

struct CalibBase
{
    uint64_t ticks;
    std::chrono::steady_clock::time_point when;
};

const CalibBase &
calibBase()
{
    static const CalibBase base{rawTicks(),
                                std::chrono::steady_clock::now()};
    return base;
}

double
nanosPerTick()
{
    if (kTicksAreNanos)
        return 1.0;
    static const double ratio = [] {
        const CalibBase &base = calibBase();
        // Require a 1 ms window before trusting the ratio; processes
        // snapshotting earlier (unit tests) pay one short spin.
        for (;;) {
            const auto now = std::chrono::steady_clock::now();
            const auto window =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - base.when)
                    .count();
            const uint64_t tick_window = rawTicks() - base.ticks;
            if (window >= 1'000'000 && tick_window > 0) {
                return static_cast<double>(window) /
                       static_cast<double>(tick_window);
            }
        }
    }();
    return ratio;
}

uint64_t
saturatingSub(uint64_t a, uint64_t b)
{
    return a > b ? a - b : 0;
}

} // namespace

uint64_t
hostTicksNow()
{
    return rawTicks();
}

uint64_t
hostTicksToNanos(uint64_t ticks)
{
    if (kTicksAreNanos)
        return ticks;
    return static_cast<uint64_t>(static_cast<double>(ticks) *
                                 nanosPerTick());
}

// ---------------------------------------------------------------------
// Allocation accounting.
//
// Process-wide operator new/delete replacements live in this
// translation unit (which every profiler consumer already links), so
// a binary that profiles also counts. The counters are thread-local
// zero-initialised PODs — safe to touch from the very first
// allocation, before any constructor runs — and the hooks forward
// straight to malloc/free, which keeps them transparent to ASan/TSan
// (the sanitizers intercept at the malloc layer). Compiled out with
// the scope sites when GRP_HOST_PROF_MAX_LEVEL is 0.

#if GRP_HOST_PROF_MAX_LEVEL > 0

namespace
{

thread_local uint64_t t_allocCount = 0;
thread_local uint64_t t_allocBytes = 0;
thread_local uint64_t t_freeCount = 0;

inline void *
countedAlloc(std::size_t size)
{
    ++t_allocCount;
    t_allocBytes += size;
    return std::malloc(size ? size : 1);
}

inline void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    ++t_allocCount;
    t_allocBytes += size;
    void *ptr = nullptr;
    if (align < sizeof(void *))
        align = sizeof(void *);
    if (posix_memalign(&ptr, align, size ? size : 1) != 0)
        return nullptr;
    return ptr;
}

inline void
countedFree(void *ptr)
{
    if (!ptr)
        return;
    ++t_freeCount;
    std::free(ptr);
}

} // namespace

HostAllocCounters
hostAllocCounters()
{
    return {t_allocCount, t_allocBytes, t_freeCount};
}

#else // GRP_HOST_PROF_MAX_LEVEL == 0

HostAllocCounters
hostAllocCounters()
{
    return {};
}

#endif

uint64_t
hostPeakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<uint64_t>(usage.ru_maxrss) / 1024;
#else
    return static_cast<uint64_t>(usage.ru_maxrss);
#endif
#else
    return 0;
#endif
}

// ---------------------------------------------------------------------
// HostProfile.

uint64_t
HostProfile::selfSumNanos() const
{
    uint64_t sum = 0;
    for (const HostPhaseTotals &totals : phases)
        sum += totals.selfNanos;
    return sum;
}

HostProfile
HostProfile::delta(const HostProfile &since) const
{
    HostProfile out;
    for (size_t i = 0; i < kNumHostPhases; ++i) {
        out.phases[i].totalNanos = saturatingSub(
            phases[i].totalNanos, since.phases[i].totalNanos);
        out.phases[i].selfNanos = saturatingSub(
            phases[i].selfNanos, since.phases[i].selfNanos);
        out.phases[i].calls =
            saturatingSub(phases[i].calls, since.phases[i].calls);
    }
    out.allocCount = saturatingSub(allocCount, since.allocCount);
    out.allocBytes = saturatingSub(allocBytes, since.allocBytes);
    out.freeCount = saturatingSub(freeCount, since.freeCount);
    // Peak RSS is a process high-water mark, not a windowed rate.
    out.peakRssKb = peakRssKb;
    out.level = level;
    return out;
}

void
HostProfile::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.kv("level", level);
    json.key("phases");
    json.beginObject();
    for (size_t i = 0; i < kNumHostPhases; ++i) {
        const HostPhaseTotals &totals = phases[i];
        if (!totals.calls)
            continue;
        const HostPhase phase = static_cast<HostPhase>(i);
        json.key(toString(phase));
        json.beginObject();
        json.kv("totalNanos", totals.totalNanos);
        json.kv("selfNanos", totals.selfNanos);
        json.kv("calls", totals.calls);
        json.kv("parent", toString(hostPhaseParent(phase)));
        json.endObject();
    }
    json.endObject();
    json.kv("selfSumNanos", selfSumNanos());
    json.kv("allocCount", allocCount);
    json.kv("allocBytes", allocBytes);
    json.kv("freeCount", freeCount);
    json.kv("peakRssKb", peakRssKb);
    json.endObject();
}

// ---------------------------------------------------------------------
// HostProfiler.

std::atomic<int> hostProfCeiling{0};

namespace
{

/** Seed the ceiling from the environment at process start: scope
 *  sites consult the ceiling before ever touching the thread-local
 *  profiler, so without this a thread's very first sites would skip
 *  even under GRP_HOST_PROF. */
const int hostProfCeilingSeed = [] {
    const int level = HostProfiler::envLevel();
    const int capped = GRP_HOST_PROF_MAX_LEVEL > 0 ? level : 0;
    hostProfCeiling.store(capped, std::memory_order_relaxed);
    return capped;
}();

} // namespace

HostProfiler &
HostProfiler::instance()
{
    thread_local HostProfiler profiler;
    return profiler;
}

HostProfiler::HostProfiler()
{
    setLevel(envLevel());
}

int
HostProfiler::envLevel()
{
    static const int level = [] {
        const uint64_t parsed = envInt("GRP_HOST_PROF", 0);
        return parsed > 3 ? 3 : static_cast<int>(parsed);
    }();
    return level;
}

HostProfile
HostProfiler::snapshot() const
{
    // Copy the closed-scope accumulators, then fold in the
    // elapsed-so-far of every scope still open on this thread.
    // Walking innermost-out, each open scope's self contribution
    // excludes both its completed children (childTicks) and the
    // still-open child inside it, so the partition invariant (self
    // times sum to the root's total) holds mid-run too.
    std::array<PhaseAccum, kNumHostPhases> accum = accum_;
    const uint64_t now = hostTicksNow();
    uint64_t open_child = 0;
    for (const OpenScope *scope = current_; scope;
         scope = scope->parent) {
        const uint64_t elapsed = now - scope->startTicks;
        PhaseAccum &acc = accum[static_cast<size_t>(scope->phase)];
        acc.ticks += elapsed;
        acc.selfTicks +=
            saturatingSub(elapsed, scope->childTicks + open_child);
        ++acc.calls;
        open_child = elapsed;
    }

    HostProfile profile;
    for (size_t i = 0; i < kNumHostPhases; ++i) {
        profile.phases[i].totalNanos = hostTicksToNanos(accum[i].ticks);
        profile.phases[i].selfNanos =
            hostTicksToNanos(accum[i].selfTicks);
        profile.phases[i].calls = accum[i].calls;
    }
    const HostAllocCounters alloc = hostAllocCounters();
    profile.allocCount = alloc.allocCount;
    profile.allocBytes = alloc.allocBytes;
    profile.freeCount = alloc.freeCount;
    profile.peakRssKb = hostPeakRssKb();
    profile.level = level_;
    return profile;
}

void
HostProfiler::reset()
{
    accum_ = {};
}

} // namespace obs
} // namespace grp

// ---------------------------------------------------------------------
// Global allocation hooks (outside any namespace by requirement).

#if GRP_HOST_PROF_MAX_LEVEL > 0

void *
operator new(std::size_t size)
{
    void *ptr = grp::obs::countedAlloc(size);
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size)
{
    void *ptr = grp::obs::countedAlloc(size);
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return grp::obs::countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return grp::obs::countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *ptr = grp::obs::countedAlignedAlloc(
        size, static_cast<std::size_t>(align));
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    void *ptr = grp::obs::countedAlignedAlloc(
        size, static_cast<std::size_t>(align));
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return grp::obs::countedAlignedAlloc(
        size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return grp::obs::countedAlignedAlloc(
        size, static_cast<std::size_t>(align));
}

void
operator delete(void *ptr) noexcept
{
    grp::obs::countedFree(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    grp::obs::countedFree(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    grp::obs::countedFree(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    grp::obs::countedFree(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    grp::obs::countedFree(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    grp::obs::countedFree(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    grp::obs::countedFree(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    grp::obs::countedFree(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    grp::obs::countedFree(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    grp::obs::countedFree(ptr);
}

#endif // GRP_HOST_PROF_MAX_LEVEL > 0
