#include "obs/trace.hh"

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace grp
{
namespace obs
{

const char *
toString(HintClass hint)
{
    switch (hint) {
      case HintClass::None:      return "none";
      case HintClass::Spatial:   return "spatial";
      case HintClass::Pointer:   return "pointer";
      case HintClass::Recursive: return "recursive";
      case HintClass::Indirect:  return "indirect";
      case HintClass::Stride:    return "stride";
    }
    return "?";
}

const char *
toString(TraceEvent event)
{
    switch (event) {
      case TraceEvent::HintTrigger:   return "hintTrigger";
      case TraceEvent::Enqueue:       return "enqueue";
      case TraceEvent::Drop:          return "drop";
      case TraceEvent::Issue:         return "issue";
      case TraceEvent::Stall:         return "stall";
      case TraceEvent::Filtered:      return "filtered";
      case TraceEvent::Fill:          return "fill";
      case TraceEvent::FirstUse:      return "firstUse";
      case TraceEvent::EvictedUnused: return "evictedUnused";
      case TraceEvent::EvictVictim:   return "evictVictim";
      case TraceEvent::PollutionMiss: return "pollutionMiss";
    }
    return "?";
}

int
traceLevelOf(TraceEvent event)
{
    switch (event) {
      case TraceEvent::Issue:
      case TraceEvent::Fill:
      case TraceEvent::FirstUse:
      case TraceEvent::EvictedUnused:
        return 1;
      case TraceEvent::HintTrigger:
      case TraceEvent::Enqueue:
      case TraceEvent::Drop:
      case TraceEvent::Filtered:
      case TraceEvent::EvictVictim:
      case TraceEvent::PollutionMiss:
        return 2;
      case TraceEvent::Stall:
        return 3;
    }
    return 3;
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

Tracer::~Tracer()
{
    close();
}

bool
Tracer::open(const std::string &path)
{
    close();
    out_ = std::fopen(path.c_str(), "w");
    if (!out_) {
        warn("cannot open trace file '%s'", path.c_str());
        return false;
    }
    records_ = 0;
    return true;
}

void
Tracer::close()
{
    if (out_) {
        std::fclose(out_);
        out_ = nullptr;
    }
    level_ = 0;
    warmup_ = false;
}

void
Tracer::record(const TraceRecord &rec)
{
    if (!out_)
        return;
    const Tick tick = clock_ ? clock_->curTick() : 0;
    std::fprintf(out_, "{\"t\":%llu,\"ev\":\"%s\"",
                 (unsigned long long)tick, toString(rec.event));
    if (rec.addr)
        std::fprintf(out_, ",\"addr\":%llu",
                     (unsigned long long)rec.addr);
    if (rec.hint != HintClass::None)
        std::fprintf(out_, ",\"hint\":\"%s\"", toString(rec.hint));
    if (rec.channel >= 0)
        std::fprintf(out_, ",\"ch\":%d", rec.channel);
    if (rec.extra >= 0)
        std::fprintf(out_, ",\"x\":%lld", (long long)rec.extra);
    if (rec.site != kInvalidRefId)
        std::fprintf(out_, ",\"site\":%llu",
                     (unsigned long long)rec.site);
    if (warmup_)
        std::fprintf(out_, ",\"warm\":true");
    if (rec.carryover)
        std::fprintf(out_, ",\"carry\":true");
    std::fputs("}\n", out_);
    ++records_;
}

} // namespace obs
} // namespace grp
