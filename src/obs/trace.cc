#include "obs/trace.hh"

#include "obs/host_prof.hh"

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace grp
{
namespace obs
{

const char *
toString(HintClass hint)
{
    switch (hint) {
      case HintClass::None:      return "none";
      case HintClass::Spatial:   return "spatial";
      case HintClass::Pointer:   return "pointer";
      case HintClass::Recursive: return "recursive";
      case HintClass::Indirect:  return "indirect";
      case HintClass::Stride:    return "stride";
    }
    return "?";
}

const char *
toString(TraceEvent event)
{
    switch (event) {
      case TraceEvent::HintTrigger:   return "hintTrigger";
      case TraceEvent::Enqueue:       return "enqueue";
      case TraceEvent::Drop:          return "drop";
      case TraceEvent::Issue:         return "issue";
      case TraceEvent::Stall:         return "stall";
      case TraceEvent::Filtered:      return "filtered";
      case TraceEvent::Fill:          return "fill";
      case TraceEvent::FirstUse:      return "firstUse";
      case TraceEvent::EvictedUnused: return "evictedUnused";
      case TraceEvent::EvictVictim:   return "evictVictim";
      case TraceEvent::PollutionMiss: return "pollutionMiss";
      case TraceEvent::CtrlTransition: return "ctrlTransition";
    }
    return "?";
}

int
traceLevelOf(TraceEvent event)
{
    switch (event) {
      case TraceEvent::Issue:
      case TraceEvent::Fill:
      case TraceEvent::FirstUse:
      case TraceEvent::EvictedUnused:
        return 1;
      case TraceEvent::HintTrigger:
      case TraceEvent::Enqueue:
      case TraceEvent::Drop:
      case TraceEvent::Filtered:
      case TraceEvent::EvictVictim:
      case TraceEvent::PollutionMiss:
      case TraceEvent::CtrlTransition:
        return 2;
      case TraceEvent::Stall:
        return 3;
    }
    return 3;
}

Tracer &
Tracer::instance()
{
    thread_local Tracer tracer;
    return tracer;
}

Tracer::~Tracer()
{
    close();
}

bool
Tracer::open(const std::string &path)
{
    close();
    out_ = std::fopen(path.c_str(), "w");
    if (!out_) {
        warn("cannot open trace file '%s'", path.c_str());
        return false;
    }
    if (!iobuf_)
        iobuf_ = std::make_unique<char[]>(kStreamBufBytes);
    std::setvbuf(out_, iobuf_.get(), _IOFBF, kStreamBufBytes);
    records_ = 0;
    return true;
}

void
Tracer::close()
{
    if (out_) {
        std::fclose(out_);
        out_ = nullptr;
    }
    level_ = 0;
    warmup_ = false;
}

void
Tracer::record(const TraceRecord &rec)
{
    GRP_HOST_SCOPE(2, TraceEmit);
    if (!out_)
        return;
    const Tick tick = clock_ ? clock_->curTick() : 0;
    // Format the whole record into one stack buffer and hand it to
    // stdio in a single fwrite; with the large stream buffer each
    // record is one snprintf pass plus one memcpy. 256 bytes bounds
    // the worst case (every optional field present, 64-bit values).
    char line[256];
    size_t n = (size_t)std::snprintf(
        line, sizeof(line), "{\"t\":%llu,\"ev\":\"%s\"",
        (unsigned long long)tick, toString(rec.event));
    const auto append = [&](const char *fmt, auto value) {
        n += (size_t)std::snprintf(line + n, sizeof(line) - n, fmt,
                                   value);
    };
    if (rec.addr)
        append(",\"addr\":%llu", (unsigned long long)rec.addr);
    if (rec.hint != HintClass::None)
        append(",\"hint\":\"%s\"", toString(rec.hint));
    if (rec.channel >= 0)
        append(",\"ch\":%d", rec.channel);
    if (rec.extra >= 0)
        append(",\"x\":%lld", (long long)rec.extra);
    if (rec.site != kInvalidRefId)
        append(",\"site\":%llu", (unsigned long long)rec.site);
    if (warmup_)
        append("%s", ",\"warm\":true");
    if (rec.carryover)
        append("%s", ",\"carry\":true");
    append("%s", "}\n");
    std::fwrite(line, 1, n, out_);
    ++records_;
}

} // namespace obs
} // namespace grp
