#include "obs/trace.hh"

#include "obs/atomic_file.hh"
#include "obs/bintrace.hh"
#include "obs/host_prof.hh"

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace grp
{
namespace obs
{

const char *
toString(HintClass hint)
{
    switch (hint) {
      case HintClass::None:      return "none";
      case HintClass::Spatial:   return "spatial";
      case HintClass::Pointer:   return "pointer";
      case HintClass::Recursive: return "recursive";
      case HintClass::Indirect:  return "indirect";
      case HintClass::Stride:    return "stride";
    }
    return "?";
}

const char *
toString(TraceEvent event)
{
    switch (event) {
      case TraceEvent::HintTrigger:   return "hintTrigger";
      case TraceEvent::Enqueue:       return "enqueue";
      case TraceEvent::Drop:          return "drop";
      case TraceEvent::Issue:         return "issue";
      case TraceEvent::Stall:         return "stall";
      case TraceEvent::Filtered:      return "filtered";
      case TraceEvent::Fill:          return "fill";
      case TraceEvent::FirstUse:      return "firstUse";
      case TraceEvent::EvictedUnused: return "evictedUnused";
      case TraceEvent::EvictVictim:   return "evictVictim";
      case TraceEvent::PollutionMiss: return "pollutionMiss";
      case TraceEvent::CtrlTransition: return "ctrlTransition";
    }
    return "?";
}

int
traceLevelOf(TraceEvent event)
{
    switch (event) {
      case TraceEvent::Issue:
      case TraceEvent::Fill:
      case TraceEvent::FirstUse:
      case TraceEvent::EvictedUnused:
        return 1;
      case TraceEvent::HintTrigger:
      case TraceEvent::Enqueue:
      case TraceEvent::Drop:
      case TraceEvent::Filtered:
      case TraceEvent::EvictVictim:
      case TraceEvent::PollutionMiss:
      case TraceEvent::CtrlTransition:
        return 2;
      case TraceEvent::Stall:
        return 3;
    }
    return 3;
}

TraceFormat
resolveTraceFormat(const std::string &path, TraceFormat requested)
{
    if (requested != TraceFormat::Auto)
        return requested;
    const std::string suffix = ".grpbin";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        return TraceFormat::Binary;
    return TraceFormat::Jsonl;
}

size_t
formatTraceLine(char *buf, size_t cap, Tick tick,
                const TraceRecord &rec, bool warm)
{
    size_t n = (size_t)std::snprintf(
        buf, cap, "{\"t\":%llu,\"ev\":\"%s\"",
        (unsigned long long)tick, toString(rec.event));
    const auto append = [&](const char *fmt, auto value) {
        n += (size_t)std::snprintf(buf + n, cap - n, fmt, value);
    };
    if (rec.addr)
        append(",\"addr\":%llu", (unsigned long long)rec.addr);
    if (rec.hint != HintClass::None)
        append(",\"hint\":\"%s\"", toString(rec.hint));
    if (rec.channel >= 0)
        append(",\"ch\":%d", rec.channel);
    if (rec.extra >= 0)
        append(",\"x\":%lld", (long long)rec.extra);
    if (rec.site != kInvalidRefId)
        append(",\"site\":%llu", (unsigned long long)rec.site);
    if (warm)
        append("%s", ",\"warm\":true");
    if (rec.carryover)
        append("%s", ",\"carry\":true");
    append("%s", "}\n");
    return n;
}

std::vector<std::vector<std::string>>
lifecycleTables()
{
    std::vector<std::string> events;
    for (int e = 0; e <= static_cast<int>(TraceEvent::CtrlTransition);
         ++e)
        events.push_back(toString(static_cast<TraceEvent>(e)));
    std::vector<std::string> hints;
    for (int h = 0; h <= static_cast<int>(HintClass::Stride); ++h)
        hints.push_back(toString(static_cast<HintClass>(h)));
    return {std::move(events), std::move(hints)};
}

Tracer &
Tracer::instance()
{
    thread_local Tracer tracer;
    return tracer;
}

Tracer::~Tracer()
{
    close();
}

bool
Tracer::open(const std::string &path, TraceFormat format)
{
    close();
    format_ = resolveTraceFormat(path, format);
    if (path == "-") {
        out_ = stdout;
        toStdout_ = true;
        // No setvbuf: stdout may already have buffered output.
    } else {
        toStdout_ = false;
        publishPath_ = path;
        const std::string tmp = path + ".tmp";
        out_ = std::fopen(tmp.c_str(), "wb");
        if (!out_) {
            warn("cannot open trace file '%s'", tmp.c_str());
            return false;
        }
        if (!iobuf_)
            iobuf_ = std::make_unique<char[]>(kStreamBufBytes);
        std::setvbuf(out_, iobuf_.get(), _IOFBF, kStreamBufBytes);
    }
    if (format_ == TraceFormat::Binary) {
        bin_ = std::make_unique<bintrace::Writer>(
            out_, bintrace::StreamKind::Lifecycle, lifecycleTables(),
            std::vector<std::pair<std::string, std::string>>{},
            checkpointInterval_);
    }
    records_ = 0;
    return true;
}

void
Tracer::close()
{
    if (out_) {
        if (bin_) {
            bin_->finalize();
            bin_.reset();
        }
        if (toStdout_) {
            std::fflush(out_);
        } else {
            std::fclose(out_);
            publishTempFile(publishPath_ + ".tmp", publishPath_,
                            "trace");
        }
        out_ = nullptr;
    }
    bin_.reset(); // Failed opens may have left a stale writer.
    level_ = 0;
    warmup_ = false;
}

void
Tracer::record(const TraceRecord &rec)
{
    GRP_HOST_SCOPE(2, TraceEmit);
    if (!out_)
        return;
    const Tick tick = clock_ ? clock_->curTick() : 0;
    if (bin_) {
        bin_->record(rec, tick, warmup_);
    } else {
        // Format the whole record into one stack buffer and hand it
        // to stdio in a single fwrite; with the large stream buffer
        // each record is one snprintf pass plus one memcpy. 256 bytes
        // bounds the worst case (every optional field present, 64-bit
        // values).
        char line[256];
        const size_t n =
            formatTraceLine(line, sizeof(line), tick, rec, warmup_);
        std::fwrite(line, 1, n, out_);
    }
    ++records_;
}

} // namespace obs
} // namespace grp
