#include "obs/json_writer.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace grp
{
namespace obs
{

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepareValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    panic_if(wroteRoot_ && stack_.empty(),
             "JSON document already complete");
    if (!stack_.empty()) {
        panic_if(stack_.back().isObject,
                 "JSON object values need a key() first");
        if (!stack_.back().empty)
            os_ << ',';
        stack_.back().empty = false;
        newlineIndent();
    }
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    panic_if(stack_.empty() || !stack_.back().isObject,
             "key() outside an object");
    panic_if(pendingKey_, "two keys in a row");
    if (!stack_.back().empty)
        os_ << ',';
    stack_.back().empty = false;
    newlineIndent();
    os_ << '"' << jsonEscape(name) << (pretty_ ? "\": " : "\":");
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    os_ << '{';
    stack_.push_back({true});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panic_if(stack_.empty() || !stack_.back().isObject,
             "endObject() without a matching beginObject()");
    const bool was_empty = stack_.back().empty;
    stack_.pop_back();
    if (!was_empty)
        newlineIndent();
    os_ << '}';
    if (stack_.empty()) {
        wroteRoot_ = true;
        if (pretty_)
            os_ << '\n';
    }
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    os_ << '[';
    stack_.push_back({false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panic_if(stack_.empty() || stack_.back().isObject,
             "endArray() without a matching beginArray()");
    const bool was_empty = stack_.back().empty;
    stack_.pop_back();
    if (!was_empty)
        newlineIndent();
    os_ << ']';
    if (stack_.empty()) {
        wroteRoot_ = true;
        if (pretty_)
            os_ << '\n';
    }
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    prepareValue();
    os_ << '"' << jsonEscape(text) << '"';
    if (stack_.empty())
        wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t number)
{
    prepareValue();
    os_ << number;
    if (stack_.empty())
        wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t number)
{
    prepareValue();
    os_ << number;
    if (stack_.empty())
        wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    prepareValue();
    // JSON has no NaN/Inf; degrade to null rather than emit garbage.
    if (std::isfinite(number)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", number);
        os_ << buf;
    } else {
        os_ << "null";
    }
    if (stack_.empty())
        wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    prepareValue();
    os_ << (flag ? "true" : "false");
    if (stack_.empty())
        wroteRoot_ = true;
    return *this;
}

} // namespace obs
} // namespace grp
