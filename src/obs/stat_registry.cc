#include "obs/stat_registry.hh"

#include <algorithm>
#include <iostream>

#include "obs/atomic_file.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"

namespace grp
{
namespace obs
{

uint64_t
StatSnapshot::value(const std::string &dotted_name) const
{
    auto it = counters.find(dotted_name);
    return it == counters.end() ? 0 : it->second;
}

bool
StatSnapshot::hasCounter(const std::string &dotted_name) const
{
    return counters.find(dotted_name) != counters.end();
}

DistSummary
summarise(const Distribution &dist)
{
    DistSummary out;
    out.samples = dist.samples();
    out.sum = dist.sum();
    out.mean = dist.mean();
    out.maxValue = dist.maxValue();
    // An empty distribution has no percentiles; the summary keeps the
    // zero-valued defaults rather than asserting in debug builds.
    if (dist.samples()) {
        out.p50 = dist.percentile(50.0);
        out.p90 = dist.percentile(90.0);
        out.p99 = dist.percentile(99.0);
    }
    return out;
}

StatRegistry &
StatRegistry::current()
{
    thread_local StatRegistry registry;
    return registry;
}

void
StatRegistry::add(StatGroup *group)
{
    panic_if(!group, "registering a null stat group");
    groups_.push_back(group);
}

void
StatRegistry::remove(StatGroup *group)
{
    auto it = std::find(groups_.begin(), groups_.end(), group);
    if (it != groups_.end())
        groups_.erase(it);
}

const StatGroup *
StatRegistry::find(const std::string &name) const
{
    for (auto it = groups_.rbegin(); it != groups_.rend(); ++it) {
        if ((*it)->name() == name)
            return *it;
    }
    return nullptr;
}

uint64_t
StatRegistry::value(const std::string &dotted_name) const
{
    const size_t dot = dotted_name.find('.');
    if (dot == std::string::npos)
        return 0;
    const StatGroup *group = find(dotted_name.substr(0, dot));
    return group ? group->value(dotted_name.substr(dot + 1)) : 0;
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot snap;
    // Registration order; later same-name groups overwrite earlier
    // ones, matching the newest-wins rule of value()/find().
    for (const StatGroup *group : groups_) {
        for (const auto &[stat, counter] : group->counters())
            snap.counters[group->name() + '.' + stat] = counter.value();
        for (const auto &[stat, dist] : group->distributions()) {
            snap.distributions[group->name() + '.' + stat] =
                summarise(dist);
        }
    }
    return snap;
}

std::vector<std::string>
StatRegistry::exportNames() const
{
    // Newest registration keeps the bare name; older duplicates get
    // "#2", "#3", ... (counted from the back).
    std::vector<std::string> names(groups_.size());
    std::map<std::string, unsigned> seen;
    for (size_t i = groups_.size(); i-- > 0;) {
        const std::string &base = groups_[i]->name();
        const unsigned n = ++seen[base];
        names[i] = n == 1 ? base : base + '#' + std::to_string(n);
    }
    return names;
}

namespace
{

void
writeGroupJson(JsonWriter &w, const StatGroup &group)
{
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[stat, counter] : group.counters())
        w.kv(stat, counter.value());
    w.endObject();
    if (!group.distributions().empty()) {
        w.key("distributions").beginObject();
        for (const auto &[stat, dist] : group.distributions()) {
            const DistSummary s = summarise(dist);
            w.key(stat).beginObject();
            w.kv("samples", s.samples);
            w.kv("sum", s.sum);
            w.kv("mean", s.mean);
            w.kv("max", s.maxValue);
            w.kv("p50", s.p50);
            w.kv("p90", s.p90);
            w.kv("p99", s.p99);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
}

} // namespace

void
StatRegistry::exportJson(
    std::ostream &os,
    const std::function<void(JsonWriter &)> &extra) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "grp-stats-v1");
    w.key("groups").beginObject();
    const std::vector<std::string> names = exportNames();
    for (size_t i = 0; i < groups_.size(); ++i) {
        w.key(names[i]);
        writeGroupJson(w, *groups_[i]);
    }
    w.endObject();
    if (extra)
        extra(w);
    w.endObject();
}

void
StatRegistry::exportCsv(std::ostream &os) const
{
    os << "group,stat,value\n";
    const std::vector<std::string> names = exportNames();
    for (size_t i = 0; i < groups_.size(); ++i) {
        const StatGroup &group = *groups_[i];
        for (const auto &[stat, counter] : group.counters()) {
            os << names[i] << ',' << stat << ',' << counter.value()
               << '\n';
        }
        for (const auto &[stat, dist] : group.distributions()) {
            const DistSummary s = summarise(dist);
            os << names[i] << ',' << stat << ".samples," << s.samples
               << '\n';
            os << names[i] << ',' << stat << ".sum," << s.sum << '\n';
            os << names[i] << ',' << stat << ".mean," << s.mean
               << '\n';
            os << names[i] << ',' << stat << ".max," << s.maxValue
               << '\n';
            os << names[i] << ',' << stat << ".p50," << s.p50 << '\n';
            os << names[i] << ',' << stat << ".p90," << s.p90 << '\n';
            os << names[i] << ',' << stat << ".p99," << s.p99 << '\n';
        }
    }
}

bool
StatRegistry::exportJsonFile(
    const std::string &path,
    const std::function<void(JsonWriter &)> &extra) const
{
    if (path == "-") {
        exportJson(std::cout, extra);
        std::cout << "\n";
        return static_cast<bool>(std::cout);
    }
    return atomicWriteFile(
        path,
        [this, &extra](std::ostream &os) { exportJson(os, extra); },
        "stats JSON");
}

bool
StatRegistry::exportCsvFile(const std::string &path) const
{
    if (path == "-") {
        exportCsv(std::cout);
        return static_cast<bool>(std::cout);
    }
    return atomicWriteFile(
        path, [this](std::ostream &os) { exportCsv(os); },
        "stats CSV");
}

void
StatRegistry::dumpText(std::ostream &os) const
{
    for (const StatGroup *group : groups_)
        group->dump(os);
}

void
StatRegistry::resetAll()
{
    for (StatGroup *group : groups_)
        group->reset();
}

} // namespace obs
} // namespace grp
