/**
 * @file
 * Atomic file publication for observability artefacts.
 *
 * The JSON/CSV exporters (stats, site profile, time series) are read
 * by concurrent consumers — bench_compare.py, dashboards tailing
 * bench/out/, a second grpsim run into the same directory. Writing
 * in place exposes readers to truncated documents; instead the
 * content is written to "<path>.tmp" and published with one
 * std::rename(), which POSIX guarantees replaces the target
 * atomically on the same filesystem: readers see either the old
 * complete file or the new complete file, never a partial one.
 */

#ifndef GRP_OBS_ATOMIC_FILE_HH
#define GRP_OBS_ATOMIC_FILE_HH

#include <functional>
#include <ostream>
#include <string>

namespace grp
{
namespace obs
{

/**
 * Write @p emit's output to @p path atomically (tmp file + rename).
 *
 * @param what Short artefact description for warn() messages
 *             ("stats JSON", "site-profile", ...).
 * @return false (after a warn and tmp cleanup) when the temporary
 *         cannot be opened, the stream fails, or the rename fails.
 */
bool atomicWriteFile(const std::string &path,
                     const std::function<void(std::ostream &)> &emit,
                     const char *what);

/**
 * Publish an already-written temporary file: rename @p tmp_path over
 * @p path. For writers that stream incrementally (the trace sinks)
 * and so cannot use atomicWriteFile's callback shape — they write to
 * "<path>.tmp" themselves and publish here on close.
 *
 * @return false (after a warn and tmp cleanup) when the rename fails.
 */
bool publishTempFile(const std::string &tmp_path,
                     const std::string &path, const char *what);

} // namespace obs
} // namespace grp

#endif // GRP_OBS_ATOMIC_FILE_HH
