#include "obs/timeseries.hh"

#include "obs/atomic_file.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"

namespace grp
{
namespace obs
{

TimeSeries::TimeSeries(uint64_t bucket_cycles)
    : bucket_(bucket_cycles)
{
    fatal_if(bucket_cycles == 0,
             "time-series bucket must be non-zero");
}

void
TimeSeries::record(const std::string &series, Tick cycle, double value)
{
    Series &s = series_[series];
    s.ticks.push_back(cycle);
    s.values.push_back(value);
}

size_t
TimeSeries::samples(const std::string &series) const
{
    auto it = series_.find(series);
    return it == series_.end() ? 0 : it->second.ticks.size();
}

void
TimeSeries::exportJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "grp-timeseries-v1");
    w.kv("bucket", bucket_);
    w.key("series").beginObject();
    for (const auto &[name, s] : series_) {
        w.key(name).beginObject();
        w.key("t").beginArray();
        for (Tick t : s.ticks)
            w.value(static_cast<uint64_t>(t));
        w.endArray();
        w.key("v").beginArray();
        for (double v : s.values)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

bool
TimeSeries::exportJsonFile(const std::string &path) const
{
    return atomicWriteFile(
        path, [this](std::ostream &os) { exportJson(os); },
        "time-series");
}

} // namespace obs
} // namespace grp
