/**
 * @file
 * A minimal streaming JSON writer.
 *
 * Emits syntactically valid, pretty-printed JSON to any ostream
 * without building an in-memory document. The stat registry, the
 * time-series sampler and the bench binaries all use it, so every
 * machine-readable artefact the simulator produces shares one
 * serialisation path.
 */

#ifndef GRP_OBS_JSON_WRITER_HH
#define GRP_OBS_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace grp
{
namespace obs
{

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view text);

/** Streaming JSON emitter with automatic comma/indent management. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : os_(os), pretty_(pretty)
    {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or begin*(). */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text) { return value(std::string_view(text)); }
    JsonWriter &value(uint64_t number);
    JsonWriter &value(int64_t number);
    JsonWriter &value(double number);
    JsonWriter &value(bool flag);
    JsonWriter &value(int number) { return value(static_cast<int64_t>(number)); }
    JsonWriter &value(unsigned number) { return value(static_cast<uint64_t>(number)); }

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** All containers closed (useful as a sanity assertion). */
    bool complete() const { return stack_.empty() && wroteRoot_; }

  private:
    struct Frame
    {
        bool isObject;
        bool empty = true;
    };

    /** Emit separators/newlines before a value or key. */
    void prepareValue();
    void newlineIndent();

    std::ostream &os_;
    bool pretty_;
    std::vector<Frame> stack_;
    bool pendingKey_ = false;
    bool wroteRoot_ = false;
};

} // namespace obs
} // namespace grp

#endif // GRP_OBS_JSON_WRITER_HH
