/**
 * @file
 * Integer kernels, part 1: gzip, vpr, crafty, gap.
 */

#include "workloads/kernels.hh"

#include "compiler/builder.hh"
#include "sim/rng.hh"
#include "workloads/heap_builders.hh"
#include "workloads/tuning.hh"

namespace grp
{

namespace
{

/** 164.gzip: compression; a sequential input scan combined with
 *  probes into a sliding window that only partly fits the L2, plus a
 *  small indirect code-table lookup. */
class GzipWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"gzip", false, "sequential scan + window probes", 0,
                false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t seed) override
    {
        Rng rng(seed);
        ProgramBuilder b(mem);
        const uint64_t n = 512 * 1024;      // 4 MB input.
        const uint64_t window = 128 * 1024; // 1 MB window.
        const uint64_t codes = 64 * 1024;   // 512 KB code table.
        const ArrayId input = b.array("input", 8, {n});
        const ArrayId win = b.array("window", 8, {window});
        const ArrayId code = b.array("code", 8, {codes});
        const ArrayId idx = b.array("idx", 4, {codes});
        const ArrayId out = b.array("out", 8, {n});
        fillIndexArray(mem, b.arrayBase(idx), codes, codes, 1, rng);
        const ArrayId hot = declareHotArray(b);

        const VarId i = b.forLoop(0, static_cast<int64_t>(n));
        b.arrayRef(input, {Subscript::affine(Affine::var(i))});
        b.arrayRef(win, {Subscript::random(window)});
        b.compute(2);
        b.arrayRef(code,
                   {Subscript::indirect(idx, Affine::var(i, 1, 0))});
        b.arrayRef(out, {Subscript::affine(Affine::var(i))}, true);
        hotWork(b, hot, 1000);
        b.end();
        return b.build();
    }
};

/** 175.vpr: place-and-route; indirect net-cost lookups whose index
 *  values are clustered (so the indirect targets themselves exhibit
 *  spatial locality, §5.2) plus short pin lists per net. */
class VprWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"vpr", false, "clustered indirect references", 0,
                false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t seed) override
    {
        Rng rng(seed);
        ProgramBuilder b(mem);
        const uint64_t nets = 512 * 1024;
        const ArrayId cost = b.array("cost", 8, {nets});  // 4 MB.
        const ArrayId order = b.array("order", 4, {nets});
        // Clustered indices: runs of 16 sequential nets.
        fillIndexArray(mem, b.arrayBase(order), nets, nets, 16, rng);
        const ArrayId hot = declareHotArray(b);

        const TypeId pin_t = b.structType(
            "pin", 64,
            {{"net", 0, false, kNoId},
             {"x", 8, false, kNoId},
             {"next", 16, true, 0}}); // pin_t is struct id 0.
        const uint64_t n_pins = 128 * 1024;
        Rng list_rng(seed + 1);
        BuiltList pins = buildLinkedList(mem, 64, 16, n_pins, 0.35,
                                         list_rng);
        const PtrId p = b.ptr("pin", pin_t, pins.head);

        // Interleave indirect-cost chunks with pin-list walks.
        const VarId s = b.forLoop(0, 128);
        {
            const VarId ii = b.forLoop(0, 2048);
            Affine i_expr = Affine::var(s, 2048);
            i_expr.terms.push_back({ii, 1});
            b.arrayRef(cost, {Subscript::indirect(order, i_expr)});
            b.compute(2);
            b.arrayRef(cost, {Subscript::indirect(order, i_expr)},
                       true);
            hotWork(b, hot, 90);
            b.end();
        }
        // Short pin-list walks.
        {
            const VarId w = b.forLoop(0, 128);
            (void)w;
            b.whileLoop(p, 4);
            b.ptrRef(p, 0);
            b.ptrRef(p, 8);
            b.compute(1);
            b.ptrUpdateField(p, 16);
            b.end();
            hotWork(b, hot, 260);
            b.end();
        }
        b.end();
        return b.build();
    }
};

/** 186.crafty: chess; its tables fit comfortably in the 1 MB L2
 *  (0.4% miss rate) so the paper excludes it from the performance
 *  figures — we reproduce that by giving it an L2-resident set. */
class CraftyWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"crafty", false, "L2-resident tables", 0, true};
    }

    Program
    build(FunctionalMemory &mem, uint64_t) override
    {
        ProgramBuilder b(mem);
        const uint64_t elems = 48 * 1024; // 384 KB, fits the L2.
        const ArrayId tbl = b.array("attacks", 8, {elems});
        const ArrayId hist = b.array("history", 8, {4096});
        const ArrayId hot = declareHotArray(b);

        const VarId i = b.forLoop(0, 512 * 1024);
        (void)i;
        b.arrayRef(tbl, {Subscript::random(elems)});
        b.compute(4);
        b.arrayRef(hist, {Subscript::random(4096)}, true);
        b.compute(3);
        hotWork(b, hot, 16);
        b.end();
        return b.build();
    }
};

/** 254.gap: computational group theory; sequential sweeps over heap
 *  "bags" reached through a large pointer array — many pointer and
 *  spatial hints (Table 3's biggest pointer count). */
class GapWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"gap", false, "heap bag sweeps", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t) override
    {
        ProgramBuilder b(mem);
        const uint64_t n_bags = 64 * 1024;
        const uint64_t bag_bytes = 128; // 8 MB of bags.
        ArrayOpts ptr_opts;
        ptr_opts.heap = true;
        ptr_opts.elemIsPointer = true;
        const ArrayId bags = b.array("bags", 8, {n_bags}, ptr_opts);
        buildPointerRows(mem, b.arrayBase(bags), n_bags, bag_bytes);
        const ArrayId hot = declareHotArray(b);

        const PtrId bag = b.ptr("bag");
        const VarId i = b.forLoop(0, static_cast<int64_t>(n_bags));
        b.ptrLoadFromArray(bag, bags,
                           Subscript::affine(Affine::var(i)));
        {
            // Bag sizes vary at run time: symbolic bound.
            const VarId j = b.forLoop(0, 12, 1, /*bound_known=*/false);
            b.ptrArrayRef(bag, 8, Subscript::affine(Affine::var(j)));
            b.compute(1);
            b.end();
        }
        hotWork(b, hot, 500);
        b.end();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeGzip()
{
    return std::make_unique<GzipWorkload>();
}

std::unique_ptr<Workload>
makeVpr()
{
    return std::make_unique<VprWorkload>();
}

std::unique_ptr<Workload>
makeCrafty()
{
    return std::make_unique<CraftyWorkload>();
}

std::unique_ptr<Workload>
makeGap()
{
    return std::make_unique<GapWorkload>();
}

} // namespace grp
