#include "workloads/workload.hh"

#include <functional>
#include <utility>

#include "sim/logging.hh"
#include "workloads/kernels.hh"

namespace grp
{

namespace
{

using Factory = std::function<std::unique_ptr<Workload>()>;

/** Suite order follows Table 3 of the paper. */
const std::vector<std::pair<const char *, Factory>> &
factories()
{
    static const std::vector<std::pair<const char *, Factory>> table = {
        {"gzip", makeGzip},       {"wupwise", makeWupwise},
        {"swim", makeSwim},       {"mgrid", makeMgrid},
        {"applu", makeApplu},     {"vpr", makeVpr},
        {"mesa", makeMesa},       {"art", makeArt},
        {"mcf", makeMcf},         {"equake", makeEquake},
        {"crafty", makeCrafty},   {"ammp", makeAmmp},
        {"parser", makeParser},   {"gap", makeGap},
        {"bzip2", makeBzip2},     {"twolf", makeTwolf},
        {"apsi", makeApsi},       {"sphinx", makeSphinx},
    };
    return table;
}

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    names.reserve(factories().size());
    for (const auto &[name, factory] : factories())
        names.emplace_back(name);
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (const auto &[candidate, factory] : factories()) {
        if (name == candidate)
            return factory();
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace grp
