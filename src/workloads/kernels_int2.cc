/**
 * @file
 * Integer kernels, part 2: mcf, parser, bzip2, twolf — the
 * benchmarks whose irregular misses (tree traversals, scrambled
 * lists, random indirection) resist every prefetcher in the paper
 * (Table 6).
 */

#include "workloads/kernels.hh"

#include "compiler/builder.hh"
#include "sim/rng.hh"
#include "workloads/heap_builders.hh"
#include "workloads/tuning.hh"

namespace grp
{

namespace
{

/** 181.mcf: network simplex. Phase one sweeps a heap array of arc
 *  records through an induction pointer (where hardware pointer
 *  prefetching accidentally helps, §5.2); phase two walks a
 *  scrambled tree (60.7% of misses, Table 6). The paper caps mcf's
 *  recursion depth at 3 to keep simulation tractable. */
class McfWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"mcf", false, "tree traversal", 3, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t seed) override
    {
        Rng rng(seed);
        ProgramBuilder b(mem);

        // Arc array: sequential heap records, 192 B each (24 MB).
        const uint64_t n_arcs = 128 * 1024;
        const uint64_t arc_bytes = 192;
        const TypeId arc_t = b.structType(
            "arc", arc_bytes,
            {{"cost", 0, false, kNoId},
             {"ident", 8, false, kNoId},
             {"tail", 16, true, 1},
             {"flow", 64, false, kNoId}});
        const Addr arcs_base = mem.heapAlloc(n_arcs * arc_bytes,
                                             kBlockBytes);
        for (uint64_t i = 0; i < n_arcs; ++i)
            mem.write64(arcs_base + i * arc_bytes + 16,
                        arcs_base + rng.below(n_arcs) * arc_bytes);

        // Node tree: 96 B nodes, children scrambled (id 1 == node_t).
        const TypeId node_t = b.structType(
            "node", 96,
            {{"potential", 0, false, kNoId},
             {"child", 8, true, 1},
             {"sibling", 16, true, 1},
             {"basic_arc", 32, true, 0}});
        Rng tree_rng(seed + 7);
        BuiltTree tree = buildTree(mem, 96, {8, 16}, 96 * 1024, 0.6,
                                   tree_rng);
        const ArrayId hot = declareHotArray(b);

        // Interleave arc-sweep chunks with batches of tree descents
        // so a simulation window samples both phases. Tree descents
        // dominate the miss mix (60.7%, Table 6).
        const PtrId arc = b.ptr("arc", arc_t, arcs_base);
        const PtrId walker = b.ptr("walker", node_t, tree.root);
        const PtrId cursor = b.ptr("cursor", node_t, tree.root);

        const VarId phase = b.forLoop(0, 128);
        (void)phase;
        // refresh_potential-style sweep: one chunk of the arc array
        // through an induction pointer.
        {
            const VarId i = b.forLoop(
                0, static_cast<int64_t>(n_arcs / 128));
            (void)i;
            b.ptrRef(arc, 8);         // ident
            b.ptrRef(arc, 64, true);  // reset flow
            b.compute(1);
            b.ptrUpdateConst(arc, static_cast<int64_t>(arc_bytes));
            hotWork(b, hot, 60);
            b.end();
        }
        // A batch of descents of the scrambled tree.
        {
            const VarId d = b.forLoop(0, 200);
            (void)d;
            b.whileLoop(cursor, 15);
            b.ptrRef(cursor, 0);                  // potential
            b.compute(1);
            b.ptrSelectField(cursor, cursor, {8, 16});
            hotWork(b, hot, 75);
            b.end();
            // Restart the descent from the root.
            b.ptrSelectField(cursor, walker, {8, 16});
            b.end();
        }
        b.end();
        return b.build();
    }
};

/** 197.parser: link grammar; hash-bucket lookups chase short,
 *  scrambled linked lists (Table 3's largest recursive-hint
 *  count). */
class ParserWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"parser", false, "linked list traversal", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t seed) override
    {
        Rng rng(seed);
        ProgramBuilder b(mem);

        const TypeId word_t = b.structType(
            "word", 64,
            {{"hash", 0, false, kNoId},
             {"str", 8, false, kNoId},
             {"next", 16, true, 0}});

        const uint64_t n_words = 512 * 1024; // 32 MB of nodes.
        Rng list_rng(seed + 3);
        BuiltList words = buildLinkedList(mem, 64, 16, n_words, 0.25,
                                          list_rng);

        // A bucket array pointing into the list at random offsets.
        const uint64_t n_buckets = 64 * 1024;
        ArrayOpts ptr_opts;
        ptr_opts.heap = true;
        ptr_opts.elemIsPointer = true;
        const ArrayId buckets = b.array("buckets", 8, {n_buckets},
                                        ptr_opts);
        for (uint64_t i = 0; i < n_buckets; ++i)
            mem.write64(b.arrayBase(buckets) + 8 * i,
                        words.nodes[rng.below(n_words)]);
        const ArrayId hot = declareHotArray(b);

        const PtrId w = b.ptr("w", word_t);
        const VarId q = b.forLoop(0, 64 * 1024);
        (void)q;
        b.ptrLoadFromArray(w, buckets,
                           Subscript::random(n_buckets));
        b.whileLoop(w, 3);
        b.ptrRef(w, 0); // compare hash
        b.compute(2);
        b.ptrUpdateField(w, 16); // w = w->next
        hotWork(b, hot, 140);
        b.end();
        b.end();
        return b.build();
    }
};

/** 256.bzip2: Burrows-Wheeler compression; the suffix-sorting phase
 *  is dominated by a[b[i]] indirection with effectively random index
 *  values — the pattern GRP's indirect prefetch instruction targets
 *  (49.7% of misses, Table 6). */
class Bzip2Workload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"bzip2", false, "indirect array references", 0,
                false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t seed) override
    {
        Rng rng(seed);
        ProgramBuilder b(mem);
        const uint64_t n = 512 * 1024;
        const uint64_t block_elems = 2 * 1024 * 1024; // 16 MB target.
        const ArrayId block = b.array("block", 8, {block_elems});
        const ArrayId quadrant = b.array("quadrant", 4, {n});
        const ArrayId zptr = b.array("zptr", 8, {n});
        fillIndexArray(mem, b.arrayBase(quadrant), n, block_elems, 1,
                       rng);
        const ArrayId hot = declareHotArray(b);

        // Interleave sorting chunks with run-length chunks.
        const VarId s = b.forLoop(0, 128);
        // Sorting phase: random-valued indirection.
        {
            const VarId ii = b.forLoop(0, 512);
            Affine i_expr = Affine::var(s, 512);
            i_expr.terms.push_back({ii, 1});
            b.arrayRef(block,
                       {Subscript::indirect(quadrant, i_expr)});
            b.compute(2);
            b.arrayRef(zptr, {Subscript::affine(i_expr)}, true);
            hotWork(b, hot, 420);
            b.end();
        }
        // Run-length pass: short known-bound spatial runs starting
        // at data-dependent positions (the variable-region case of
        // Table 4: the compiler can bound the run length but not
        // extend it, so GRP/Var fetches 2-block regions).
        {
            const PtrId run = b.ptr("run");
            const VarId rr = b.forLoop(0, 256);
            (void)rr;
            b.ptrAddrOfArray(run, block,
                             Subscript::random(block_elems - 16));
            const VarId j = b.forLoop(0, 16);
            b.ptrArrayRef(run, 8, Subscript::affine(Affine::var(j)));
            b.compute(1);
            b.end();
            hotWork(b, hot, 36);
            b.end();
        }
        b.end();
        return b.build();
    }
};

/** 300.twolf: standard-cell placement; random cell records plus
 *  short scrambled net lists ("linked list and random pointers",
 *  Table 6) defeat spatial and pointer prefetching alike. */
class TwolfWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"twolf", false, "lists and random pointers", 0,
                false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t seed) override
    {
        Rng rng(seed);
        ProgramBuilder b(mem);

        const TypeId cell_t = b.structType(
            "cell", 128,
            {{"xcenter", 0, false, kNoId},
             {"ycenter", 8, false, kNoId},
             {"orient", 16, false, kNoId},
             {"netlist", 24, true, 1}});
        const TypeId net_t = b.structType(
            "net", 64,
            {{"cost", 0, false, kNoId},
             {"next", 8, true, 1}});
        (void)net_t;

        const uint64_t n_cells = 192 * 1024; // 24 MB of cells.
        ArrayOpts ptr_opts;
        ptr_opts.heap = true;
        ptr_opts.elemIsPointer = true;
        const ArrayId cells = b.array("cells", 8, {n_cells}, ptr_opts);

        Rng net_rng(seed + 11);
        BuiltList nets = buildLinkedList(mem, 64, 8, 256 * 1024, 0.9,
                                         net_rng);
        for (uint64_t i = 0; i < n_cells; ++i) {
            const Addr cell = mem.heapAlloc(128, 8);
            mem.write64(b.arrayBase(cells) + 8 * i, cell);
            mem.write64(cell + 24,
                        nets.nodes[rng.below(nets.nodes.size())]);
        }
        const ArrayId hot = declareHotArray(b);

        const PtrId cell = b.ptr("cell", cell_t);
        const PtrId net = b.ptr("net", net_t);
        const VarId m = b.forLoop(0, 96 * 1024);
        (void)m;
        b.ptrLoadFromArray(cell, cells,
                           Subscript::random(n_cells));
        b.ptrRef(cell, 0);
        b.ptrRef(cell, 8, true);
        b.compute(2);
        b.ptrSelectField(net, cell, {24});
        b.whileLoop(net, 2);
        b.ptrRef(net, 0);
        b.compute(1);
        b.ptrUpdateField(net, 8);
        hotWork(b, hot, 300);
        b.end();
        hotWork(b, hot, 400);
        b.end();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeMcf()
{
    return std::make_unique<McfWorkload>();
}

std::unique_ptr<Workload>
makeParser()
{
    return std::make_unique<ParserWorkload>();
}

std::unique_ptr<Workload>
makeBzip2()
{
    return std::make_unique<Bzip2Workload>();
}

std::unique_ptr<Workload>
makeTwolf()
{
    return std::make_unique<TwolfWorkload>();
}

} // namespace grp
