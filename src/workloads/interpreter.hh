/**
 * @file
 * The IR interpreter: executes a Program against the functional
 * memory, producing the dynamic instruction trace the CPU consumes.
 *
 * The interpreter is resumable (TraceSource::next pulls one op at a
 * time) and deterministic for a given seed. Because it executes the
 * same IR the compiler analysed, every dynamic access carries the
 * RefId of the static reference the hint generator annotated —
 * faithfully modelling a hinted binary.
 *
 * The whole program is re-executed in passes (pointers reset to
 * their initial values each pass) so that arbitrarily long
 * steady-state windows can be simulated, in the spirit of the
 * paper's SimPoint-selected 200M-instruction windows.
 */

#ifndef GRP_WORKLOADS_INTERPRETER_HH
#define GRP_WORKLOADS_INTERPRETER_HH

#include <deque>
#include <vector>

#include "compiler/ir.hh"
#include "cpu/trace.hh"
#include "mem/functional_memory.hh"
#include "sim/rng.hh"

namespace grp
{

/** Executes IR programs into TraceOps. */
class Interpreter : public TraceSource
{
  public:
    /**
     * @param prog The program; must outlive the interpreter.
     * @param mem Functional memory holding the program's data.
     * @param seed RNG seed (Random subscripts, tree descents).
     * @param passes How many times to re-execute the whole program.
     */
    Interpreter(const Program &prog, FunctionalMemory &mem,
                uint64_t seed = 1, uint64_t passes = ~0ull);

    bool next(TraceOp &op) override;

    /** Restart from the beginning (same seed). */
    void reset();

    uint64_t opsEmitted() const { return emitted_; }

  private:
    struct Frame
    {
        const std::vector<Node> *body;
        size_t pos;
        const Loop *loop; ///< Loop owning this body; null at top.
        uint64_t chaseIters;
    };

    void startPass();
    bool step(); ///< Advance; returns false when fully finished.
    void exec(const Stmt &stmt);
    void enterLoop(const Loop &loop);
    void finishFrame();

    int64_t evalAffine(const Affine &expr) const;
    uint64_t evalSubscript(const Subscript &sub, uint64_t extent);
    Addr arrayElemAddr(const ArrayDecl &array,
                       const std::vector<Subscript> &subs);
    Addr linearElemAddr(const ArrayDecl &array, const Subscript &sub);

    void emitLoad(Addr addr, RefId ref);
    void emitStore(Addr addr, RefId ref);

    const Program &prog_;
    FunctionalMemory &mem_;
    uint64_t seed_;
    uint64_t maxPasses_;
    uint64_t passesDone_ = 0;

    Rng rng_;
    std::vector<int64_t> vars_;
    std::vector<Addr> ptrs_;
    std::vector<Frame> stack_;
    std::deque<TraceOp> pending_;
    bool finished_ = false;
    uint64_t emitted_ = 0;
};

} // namespace grp

#endif // GRP_WORKLOADS_INTERPRETER_HH
