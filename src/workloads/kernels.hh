/**
 * @file
 * Factory functions for the 18 benchmark kernels (17 SPEC CPU2000
 * programs the paper compiles plus Sphinx). Each kernel reproduces
 * the documented dominant access idioms of its namesake; see
 * DESIGN.md for the idiom-by-idiom mapping.
 */

#ifndef GRP_WORKLOADS_KERNELS_HH
#define GRP_WORKLOADS_KERNELS_HH

#include <memory>

#include "workloads/workload.hh"

namespace grp
{

std::unique_ptr<Workload> makeGzip();    // 164.gzip
std::unique_ptr<Workload> makeWupwise(); // 168.wupwise
std::unique_ptr<Workload> makeSwim();    // 171.swim
std::unique_ptr<Workload> makeMgrid();   // 172.mgrid
std::unique_ptr<Workload> makeApplu();   // 173.applu
std::unique_ptr<Workload> makeVpr();     // 175.vpr
std::unique_ptr<Workload> makeMesa();    // 177.mesa
std::unique_ptr<Workload> makeArt();     // 179.art
std::unique_ptr<Workload> makeMcf();     // 181.mcf
std::unique_ptr<Workload> makeEquake();  // 183.equake
std::unique_ptr<Workload> makeCrafty();  // 186.crafty
std::unique_ptr<Workload> makeAmmp();    // 188.ammp
std::unique_ptr<Workload> makeParser();  // 197.parser
std::unique_ptr<Workload> makeGap();     // 254.gap
std::unique_ptr<Workload> makeBzip2();   // 256.bzip2
std::unique_ptr<Workload> makeTwolf();   // 300.twolf
std::unique_ptr<Workload> makeApsi();    // 301.apsi
std::unique_ptr<Workload> makeSphinx();  // sphinx

} // namespace grp

#endif // GRP_WORKLOADS_KERNELS_HH
