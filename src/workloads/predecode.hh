/**
 * @file
 * The pre-decoded interpreter: lowers a kernel Program once into a
 * flat, cache-friendly array of fixed-size micro-ops, then executes
 * that array with a tight fetch-dispatch loop.
 *
 * The tree-walking Interpreter (workloads/interpreter.hh) re-derives
 * everything per dynamic statement: it chases std::vector<Node>
 * bodies through a frame stack, switches on Subscript kinds, walks
 * AffineTerm vectors, recomputes dimStrideElems() per dimension and
 * buffers results through a std::deque. DecodedProgram::lower() does
 * all of that exactly once: loop bounds become backward-branch ops,
 * affine subscripts become (coeff, stride) tables indexed by flat
 * slot, and per-dimension strides are folded to bytes. The decoded
 * executor is a program counter over one contiguous op array plus a
 * small power-of-two ring buffer in place of the deque.
 *
 * Equivalence contract: for any (Program, FunctionalMemory, seed,
 * passes), DecodedInterpreter emits a TraceOp stream element-for-
 * element identical to Interpreter — including the order of RNG
 * draws, the per-dimension wrap-into-extent semantics, null-pointer
 * statement skips and the pass/reset lifecycle. tests/
 * test_predecode.cc asserts this across every registered kernel; the
 * tree walker stays available behind GRP_INTERP=tree so the check
 * can run forever.
 */

#ifndef GRP_WORKLOADS_PREDECODE_HH
#define GRP_WORKLOADS_PREDECODE_HH

#include <memory>
#include <vector>

#include "compiler/ir.hh"
#include "cpu/trace.hh"
#include "mem/functional_memory.hh"
#include "sim/rng.hh"

namespace grp
{

/** Flat affine expression: constant + sum of terms in the shared
 *  term pool [termBegin, termBegin + termCount). */
struct DecodedAffine
{
    int64_t constant = 0;
    uint32_t termBegin = 0;
    uint32_t termCount = 0;
};

/** One coeff * var term of a DecodedAffine. */
struct DecodedTerm
{
    uint32_t var = 0;
    int64_t coeff = 0;
};

/** One lowered subscript dimension. extent is the wrap modulus and
 *  strideBytes the address multiplier, both resolved at decode time
 *  (dimStrideElems * elemSize folded together). */
struct DecodedSub
{
    enum class Kind : uint8_t { Affine, Indirect, Random };

    Kind kind = Kind::Affine;
    DecodedAffine expr; ///< Affine value / Indirect index expression.
    uint64_t extent = 1;
    uint64_t strideBytes = 0;

    // Indirect payload: value = scale * b[index] + offset.
    Addr indexBase = 0;
    uint32_t indexElemSize = 0;
    uint64_t indexElems = 0;
    int64_t scale = 1;
    int64_t offset = 0;
    RefId indexRefId = kInvalidRefId;

    // Random payload.
    uint64_t randomRange = 0;
};

/** Lowered IndirectPf statement: everything the GRP indirect
 *  prefetch op needs, with the target base and element size
 *  pre-multiplied at decode time. */
struct DecodedIndirectPf
{
    DecodedAffine index;
    int64_t everyN = 16;
    Addr indexBase = 0;
    uint32_t indexElemSize = 0;
    uint64_t indexElems = 0;
    Addr targetBase = 0; ///< target.base + indexOffset * elemSize.
    uint32_t elem = 0;   ///< scale * target.elemSize.
    RefId refId = kInvalidRefId;
};

/** Decoded micro-op kinds: the statement kinds plus explicit loop
 *  head/tail branch ops (the lowering of Loop nodes). */
enum class DecodedOpKind : uint8_t
{
    ArrayRef1A,      ///< 1-D affine array ref (hot-path special case).
    ArrayRef,        ///< General N-D array ref.
    PtrLoadFromArray,
    PtrAddrOfArray,
    PtrRef,
    PtrArrayRef,
    PtrUpdateField,
    PtrSelectField,
    PtrUpdateConst,
    ComputeRun,      ///< A run of `count` compute ops.
    IndirectPf,
    LoopHeadCounted, ///< Enter test; initialises the induction var.
    LoopTailCounted, ///< Step + backward branch to the body.
    LoopHeadChase,   ///< Null/zero-trip test; resets the iter counter.
    LoopTailChase,   ///< Advance test + backward branch.
};

/**
 * One fixed-size decoded micro-op. Field roles by kind:
 *
 *  ArrayRef1A        a=sub index        base, isWrite, refId
 *  ArrayRef          a=subBegin, n=subCount, base, isWrite, refId
 *  PtrLoadFromArray  a=sub index, b=dst ptr, base, refId
 *  PtrAddrOfArray    a=sub index, b=dst ptr, base
 *  PtrRef            a=ptr, p0=offset, isWrite, refId
 *  PtrArrayRef       a=ptr, sub fields inline via b=sub index,
 *                    p0=elemSize, isWrite, refId
 *  PtrUpdateField    a=ptr, p0=offset, refId
 *  PtrSelectField    a=src ptr, b=dst ptr, p0=choiceBegin,
 *                    n=choiceCount, refId
 *  PtrUpdateConst    a=ptr, p0=stride
 *  ComputeRun        p0=count
 *  IndirectPf        a=index into the IndirectPf pool
 *  LoopHeadCounted   a=var, b=exit pc, p0=lower, p1=upper, p2=step
 *  LoopTailCounted   a=var, b=body pc, p1=upper, p2=step
 *  LoopHeadChase     a=ptr, b=exit pc, p0=maxIter, p1=counter index
 *  LoopTailChase     a=ptr, b=body pc, p0=maxIter, p1=counter index
 */
struct DecodedOp
{
    DecodedOpKind kind = DecodedOpKind::ComputeRun;
    bool isWrite = false;
    uint16_t n = 0;
    uint32_t a = 0;
    uint32_t b = 0;
    RefId refId = kInvalidRefId;
    Addr base = 0;
    int64_t p0 = 0;
    int64_t p1 = 0;
    int64_t p2 = 0;
};

/** A Program lowered to flat pools; immutable and shareable across
 *  interpreters (decode once, execute per run). */
class DecodedProgram
{
  public:
    /** Lower @p prog. The result is self-contained: it copies every
     *  bound, base and stride it needs out of the IR. */
    static DecodedProgram lower(const Program &prog);

    const std::vector<DecodedOp> &ops() const { return ops_; }

    uint32_t numVars() const { return numVars_; }
    uint32_t numChaseLoops() const { return numChaseLoops_; }
    const std::vector<Addr> &initialPtrs() const { return initialPtrs_; }

  private:
    friend class DecodedInterpreter;

    void lowerBody(const Program &prog, const std::vector<Node> &body);
    void lowerStmt(const Program &prog, const Stmt &stmt);
    void lowerLoop(const Program &prog, const Loop &loop);
    uint32_t addAffine(DecodedAffine &out, const Affine &expr);
    uint32_t addSub(const Program &prog, const ArrayDecl &array,
                    const Subscript &sub, uint64_t extent,
                    uint64_t stride_bytes);

    std::vector<DecodedOp> ops_;
    std::vector<DecodedSub> subs_;
    std::vector<DecodedTerm> terms_;
    std::vector<int64_t> choices_;
    std::vector<DecodedIndirectPf> indirects_;
    std::vector<Addr> initialPtrs_;
    uint32_t numVars_ = 0;
    uint32_t numChaseLoops_ = 0;
};

/** Executes a DecodedProgram into TraceOps (see the equivalence
 *  contract above). */
class DecodedInterpreter : public TraceSource
{
  public:
    /** Execute @p prog (must outlive the interpreter). */
    DecodedInterpreter(const DecodedProgram &prog, FunctionalMemory &mem,
                       uint64_t seed = 1, uint64_t passes = ~0ull);

    /** Owning variant: decodes @p prog internally. */
    DecodedInterpreter(const Program &prog, FunctionalMemory &mem,
                       uint64_t seed = 1, uint64_t passes = ~0ull);

    bool next(TraceOp &op) override;

    /** Ring ops in place and compute runs as spans of a shared
     *  all-compute array — same stream as next(), far fewer virtual
     *  calls on compute-padded kernels. */
    size_t nextBatch(const TraceOp **ops) override;

    /** Restart from the beginning (same seed). Mirrors
     *  Interpreter::reset(), including its quirk of leaving stale
     *  induction-variable values in place. */
    void reset();

    uint64_t opsEmitted() const { return emitted_; }

  private:
    /** Ring capacity; decode rejects statements that could emit more
     *  ops than this in one dispatch (deepest kernels use 4). */
    static constexpr uint32_t kRingSize = 8;
    static constexpr uint32_t kRingMask = kRingSize - 1;

    void startPass();
    void execUntilEmit();
    int64_t evalAffine(const DecodedAffine &expr) const;
    uint64_t evalSub(const DecodedSub &sub);
    void emitLoad(Addr addr, RefId ref);
    void emitStore(Addr addr, RefId ref);

    std::unique_ptr<const DecodedProgram> owned_;
    const DecodedProgram &prog_;
    FunctionalMemory &mem_;
    uint64_t seed_;
    uint64_t maxPasses_;
    uint64_t passesDone_ = 0;

    Rng rng_;
    std::vector<int64_t> vars_;
    std::vector<Addr> ptrs_;
    std::vector<uint64_t> chaseIters_;
    size_t pc_ = 0;

    TraceOp ring_[kRingSize];
    uint32_t ringHead_ = 0;
    uint32_t ringCount_ = 0;
    uint64_t computeRun_ = 0;

    bool finished_ = false;
    uint64_t emitted_ = 0;
};

/** Which interpreter implementation GRP_INTERP selects. */
enum class InterpMode
{
    Decoded, ///< Pre-decoded op stream (default).
    Tree,    ///< Tree-walking reference interpreter.
};

/** Parse GRP_INTERP ("decoded" | "tree", default decoded; anything
 *  else is fatal). */
InterpMode interpMode();

/** Build the TraceSource for one run: a DecodedInterpreter normally,
 *  the tree-walking Interpreter under GRP_INTERP=tree. */
std::unique_ptr<TraceSource> makeTraceSource(const Program &prog,
                                             FunctionalMemory &mem,
                                             uint64_t seed,
                                             uint64_t passes = ~0ull);

} // namespace grp

#endif // GRP_WORKLOADS_PREDECODE_HH
