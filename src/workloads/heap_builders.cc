#include "workloads/heap_builders.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace grp
{

BuiltList
buildLinkedList(FunctionalMemory &mem, uint64_t node_size,
                int64_t next_offset, uint64_t count,
                double shuffle_fraction, Rng &rng)
{
    fatal_if(count == 0, "empty list");
    BuiltList list;
    list.nodes.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        list.nodes.push_back(mem.heapAlloc(node_size, 8));

    // Shuffle traversal order: pick pairs and swap their positions.
    const uint64_t swaps = static_cast<uint64_t>(
        shuffle_fraction * static_cast<double>(count));
    for (uint64_t s = 0; s < swaps; ++s) {
        const uint64_t a = rng.below(count);
        const uint64_t b = rng.below(count);
        std::swap(list.nodes[a], list.nodes[b]);
    }

    for (uint64_t i = 0; i < count; ++i) {
        const Addr next = i + 1 < count ? list.nodes[i + 1] : 0;
        mem.write64(list.nodes[i] + static_cast<uint64_t>(next_offset),
                    next);
    }
    list.head = list.nodes.front();
    return list;
}

BuiltTree
buildTree(FunctionalMemory &mem, uint64_t node_size,
          const std::vector<int64_t> &child_offsets, uint64_t count,
          double shuffle_fraction, Rng &rng)
{
    fatal_if(count == 0 || child_offsets.empty(), "bad tree shape");
    BuiltTree tree;
    tree.nodes.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        tree.nodes.push_back(mem.heapAlloc(node_size, 8));

    const uint64_t swaps = static_cast<uint64_t>(
        shuffle_fraction * static_cast<double>(count));
    for (uint64_t s = 0; s < swaps; ++s) {
        const uint64_t a = rng.below(count);
        const uint64_t b = rng.below(count);
        std::swap(tree.nodes[a], tree.nodes[b]);
    }

    const uint64_t arity = child_offsets.size();
    for (uint64_t i = 0; i < count; ++i) {
        for (uint64_t c = 0; c < arity; ++c) {
            const uint64_t child = i * arity + c + 1;
            const Addr child_addr =
                child < count ? tree.nodes[child] : 0;
            mem.write64(tree.nodes[i] +
                            static_cast<uint64_t>(child_offsets[c]),
                        child_addr);
        }
    }
    tree.root = tree.nodes.front();
    return tree;
}

std::vector<Addr>
buildPointerRows(FunctionalMemory &mem, Addr ptr_array_base,
                 uint64_t rows, uint64_t row_bytes, Rng *shuffle_rng)
{
    std::vector<Addr> addrs;
    addrs.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
        const Addr row = mem.heapAlloc(row_bytes, kBlockBytes);
        // Touch the row's first word so the page exists; rows are
        // data arrays whose values the kernels do not depend on.
        mem.write64(row, i);
        addrs.push_back(row);
    }
    if (shuffle_rng) {
        for (uint64_t i = rows; i > 1; --i) {
            const uint64_t j = shuffle_rng->below(i);
            std::swap(addrs[i - 1], addrs[j]);
        }
    }
    for (uint64_t i = 0; i < rows; ++i)
        mem.write64(ptr_array_base + 8 * i, addrs[i]);
    return addrs;
}

void
fillIndexArray(FunctionalMemory &mem, Addr base, uint64_t count,
               uint64_t value_range, unsigned cluster_run, Rng &rng)
{
    fatal_if(value_range == 0, "empty index range");
    uint64_t current = rng.below(value_range);
    unsigned run = 0;
    for (uint64_t i = 0; i < count; ++i) {
        if (run == 0) {
            current = rng.below(value_range);
            run = cluster_run ? cluster_run : 1;
        } else {
            current = (current + 1) % value_range;
        }
        --run;
        mem.write32(base + 4 * i, static_cast<uint32_t>(current));
    }
}

} // namespace grp
