/**
 * @file
 * Dense floating-point kernels: wupwise, swim, mgrid, applu, apsi.
 *
 * These are the regular Fortran codes of the suite: column-major
 * arrays swept by affine loop nests. Their misses are almost all
 * spatial, which is why SRP/GRP close most of their perfect-L2 gap
 * (Figure 11) with high prefetch accuracy (Table 5). Hot-work bursts
 * (see tuning.hh) calibrate each kernel's misses-per-instruction to
 * paper-like levels.
 */

#include "workloads/kernels.hh"

#include "compiler/builder.hh"
#include "sim/rng.hh"
#include "workloads/tuning.hh"

namespace grp
{

namespace
{

/** 168.wupwise: lattice QCD; unit-stride BLAS-like sweeps over
 *  several large vectors plus one strided access. */
class WupwiseWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"wupwise", true, "dense unit-stride sweeps", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t) override
    {
        ProgramBuilder b(mem);
        const uint64_t n = 384 * 1024; // 3 MB per array.
        ArrayOpts fortran;
        fortran.columnMajor = true;
        const ArrayId x = b.array("x", 8, {n}, fortran);
        const ArrayId y = b.array("y", 8, {n}, fortran);
        const ArrayId z = b.array("z", 8, {n}, fortran);
        const ArrayId m = b.array("m", 8, {4 * n}, fortran);
        const ArrayId hot = declareHotArray(b);

        // zaxpy-like sweep: z(i) = a*x(i) + y(i), m read with stride 4.
        const VarId i = b.forLoop(0, static_cast<int64_t>(n));
        b.arrayRef(x, {Subscript::affine(Affine::var(i))});
        b.arrayRef(y, {Subscript::affine(Affine::var(i))});
        b.arrayRef(m, {Subscript::affine(Affine::var(i, 4))});
        b.compute(3);
        b.arrayRef(z, {Subscript::affine(Affine::var(i))}, true);
        hotWork(b, hot, 130);
        b.end();
        return b.build();
    }
};

/** 171.swim: shallow-water stencils; one loop nest traverses the
 *  arrays against the column-major layout (the "transpose array
 *  access" responsible for 92% of its misses, Table 6). */
class SwimWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"swim", true, "transpose array access", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t) override
    {
        ProgramBuilder b(mem);
        const int64_t n = 768; // 4.5 MB per array.
        ArrayOpts fortran;
        fortran.columnMajor = true;
        const ArrayId u = b.array("u", 8,
                                  {uint64_t(n), uint64_t(n)}, fortran);
        const ArrayId v = b.array("v", 8,
                                  {uint64_t(n), uint64_t(n)}, fortran);
        const ArrayId p = b.array("p", 8,
                                  {uint64_t(n), uint64_t(n)}, fortran);
        const ArrayId hot = declareHotArray(b);

        // Strip-mined interleaving of the two phases so any
        // simulation window samples both (the paper's windows span
        // whole timesteps; ours are much shorter).
        // calc1 strips are wider than transpose strips so the
        // instruction mix favours the stencils while the transpose
        // still dominates the misses (92%, Table 6).
        const int64_t strip = 8;
        const VarId s = b.forLoop(0, (n - 2) / strip);

        // calc1: proper column-order stencil (inner loop walks the
        // spatial dimension), over columns [1+s*strip, ...).
        {
            const VarId jj = b.forLoop(0, strip);
            const VarId i = b.forLoop(1, n - 1);
            Affine j_expr = Affine::var(s, strip, 1);
            j_expr.terms.push_back({jj, 1});
            b.arrayRef(u, {Subscript::affine(Affine::var(i)),
                           Subscript::affine(j_expr)});
            b.arrayRef(v, {Subscript::affine(Affine::var(i)),
                           Subscript::affine(j_expr)});
            b.arrayRef(v, {Subscript::affine(Affine::var(i, 1, -1)),
                           Subscript::affine(j_expr)});
            b.compute(2);
            b.arrayRef(p, {Subscript::affine(Affine::var(i)),
                           Subscript::affine(j_expr)}, true);
            hotWork(b, hot, 40);
            b.end();
            b.end();
        }

        // calc2-like transposed sweep over rows [1+s*strip, ...):
        // the inner loop walks the non-spatial dimension, so every
        // access jumps a full column (the paper's transpose
        // pathology, 92% of swim's misses).
        {
            const VarId j = b.forLoop(1, n - 1);
            Affine i_expr = Affine::var(s, strip, 1);
            b.arrayRef(u, {Subscript::affine(i_expr),
                           Subscript::affine(Affine::var(j))});
            b.arrayRef(p, {Subscript::affine(i_expr),
                           Subscript::affine(Affine::var(j, 1, -1))});
            b.compute(2);
            b.arrayRef(v, {Subscript::affine(i_expr),
                           Subscript::affine(Affine::var(j))}, true);
            hotWork(b, hot, 120);
            b.end();
        }
        b.end();
        return b.build();
    }
};

/** 172.mgrid: multigrid relaxation; 3-D stencil with unit-stride
 *  innermost loops. */
class MgridWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"mgrid", true, "3-D stencil sweeps", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t) override
    {
        ProgramBuilder b(mem);
        const int64_t n = 96; // 6.8 MB per array.
        ArrayOpts fortran;
        fortran.columnMajor = true;
        const ArrayId u = b.array(
            "u", 8, {uint64_t(n), uint64_t(n), uint64_t(n)}, fortran);
        const ArrayId r = b.array(
            "r", 8, {uint64_t(n), uint64_t(n), uint64_t(n)}, fortran);
        const ArrayId hot = declareHotArray(b);

        const VarId k = b.forLoop(1, n - 1);
        const VarId j = b.forLoop(1, n - 1);
        const VarId i = b.forLoop(1, n - 1);
        b.arrayRef(u, {Subscript::affine(Affine::var(i)),
                       Subscript::affine(Affine::var(j)),
                       Subscript::affine(Affine::var(k))});
        b.arrayRef(u, {Subscript::affine(Affine::var(i, 1, -1)),
                       Subscript::affine(Affine::var(j)),
                       Subscript::affine(Affine::var(k))});
        b.arrayRef(u, {Subscript::affine(Affine::var(i)),
                       Subscript::affine(Affine::var(j, 1, 1)),
                       Subscript::affine(Affine::var(k))});
        b.compute(3);
        b.arrayRef(r, {Subscript::affine(Affine::var(i)),
                       Subscript::affine(Affine::var(j)),
                       Subscript::affine(Affine::var(k))}, true);
        hotWork(b, hot, 80);
        b.end();
        b.end();
        b.end();
        return b.build();
    }
};

/** 173.applu: SSOR solver; unit-stride sweeps over the
 *  five-variable solution arrays. */
class AppluWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"applu", true, "dense solver sweeps", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t) override
    {
        ProgramBuilder b(mem);
        const int64_t n = 64;
        const int64_t m = 5; // 5 variables per cell, SSOR style.
        ArrayOpts fortran;
        fortran.columnMajor = true;
        const ArrayId rsd = b.array(
            "rsd", 8,
            {uint64_t(m), uint64_t(n), uint64_t(n), uint64_t(n)},
            fortran);
        const ArrayId frct = b.array(
            "frct", 8,
            {uint64_t(m), uint64_t(n), uint64_t(n), uint64_t(n)},
            fortran);
        const ArrayId hot = declareHotArray(b);

        const VarId k = b.forLoop(1, n - 1);
        const VarId j = b.forLoop(1, n - 1);
        const VarId i = b.forLoop(1, n - 1);
        {
            const VarId v = b.forLoop(0, m);
            b.arrayRef(rsd, {Subscript::affine(Affine::var(v)),
                             Subscript::affine(Affine::var(i)),
                             Subscript::affine(Affine::var(j)),
                             Subscript::affine(Affine::var(k))});
            b.arrayRef(frct, {Subscript::affine(Affine::var(v)),
                              Subscript::affine(Affine::var(i)),
                              Subscript::affine(Affine::var(j)),
                              Subscript::affine(Affine::var(k))});
            b.compute(3);
            b.arrayRef(rsd, {Subscript::affine(Affine::var(v)),
                             Subscript::affine(Affine::var(i)),
                             Subscript::affine(Affine::var(j)),
                             Subscript::affine(Affine::var(k))}, true);
            b.end();
        }
        hotWork(b, hot, 48);
        b.end();
        b.end();
        b.end();
        return b.build();
    }
};

/** 301.apsi: mesoscale weather; modest working set, mixed unit and
 *  plane strides — modest miss rate with very accurate prefetches. */
class ApsiWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"apsi", true, "strided array sweeps", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t) override
    {
        ProgramBuilder b(mem);
        const int64_t nx = 128, ny = 24, nz = 24; // 0.6 MB per array.
        ArrayOpts fortran;
        fortran.columnMajor = true;
        const ArrayId t = b.array(
            "t", 8, {uint64_t(nx), uint64_t(ny), uint64_t(nz)},
            fortran);
        const ArrayId q = b.array(
            "q", 8, {uint64_t(nx), uint64_t(ny), uint64_t(nz)},
            fortran);
        const ArrayId w = b.array(
            "w", 8, {uint64_t(nx), uint64_t(ny), uint64_t(nz)},
            fortran);
        const ArrayId hot = declareHotArray(b);

        // Interleave one k-plane of the column sweep with one
        // j-plane of the vertical sweep per outer step.
        const VarId s = b.forLoop(0, nz);
        // Column sweep, plane k == s.
        {
            const VarId j = b.forLoop(0, ny);
            const VarId i = b.forLoop(0, nx);
            b.arrayRef(t, {Subscript::affine(Affine::var(i)),
                           Subscript::affine(Affine::var(j)),
                           Subscript::affine(Affine::var(s))});
            b.compute(2);
            b.arrayRef(q, {Subscript::affine(Affine::var(i)),
                           Subscript::affine(Affine::var(j)),
                           Subscript::affine(Affine::var(s))}, true);
            hotWork(b, hot, 40);
            b.end();
            b.end();
        }
        // Vertical (plane-strided) sweep, plane j == s.
        {
            const VarId i = b.forLoop(0, nx);
            const VarId k = b.forLoop(0, nz);
            b.arrayRef(w, {Subscript::affine(Affine::var(i)),
                           Subscript::affine(Affine::var(s)),
                           Subscript::affine(Affine::var(k))});
            b.compute(3);
            hotWork(b, hot, 40);
            b.end();
            b.end();
        }
        b.end();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeWupwise()
{
    return std::make_unique<WupwiseWorkload>();
}

std::unique_ptr<Workload>
makeSwim()
{
    return std::make_unique<SwimWorkload>();
}

std::unique_ptr<Workload>
makeMgrid()
{
    return std::make_unique<MgridWorkload>();
}

std::unique_ptr<Workload>
makeApplu()
{
    return std::make_unique<AppluWorkload>();
}

std::unique_ptr<Workload>
makeApsi()
{
    return std::make_unique<ApsiWorkload>();
}

} // namespace grp
