/**
 * @file
 * The workload interface and registry.
 *
 * Each workload is a synthetic kernel standing in for one benchmark
 * of the paper's suite (17 SPEC CPU2000 programs plus Sphinx). A
 * workload allocates its data structures at real addresses in the
 * functional memory and returns the IR program that both the
 * compiler analyses and the interpreter executes. DESIGN.md records
 * which documented access idioms each kernel reproduces.
 */

#ifndef GRP_WORKLOADS_WORKLOAD_HH
#define GRP_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "compiler/ir.hh"
#include "mem/functional_memory.hh"

namespace grp
{

/** Static description of a workload. */
struct WorkloadInfo
{
    std::string name;
    bool isFloat = false;      ///< Figure 10 vs Figure 11 grouping.
    std::string missCause;     ///< Dominant L2 miss cause (Table 6).
    /** Per-workload recursion-depth override (paper: mcf uses 3);
     *  0 keeps the configuration default. */
    unsigned recursiveDepthOverride = 0;
    /** Excluded from performance figures (crafty: 0.4% miss rate). */
    bool negligibleL2 = false;
};

/** One synthetic benchmark kernel. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual WorkloadInfo info() const = 0;

    /**
     * Allocate data in @p mem and build the kernel's IR.
     * Deterministic for a given @p seed.
     */
    virtual Program build(FunctionalMemory &mem, uint64_t seed) = 0;
};

/** Names of all registered workloads, in suite order. */
std::vector<std::string> workloadNames();

/** Instantiate a workload by name (fatal on unknown names). */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace grp

#endif // GRP_WORKLOADS_WORKLOAD_HH
