#include "workloads/interpreter.hh"

#include "sim/logging.hh"

namespace grp
{

Interpreter::Interpreter(const Program &prog, FunctionalMemory &mem,
                         uint64_t seed, uint64_t passes)
    : prog_(prog),
      mem_(mem),
      seed_(seed),
      maxPasses_(passes),
      rng_(seed)
{
    vars_.resize(static_cast<size_t>(prog.nextVarId), 0);
    ptrs_.resize(prog.ptrs.size(), 0);
    startPass();
}

void
Interpreter::reset()
{
    rng_.reseed(seed_);
    passesDone_ = 0;
    pending_.clear();
    finished_ = false;
    emitted_ = 0;
    startPass();
}

void
Interpreter::startPass()
{
    stack_.clear();
    for (size_t i = 0; i < prog_.ptrs.size(); ++i)
        ptrs_[i] = prog_.ptrs[i].initial;
    stack_.push_back(Frame{&prog_.top, 0, nullptr, 0});
}

int64_t
Interpreter::evalAffine(const Affine &expr) const
{
    int64_t value = expr.constant;
    for (const AffineTerm &term : expr.terms)
        value += term.coeff * vars_[static_cast<size_t>(term.var)];
    return value;
}

uint64_t
Interpreter::evalSubscript(const Subscript &sub, uint64_t extent)
{
    int64_t value = 0;
    switch (sub.kind) {
      case Subscript::Kind::AffineExpr:
        value = evalAffine(sub.expr);
        break;
      case Subscript::Kind::Indirect: {
        const ArrayDecl &index = prog_.arrays[sub.indexArray];
        int64_t idx = evalAffine(sub.indexExpr);
        const uint64_t elems = index.totalElems();
        idx = static_cast<int64_t>(
            static_cast<uint64_t>(idx) % elems);
        const Addr index_addr =
            index.base + static_cast<uint64_t>(idx) * index.elemSize;
        emitLoad(index_addr, sub.indexRefId);
        const uint64_t loaded =
            index.elemSize == 4 ? mem_.read32(index_addr)
                                : mem_.read64(index_addr);
        value = sub.scale * static_cast<int64_t>(loaded) + sub.offset;
        break;
      }
      case Subscript::Kind::Random:
        value = static_cast<int64_t>(rng_.below(sub.randomRange));
        break;
    }
    // Keep synthetic kernels memory-safe even with hostile index
    // data: wrap into the dimension.
    return static_cast<uint64_t>(value) % extent;
}

Addr
Interpreter::arrayElemAddr(const ArrayDecl &array,
                           const std::vector<Subscript> &subs)
{
    uint64_t linear = 0;
    for (size_t d = 0; d < subs.size(); ++d) {
        const uint64_t idx = evalSubscript(subs[d], array.extents[d]);
        linear += idx * array.dimStrideElems(d);
    }
    return array.base + linear * array.elemSize;
}

Addr
Interpreter::linearElemAddr(const ArrayDecl &array, const Subscript &sub)
{
    const uint64_t idx = evalSubscript(sub, array.totalElems());
    return array.base + idx * array.elemSize;
}

void
Interpreter::emitLoad(Addr addr, RefId ref)
{
    pending_.push_back(TraceOp::load(addr, ref));
    ++emitted_;
}

void
Interpreter::emitStore(Addr addr, RefId ref)
{
    pending_.push_back(TraceOp::store(addr, ref));
    ++emitted_;
}

void
Interpreter::exec(const Stmt &stmt)
{
    switch (stmt.kind) {
      case StmtKind::ArrayRef: {
        const ArrayDecl &array = prog_.arrays[stmt.array];
        const Addr addr = arrayElemAddr(array, stmt.subs);
        if (stmt.isWrite)
            emitStore(addr, stmt.refId);
        else
            emitLoad(addr, stmt.refId);
        break;
      }
      case StmtKind::PtrLoadFromArray: {
        const ArrayDecl &array = prog_.arrays[stmt.array];
        const Addr addr = linearElemAddr(array, stmt.subs[0]);
        emitLoad(addr, stmt.refId);
        ptrs_[static_cast<size_t>(stmt.ptr)] = mem_.read64(addr);
        break;
      }
      case StmtKind::PtrAddrOfArray: {
        const ArrayDecl &array = prog_.arrays[stmt.array];
        ptrs_[static_cast<size_t>(stmt.ptr)] =
            linearElemAddr(array, stmt.subs[0]);
        break;
      }
      case StmtKind::PtrRef: {
        const Addr base = ptrs_[static_cast<size_t>(stmt.ptr)];
        if (base == 0)
            break; // Null dereference would be a kernel bug; skip.
        const Addr addr = base + static_cast<uint64_t>(stmt.offset);
        if (stmt.isWrite)
            emitStore(addr, stmt.refId);
        else
            emitLoad(addr, stmt.refId);
        break;
      }
      case StmtKind::PtrArrayRef: {
        const Addr base = ptrs_[static_cast<size_t>(stmt.ptr)];
        if (base == 0)
            break;
        const int64_t idx = stmt.subs[0].kind ==
                                    Subscript::Kind::AffineExpr
                                ? evalAffine(stmt.subs[0].expr)
                                : static_cast<int64_t>(rng_.below(
                                      stmt.subs[0].randomRange));
        const Addr addr =
            base + static_cast<uint64_t>(idx) * stmt.elemSize;
        if (stmt.isWrite)
            emitStore(addr, stmt.refId);
        else
            emitLoad(addr, stmt.refId);
        break;
      }
      case StmtKind::PtrUpdateField: {
        const Addr base = ptrs_[static_cast<size_t>(stmt.ptr)];
        if (base == 0)
            break;
        const Addr addr = base + static_cast<uint64_t>(stmt.offset);
        emitLoad(addr, stmt.refId);
        ptrs_[static_cast<size_t>(stmt.ptr)] = mem_.read64(addr);
        break;
      }
      case StmtKind::PtrSelectField: {
        const Addr base = ptrs_[static_cast<size_t>(stmt.srcPtr)];
        if (base == 0)
            break;
        const int64_t offset = stmt.offsetChoices[rng_.below(
            stmt.offsetChoices.size())];
        const Addr addr = base + static_cast<uint64_t>(offset);
        emitLoad(addr, stmt.refId);
        ptrs_[static_cast<size_t>(stmt.ptr)] = mem_.read64(addr);
        break;
      }
      case StmtKind::PtrUpdateConst:
        ptrs_[static_cast<size_t>(stmt.ptr)] = static_cast<Addr>(
            static_cast<int64_t>(
                ptrs_[static_cast<size_t>(stmt.ptr)]) +
            stmt.stride);
        break;
      case StmtKind::Compute:
        for (uint32_t i = 0; i < stmt.count; ++i) {
            pending_.push_back(TraceOp::compute());
            ++emitted_;
        }
        break;
      case StmtKind::IndirectPf: {
        const int64_t idx = evalAffine(stmt.indexExpr);
        if (idx % static_cast<int64_t>(stmt.everyN) != 0)
            break;
        const ArrayDecl &index = prog_.arrays[stmt.indexArray];
        const ArrayDecl &target = prog_.arrays[stmt.targetArray];
        const uint64_t wrapped = static_cast<uint64_t>(idx) %
                                 index.totalElems();
        const Addr index_addr =
            index.base + wrapped * index.elemSize;
        const Addr base =
            target.base + static_cast<uint64_t>(stmt.indexOffset) *
                              target.elemSize;
        const uint32_t elem = static_cast<uint32_t>(
            stmt.scale * static_cast<int64_t>(target.elemSize));
        pending_.push_back(
            TraceOp::indirect(base, elem, index_addr, stmt.refId));
        ++emitted_;
        break;
      }
    }
}

void
Interpreter::enterLoop(const Loop &loop)
{
    if (loop.kind == Loop::Kind::Counted) {
        const bool runs = loop.step > 0 ? loop.lower < loop.upper
                                        : loop.lower > loop.upper;
        if (!runs)
            return;
        vars_[static_cast<size_t>(loop.var)] = loop.lower;
    } else {
        if (ptrs_[static_cast<size_t>(loop.chasePtr)] == 0 ||
            loop.maxIter == 0) {
            return;
        }
    }
    stack_.push_back(Frame{&loop.body, 0, &loop, 0});
}

void
Interpreter::finishFrame()
{
    Frame &frame = stack_.back();
    const Loop *loop = frame.loop;
    if (loop == nullptr) {
        // End of a whole pass.
        stack_.pop_back();
        ++passesDone_;
        if (passesDone_ < maxPasses_)
            startPass();
        else
            finished_ = true;
        return;
    }
    if (loop->kind == Loop::Kind::Counted) {
        int64_t &var = vars_[static_cast<size_t>(loop->var)];
        var += loop->step;
        const bool more = loop->step > 0 ? var < loop->upper
                                         : var > loop->upper;
        if (more) {
            frame.pos = 0;
            return;
        }
    } else {
        ++frame.chaseIters;
        if (ptrs_[static_cast<size_t>(loop->chasePtr)] != 0 &&
            frame.chaseIters < loop->maxIter) {
            frame.pos = 0;
            return;
        }
    }
    stack_.pop_back();
}

bool
Interpreter::step()
{
    if (finished_)
        return false;
    Frame &frame = stack_.back();
    if (frame.pos >= frame.body->size()) {
        finishFrame();
        return !finished_;
    }
    const Node &node = (*frame.body)[frame.pos++];
    if (node.kind == Node::Kind::Statement)
        exec(node.stmt);
    else
        enterLoop(node.loop);
    return true;
}

bool
Interpreter::next(TraceOp &op)
{
    while (pending_.empty()) {
        if (!step())
            return false;
    }
    op = pending_.front();
    pending_.pop_front();
    return true;
}

} // namespace grp
