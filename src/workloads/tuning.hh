/**
 * @file
 * Shared helpers for calibrating kernel instruction mixes.
 *
 * Real SPEC programs execute hundreds of cache-friendly instructions
 * per L2 miss; the synthetic kernels reproduce that by interleaving
 * their cold "signature" accesses with bursts of hot work — loads
 * from a small L1-resident scratch array plus ALU operations. The
 * hot-work size per iteration is each kernel's main calibration
 * knob for the paper's per-benchmark perfect-L2 gaps.
 */

#ifndef GRP_WORKLOADS_TUNING_HH
#define GRP_WORKLOADS_TUNING_HH

#include "compiler/builder.hh"

namespace grp
{

/** Elements in a hot scratch array (8 KB: comfortably L1-resident). */
constexpr uint64_t kHotElems = 1024;

/** Declare a kernel's hot scratch array. */
inline ArrayId
declareHotArray(ProgramBuilder &b, const char *name = "scratch")
{
    return b.array(name, 8, {kHotElems});
}

/**
 * Emit a burst of hot work: a loop of @p iters iterations, each one
 * L1-resident load plus two ALU ops (~3 * iters instructions).
 * Bounds are capped so the scratch array is never overrun.
 */
inline void
hotWork(ProgramBuilder &b, ArrayId hot, int64_t iters)
{
    if (iters <= 0)
        return;
    if (iters > static_cast<int64_t>(kHotElems))
        iters = static_cast<int64_t>(kHotElems);
    const VarId j = b.forLoop(0, iters);
    b.arrayRef(hot, {Subscript::affine(Affine::var(j))});
    b.compute(2);
    b.end();
}

} // namespace grp

#endif // GRP_WORKLOADS_TUNING_HH
