#include "workloads/predecode.hh"

#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"
#include "workloads/interpreter.hh"

namespace grp
{

// ---------------------------------------------------------------------------
// Lowering.

uint32_t
DecodedProgram::addAffine(DecodedAffine &out, const Affine &expr)
{
    out.constant = expr.constant;
    out.termBegin = static_cast<uint32_t>(terms_.size());
    out.termCount = static_cast<uint32_t>(expr.terms.size());
    for (const AffineTerm &term : expr.terms)
        terms_.push_back(DecodedTerm{static_cast<uint32_t>(term.var),
                                     term.coeff});
    return out.termCount;
}

uint32_t
DecodedProgram::addSub(const Program &prog, const ArrayDecl &array,
                       const Subscript &sub, uint64_t extent,
                       uint64_t stride_bytes)
{
    (void)array;
    DecodedSub d;
    d.extent = extent;
    d.strideBytes = stride_bytes;
    switch (sub.kind) {
      case Subscript::Kind::AffineExpr:
        d.kind = DecodedSub::Kind::Affine;
        addAffine(d.expr, sub.expr);
        break;
      case Subscript::Kind::Indirect: {
        d.kind = DecodedSub::Kind::Indirect;
        addAffine(d.expr, sub.indexExpr);
        const ArrayDecl &index =
            prog.arrays[static_cast<size_t>(sub.indexArray)];
        d.indexBase = index.base;
        d.indexElemSize = index.elemSize;
        d.indexElems = index.totalElems();
        d.scale = sub.scale;
        d.offset = sub.offset;
        d.indexRefId = sub.indexRefId;
        break;
      }
      case Subscript::Kind::Random:
        d.kind = DecodedSub::Kind::Random;
        d.randomRange = sub.randomRange;
        break;
    }
    subs_.push_back(d);
    return static_cast<uint32_t>(subs_.size() - 1);
}

void
DecodedProgram::lowerStmt(const Program &prog, const Stmt &stmt)
{
    DecodedOp op;
    op.isWrite = stmt.isWrite;
    op.refId = stmt.refId;
    switch (stmt.kind) {
      case StmtKind::ArrayRef: {
        const ArrayDecl &array =
            prog.arrays[static_cast<size_t>(stmt.array)];
        fatal_if(stmt.subs.size() + 1 > 8,
                 "array reference with %zu dimensions overflows the "
                 "decoded ring buffer", stmt.subs.size());
        const uint32_t begin = static_cast<uint32_t>(subs_.size());
        for (size_t d = 0; d < stmt.subs.size(); ++d) {
            addSub(prog, array, stmt.subs[d], array.extents[d],
                   array.dimStrideElems(d) * array.elemSize);
        }
        op.base = array.base;
        op.a = begin;
        op.n = static_cast<uint16_t>(stmt.subs.size());
        op.kind = (op.n == 1 &&
                   stmt.subs[0].kind == Subscript::Kind::AffineExpr)
                      ? DecodedOpKind::ArrayRef1A
                      : DecodedOpKind::ArrayRef;
        break;
      }
      case StmtKind::PtrLoadFromArray:
      case StmtKind::PtrAddrOfArray: {
        const ArrayDecl &array =
            prog.arrays[static_cast<size_t>(stmt.array)];
        op.kind = stmt.kind == StmtKind::PtrLoadFromArray
                      ? DecodedOpKind::PtrLoadFromArray
                      : DecodedOpKind::PtrAddrOfArray;
        op.a = addSub(prog, array, stmt.subs[0], array.totalElems(),
                      array.elemSize);
        op.b = static_cast<uint32_t>(stmt.ptr);
        op.base = array.base;
        break;
      }
      case StmtKind::PtrRef:
        op.kind = DecodedOpKind::PtrRef;
        op.a = static_cast<uint32_t>(stmt.ptr);
        op.p0 = stmt.offset;
        break;
      case StmtKind::PtrArrayRef: {
        op.kind = DecodedOpKind::PtrArrayRef;
        op.a = static_cast<uint32_t>(stmt.ptr);
        op.p0 = static_cast<int64_t>(stmt.elemSize);
        // The tree walker treats any non-affine subscript here as
        // Random (PtrArrayRef never carries Indirect subscripts);
        // mirror that binary choice exactly.
        DecodedSub d;
        if (stmt.subs[0].kind == Subscript::Kind::AffineExpr) {
            d.kind = DecodedSub::Kind::Affine;
            addAffine(d.expr, stmt.subs[0].expr);
        } else {
            d.kind = DecodedSub::Kind::Random;
            d.randomRange = stmt.subs[0].randomRange;
        }
        subs_.push_back(d);
        op.b = static_cast<uint32_t>(subs_.size() - 1);
        break;
      }
      case StmtKind::PtrUpdateField:
        op.kind = DecodedOpKind::PtrUpdateField;
        op.a = static_cast<uint32_t>(stmt.ptr);
        op.p0 = stmt.offset;
        break;
      case StmtKind::PtrSelectField:
        op.kind = DecodedOpKind::PtrSelectField;
        op.a = static_cast<uint32_t>(stmt.srcPtr);
        op.b = static_cast<uint32_t>(stmt.ptr);
        op.p0 = static_cast<int64_t>(choices_.size());
        op.n = static_cast<uint16_t>(stmt.offsetChoices.size());
        choices_.insert(choices_.end(), stmt.offsetChoices.begin(),
                        stmt.offsetChoices.end());
        break;
      case StmtKind::PtrUpdateConst:
        op.kind = DecodedOpKind::PtrUpdateConst;
        op.a = static_cast<uint32_t>(stmt.ptr);
        op.p0 = stmt.stride;
        break;
      case StmtKind::Compute:
        if (stmt.count == 0)
            return; // The tree walker emits nothing either.
        op.kind = DecodedOpKind::ComputeRun;
        op.p0 = static_cast<int64_t>(stmt.count);
        break;
      case StmtKind::IndirectPf: {
        const ArrayDecl &index =
            prog.arrays[static_cast<size_t>(stmt.indexArray)];
        const ArrayDecl &target =
            prog.arrays[static_cast<size_t>(stmt.targetArray)];
        DecodedIndirectPf pf;
        addAffine(pf.index, stmt.indexExpr);
        pf.everyN = static_cast<int64_t>(stmt.everyN);
        pf.indexBase = index.base;
        pf.indexElemSize = index.elemSize;
        pf.indexElems = index.totalElems();
        pf.targetBase = target.base +
                        static_cast<uint64_t>(stmt.indexOffset) *
                            target.elemSize;
        pf.elem = static_cast<uint32_t>(
            stmt.scale * static_cast<int64_t>(target.elemSize));
        pf.refId = stmt.refId;
        indirects_.push_back(pf);
        op.kind = DecodedOpKind::IndirectPf;
        op.a = static_cast<uint32_t>(indirects_.size() - 1);
        break;
      }
    }
    ops_.push_back(op);
}

void
DecodedProgram::lowerLoop(const Program &prog, const Loop &loop)
{
    const size_t head = ops_.size();
    DecodedOp h;
    if (loop.kind == Loop::Kind::Counted) {
        h.kind = DecodedOpKind::LoopHeadCounted;
        h.a = static_cast<uint32_t>(loop.var);
        h.p0 = loop.lower;
        h.p1 = loop.upper;
        h.p2 = loop.step;
    } else {
        h.kind = DecodedOpKind::LoopHeadChase;
        h.a = static_cast<uint32_t>(loop.chasePtr);
        h.p0 = static_cast<int64_t>(loop.maxIter);
        h.p1 = static_cast<int64_t>(numChaseLoops_++);
    }
    ops_.push_back(h);
    lowerBody(prog, loop.body);
    DecodedOp t;
    if (loop.kind == Loop::Kind::Counted) {
        t.kind = DecodedOpKind::LoopTailCounted;
        t.a = static_cast<uint32_t>(loop.var);
        t.p1 = loop.upper;
        t.p2 = loop.step;
    } else {
        t.kind = DecodedOpKind::LoopTailChase;
        t.a = static_cast<uint32_t>(loop.chasePtr);
        t.p0 = static_cast<int64_t>(loop.maxIter);
        t.p1 = ops_[head].p1;
    }
    t.b = static_cast<uint32_t>(head + 1);
    ops_.push_back(t);
    ops_[head].b = static_cast<uint32_t>(ops_.size());
}

void
DecodedProgram::lowerBody(const Program &prog,
                          const std::vector<Node> &body)
{
    for (const Node &node : body) {
        if (node.kind == Node::Kind::Statement)
            lowerStmt(prog, node.stmt);
        else
            lowerLoop(prog, node.loop);
    }
}

DecodedProgram
DecodedProgram::lower(const Program &prog)
{
    DecodedProgram d;
    d.numVars_ = static_cast<uint32_t>(prog.nextVarId);
    d.initialPtrs_.reserve(prog.ptrs.size());
    for (const PtrDecl &ptr : prog.ptrs)
        d.initialPtrs_.push_back(ptr.initial);
    d.lowerBody(prog, prog.top);
    return d;
}

// ---------------------------------------------------------------------------
// Execution.

DecodedInterpreter::DecodedInterpreter(const DecodedProgram &prog,
                                       FunctionalMemory &mem,
                                       uint64_t seed, uint64_t passes)
    : prog_(prog),
      mem_(mem),
      seed_(seed),
      maxPasses_(passes),
      rng_(seed)
{
    vars_.resize(prog_.numVars(), 0);
    ptrs_.resize(prog_.initialPtrs().size(), 0);
    chaseIters_.resize(prog_.numChaseLoops(), 0);
    startPass();
}

DecodedInterpreter::DecodedInterpreter(const Program &prog,
                                       FunctionalMemory &mem,
                                       uint64_t seed, uint64_t passes)
    : owned_(std::make_unique<DecodedProgram>(
          DecodedProgram::lower(prog))),
      prog_(*owned_),
      mem_(mem),
      seed_(seed),
      maxPasses_(passes),
      rng_(seed)
{
    vars_.resize(prog_.numVars(), 0);
    ptrs_.resize(prog_.initialPtrs().size(), 0);
    chaseIters_.resize(prog_.numChaseLoops(), 0);
    startPass();
}

void
DecodedInterpreter::startPass()
{
    const std::vector<Addr> &initial = prog_.initialPtrs();
    for (size_t i = 0; i < initial.size(); ++i)
        ptrs_[i] = initial[i];
    pc_ = 0;
}

void
DecodedInterpreter::reset()
{
    // Mirrors Interpreter::reset(): the RNG reseeds and pointers
    // restart, but induction variables keep their last values.
    rng_.reseed(seed_);
    passesDone_ = 0;
    ringHead_ = 0;
    ringCount_ = 0;
    computeRun_ = 0;
    finished_ = false;
    emitted_ = 0;
    startPass();
}

int64_t
DecodedInterpreter::evalAffine(const DecodedAffine &expr) const
{
    int64_t value = expr.constant;
    const DecodedTerm *terms = prog_.terms_.data() + expr.termBegin;
    for (uint32_t i = 0; i < expr.termCount; ++i)
        value += terms[i].coeff * vars_[terms[i].var];
    return value;
}

void
DecodedInterpreter::emitLoad(Addr addr, RefId ref)
{
    ring_[(ringHead_ + ringCount_) & kRingMask] = TraceOp::load(addr, ref);
    ++ringCount_;
    ++emitted_;
}

void
DecodedInterpreter::emitStore(Addr addr, RefId ref)
{
    ring_[(ringHead_ + ringCount_) & kRingMask] =
        TraceOp::store(addr, ref);
    ++ringCount_;
    ++emitted_;
}

uint64_t
DecodedInterpreter::evalSub(const DecodedSub &sub)
{
    int64_t value = 0;
    switch (sub.kind) {
      case DecodedSub::Kind::Affine:
        value = evalAffine(sub.expr);
        break;
      case DecodedSub::Kind::Indirect: {
        int64_t idx = evalAffine(sub.expr);
        idx = static_cast<int64_t>(static_cast<uint64_t>(idx) %
                                   sub.indexElems);
        const Addr index_addr =
            sub.indexBase +
            static_cast<uint64_t>(idx) * sub.indexElemSize;
        emitLoad(index_addr, sub.indexRefId);
        const uint64_t loaded = sub.indexElemSize == 4
                                    ? mem_.read32(index_addr)
                                    : mem_.read64(index_addr);
        value = sub.scale * static_cast<int64_t>(loaded) + sub.offset;
        break;
      }
      case DecodedSub::Kind::Random:
        value = static_cast<int64_t>(rng_.below(sub.randomRange));
        break;
    }
    return static_cast<uint64_t>(value) % sub.extent;
}

void
DecodedInterpreter::execUntilEmit()
{
    const DecodedOp *ops = prog_.ops_.data();
    const size_t op_count = prog_.ops_.size();
    const DecodedSub *subs = prog_.subs_.data();

    while (ringCount_ == 0 && computeRun_ == 0) {
        if (pc_ >= op_count) {
            ++passesDone_;
            if (passesDone_ < maxPasses_) {
                startPass();
                continue;
            }
            finished_ = true;
            return;
        }
        const DecodedOp &op = ops[pc_];
        switch (op.kind) {
          case DecodedOpKind::ArrayRef1A: {
            const DecodedSub &sub = subs[op.a];
            const uint64_t idx =
                static_cast<uint64_t>(evalAffine(sub.expr)) %
                sub.extent;
            const Addr addr = op.base + idx * sub.strideBytes;
            if (op.isWrite)
                emitStore(addr, op.refId);
            else
                emitLoad(addr, op.refId);
            ++pc_;
            break;
          }
          case DecodedOpKind::ArrayRef: {
            Addr addr = op.base;
            for (uint16_t d = 0; d < op.n; ++d) {
                const DecodedSub &sub = subs[op.a + d];
                addr += evalSub(sub) * sub.strideBytes;
            }
            if (op.isWrite)
                emitStore(addr, op.refId);
            else
                emitLoad(addr, op.refId);
            ++pc_;
            break;
          }
          case DecodedOpKind::PtrLoadFromArray: {
            const DecodedSub &sub = subs[op.a];
            const Addr addr = op.base + evalSub(sub) * sub.strideBytes;
            emitLoad(addr, op.refId);
            ptrs_[op.b] = mem_.read64(addr);
            ++pc_;
            break;
          }
          case DecodedOpKind::PtrAddrOfArray: {
            const DecodedSub &sub = subs[op.a];
            ptrs_[op.b] = op.base + evalSub(sub) * sub.strideBytes;
            ++pc_;
            break;
          }
          case DecodedOpKind::PtrRef: {
            const Addr base = ptrs_[op.a];
            if (base != 0) {
                const Addr addr =
                    base + static_cast<uint64_t>(op.p0);
                if (op.isWrite)
                    emitStore(addr, op.refId);
                else
                    emitLoad(addr, op.refId);
            }
            ++pc_;
            break;
          }
          case DecodedOpKind::PtrArrayRef: {
            const Addr base = ptrs_[op.a];
            if (base != 0) {
                const DecodedSub &sub = subs[op.b];
                const int64_t idx =
                    sub.kind == DecodedSub::Kind::Affine
                        ? evalAffine(sub.expr)
                        : static_cast<int64_t>(
                              rng_.below(sub.randomRange));
                const Addr addr =
                    base + static_cast<uint64_t>(idx) *
                               static_cast<uint64_t>(op.p0);
                if (op.isWrite)
                    emitStore(addr, op.refId);
                else
                    emitLoad(addr, op.refId);
            }
            ++pc_;
            break;
          }
          case DecodedOpKind::PtrUpdateField: {
            const Addr base = ptrs_[op.a];
            if (base != 0) {
                const Addr addr =
                    base + static_cast<uint64_t>(op.p0);
                emitLoad(addr, op.refId);
                ptrs_[op.a] = mem_.read64(addr);
            }
            ++pc_;
            break;
          }
          case DecodedOpKind::PtrSelectField: {
            const Addr base = ptrs_[op.a];
            if (base != 0) {
                const int64_t offset =
                    prog_.choices_[static_cast<size_t>(op.p0) +
                                   rng_.below(op.n)];
                const Addr addr =
                    base + static_cast<uint64_t>(offset);
                emitLoad(addr, op.refId);
                ptrs_[op.b] = mem_.read64(addr);
            }
            ++pc_;
            break;
          }
          case DecodedOpKind::PtrUpdateConst:
            ptrs_[op.a] = static_cast<Addr>(
                static_cast<int64_t>(ptrs_[op.a]) + op.p0);
            ++pc_;
            break;
          case DecodedOpKind::ComputeRun:
            computeRun_ = static_cast<uint64_t>(op.p0);
            emitted_ += computeRun_;
            ++pc_;
            break;
          case DecodedOpKind::IndirectPf: {
            const DecodedIndirectPf &pf = prog_.indirects_[op.a];
            const int64_t idx = evalAffine(pf.index);
            if (idx % pf.everyN == 0) {
                const uint64_t wrapped =
                    static_cast<uint64_t>(idx) % pf.indexElems;
                const Addr index_addr =
                    pf.indexBase + wrapped * pf.indexElemSize;
                ring_[(ringHead_ + ringCount_) & kRingMask] =
                    TraceOp::indirect(pf.targetBase, pf.elem,
                                      index_addr, pf.refId);
                ++ringCount_;
                ++emitted_;
            }
            ++pc_;
            break;
          }
          case DecodedOpKind::LoopHeadCounted: {
            const bool runs = op.p2 > 0 ? op.p0 < op.p1
                                        : op.p0 > op.p1;
            if (runs) {
                vars_[op.a] = op.p0;
                ++pc_;
            } else {
                pc_ = op.b;
            }
            break;
          }
          case DecodedOpKind::LoopTailCounted: {
            int64_t &var = vars_[op.a];
            var += op.p2;
            const bool more = op.p2 > 0 ? var < op.p1 : var > op.p1;
            pc_ = more ? op.b : pc_ + 1;
            break;
          }
          case DecodedOpKind::LoopHeadChase: {
            if (ptrs_[op.a] == 0 || op.p0 == 0) {
                pc_ = op.b;
            } else {
                chaseIters_[static_cast<size_t>(op.p1)] = 0;
                ++pc_;
            }
            break;
          }
          case DecodedOpKind::LoopTailChase: {
            uint64_t &iters = chaseIters_[static_cast<size_t>(op.p1)];
            ++iters;
            const bool more =
                ptrs_[op.a] != 0 &&
                iters < static_cast<uint64_t>(op.p0);
            pc_ = more ? op.b : pc_ + 1;
            break;
          }
        }
    }
}

bool
DecodedInterpreter::next(TraceOp &op)
{
    for (;;) {
        if (ringCount_ != 0) {
            op = ring_[ringHead_ & kRingMask];
            ++ringHead_;
            --ringCount_;
            return true;
        }
        if (computeRun_ != 0) {
            --computeRun_;
            op = TraceOp::compute();
            return true;
        }
        if (finished_)
            return false;
        execUntilEmit();
    }
}

namespace
{

/** Shared batch backing a run of compute ops (all default-constructed
 *  TraceOps are computes; read-only, so one array serves every
 *  interpreter on every thread). */
constexpr size_t kComputeBatch = 256;
const TraceOp kComputeOps[kComputeBatch] = {};

} // namespace

size_t
DecodedInterpreter::nextBatch(const TraceOp **ops)
{
    for (;;) {
        if (ringCount_ != 0) {
            // Serve the ring up to its wrap point; the next call picks
            // up the remainder, preserving next()'s order exactly.
            const uint32_t head = ringHead_ & kRingMask;
            const uint32_t run =
                std::min(ringCount_, kRingSize - head);
            *ops = &ring_[head];
            ringHead_ += run;
            ringCount_ -= run;
            return run;
        }
        if (computeRun_ != 0) {
            const size_t run = static_cast<size_t>(
                std::min<uint64_t>(computeRun_, kComputeBatch));
            computeRun_ -= run;
            *ops = kComputeOps;
            return run;
        }
        if (finished_)
            return 0;
        execUntilEmit();
    }
}

// ---------------------------------------------------------------------------
// Selection.

InterpMode
interpMode()
{
    const char *mode = std::getenv("GRP_INTERP");
    if (!mode || !*mode || std::strcmp(mode, "decoded") == 0)
        return InterpMode::Decoded;
    if (std::strcmp(mode, "tree") == 0)
        return InterpMode::Tree;
    fatal("GRP_INTERP must be 'decoded' or 'tree', not '%s'", mode);
}

std::unique_ptr<TraceSource>
makeTraceSource(const Program &prog, FunctionalMemory &mem,
                uint64_t seed, uint64_t passes)
{
    if (interpMode() == InterpMode::Tree)
        return std::make_unique<Interpreter>(prog, mem, seed, passes);
    return std::make_unique<DecodedInterpreter>(prog, mem, seed, passes);
}

} // namespace grp
