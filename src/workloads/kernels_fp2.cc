/**
 * @file
 * Pointer-flavoured floating-point kernels: mesa, art, equake, ammp.
 *
 * These C codes mix arrays with heap data: mesa touches short vertex
 * runs scattered over a large buffer (the variable-region win of
 * Table 4), art and equake read heap arrays through arrays of row
 * pointers (where the paper's pointer prefetching wins, Figure 9),
 * and ammp walks large heap objects through a pointer array.
 */

#include "workloads/kernels.hh"

#include "compiler/builder.hh"
#include "sim/rng.hh"
#include "workloads/heap_builders.hh"
#include "workloads/tuning.hh"

namespace grp
{

namespace
{

/** 177.mesa: 3-D rendering; per-primitive processing touches short
 *  runs of a large vertex buffer, so spatial reuse spans only a
 *  couple of cache blocks (GRP/Var prefetches region size 2 for 90%
 *  of its requests, Table 4). */
class MesaWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"mesa", true, "short vertex runs", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t) override
    {
        ProgramBuilder b(mem);
        const uint64_t verts = 192 * 1024; // 1.5 MB buffer.
        const ArrayId vbuf = b.array("vbuf", 8, {verts});
        const ArrayId hot = declareHotArray(b);
        const PtrId p = b.ptr("vtx");

        const int64_t prims = 64 * 1024;
        const VarId t = b.forLoop(0, prims);
        (void)t;
        // Pick a primitive's vertex run anywhere in the buffer.
        b.ptrAddrOfArray(p, vbuf, Subscript::random(verts - 16));
        {
            const VarId j = b.forLoop(0, 12);
            b.ptrArrayRef(p, 8, Subscript::affine(Affine::var(j)));
            b.compute(2);
            b.end();
        }
        hotWork(b, hot, 1000);
        b.end();
        return b.build();
    }
};

/** 179.art: neural-network image recognition; repeated full sweeps
 *  of the F1 layer plus a column-order traversal of heap rows (the
 *  "transpose heap array access" of Table 6) make it bandwidth
 *  bound. */
class ArtWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"art", true, "bandwidth / transpose heap arrays", 0,
                false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t) override
    {
        ProgramBuilder b(mem);
        const uint64_t f1_elems = 512 * 1024; // 4 MB F1 layer.
        const ArrayId f1 = b.array("f1", 8, {f1_elems});
        const ArrayId hot = declareHotArray(b);

        const uint64_t rows = 2048;
        const uint64_t row_elems = 1024; // 8 KB rows, 16 MB total.
        ArrayOpts ptr_opts;
        ptr_opts.heap = true;
        ptr_opts.elemIsPointer = true;
        const ArrayId tds = b.array("tds", 8, {rows}, ptr_opts);
        // Shuffled binding: array order is decorrelated from row
        // addresses, so only reading the pointers themselves (GRP's
        // pointer hint) predicts the next row.
        Rng shuffle(0x9a7);
        buildPointerRows(mem, b.arrayBase(tds), rows, row_elems * 8,
                         &shuffle);
        const PtrId row = b.ptr("row");

        // Interleave an F1 strip with one transpose column per
        // outer step.
        const VarId s = b.forLoop(0, 512);
        // F1 sweep strip (spatial, bandwidth heavy).
        {
            const VarId ii = b.forLoop(0, 1024);
            Affine f1_expr = Affine::var(s, 1024);
            f1_expr.terms.push_back({ii, 1});
            b.arrayRef(f1, {Subscript::affine(f1_expr)});
            b.compute(1);
            hotWork(b, hot, 12);
            b.end();
        }
        // Transpose traversal of the heap rows: touch every row's
        // s-th element.
        {
            const VarId i = b.forLoop(0,
                                      static_cast<int64_t>(rows));
            b.ptrLoadFromArray(row, tds,
                               Subscript::affine(Affine::var(i)));
            b.ptrArrayRef(row, 8, Subscript::affine(Affine::var(s)));
            b.compute(1);
            hotWork(b, hot, 130);
            b.end();
        }
        b.end();
        return b.build();
    }
};

/** 183.equake: earthquake FEM; sparse matrix-vector products read
 *  rows through a heap array of row pointers — the pattern whose
 *  pointer prefetching gains 48% in Figure 9. */
class EquakeWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"equake", true, "heap arrays of row pointers", 0,
                false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t seed) override
    {
        Rng rng(seed);
        ProgramBuilder b(mem);
        const uint64_t n_rows = 96 * 1024;
        const uint64_t row_elems = 16; // 128 B rows, 12 MB total.
        ArrayOpts ptr_opts;
        ptr_opts.heap = true;
        ptr_opts.elemIsPointer = true;
        const ArrayId rowptr = b.array("K", 8, {n_rows}, ptr_opts);
        buildPointerRows(mem, b.arrayBase(rowptr), n_rows,
                         row_elems * 8);

        const uint64_t n = 256 * 1024;
        const ArrayId x = b.array("x", 8, {n});
        const ArrayId col = b.array("col", 4, {4096});
        fillIndexArray(mem, b.arrayBase(col), 4096, n, 8, rng);
        const ArrayId hot = declareHotArray(b);

        const PtrId row = b.ptr("row");
        const VarId i = b.forLoop(0, static_cast<int64_t>(n_rows));
        b.ptrLoadFromArray(row, rowptr,
                           Subscript::affine(Affine::var(i)));
        {
            const VarId j = b.forLoop(
                0, static_cast<int64_t>(row_elems), 1,
                /*bound_known=*/false); // Row lengths vary at run time.
            b.ptrArrayRef(row, 8, Subscript::affine(Affine::var(j)));
            // Gather x[col[j]] — a small indirect component.
            b.arrayRef(x, {Subscript::indirect(col, Affine::var(j))});
            b.compute(2);
            hotWork(b, hot, 16);
            b.end();
        }
        b.end();
        return b.build();
    }
};

/** 188.ammp: molecular dynamics; iterates a pointer array over
 *  large atom records, touching several fields of each (Table 6:
 *  pointer-structure traversal; Table 3: pointer hints but no
 *  recursive ones). */
class AmmpWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"ammp", true, "atom list traversal", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t seed) override
    {
        Rng rng(seed);
        ProgramBuilder b(mem);
        const uint64_t n_atoms = 4096;
        const uint64_t atom_bytes = 768; // ~3 MB of atoms.

        const TypeId atom_t = b.structType(
            "atom", atom_bytes,
            {{"x", 0, false, kNoId},
             {"y", 8, false, kNoId},
             {"fx", 256, false, kNoId},
             {"fy", 264, false, kNoId},
             {"close", 512, true, kNoId}});

        ArrayOpts ptr_opts;
        ptr_opts.heap = true;
        ptr_opts.elemIsPointer = true;
        const ArrayId atoms = b.array("atoms", 8, {n_atoms}, ptr_opts);
        for (uint64_t i = 0; i < n_atoms; ++i) {
            const Addr a = mem.heapAlloc(atom_bytes, 8);
            mem.write64(b.arrayBase(atoms) + 8 * i, a);
            mem.write64(a + 512, a);
        }
        // Re-point each close pointer at a random neighbour.
        for (uint64_t i = 0; i < n_atoms; ++i) {
            const Addr self = mem.read64(b.arrayBase(atoms) + 8 * i);
            const Addr other = mem.read64(
                b.arrayBase(atoms) + 8 * rng.below(n_atoms));
            mem.write64(self + 512, other);
        }
        const ArrayId hot = declareHotArray(b);

        const PtrId a = b.ptr("a", atom_t);
        const PtrId nb = b.ptr("nb", atom_t);
        const VarId i = b.forLoop(0, static_cast<int64_t>(n_atoms));
        (void)i;
        // The simulation visits atoms in a data-dependent order
        // (real ammp walks linked lists), so the atom loads carry no
        // spatial mark — only the pointer hint guides prefetching.
        b.ptrLoadFromArray(a, atoms, Subscript::random(n_atoms));
        b.ptrRef(a, 0);   // x
        b.ptrRef(a, 8);   // y
        b.ptrRef(a, 256); // fx
        b.compute(3);
        b.ptrSelectField(nb, a, {512}); // follow `close`
        b.ptrRef(nb, 16);               // neighbour z
        b.ptrRef(a, 264, true);         // store fy
        hotWork(b, hot, 450);
        b.end();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeMesa()
{
    return std::make_unique<MesaWorkload>();
}

std::unique_ptr<Workload>
makeArt()
{
    return std::make_unique<ArtWorkload>();
}

std::unique_ptr<Workload>
makeEquake()
{
    return std::make_unique<EquakeWorkload>();
}

std::unique_ptr<Workload>
makeAmmp()
{
    return std::make_unique<AmmpWorkload>();
}

} // namespace grp
