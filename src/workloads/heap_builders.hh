/**
 * @file
 * Helpers that materialise pointer-connected data structures in the
 * functional memory: linked lists, trees, and heap arrays of row
 * pointers. Pointer prefetching reads real pointer bits, so these
 * builders write genuine addresses.
 *
 * Layout control matters: the paper observes that allocation order
 * gives pointer programs spatially-local layouts (why SRP subsumes
 * pointer prefetching on SPEC). Builders therefore support both
 * sequential layout (nodes allocated in traversal order) and
 * shuffled layout (traversal order decorrelated from addresses).
 */

#ifndef GRP_WORKLOADS_HEAP_BUILDERS_HH
#define GRP_WORKLOADS_HEAP_BUILDERS_HH

#include <vector>

#include "mem/functional_memory.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace grp
{

/** A built linked list. */
struct BuiltList
{
    Addr head = 0;
    std::vector<Addr> nodes; ///< In traversal order.
};

/**
 * Build a singly linked list of @p count nodes of @p node_size bytes
 * with the next pointer at @p next_offset.
 *
 * @param shuffle_fraction Fraction of traversal links that jump to a
 *        non-adjacent node (0 = allocation order, 1 = fully
 *        scrambled).
 */
BuiltList buildLinkedList(FunctionalMemory &mem, uint64_t node_size,
                          int64_t next_offset, uint64_t count,
                          double shuffle_fraction, Rng &rng);

/** A built binary (or k-ary) tree. */
struct BuiltTree
{
    Addr root = 0;
    std::vector<Addr> nodes;
};

/**
 * Build a complete k-ary tree of @p count nodes with child pointers
 * at @p child_offsets. Nodes are allocated in BFS order, then an
 * optional fraction of the address<->node binding is shuffled.
 */
BuiltTree buildTree(FunctionalMemory &mem, uint64_t node_size,
                    const std::vector<int64_t> &child_offsets,
                    uint64_t count, double shuffle_fraction, Rng &rng);

/**
 * Allocate @p rows heap rows of @p row_bytes each and write their
 * addresses into the pointer array at @p ptr_array_base
 * (8-byte entries) — the `T **buf` pattern of Figure 4.
 *
 * @param shuffle_rng When non-null, the array-index -> row-address
 *        binding is permuted, so walking the pointer array visits
 *        rows in an address order no stride predictor can learn
 *        (only reading the pointers themselves helps — art's case).
 */
std::vector<Addr> buildPointerRows(FunctionalMemory &mem,
                                   Addr ptr_array_base, uint64_t rows,
                                   uint64_t row_bytes,
                                   Rng *shuffle_rng = nullptr);

/**
 * Fill a 4-byte index array with values in [0, value_range).
 *
 * @param cluster_run With probability ~1, indices continue a
 *        sequential run of this length before jumping (1 = fully
 *        random): vpr's clustered indices vs bzip2's random ones.
 */
void fillIndexArray(FunctionalMemory &mem, Addr base, uint64_t count,
                    uint64_t value_range, unsigned cluster_run,
                    Rng &rng);

} // namespace grp

#endif // GRP_WORKLOADS_HEAP_BUILDERS_HH
