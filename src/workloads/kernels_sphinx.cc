/**
 * @file
 * Sphinx: the speech-recognition application the paper adds to the
 * SPEC suite for its sparse, irregular pointer behaviour. Its misses
 * are dominated by hash-table lookups that touch a handful of
 * adjacent slots per probe (28.8% of misses, Table 6) — short
 * spatial runs where GRP/Var cuts 82% of the traffic at a small
 * performance cost (Table 4), plus Gaussian score sweeps and lexicon
 * list walks.
 */

#include "workloads/kernels.hh"

#include "compiler/builder.hh"
#include "sim/rng.hh"
#include "workloads/heap_builders.hh"
#include "workloads/tuning.hh"

namespace grp
{

namespace
{

class SphinxWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        return {"sphinx", false, "hash table lookup", 0, false};
    }

    Program
    build(FunctionalMemory &mem, uint64_t seed) override
    {
        ProgramBuilder b(mem);
        const uint64_t slots = 2 * 1024 * 1024; // 16 MB hash table.
        const ArrayId table = b.array("hash", 8, {slots});
        const uint64_t scores = 256 * 1024; // 2 MB score vector.
        const ArrayId score = b.array("score", 8, {scores});

        const TypeId lex_t = b.structType(
            "lexnode", 64,
            {{"wid", 0, false, kNoId},
             {"prob", 8, false, kNoId},
             {"next", 16, true, 0}});
        Rng lex_rng(seed + 5);
        BuiltList lex = buildLinkedList(mem, 64, 16, 256 * 1024, 0.7,
                                        lex_rng);

        const ArrayId hot = declareHotArray(b);
        const PtrId slot = b.ptr("slot");
        const PtrId node = b.ptr("node", lex_t, lex.head);

        const VarId frame = b.forLoop(0, 48 * 1024);
        (void)frame;
        // Hash probe: a random bucket, then a short adjacent-slot
        // scan (bound 4 => GRP/Var region of 2 blocks).
        b.ptrAddrOfArray(slot, table, Subscript::random(slots - 8));
        {
            const VarId j = b.forLoop(0, 4);
            b.ptrArrayRef(slot, 8, Subscript::affine(Affine::var(j)));
            b.compute(1);
            b.end();
        }
        // Gaussian scoring: a short sequential segment.
        {
            const VarId s = b.forLoop(0, 8);
            b.arrayRef(score, {Subscript::affine(Affine::var(s, 1))});
            b.compute(1);
            b.end();
        }
        hotWork(b, hot, 240);
        // Lexicon walk: a few scrambled list steps per frame.
        b.whileLoop(node, 3);
        b.ptrRef(node, 8);
        b.ptrUpdateField(node, 16);
        b.end();
        hotWork(b, hot, 240);
        b.compute(3);
        b.end();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeSphinx()
{
    return std::make_unique<SphinxWorkload>();
}

} // namespace grp
