# Empty dependencies file for test_stride.
# This may be replaced when dependencies are built.
