file(REMOVE_RECURSE
  "CMakeFiles/test_induction.dir/test_induction.cc.o"
  "CMakeFiles/test_induction.dir/test_induction.cc.o.d"
  "test_induction"
  "test_induction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_induction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
