file(REMOVE_RECURSE
  "CMakeFiles/test_indirect_analysis.dir/test_indirect_analysis.cc.o"
  "CMakeFiles/test_indirect_analysis.dir/test_indirect_analysis.cc.o.d"
  "test_indirect_analysis"
  "test_indirect_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_indirect_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
