# Empty compiler generated dependencies file for test_indirect_analysis.
# This may be replaced when dependencies are built.
