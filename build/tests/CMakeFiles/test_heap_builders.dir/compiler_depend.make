# Empty compiler generated dependencies file for test_heap_builders.
# This may be replaced when dependencies are built.
