file(REMOVE_RECURSE
  "CMakeFiles/test_heap_builders.dir/test_heap_builders.cc.o"
  "CMakeFiles/test_heap_builders.dir/test_heap_builders.cc.o.d"
  "test_heap_builders"
  "test_heap_builders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heap_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
