# Empty dependencies file for test_engine_factory.
# This may be replaced when dependencies are built.
