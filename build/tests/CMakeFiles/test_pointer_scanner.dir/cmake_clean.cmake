file(REMOVE_RECURSE
  "CMakeFiles/test_pointer_scanner.dir/test_pointer_scanner.cc.o"
  "CMakeFiles/test_pointer_scanner.dir/test_pointer_scanner.cc.o.d"
  "test_pointer_scanner"
  "test_pointer_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointer_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
