# Empty compiler generated dependencies file for test_pointer_scanner.
# This may be replaced when dependencies are built.
