file(REMOVE_RECURSE
  "CMakeFiles/test_region_size.dir/test_region_size.cc.o"
  "CMakeFiles/test_region_size.dir/test_region_size.cc.o.d"
  "test_region_size"
  "test_region_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
