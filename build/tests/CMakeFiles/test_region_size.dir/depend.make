# Empty dependencies file for test_region_size.
# This may be replaced when dependencies are built.
