file(REMOVE_RECURSE
  "CMakeFiles/test_pointer_chase_integration.dir/test_pointer_chase_integration.cc.o"
  "CMakeFiles/test_pointer_chase_integration.dir/test_pointer_chase_integration.cc.o.d"
  "test_pointer_chase_integration"
  "test_pointer_chase_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointer_chase_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
