# Empty compiler generated dependencies file for test_pointer_chase_integration.
# This may be replaced when dependencies are built.
