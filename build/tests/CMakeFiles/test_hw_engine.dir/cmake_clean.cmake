file(REMOVE_RECURSE
  "CMakeFiles/test_hw_engine.dir/test_hw_engine.cc.o"
  "CMakeFiles/test_hw_engine.dir/test_hw_engine.cc.o.d"
  "test_hw_engine"
  "test_hw_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
