# Empty dependencies file for test_hw_engine.
# This may be replaced when dependencies are built.
