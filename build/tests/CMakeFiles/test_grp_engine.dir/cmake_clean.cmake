file(REMOVE_RECURSE
  "CMakeFiles/test_grp_engine.dir/test_grp_engine.cc.o"
  "CMakeFiles/test_grp_engine.dir/test_grp_engine.cc.o.d"
  "test_grp_engine"
  "test_grp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
