# Empty dependencies file for test_grp_engine.
# This may be replaced when dependencies are built.
