file(REMOVE_RECURSE
  "CMakeFiles/test_hints.dir/test_hints.cc.o"
  "CMakeFiles/test_hints.dir/test_hints.cc.o.d"
  "test_hints"
  "test_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
