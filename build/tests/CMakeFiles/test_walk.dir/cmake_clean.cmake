file(REMOVE_RECURSE
  "CMakeFiles/test_walk.dir/test_walk.cc.o"
  "CMakeFiles/test_walk.dir/test_walk.cc.o.d"
  "test_walk"
  "test_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
