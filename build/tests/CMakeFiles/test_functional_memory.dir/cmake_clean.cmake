file(REMOVE_RECURSE
  "CMakeFiles/test_functional_memory.dir/test_functional_memory.cc.o"
  "CMakeFiles/test_functional_memory.dir/test_functional_memory.cc.o.d"
  "test_functional_memory"
  "test_functional_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
