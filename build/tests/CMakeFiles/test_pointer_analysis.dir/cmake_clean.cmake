file(REMOVE_RECURSE
  "CMakeFiles/test_pointer_analysis.dir/test_pointer_analysis.cc.o"
  "CMakeFiles/test_pointer_analysis.dir/test_pointer_analysis.cc.o.d"
  "test_pointer_analysis"
  "test_pointer_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointer_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
