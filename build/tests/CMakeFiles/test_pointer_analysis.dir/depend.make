# Empty dependencies file for test_pointer_analysis.
# This may be replaced when dependencies are built.
