file(REMOVE_RECURSE
  "CMakeFiles/test_throttled_srp.dir/test_throttled_srp.cc.o"
  "CMakeFiles/test_throttled_srp.dir/test_throttled_srp.cc.o.d"
  "test_throttled_srp"
  "test_throttled_srp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_throttled_srp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
