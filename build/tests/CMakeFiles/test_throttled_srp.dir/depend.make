# Empty dependencies file for test_throttled_srp.
# This may be replaced when dependencies are built.
