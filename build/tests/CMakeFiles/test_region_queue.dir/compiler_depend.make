# Empty compiler generated dependencies file for test_region_queue.
# This may be replaced when dependencies are built.
