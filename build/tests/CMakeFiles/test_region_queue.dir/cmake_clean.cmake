file(REMOVE_RECURSE
  "CMakeFiles/test_region_queue.dir/test_region_queue.cc.o"
  "CMakeFiles/test_region_queue.dir/test_region_queue.cc.o.d"
  "test_region_queue"
  "test_region_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
