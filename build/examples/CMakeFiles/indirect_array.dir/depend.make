# Empty dependencies file for indirect_array.
# This may be replaced when dependencies are built.
