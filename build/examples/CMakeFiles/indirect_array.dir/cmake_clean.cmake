file(REMOVE_RECURSE
  "CMakeFiles/indirect_array.dir/indirect_array.cpp.o"
  "CMakeFiles/indirect_array.dir/indirect_array.cpp.o.d"
  "indirect_array"
  "indirect_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indirect_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
