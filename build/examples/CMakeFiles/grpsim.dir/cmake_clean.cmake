file(REMOVE_RECURSE
  "CMakeFiles/grpsim.dir/grpsim.cpp.o"
  "CMakeFiles/grpsim.dir/grpsim.cpp.o.d"
  "grpsim"
  "grpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
