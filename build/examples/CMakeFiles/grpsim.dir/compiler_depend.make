# Empty compiler generated dependencies file for grpsim.
# This may be replaced when dependencies are built.
