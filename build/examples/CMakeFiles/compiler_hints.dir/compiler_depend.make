# Empty compiler generated dependencies file for compiler_hints.
# This may be replaced when dependencies are built.
