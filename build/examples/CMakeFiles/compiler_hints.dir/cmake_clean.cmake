file(REMOVE_RECURSE
  "CMakeFiles/compiler_hints.dir/compiler_hints.cpp.o"
  "CMakeFiles/compiler_hints.dir/compiler_hints.cpp.o.d"
  "compiler_hints"
  "compiler_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
