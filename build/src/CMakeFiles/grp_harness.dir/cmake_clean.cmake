file(REMOVE_RECURSE
  "CMakeFiles/grp_harness.dir/harness/runner.cc.o"
  "CMakeFiles/grp_harness.dir/harness/runner.cc.o.d"
  "CMakeFiles/grp_harness.dir/harness/suite.cc.o"
  "CMakeFiles/grp_harness.dir/harness/suite.cc.o.d"
  "libgrp_harness.a"
  "libgrp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
