file(REMOVE_RECURSE
  "libgrp_harness.a"
)
