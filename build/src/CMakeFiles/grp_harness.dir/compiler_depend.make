# Empty compiler generated dependencies file for grp_harness.
# This may be replaced when dependencies are built.
