
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/heap_builders.cc" "src/CMakeFiles/grp_workloads.dir/workloads/heap_builders.cc.o" "gcc" "src/CMakeFiles/grp_workloads.dir/workloads/heap_builders.cc.o.d"
  "/root/repo/src/workloads/interpreter.cc" "src/CMakeFiles/grp_workloads.dir/workloads/interpreter.cc.o" "gcc" "src/CMakeFiles/grp_workloads.dir/workloads/interpreter.cc.o.d"
  "/root/repo/src/workloads/kernels_fp1.cc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_fp1.cc.o" "gcc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_fp1.cc.o.d"
  "/root/repo/src/workloads/kernels_fp2.cc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_fp2.cc.o" "gcc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_fp2.cc.o.d"
  "/root/repo/src/workloads/kernels_int1.cc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_int1.cc.o" "gcc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_int1.cc.o.d"
  "/root/repo/src/workloads/kernels_int2.cc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_int2.cc.o" "gcc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_int2.cc.o.d"
  "/root/repo/src/workloads/kernels_sphinx.cc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_sphinx.cc.o" "gcc" "src/CMakeFiles/grp_workloads.dir/workloads/kernels_sphinx.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/grp_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/grp_workloads.dir/workloads/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/grp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
