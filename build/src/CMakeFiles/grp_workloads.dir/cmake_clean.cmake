file(REMOVE_RECURSE
  "CMakeFiles/grp_workloads.dir/workloads/heap_builders.cc.o"
  "CMakeFiles/grp_workloads.dir/workloads/heap_builders.cc.o.d"
  "CMakeFiles/grp_workloads.dir/workloads/interpreter.cc.o"
  "CMakeFiles/grp_workloads.dir/workloads/interpreter.cc.o.d"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_fp1.cc.o"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_fp1.cc.o.d"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_fp2.cc.o"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_fp2.cc.o.d"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_int1.cc.o"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_int1.cc.o.d"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_int2.cc.o"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_int2.cc.o.d"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_sphinx.cc.o"
  "CMakeFiles/grp_workloads.dir/workloads/kernels_sphinx.cc.o.d"
  "CMakeFiles/grp_workloads.dir/workloads/registry.cc.o"
  "CMakeFiles/grp_workloads.dir/workloads/registry.cc.o.d"
  "libgrp_workloads.a"
  "libgrp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
