# Empty dependencies file for grp_workloads.
# This may be replaced when dependencies are built.
