file(REMOVE_RECURSE
  "libgrp_workloads.a"
)
