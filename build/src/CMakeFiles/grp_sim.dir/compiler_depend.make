# Empty compiler generated dependencies file for grp_sim.
# This may be replaced when dependencies are built.
