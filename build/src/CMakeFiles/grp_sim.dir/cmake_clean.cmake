file(REMOVE_RECURSE
  "CMakeFiles/grp_sim.dir/sim/config.cc.o"
  "CMakeFiles/grp_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/grp_sim.dir/sim/logging.cc.o"
  "CMakeFiles/grp_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/grp_sim.dir/sim/stats.cc.o"
  "CMakeFiles/grp_sim.dir/sim/stats.cc.o.d"
  "libgrp_sim.a"
  "libgrp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
