file(REMOVE_RECURSE
  "libgrp_sim.a"
)
