# Empty dependencies file for grp_mem.
# This may be replaced when dependencies are built.
