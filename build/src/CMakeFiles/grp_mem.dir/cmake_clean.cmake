file(REMOVE_RECURSE
  "CMakeFiles/grp_mem.dir/mem/cache.cc.o"
  "CMakeFiles/grp_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/grp_mem.dir/mem/dram.cc.o"
  "CMakeFiles/grp_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/grp_mem.dir/mem/functional_memory.cc.o"
  "CMakeFiles/grp_mem.dir/mem/functional_memory.cc.o.d"
  "CMakeFiles/grp_mem.dir/mem/memory_system.cc.o"
  "CMakeFiles/grp_mem.dir/mem/memory_system.cc.o.d"
  "CMakeFiles/grp_mem.dir/mem/mshr.cc.o"
  "CMakeFiles/grp_mem.dir/mem/mshr.cc.o.d"
  "libgrp_mem.a"
  "libgrp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
