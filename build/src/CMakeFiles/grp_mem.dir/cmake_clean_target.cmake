file(REMOVE_RECURSE
  "libgrp_mem.a"
)
