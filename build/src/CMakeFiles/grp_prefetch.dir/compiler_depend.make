# Empty compiler generated dependencies file for grp_prefetch.
# This may be replaced when dependencies are built.
