file(REMOVE_RECURSE
  "libgrp_prefetch.a"
)
