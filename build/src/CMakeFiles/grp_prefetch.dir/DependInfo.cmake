
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/hw_engine.cc" "src/CMakeFiles/grp_prefetch.dir/prefetch/hw_engine.cc.o" "gcc" "src/CMakeFiles/grp_prefetch.dir/prefetch/hw_engine.cc.o.d"
  "/root/repo/src/prefetch/region_queue.cc" "src/CMakeFiles/grp_prefetch.dir/prefetch/region_queue.cc.o" "gcc" "src/CMakeFiles/grp_prefetch.dir/prefetch/region_queue.cc.o.d"
  "/root/repo/src/prefetch/stride.cc" "src/CMakeFiles/grp_prefetch.dir/prefetch/stride.cc.o" "gcc" "src/CMakeFiles/grp_prefetch.dir/prefetch/stride.cc.o.d"
  "/root/repo/src/prefetch/throttled_srp.cc" "src/CMakeFiles/grp_prefetch.dir/prefetch/throttled_srp.cc.o" "gcc" "src/CMakeFiles/grp_prefetch.dir/prefetch/throttled_srp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/grp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
