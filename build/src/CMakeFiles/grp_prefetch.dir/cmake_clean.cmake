file(REMOVE_RECURSE
  "CMakeFiles/grp_prefetch.dir/prefetch/hw_engine.cc.o"
  "CMakeFiles/grp_prefetch.dir/prefetch/hw_engine.cc.o.d"
  "CMakeFiles/grp_prefetch.dir/prefetch/region_queue.cc.o"
  "CMakeFiles/grp_prefetch.dir/prefetch/region_queue.cc.o.d"
  "CMakeFiles/grp_prefetch.dir/prefetch/stride.cc.o"
  "CMakeFiles/grp_prefetch.dir/prefetch/stride.cc.o.d"
  "CMakeFiles/grp_prefetch.dir/prefetch/throttled_srp.cc.o"
  "CMakeFiles/grp_prefetch.dir/prefetch/throttled_srp.cc.o.d"
  "libgrp_prefetch.a"
  "libgrp_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grp_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
