file(REMOVE_RECURSE
  "libgrp_core.a"
)
