file(REMOVE_RECURSE
  "CMakeFiles/grp_core.dir/core/engine_factory.cc.o"
  "CMakeFiles/grp_core.dir/core/engine_factory.cc.o.d"
  "CMakeFiles/grp_core.dir/core/grp_engine.cc.o"
  "CMakeFiles/grp_core.dir/core/grp_engine.cc.o.d"
  "libgrp_core.a"
  "libgrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
