# Empty dependencies file for grp_core.
# This may be replaced when dependencies are built.
