file(REMOVE_RECURSE
  "libgrp_cpu.a"
)
