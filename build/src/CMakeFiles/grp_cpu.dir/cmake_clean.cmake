file(REMOVE_RECURSE
  "CMakeFiles/grp_cpu.dir/cpu/cpu.cc.o"
  "CMakeFiles/grp_cpu.dir/cpu/cpu.cc.o.d"
  "libgrp_cpu.a"
  "libgrp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
