# Empty compiler generated dependencies file for grp_cpu.
# This may be replaced when dependencies are built.
