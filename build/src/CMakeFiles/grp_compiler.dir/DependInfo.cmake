
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/builder.cc" "src/CMakeFiles/grp_compiler.dir/compiler/builder.cc.o" "gcc" "src/CMakeFiles/grp_compiler.dir/compiler/builder.cc.o.d"
  "/root/repo/src/compiler/hint_generator.cc" "src/CMakeFiles/grp_compiler.dir/compiler/hint_generator.cc.o" "gcc" "src/CMakeFiles/grp_compiler.dir/compiler/hint_generator.cc.o.d"
  "/root/repo/src/compiler/indirect_analysis.cc" "src/CMakeFiles/grp_compiler.dir/compiler/indirect_analysis.cc.o" "gcc" "src/CMakeFiles/grp_compiler.dir/compiler/indirect_analysis.cc.o.d"
  "/root/repo/src/compiler/induction.cc" "src/CMakeFiles/grp_compiler.dir/compiler/induction.cc.o" "gcc" "src/CMakeFiles/grp_compiler.dir/compiler/induction.cc.o.d"
  "/root/repo/src/compiler/locality.cc" "src/CMakeFiles/grp_compiler.dir/compiler/locality.cc.o" "gcc" "src/CMakeFiles/grp_compiler.dir/compiler/locality.cc.o.d"
  "/root/repo/src/compiler/pointer_analysis.cc" "src/CMakeFiles/grp_compiler.dir/compiler/pointer_analysis.cc.o" "gcc" "src/CMakeFiles/grp_compiler.dir/compiler/pointer_analysis.cc.o.d"
  "/root/repo/src/compiler/region_size.cc" "src/CMakeFiles/grp_compiler.dir/compiler/region_size.cc.o" "gcc" "src/CMakeFiles/grp_compiler.dir/compiler/region_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/grp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
