file(REMOVE_RECURSE
  "libgrp_compiler.a"
)
