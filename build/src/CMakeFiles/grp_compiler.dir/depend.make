# Empty dependencies file for grp_compiler.
# This may be replaced when dependencies are built.
