file(REMOVE_RECURSE
  "CMakeFiles/grp_compiler.dir/compiler/builder.cc.o"
  "CMakeFiles/grp_compiler.dir/compiler/builder.cc.o.d"
  "CMakeFiles/grp_compiler.dir/compiler/hint_generator.cc.o"
  "CMakeFiles/grp_compiler.dir/compiler/hint_generator.cc.o.d"
  "CMakeFiles/grp_compiler.dir/compiler/indirect_analysis.cc.o"
  "CMakeFiles/grp_compiler.dir/compiler/indirect_analysis.cc.o.d"
  "CMakeFiles/grp_compiler.dir/compiler/induction.cc.o"
  "CMakeFiles/grp_compiler.dir/compiler/induction.cc.o.d"
  "CMakeFiles/grp_compiler.dir/compiler/locality.cc.o"
  "CMakeFiles/grp_compiler.dir/compiler/locality.cc.o.d"
  "CMakeFiles/grp_compiler.dir/compiler/pointer_analysis.cc.o"
  "CMakeFiles/grp_compiler.dir/compiler/pointer_analysis.cc.o.d"
  "CMakeFiles/grp_compiler.dir/compiler/region_size.cc.o"
  "CMakeFiles/grp_compiler.dir/compiler/region_size.cc.o.d"
  "libgrp_compiler.a"
  "libgrp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
