# Empty compiler generated dependencies file for fig10_int_perf.
# This may be replaced when dependencies are built.
