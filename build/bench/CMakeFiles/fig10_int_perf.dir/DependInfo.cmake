
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_int_perf.cc" "bench/CMakeFiles/fig10_int_perf.dir/fig10_int_perf.cc.o" "gcc" "bench/CMakeFiles/fig10_int_perf.dir/fig10_int_perf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/grp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
