file(REMOVE_RECURSE
  "CMakeFiles/sens_compiler.dir/sens_compiler.cc.o"
  "CMakeFiles/sens_compiler.dir/sens_compiler.cc.o.d"
  "sens_compiler"
  "sens_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
