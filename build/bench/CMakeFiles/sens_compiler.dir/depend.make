# Empty dependencies file for sens_compiler.
# This may be replaced when dependencies are built.
