file(REMOVE_RECURSE
  "CMakeFiles/fig01_perfect_caches.dir/fig01_perfect_caches.cc.o"
  "CMakeFiles/fig01_perfect_caches.dir/fig01_perfect_caches.cc.o.d"
  "fig01_perfect_caches"
  "fig01_perfect_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_perfect_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
