# Empty dependencies file for fig01_perfect_caches.
# This may be replaced when dependencies are built.
