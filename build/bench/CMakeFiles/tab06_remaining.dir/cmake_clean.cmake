file(REMOVE_RECURSE
  "CMakeFiles/tab06_remaining.dir/tab06_remaining.cc.o"
  "CMakeFiles/tab06_remaining.dir/tab06_remaining.cc.o.d"
  "tab06_remaining"
  "tab06_remaining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_remaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
