# Empty dependencies file for tab06_remaining.
# This may be replaced when dependencies are built.
