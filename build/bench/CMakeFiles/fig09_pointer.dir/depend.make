# Empty dependencies file for fig09_pointer.
# This may be replaced when dependencies are built.
