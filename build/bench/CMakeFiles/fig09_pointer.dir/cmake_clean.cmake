file(REMOVE_RECURSE
  "CMakeFiles/fig09_pointer.dir/fig09_pointer.cc.o"
  "CMakeFiles/fig09_pointer.dir/fig09_pointer.cc.o.d"
  "fig09_pointer"
  "fig09_pointer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pointer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
