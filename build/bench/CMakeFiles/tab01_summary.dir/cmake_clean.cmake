file(REMOVE_RECURSE
  "CMakeFiles/tab01_summary.dir/tab01_summary.cc.o"
  "CMakeFiles/tab01_summary.dir/tab01_summary.cc.o.d"
  "tab01_summary"
  "tab01_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
