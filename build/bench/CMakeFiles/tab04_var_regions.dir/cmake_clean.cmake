file(REMOVE_RECURSE
  "CMakeFiles/tab04_var_regions.dir/tab04_var_regions.cc.o"
  "CMakeFiles/tab04_var_regions.dir/tab04_var_regions.cc.o.d"
  "tab04_var_regions"
  "tab04_var_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_var_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
