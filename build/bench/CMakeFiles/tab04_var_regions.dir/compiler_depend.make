# Empty compiler generated dependencies file for tab04_var_regions.
# This may be replaced when dependencies are built.
