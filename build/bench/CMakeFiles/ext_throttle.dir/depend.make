# Empty dependencies file for ext_throttle.
# This may be replaced when dependencies are built.
