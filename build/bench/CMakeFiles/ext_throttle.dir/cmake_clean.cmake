file(REMOVE_RECURSE
  "CMakeFiles/ext_throttle.dir/ext_throttle.cc.o"
  "CMakeFiles/ext_throttle.dir/ext_throttle.cc.o.d"
  "ext_throttle"
  "ext_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
