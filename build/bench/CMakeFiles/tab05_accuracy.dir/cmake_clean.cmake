file(REMOVE_RECURSE
  "CMakeFiles/tab05_accuracy.dir/tab05_accuracy.cc.o"
  "CMakeFiles/tab05_accuracy.dir/tab05_accuracy.cc.o.d"
  "tab05_accuracy"
  "tab05_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
