# Empty dependencies file for tab05_accuracy.
# This may be replaced when dependencies are built.
