# Empty compiler generated dependencies file for fig11_fp_perf.
# This may be replaced when dependencies are built.
