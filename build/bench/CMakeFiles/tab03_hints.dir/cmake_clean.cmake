file(REMOVE_RECURSE
  "CMakeFiles/tab03_hints.dir/tab03_hints.cc.o"
  "CMakeFiles/tab03_hints.dir/tab03_hints.cc.o.d"
  "tab03_hints"
  "tab03_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
