# Empty dependencies file for tab03_hints.
# This may be replaced when dependencies are built.
