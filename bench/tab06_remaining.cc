/**
 * @file
 * Table 6: the benchmarks whose GRP performance gap from a perfect
 * L2 stays above 15%, with the dominant L2 miss cause recorded in
 * each kernel's metadata. The paper lists swim, art, mcf, ammp,
 * bzip2, twolf and sphinx (and GRP pulls ammp and bzip2 under 15%).
 */

#include <cstdio>

#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    const std::vector<std::string> suite = perfSuite();
    BenchSweep sweep("tab06_remaining");
    for (const std::string &name : suite) {
        sweep.addScheme(name, PrefetchScheme::GrpVar, opts);
        sweep.addScheme(name, PrefetchScheme::Srp, opts);
        sweep.addPerfect(name, Perfection::PerfectL2, opts);
    }
    sweep.run();

    std::printf("Table 6: remaining L2 miss causes (GRP gap from "
                "perfect L2 > 15%%)\n");
    std::printf("%-9s %10s %10s  %s\n", "bench", "grp-gap%",
                "srp-gap%", "dominant miss cause");
    for (size_t b = 0; b < suite.size(); ++b) {
        const std::string &name = suite[b];
        const RunResult &grp = sweep.result(3 * b + 0);
        const RunResult &srp = sweep.result(3 * b + 1);
        const RunResult &perfect = sweep.result(3 * b + 2);
        const double grp_gap = gapFromPerfect(grp, perfect);
        const double srp_gap = gapFromPerfect(srp, perfect);
        if (grp_gap <= 15.0 && srp_gap <= 15.0)
            continue;
        std::printf("%-9s %10.2f %10.2f  %s\n", name.c_str(),
                    grp_gap, srp_gap, grp.info.missCause.c_str());
    }
    std::printf("paper: swim 38.3 (transpose), art 56.1 (bandwidth/"
                "transpose heap), mcf 63.9 (tree),\n"
                "       ammp 15.2 (lists), bzip2 15.9 (indirect), "
                "twolf 22.4 (lists/random ptrs),\n"
                "       sphinx 31.3 (hash lookup)\n");
    return 0;
}
