/**
 * @file
 * Table 6: the benchmarks whose GRP performance gap from a perfect
 * L2 stays above 15%, with the dominant L2 miss cause recorded in
 * each kernel's metadata. The paper lists swim, art, mcf, ammp,
 * bzip2, twolf and sphinx (and GRP pulls ammp and bzip2 under 15%).
 */

#include <cstdio>

#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    std::printf("Table 6: remaining L2 miss causes (GRP gap from "
                "perfect L2 > 15%%)\n");
    std::printf("%-9s %10s %10s  %s\n", "bench", "grp-gap%",
                "srp-gap%", "dominant miss cause");
    for (const std::string &name : perfSuite()) {
        const RunResult grp =
            runScheme(name, PrefetchScheme::GrpVar, opts);
        const RunResult srp =
            runScheme(name, PrefetchScheme::Srp, opts);
        const RunResult perfect =
            runPerfect(name, Perfection::PerfectL2, opts);
        const double grp_gap = gapFromPerfect(grp, perfect);
        const double srp_gap = gapFromPerfect(srp, perfect);
        if (grp_gap <= 15.0 && srp_gap <= 15.0)
            continue;
        std::printf("%-9s %10.2f %10.2f  %s\n", name.c_str(),
                    grp_gap, srp_gap, grp.info.missCause.c_str());
    }
    std::printf("paper: swim 38.3 (transpose), art 56.1 (bandwidth/"
                "transpose heap), mcf 63.9 (tree),\n"
                "       ammp 15.2 (lists), bzip2 15.9 (indirect), "
                "twolf 22.4 (lists/random ptrs),\n"
                "       sphinx 31.3 (hash lookup)\n");
    return 0;
}
