/**
 * @file
 * Counterfactual prefetch cost: shadow-tag pollution and channel
 * contention for an untuned SRP run on a pointer-chasing workload.
 *
 * SRP on mcf is the paper's canonical pollution case (§5: spatial
 * region prefetching fetches whole 4 KB regions around misses that
 * mcf's pointer chains never revisit). The shadow tags price that
 * aggression: every demand L2 access is classified against a
 * tag-only no-prefetch replica, splitting misses into baseline
 * (would happen anyway) and pollution (prefetch-caused), and the
 * DRAM model attributes every channel cycle to demand, prefetch,
 * writeback or idle. The artefact pins those costs so a scheduler
 * or throttling change that trades coverage for pollution shows up
 * in the bench gate.
 */

#include <cstdio>
#include <fstream>

#include "harness/suite.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);
    opts.obs.shadow = true;

    const char *workload = "mcf";
    BenchSweep sweep("tab_cost");
    sweep.addScheme(workload, PrefetchScheme::Srp, opts);
    sweep.run();
    const RunResult &run = sweep.result(0);
    const obs::StatSnapshot &s = run.stats;

    const uint64_t both = s.value("mem.pollutionBothHits");
    const uint64_t baseline = s.value("mem.pollutionBaselineMisses");
    const uint64_t pollution = s.value("mem.pollutionMisses");
    const uint64_t coverage = s.value("mem.pollutionCoverageHits");
    const uint64_t shadow_misses = s.value("mem.pollutionShadowMisses");
    const uint64_t real_misses = s.value("mem.l2DemandMissesTotal");
    const int64_t identity_lhs = static_cast<int64_t>(coverage) -
                                 static_cast<int64_t>(pollution);
    const int64_t identity_rhs = static_cast<int64_t>(shadow_misses) -
                                 static_cast<int64_t>(real_misses);

    std::printf("Counterfactual cost: SRP on %s (%llu instrs)\n",
                workload, (unsigned long long)opts.maxInstructions);
    std::printf("  demand L2 accesses %llu: both-hit %llu, baseline "
                "miss %llu, coverage hit %llu, pollution miss %llu\n",
                (unsigned long long)s.value("mem.l2DemandAccesses"),
                (unsigned long long)both, (unsigned long long)baseline,
                (unsigned long long)coverage,
                (unsigned long long)pollution);
    std::printf("  identity: coverage - pollution = %lld, shadow - "
                "real misses = %lld%s\n", (long long)identity_lhs,
                (long long)identity_rhs,
                identity_lhs == identity_rhs ? "" : "  **VIOLATED**");
    std::printf("  attribution: %llu charged, %llu unattributed\n",
                (unsigned long long)s.value("mem.pollutionAttributed"),
                (unsigned long long)s.value(
                    "mem.pollutionUnattributed"));
    std::printf("  channel cycles: demand %llu, prefetch %llu, "
                "writeback %llu, idle %llu; demand stalled behind "
                "prefetch %llu request-cycles\n",
                (unsigned long long)s.value(
                    "dram.contentionDemandCycles"),
                (unsigned long long)s.value(
                    "dram.contentionPrefetchCycles"),
                (unsigned long long)s.value(
                    "dram.contentionWritebackCycles"),
                (unsigned long long)s.value(
                    "dram.contentionIdleCycles"),
                (unsigned long long)s.value(
                    "dram.contentionDemandStallCycles"));

    std::ofstream json_file(benchOutPath("tab_cost"));
    obs::JsonWriter json(json_file);
    json.beginObject();
    json.kv("schema", "grp-tab-cost-v1");
    json.kv("workload", workload);
    json.kv("scheme", toString(PrefetchScheme::Srp));
    json.kv("instructions", opts.maxInstructions);
    json.kv("l2DemandAccesses", s.value("mem.l2DemandAccesses"));
    json.kv("bothHits", both);
    json.kv("baselineMisses", baseline);
    json.kv("coverageHits", coverage);
    json.kv("pollutionMisses", pollution);
    json.kv("shadowMisses", shadow_misses);
    json.kv("realMisses", real_misses);
    json.kv("identityHolds", identity_lhs == identity_rhs);
    json.kv("attributed", s.value("mem.pollutionAttributed"));
    json.kv("unattributed", s.value("mem.pollutionUnattributed"));
    json.kv("victimsRecorded",
            s.value("mem.pollutionVictimsRecorded"));
    json.kv("victimDrops", s.value("mem.pollutionVictimDrops"));
    json.kv("demandCycles", s.value("dram.contentionDemandCycles"));
    json.kv("prefetchCycles",
            s.value("dram.contentionPrefetchCycles"));
    json.kv("writebackCycles",
            s.value("dram.contentionWritebackCycles"));
    json.kv("idleCycles", s.value("dram.contentionIdleCycles"));
    json.kv("demandStallCycles",
            s.value("dram.contentionDemandStallCycles"));
    json.endObject();

    // The identity is structural; a violation is a simulator bug and
    // must fail the bench gate, not just print.
    return identity_lhs == identity_rhs ? 0 : 1;
}
