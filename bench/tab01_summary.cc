/**
 * @file
 * Table 1: summary of prefetching performance and traffic.
 *
 * For every benchmark (crafty excluded, §5.1) this harness runs
 * no-prefetching, stride, SRP, GRP/Fix and GRP/Var plus a perfect-L2
 * limit, then reports the geometric-mean speedup, the mean traffic
 * increase, and the mean performance gap from a perfect L2 — the
 * same three columns as the paper's Table 1.
 */

#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

#include "harness/suite.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    struct Row
    {
        const char *label;
        PrefetchScheme scheme;
        double paperSpeedup;
        double paperTraffic;
        double paperGap;
    };
    const Row rows[] = {
        {"No prefetching", PrefetchScheme::None, 1.0, 1.0, 33.72},
        {"Stride prefetching", PrefetchScheme::Stride, 1.147, 1.09,
         23.99},
        {"SRP", PrefetchScheme::Srp, 1.226, 2.80, 18.75},
        {"GRP/Fix", PrefetchScheme::GrpFix, 1.216, 1.62, 19.42},
        {"GRP/Var", PrefetchScheme::GrpVar, 1.212, 1.23, 19.69},
    };

    const std::vector<std::string> suite = perfSuite();

    // Queue every run up front: base + perfect per benchmark, then
    // each prefetching scheme (the None row reuses the base runs).
    BenchSweep sweep("tab01_summary");
    std::vector<size_t> base_jobs, perfect_jobs;
    for (const std::string &name : suite) {
        base_jobs.push_back(
            sweep.addScheme(name, PrefetchScheme::None, opts));
        perfect_jobs.push_back(
            sweep.addPerfect(name, Perfection::PerfectL2, opts));
    }
    std::vector<std::vector<size_t>> row_jobs;
    for (const Row &row : rows) {
        std::vector<size_t> jobs;
        if (row.scheme != PrefetchScheme::None) {
            for (const std::string &name : suite)
                jobs.push_back(sweep.addScheme(name, row.scheme, opts));
        }
        row_jobs.push_back(std::move(jobs));
    }
    sweep.run();

    std::vector<RunResult> bases, perfects;
    for (size_t i = 0; i < suite.size(); ++i) {
        bases.push_back(sweep.result(base_jobs[i]));
        perfects.push_back(sweep.result(perfect_jobs[i]));
    }

    std::printf("Table 1: summary of prefetching performance and "
                "traffic (%zu benchmarks, %llu instrs/run)\n",
                suite.size(),
                (unsigned long long)opts.maxInstructions);
    std::printf("%-20s | %8s %8s %8s | %8s %8s %8s\n", "",
                "speedup", "traffic", "gap%", "paper-sp", "paper-tr",
                "paper-gp");

    std::ofstream json_file(benchOutPath("tab01_summary"));
    obs::JsonWriter json(json_file);
    json.beginObject();
    json.kv("schema", "grp-tab01-v1");
    json.kv("benchmarks", static_cast<uint64_t>(suite.size()));
    json.kv("instructions", opts.maxInstructions);
    json.key("schemes");
    json.beginObject();

    for (size_t r = 0; r < std::size(rows); ++r) {
        const Row &row = rows[r];
        std::vector<double> speedups, traffics, perfect_ratios;
        for (size_t i = 0; i < suite.size(); ++i) {
            const RunResult &run =
                row.scheme == PrefetchScheme::None
                    ? bases[i]
                    : sweep.result(row_jobs[r][i]);
            speedups.push_back(speedup(run, bases[i]));
            traffics.push_back(trafficRatio(run, bases[i]));
            perfect_ratios.push_back(run.ipc / perfects[i].ipc);
        }
        const double mean_gap =
            100.0 * (1.0 - geometricMean(perfect_ratios));
        json.key(toString(row.scheme));
        json.beginObject();
        json.kv("label", row.label);
        json.kv("speedup", geometricMean(speedups));
        json.kv("trafficRatio", geometricMean(traffics));
        json.kv("gapFromPerfectPct", mean_gap);
        json.kv("paperSpeedup", row.paperSpeedup);
        json.kv("paperTraffic", row.paperTraffic);
        json.kv("paperGap", row.paperGap);
        json.endObject();
        std::printf("%-20s | %8.3f %8.2f %8.2f | %8.3f %8.2f %8.2f\n",
                    row.label, geometricMean(speedups),
                    geometricMean(traffics), mean_gap,
                    row.paperSpeedup, row.paperTraffic, row.paperGap);
    }
    json.endObject();
    json.endObject();
    return 0;
}
