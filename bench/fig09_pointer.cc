/**
 * @file
 * Figure 9: performance gains from hardware pointer prefetching on
 * the C benchmarks, compared with SRP, SRP combined with pointer
 * prefetching, and GRP (whose pointer/recursive hints regulate the
 * same scanner). The paper's headline numbers: 48.3% for equake,
 * 15.9% for mcf, 14.4% for sphinx from pointer prefetching alone;
 * SRP usually subsumes the pointer schemes; SRP+pointer together
 * sometimes degrades due to bandwidth.
 */

#include <cstdio>

#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    // The C benchmarks where pointer prefetching is plausible.
    const char *benchmarks[] = {"gzip",   "vpr",  "mesa", "art",
                                "mcf",    "equake", "ammp", "parser",
                                "gap",    "bzip2", "twolf", "sphinx"};

    const PrefetchScheme schemes[6] = {
        PrefetchScheme::None,          PrefetchScheme::PointerHw,
        PrefetchScheme::PointerHwRec,  PrefetchScheme::Srp,
        PrefetchScheme::SrpPlusPointer, PrefetchScheme::GrpVar};
    BenchSweep sweep("fig09_pointer");
    for (const char *name : benchmarks)
        for (PrefetchScheme scheme : schemes)
            sweep.addScheme(name, scheme, opts);
    sweep.run();

    std::printf("Figure 9: speedups over no prefetching\n");
    std::printf("%-9s %8s %8s %8s %8s %8s\n", "bench", "ptr",
                "ptr-rec", "srp", "srp+ptr", "grp");
    size_t job = 0;
    for (const char *name : benchmarks) {
        const RunResult &base = sweep.result(job++);
        const RunResult &ptr = sweep.result(job++);
        const RunResult &rec = sweep.result(job++);
        const RunResult &srp = sweep.result(job++);
        const RunResult &both = sweep.result(job++);
        const RunResult &grp = sweep.result(job++);
        std::printf("%-9s %8.3f %8.3f %8.3f %8.3f %8.3f\n", name,
                    speedup(ptr, base), speedup(rec, base),
                    speedup(srp, base), speedup(both, base),
                    speedup(grp, base));
    }
    std::printf("paper: equake ptr +48.3%%, mcf +15.9%%, sphinx "
                "+14.4%%; SRP >= ptr except twolf/sphinx (+2%%)\n");
    return 0;
}
