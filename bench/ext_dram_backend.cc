/**
 * @file
 * Extension: prefetch schemes across pluggable DRAM backends.
 *
 * The paper's memory system is the "legacy" immediate model (fixed
 * row-hit/row-conflict latencies, no command protocol). This harness
 * re-runs the headline scheme comparison — no prefetching, SRP,
 * GRP/Var and the adaptive controller — under each DRAM backend
 * (legacy plus the cycle-accurate ddr4-2400 and hbm2 presets) to show
 * how much of GRP's benefit survives a real command protocol, and how
 * the backends reorder the schemes' traffic costs.
 *
 * Speedups and traffic ratios are computed against the no-prefetch
 * base of the *same* backend, isolating the scheme effect from the
 * backend's absolute latency shift; the cross-backend baseline IPCs
 * are reported alongside so the shift itself is visible too.
 *
 * The hard gate: for every cycle-accurate run, each bank's five
 * state-cycle counters (Idle/Open/Activating/Precharging/Refreshing)
 * must sum exactly to its channel's accounted cycles — the timing
 * backend's accounting invariant. Any mismatch exits 1.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/suite.hh"
#include "mem/dram_backend/presets.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace grp;

namespace
{

/** A manageable slice of the perf suite covering the hint-class
 *  spectrum: dense spatial fp (swim, mgrid), pointer chasing (mcf),
 *  indirect arrays (art), and mixed integer codes (parser, bzip2). */
const std::vector<std::string> kSuite = {
    "swim", "mgrid", "art", "mcf", "parser", "bzip2",
};

const std::vector<std::string> kBackends = {
    "legacy", "ddr4-2400", "hbm2",
};

const PrefetchScheme kSchemes[4] = {
    PrefetchScheme::None,
    PrefetchScheme::Srp,
    PrefetchScheme::GrpVar,
    PrefetchScheme::GrpAdaptive,
};

/** Verify the per-bank accounting identity on one cycle-accurate
 *  run: every bank's five state counters sum to its channel's
 *  accounted cycles. Returns the number of violations (prints one
 *  line each). Legacy runs export no bank counters and skip this. */
unsigned
checkBankIdentity(const RunResult &run, const std::string &backend,
                  const std::string &label)
{
    const DramPreset *preset = findDramPreset(backend);
    if (preset == nullptr)
        return 0; // Legacy: no bank-state machinery to audit.
    static const char *kStates[5] = {
        "Idle", "Open", "Activating", "Precharging", "Refreshing",
    };
    unsigned violations = 0;
    for (unsigned ch = 0; ch < preset->channels; ++ch) {
        const std::string ch_name = "ch" + std::to_string(ch);
        const uint64_t channel_cycles =
            run.stats.value("dram." + ch_name + "Cycles");
        for (unsigned b = 0; b < preset->banksPerChannel; ++b) {
            const std::string prefix =
                "dram." + ch_name + "bank" + std::to_string(b);
            uint64_t sum = 0;
            for (const char *state : kStates)
                sum += run.stats.value(prefix + state + "Cycles");
            if (sum != channel_cycles) {
                std::fprintf(stderr,
                             "ext_dram_backend: %s: %sbank%u state "
                             "cycles sum %llu != %sCycles %llu\n",
                             label.c_str(), ch_name.c_str(), b,
                             (unsigned long long)sum, ch_name.c_str(),
                             (unsigned long long)channel_cycles);
                ++violations;
            }
        }
    }
    return violations;
}

} // namespace

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(200'000);

    // Job index = ((workload * backends) + backend) * schemes + scheme.
    BenchSweep sweep("ext_dram_backend");
    for (const std::string &name : kSuite) {
        for (const std::string &backend : kBackends) {
            for (PrefetchScheme scheme : kSchemes) {
                SimConfig config;
                config.scheme = scheme;
                config.dram.backend = backend;
                sweep.addConfig(name + "/" + backend + "/" +
                                    toString(scheme),
                                name, config, opts);
            }
        }
    }
    sweep.run();

    const size_t num_backends = kBackends.size();
    const size_t num_schemes = 4;
    auto job = [&](size_t w, size_t bk, size_t s) -> const RunResult & {
        return sweep.result((w * num_backends + bk) * num_schemes + s);
    };

    std::printf("Extension: prefetch schemes across DRAM backends\n");
    unsigned violations = 0;
    // Per-backend geomean speedup/traffic per scheme (vs that
    // backend's own no-prefetch base), plus protocol aggregates.
    std::vector<std::vector<double>> sp(num_backends * num_schemes),
        tr(num_backends * num_schemes);
    std::vector<std::vector<double>> base_ipc(num_backends);
    std::vector<uint64_t> refreshes(num_backends, 0);
    std::vector<uint64_t> row_hits(num_backends, 0),
        row_conflicts(num_backends, 0);
    for (size_t bk = 0; bk < num_backends; ++bk) {
        std::printf("\n-- backend %s --\n", kBackends[bk].c_str());
        std::printf("%-9s | %8s | %7s %7s %7s | %7s %7s %7s\n",
                    "bench", "base-ipc", "srp-sp", "var-sp", "ada-sp",
                    "srp-tr", "var-tr", "ada-tr");
        for (size_t w = 0; w < kSuite.size(); ++w) {
            const RunResult &base = job(w, bk, 0);
            base_ipc[bk].push_back(base.ipc);
            double row_sp[4] = {1.0}, row_tr[4] = {1.0};
            for (size_t s = 0; s < num_schemes; ++s) {
                const RunResult &run = job(w, bk, s);
                violations += checkBankIdentity(
                    run, kBackends[bk],
                    kSuite[w] + "/" + kBackends[bk] + "/" +
                        toString(kSchemes[s]));
                refreshes[bk] += run.stats.value("dram.refreshes");
                row_hits[bk] += run.stats.value("dram.rowHits");
                row_conflicts[bk] +=
                    run.stats.value("dram.rowConflicts");
                if (s == 0)
                    continue;
                row_sp[s] = speedup(run, base);
                row_tr[s] = trafficRatio(run, base);
                sp[bk * num_schemes + s].push_back(row_sp[s]);
                tr[bk * num_schemes + s].push_back(row_tr[s]);
            }
            std::printf("%-9s | %8.3f | %7.3f %7.3f %7.3f | "
                        "%7.2f %7.2f %7.2f\n",
                        kSuite[w].c_str(), base.ipc, row_sp[1],
                        row_sp[2], row_sp[3], row_tr[1], row_tr[2],
                        row_tr[3]);
        }
        std::printf("%-9s | %8.3f | %7.3f %7.3f %7.3f | "
                    "%7.2f %7.2f %7.2f\n",
                    "geomean", geometricMean(base_ipc[bk]),
                    geometricMean(sp[bk * num_schemes + 1]),
                    geometricMean(sp[bk * num_schemes + 2]),
                    geometricMean(sp[bk * num_schemes + 3]),
                    geometricMean(tr[bk * num_schemes + 1]),
                    geometricMean(tr[bk * num_schemes + 2]),
                    geometricMean(tr[bk * num_schemes + 3]));
    }

    const bool identity_ok = violations == 0;
    std::printf("\nper-bank state cycles sum to channel cycles: %s\n",
                identity_ok ? "yes" : "NO");

    std::ofstream json_file(benchOutPath("ext_dram_backend"));
    obs::JsonWriter json(json_file);
    json.beginObject();
    json.kv("schema", "grp-ext-dram-backend-v1");
    json.kv("benchmarks", static_cast<uint64_t>(kSuite.size()));
    json.kv("instructions", opts.maxInstructions);
    json.key("backends");
    json.beginObject();
    for (size_t bk = 0; bk < num_backends; ++bk) {
        json.key(kBackends[bk]);
        json.beginObject();
        json.kv("baselineIpc", geometricMean(base_ipc[bk]));
        const uint64_t rows = row_hits[bk] + row_conflicts[bk];
        json.kv("rowHitRatePct",
                rows ? 100.0 * static_cast<double>(row_hits[bk]) /
                           static_cast<double>(rows)
                     : 0.0);
        json.kv("refreshes", refreshes[bk]);
        json.key("schemes");
        json.beginObject();
        for (size_t s = 1; s < num_schemes; ++s) {
            json.key(toString(kSchemes[s]));
            json.beginObject();
            json.kv("speedup",
                    geometricMean(sp[bk * num_schemes + s]));
            json.kv("trafficRatio",
                    geometricMean(tr[bk * num_schemes + s]));
            json.endObject();
        }
        json.endObject();
        json.endObject();
    }
    json.endObject();
    json.key("checks");
    json.beginObject();
    json.kv("perBankCyclesSumToChannelCycles", identity_ok);
    json.endObject();
    json.endObject();

    if (!identity_ok) {
        std::fprintf(stderr,
                     "ext_dram_backend: %u per-bank accounting "
                     "violation(s)\n",
                     violations);
        return 1;
    }
    return 0;
}
