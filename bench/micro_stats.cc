/**
 * @file
 * google-benchmark microbenchmarks of the per-access accounting
 * paths the sweep refactor optimised:
 *
 *  - string-keyed StatGroup::counter() lookup per increment (the old
 *    hot path) versus a cached Counter handle (the new one);
 *  - Cache::contains() + access() double tag walk (the old L1 probe)
 *    versus the fused Cache::accessIfPresent() single walk;
 *  - a short full-system run, the end-to-end number the two
 *    optimisations move.
 */

#include <benchmark/benchmark.h>

#include "harness/runner.hh"
#include "mem/cache.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace
{

using namespace grp;

void
BM_CounterStringLookup(benchmark::State &state)
{
    StatGroup stats("micro");
    // Realistic group population: the lookup cost depends on the
    // number of sibling counters in the map.
    const char *names[] = {
        "l1DemandAccesses", "l1DemandMisses",  "l2DemandAccesses",
        "l2DemandHits",     "demandToMemory",  "demandFills",
        "prefetchFills",    "writebacks",      "usefulPrefetches",
        "prefetchesIssued", "streamHits",      "prefetchFiltered",
    };
    for (const char *name : names)
        stats.counter(name);
    size_t i = 0;
    for (auto _ : state) {
        ++stats.counter(names[i % std::size(names)]);
        ++i;
    }
}
BENCHMARK(BM_CounterStringLookup);

void
BM_CounterCachedHandle(benchmark::State &state)
{
    StatGroup stats("micro");
    const char *names[] = {
        "l1DemandAccesses", "l1DemandMisses",  "l2DemandAccesses",
        "l2DemandHits",     "demandToMemory",  "demandFills",
        "prefetchFills",    "writebacks",      "usefulPrefetches",
        "prefetchesIssued", "streamHits",      "prefetchFiltered",
    };
    Counter *handles[std::size(names)];
    for (size_t i = 0; i < std::size(names); ++i)
        handles[i] = &stats.counter(names[i]);
    size_t i = 0;
    for (auto _ : state) {
        ++*handles[i % std::size(handles)];
        ++i;
    }
}
BENCHMARK(BM_CounterCachedHandle);

void
BM_CacheProbeThenAccess(benchmark::State &state)
{
    CacheConfig config{1024 * 1024, 4, 12, 8, 8};
    Cache cache(config, "bench");
    Rng rng(7);
    for (auto _ : state) {
        // The pre-refactor L1 probe: one walk to test, a second to
        // touch LRU state on a hit.
        const Addr addr = rng.below(1 << 16) << kBlockShift;
        if (cache.contains(addr))
            benchmark::DoNotOptimize(cache.access(addr, false));
        else
            cache.insert(addr, false, false);
    }
}
BENCHMARK(BM_CacheProbeThenAccess);

void
BM_CacheAccessIfPresent(benchmark::State &state)
{
    CacheConfig config{1024 * 1024, 4, 12, 8, 8};
    Cache cache(config, "bench");
    Rng rng(7);
    for (auto _ : state) {
        const Addr addr = rng.below(1 << 16) << kBlockShift;
        const CacheAccessResult res =
            cache.accessIfPresent(addr, false);
        if (!res.hit)
            cache.insert(addr, false, false);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_CacheAccessIfPresent);

void
BM_FullSystem100k(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        SimConfig config;
        config.scheme = PrefetchScheme::GrpVar;
        RunOptions opts;
        opts.maxInstructions = 100'000;
        opts.warmupInstructions = 0;
        benchmark::DoNotOptimize(
            runWorkload("mcf", config, opts).cycles);
    }
}
BENCHMARK(BM_FullSystem100k)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
