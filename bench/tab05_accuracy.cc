/**
 * @file
 * Table 5: prefetching accuracy, coverage and memory traffic per
 * benchmark for stride, SRP and GRP. Coverage is the percentage
 * reduction in L2 misses that reach memory versus the no-prefetching
 * run; accuracy is useful prefetches over issued prefetches; traffic
 * is absolute bytes on the memory channels for the measured window.
 *
 * The paper's averages: stride 42.9 cov / 78.1 acc, SRP 59.9 / 49.5,
 * GRP 49.9 / 68.9 — SRP has the best coverage and the worst
 * accuracy, stride the reverse, GRP close to the best of both.
 */

#include <cstdio>
#include <fstream>
#include <vector>

#include "harness/suite.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    const std::vector<std::string> suite = perfSuite();
    const PrefetchScheme schemes[4] = {
        PrefetchScheme::None, PrefetchScheme::Stride,
        PrefetchScheme::Srp, PrefetchScheme::GrpVar};
    BenchSweep sweep("tab05_accuracy");
    for (const std::string &name : suite)
        for (PrefetchScheme scheme : schemes)
            sweep.addScheme(name, scheme, opts);
    sweep.run();

    std::printf("Table 5: per-benchmark miss rate, coverage, "
                "accuracy and traffic\n");
    std::printf("%-9s | %6s %8s | %6s %6s | %6s %6s | %6s %6s | "
                "traffic KB base/stride/srp/grp\n",
                "bench", "miss%", "baseKB", "st-cov", "st-acc",
                "sr-cov", "sr-acc", "gr-cov", "gr-acc");

    std::ofstream json_file(benchOutPath("tab05_accuracy"));
    obs::JsonWriter json(json_file);
    json.beginObject();
    json.kv("schema", "grp-tab05-v1");
    json.kv("instructions", opts.maxInstructions);
    json.key("benchmarks");
    json.beginObject();

    double sum_cov[3] = {0, 0, 0}, sum_acc[3] = {0, 0, 0};
    unsigned count = 0;
    for (size_t b = 0; b < suite.size(); ++b) {
        const std::string &name = suite[b];
        const RunResult &base = sweep.result(4 * b + 0);
        const RunResult &stride = sweep.result(4 * b + 1);
        const RunResult &srp = sweep.result(4 * b + 2);
        const RunResult &grp = sweep.result(4 * b + 3);

        const RunResult *runs[3] = {&stride, &srp, &grp};
        double cov[3], acc[3];
        for (int i = 0; i < 3; ++i) {
            cov[i] = runs[i]->coveragePct(base);
            acc[i] = 100.0 * runs[i]->accuracy();
            sum_cov[i] += cov[i];
            sum_acc[i] += acc[i];
        }
        ++count;

        json.key(name);
        json.beginObject();
        json.kv("missRatePct", base.missRatePct());
        json.kv("baseTrafficBytes", base.trafficBytes);
        const char *labels[3] = {"stride", "srp", "grp"};
        for (int i = 0; i < 3; ++i) {
            json.key(labels[i]);
            json.beginObject();
            json.kv("coveragePct", cov[i]);
            json.kv("accuracyPct", acc[i]);
            json.kv("trafficBytes", runs[i]->trafficBytes);
            json.kv("prefetchFills", runs[i]->prefetchFills);
            json.kv("usefulPrefetches", runs[i]->usefulPrefetches);
            json.kv("warmupUsefulPrefetches",
                    runs[i]->warmupUsefulPrefetches);
            json.endObject();
        }
        json.endObject();

        std::printf("%-9s | %6.1f %8.0f | %6.1f %6.1f | %6.1f %6.1f "
                    "| %6.1f %6.1f | %.0f/%.0f/%.0f/%.0f\n",
                    name.c_str(), base.missRatePct(),
                    base.trafficBytes / 1024.0, cov[0], acc[0],
                    cov[1], acc[1], cov[2], acc[2],
                    base.trafficBytes / 1024.0,
                    stride.trafficBytes / 1024.0,
                    srp.trafficBytes / 1024.0,
                    grp.trafficBytes / 1024.0);
    }
    json.endObject();
    json.key("average");
    json.beginObject();
    const char *labels[3] = {"stride", "srp", "grp"};
    for (int i = 0; i < 3; ++i) {
        json.key(labels[i]);
        json.beginObject();
        json.kv("coveragePct", sum_cov[i] / count);
        json.kv("accuracyPct", sum_acc[i] / count);
        json.endObject();
    }
    json.endObject();
    json.endObject();

    std::printf("average   |        coverage/accuracy: stride "
                "%.1f/%.1f  srp %.1f/%.1f  grp %.1f/%.1f\n",
                sum_cov[0] / count, sum_acc[0] / count,
                sum_cov[1] / count, sum_acc[1] / count,
                sum_cov[2] / count, sum_acc[2] / count);
    std::printf("paper avg |        stride 42.9/78.1  srp 59.9/49.5 "
                " grp 49.9/68.9\n");
    return 0;
}
