/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot
 * components: cache tag access, region-queue churn, DRAM timing,
 * pointer scanning, the IR interpreter, and a short full-system
 * simulation step.
 */

#include <benchmark/benchmark.h>

#include "compiler/hint_generator.hh"
#include "harness/runner.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/functional_memory.hh"
#include "prefetch/pointer_scanner.hh"
#include "prefetch/region_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/interpreter.hh"
#include "workloads/workload.hh"

namespace
{

using namespace grp;

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig config{1024 * 1024, 4, 12, 8, 8};
    Cache cache(config, "bench");
    Rng rng(7);
    for (auto _ : state) {
        const Addr addr = rng.below(1 << 22) << kBlockShift;
        if (!cache.access(addr, false).hit)
            cache.insert(addr, false, false);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_RegionQueueChurn(benchmark::State &state)
{
    DramSystem dram({});
    RegionQueue queue(32, true, true);
    Rng rng(11);
    for (auto _ : state) {
        queue.noteSpatialMiss(rng.below(1 << 28) << kBlockShift,
                              kBlocksPerRegion, 0, 0);
        for (unsigned ch = 0; ch < 4; ++ch)
            benchmark::DoNotOptimize(queue.dequeue(dram, ch));
    }
}
BENCHMARK(BM_RegionQueueChurn);

void
BM_DramServe(benchmark::State &state)
{
    DramSystem dram({});
    Rng rng(13);
    Tick now = 0;
    for (auto _ : state) {
        const Addr addr = rng.below(1 << 24) << kBlockShift;
        now = std::max(now + 1,
                       dram.serve(addr, now + 64));
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_DramServe);

void
BM_PointerScan(benchmark::State &state)
{
    FunctionalMemory mem;
    const Addr node = mem.heapAlloc(64, 64);
    for (unsigned i = 0; i < 8; ++i)
        mem.write64(node + 8 * i, i % 2 ? mem.heapAlloc(64, 8) : i);
    PointerScanner scanner(mem);
    std::array<Addr, 8> out;
    for (auto _ : state)
        benchmark::DoNotOptimize(scanner.scan(node, out));
}
BENCHMARK(BM_PointerScan);

void
BM_InterpreterThroughput(benchmark::State &state)
{
    setQuiet(true);
    FunctionalMemory mem;
    auto workload = makeWorkload("wupwise");
    Program prog = workload->build(mem, 42);
    Interpreter interp(prog, mem, 42);
    TraceOp op;
    for (auto _ : state) {
        if (!interp.next(op))
            interp.reset();
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_InterpreterThroughput);

void
BM_HintGeneration(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        FunctionalMemory mem;
        auto workload = makeWorkload("mcf");
        Program prog = workload->build(mem, 42);
        HintTable table;
        HintGenerator generator(CompilerPolicy::Default, 1 << 20);
        benchmark::DoNotOptimize(generator.run(prog, table));
    }
}
BENCHMARK(BM_HintGeneration);

void
BM_FullSystem100k(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        SimConfig config;
        config.scheme = PrefetchScheme::GrpVar;
        RunOptions opts;
        opts.maxInstructions = 100'000;
        opts.warmupInstructions = 0;
        benchmark::DoNotOptimize(
            runWorkload("gzip", config, opts).cycles);
    }
}
BENCHMARK(BM_FullSystem100k)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
