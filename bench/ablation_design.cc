/**
 * @file
 * Ablations of the SRP/GRP design choices the paper motivates
 * (Section 3.1), run on a mixed subset of the suite:
 *
 *  - prefetch insertion at LRU vs MRU position (pollution control);
 *  - LIFO vs FIFO prefetch queue scheduling (newer regions first);
 *  - bank-aware vs oblivious prefetch issue (open-row preference);
 *  - recursive chase depth 1 / 3 / 6 (the 3-bit counter).
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace grp;

namespace
{

struct Variant
{
    const char *label;
    void (*apply)(SimConfig &);
};

void
report(const char *title, PrefetchScheme scheme,
       const std::vector<std::string> &names,
       const std::vector<Variant> &variants, const RunOptions &opts)
{
    std::printf("%s\n%-9s", title, "bench");
    for (const Variant &variant : variants)
        std::printf(" | %10s sp/tr", variant.label);
    std::printf("\n");

    std::vector<std::vector<double>> sp(variants.size()),
        tr(variants.size());
    for (const std::string &name : names) {
        SimConfig base_config;
        const RunResult base =
            runWorkload(name, base_config, opts);
        std::printf("%-9s", name.c_str());
        for (size_t v = 0; v < variants.size(); ++v) {
            SimConfig config;
            config.scheme = scheme;
            variants[v].apply(config);
            const RunResult run = runWorkload(name, config, opts);
            sp[v].push_back(speedup(run, base));
            tr[v].push_back(trafficRatio(run, base));
            std::printf(" | %7.3f %7.2f", sp[v].back(),
                        tr[v].back());
        }
        std::printf("\n");
    }
    std::printf("%-9s", "geomean");
    for (size_t v = 0; v < variants.size(); ++v)
        std::printf(" | %7.3f %7.2f", geometricMean(sp[v]),
                    geometricMean(tr[v]));
    std::printf("\n\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(600'000);

    const std::vector<std::string> mixed = {"wupwise", "equake",
                                            "twolf", "bzip2"};

    report("Ablation 1: prefetch insertion position (SRP)",
           PrefetchScheme::Srp, mixed,
           {{"LRU(paper)",
             [](SimConfig &c) { c.region.lruInsertion = true; }},
            {"MRU",
             [](SimConfig &c) { c.region.lruInsertion = false; }}},
           opts);

    report("Ablation 2: prefetch queue scheduling (SRP)",
           PrefetchScheme::Srp, mixed,
           {{"LIFO(paper)",
             [](SimConfig &c) { c.region.lifo = true; }},
            {"FIFO", [](SimConfig &c) { c.region.lifo = false; }}},
           opts);

    report("Ablation 3: bank-aware prefetch issue (SRP)",
           PrefetchScheme::Srp, mixed,
           {{"aware(papr)",
             [](SimConfig &c) { c.region.bankAware = true; }},
            {"oblivious",
             [](SimConfig &c) { c.region.bankAware = false; }}},
           opts);

    report("Ablation 4: recursive chase depth (GRP, mcf/parser)",
           PrefetchScheme::GrpVar, {"parser", "twolf"},
           {{"depth 1",
             [](SimConfig &c) { c.region.recursiveDepth = 1; }},
            {"depth 3",
             [](SimConfig &c) { c.region.recursiveDepth = 3; }},
            {"depth 6(pap)",
             [](SimConfig &c) { c.region.recursiveDepth = 6; }}},
           opts);
    return 0;
}
