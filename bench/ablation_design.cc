/**
 * @file
 * Ablations of the SRP/GRP design choices the paper motivates
 * (Section 3.1), run on a mixed subset of the suite:
 *
 *  - prefetch insertion at LRU vs MRU position (pollution control);
 *  - LIFO vs FIFO prefetch queue scheduling (newer regions first);
 *  - bank-aware vs oblivious prefetch issue (open-row preference);
 *  - recursive chase depth 1 / 3 / 6 (the 3-bit counter).
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace grp;

namespace
{

struct Variant
{
    const char *label;
    void (*apply)(SimConfig &);
};

/** Queue one ablation's runs: per benchmark, a default-config base
 *  followed by every variant. Returns the first job index. */
size_t
enqueue(BenchSweep &sweep, PrefetchScheme scheme,
        const std::vector<std::string> &names,
        const std::vector<Variant> &variants, const RunOptions &opts)
{
    size_t first = 0;
    bool have_first = false;
    for (const std::string &name : names) {
        const size_t base_job =
            sweep.addConfig(name + "/base", name, SimConfig{}, opts);
        if (!have_first) {
            first = base_job;
            have_first = true;
        }
        for (const Variant &variant : variants) {
            SimConfig config;
            config.scheme = scheme;
            variant.apply(config);
            sweep.addConfig(name + "/" + variant.label, name, config,
                            opts);
        }
    }
    return first;
}

void
report(const BenchSweep &sweep, size_t first, const char *title,
       const std::vector<std::string> &names,
       const std::vector<Variant> &variants)
{
    std::printf("%s\n%-9s", title, "bench");
    for (const Variant &variant : variants)
        std::printf(" | %10s sp/tr", variant.label);
    std::printf("\n");

    std::vector<std::vector<double>> sp(variants.size()),
        tr(variants.size());
    size_t job = first;
    for (const std::string &name : names) {
        const RunResult &base = sweep.result(job++);
        std::printf("%-9s", name.c_str());
        for (size_t v = 0; v < variants.size(); ++v) {
            const RunResult &run = sweep.result(job++);
            sp[v].push_back(speedup(run, base));
            tr[v].push_back(trafficRatio(run, base));
            std::printf(" | %7.3f %7.2f", sp[v].back(),
                        tr[v].back());
        }
        std::printf("\n");
    }
    std::printf("%-9s", "geomean");
    for (size_t v = 0; v < variants.size(); ++v)
        std::printf(" | %7.3f %7.2f", geometricMean(sp[v]),
                    geometricMean(tr[v]));
    std::printf("\n\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(600'000);

    const std::vector<std::string> mixed = {"wupwise", "equake",
                                            "twolf", "bzip2"};

    struct Ablation
    {
        const char *title;
        PrefetchScheme scheme;
        std::vector<std::string> names;
        std::vector<Variant> variants;
    };
    const std::vector<Ablation> ablations = {
        {"Ablation 1: prefetch insertion position (SRP)",
         PrefetchScheme::Srp, mixed,
         {{"LRU(paper)",
           [](SimConfig &c) { c.region.lruInsertion = true; }},
          {"MRU",
           [](SimConfig &c) { c.region.lruInsertion = false; }}}},
        {"Ablation 2: prefetch queue scheduling (SRP)",
         PrefetchScheme::Srp, mixed,
         {{"LIFO(paper)",
           [](SimConfig &c) { c.region.lifo = true; }},
          {"FIFO", [](SimConfig &c) { c.region.lifo = false; }}}},
        {"Ablation 3: bank-aware prefetch issue (SRP)",
         PrefetchScheme::Srp, mixed,
         {{"aware(papr)",
           [](SimConfig &c) { c.region.bankAware = true; }},
          {"oblivious",
           [](SimConfig &c) { c.region.bankAware = false; }}}},
        {"Ablation 4: recursive chase depth (GRP, mcf/parser)",
         PrefetchScheme::GrpVar, {"parser", "twolf"},
         {{"depth 1",
           [](SimConfig &c) { c.region.recursiveDepth = 1; }},
          {"depth 3",
           [](SimConfig &c) { c.region.recursiveDepth = 3; }},
          {"depth 6(pap)",
           [](SimConfig &c) { c.region.recursiveDepth = 6; }}}}};

    BenchSweep sweep("ablation_design");
    std::vector<size_t> firsts;
    for (const Ablation &ablation : ablations)
        firsts.push_back(enqueue(sweep, ablation.scheme,
                                 ablation.names, ablation.variants,
                                 opts));
    sweep.run();

    for (size_t a = 0; a < ablations.size(); ++a)
        report(sweep, firsts[a], ablations[a].title,
               ablations[a].names, ablations[a].variants);
    return 0;
}
