/**
 * @file
 * google-benchmark microbenchmarks of raw interpreter throughput:
 * TraceOps generated per second by the tree-walking Interpreter vs
 * the pre-decoded DecodedInterpreter, over one kernel per dynamic
 * behavior family —
 *
 *  - art:    dense affine loop nests (the decoded ArrayRef1A and
 *            ComputeRun fast paths),
 *  - vpr:    clustered indirect array subscripts,
 *  - mcf:    pointer-chase tree traversal (LoopHeadChase/
 *            LoopTailChase).
 *
 * This is the number the pre-decoded op stream exists to raise; the
 * equivalence of the two streams is asserted in
 * tests/test_predecode.cc, so these benches only have to be fast,
 * not self-checking. Excluded from run_all_benches (micro_* prefix):
 * wall-clock results are machine-dependent and never baselined.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "mem/functional_memory.hh"
#include "workloads/interpreter.hh"
#include "workloads/predecode.hh"
#include "workloads/workload.hh"

namespace
{

using namespace grp;

constexpr uint64_t kSeed = 42;

/** Built workload shared across iterations of one benchmark. */
struct BuiltKernel
{
    explicit BuiltKernel(const std::string &name)
        : prog(makeWorkload(name)->build(fmem, kSeed)),
          decoded(DecodedProgram::lower(prog))
    {
    }

    FunctionalMemory fmem;
    Program prog;
    DecodedProgram decoded;
};

void
runTree(benchmark::State &state, const std::string &name)
{
    BuiltKernel kernel(name);
    Interpreter interp(kernel.prog, kernel.fmem, kSeed);
    uint64_t ops = 0;
    TraceOp op;
    for (auto _ : state) {
        if (!interp.next(op))
            interp.reset();
        benchmark::DoNotOptimize(op);
        ++ops;
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops));
}

void
runDecoded(benchmark::State &state, const std::string &name)
{
    BuiltKernel kernel(name);
    DecodedInterpreter interp(kernel.decoded, kernel.fmem, kSeed);
    uint64_t ops = 0;
    TraceOp op;
    for (auto _ : state) {
        if (!interp.next(op))
            interp.reset();
        benchmark::DoNotOptimize(op);
        ++ops;
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops));
}

/** The batch interface the CPU actually consumes: spans per virtual
 *  call instead of one op. */
void
runDecodedBatch(benchmark::State &state, const std::string &name)
{
    BuiltKernel kernel(name);
    DecodedInterpreter interp(kernel.decoded, kernel.fmem, kSeed);
    uint64_t ops = 0;
    const TraceOp *batch = nullptr;
    for (auto _ : state) {
        size_t run = interp.nextBatch(&batch);
        if (run == 0) {
            interp.reset();
            run = interp.nextBatch(&batch);
        }
        benchmark::DoNotOptimize(batch);
        ops += run;
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops));
}

void BM_Tree_Affine(benchmark::State &s) { runTree(s, "art"); }
void BM_Decoded_Affine(benchmark::State &s) { runDecoded(s, "art"); }
void BM_DecodedBatch_Affine(benchmark::State &s)
{
    runDecodedBatch(s, "art");
}
void BM_Tree_Indirect(benchmark::State &s) { runTree(s, "vpr"); }
void BM_Decoded_Indirect(benchmark::State &s) { runDecoded(s, "vpr"); }
void BM_DecodedBatch_Indirect(benchmark::State &s)
{
    runDecodedBatch(s, "vpr");
}
void BM_Tree_PointerChase(benchmark::State &s) { runTree(s, "mcf"); }
void BM_Decoded_PointerChase(benchmark::State &s)
{
    runDecoded(s, "mcf");
}
void BM_DecodedBatch_PointerChase(benchmark::State &s)
{
    runDecodedBatch(s, "mcf");
}

BENCHMARK(BM_Tree_Affine);
BENCHMARK(BM_Decoded_Affine);
BENCHMARK(BM_DecodedBatch_Affine);
BENCHMARK(BM_Tree_Indirect);
BENCHMARK(BM_Decoded_Indirect);
BENCHMARK(BM_DecodedBatch_Indirect);
BENCHMARK(BM_Tree_PointerChase);
BENCHMARK(BM_Decoded_PointerChase);
BENCHMARK(BM_DecodedBatch_PointerChase);

} // namespace

BENCHMARK_MAIN();
