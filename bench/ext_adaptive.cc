/**
 * @file
 * Extension: the feedback-directed adaptive controller vs static
 * schemes.
 *
 * ext_throttle shows that global accuracy throttling (no program
 * knowledge) buys its traffic savings with coverage. This harness
 * adds the other direction: GRP/Var hardware driven by the per-class
 * feedback controller (grp-adaptive), which starts at GRP/Var's
 * operating point and moves individual hint classes' region size,
 * insertion position, queue priority and pointer depth only on
 * epoch-level evidence. The acceptance bar from the issue: adaptive
 * coverage must be at least throttled-SRP coverage while staying
 * within 1.3x of GRP/Var traffic.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/suite.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace grp;

namespace
{

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(600'000);

    const std::vector<std::string> suite = perfSuite();
    const PrefetchScheme schemes[5] = {
        PrefetchScheme::None, PrefetchScheme::Srp,
        PrefetchScheme::SrpThrottled, PrefetchScheme::GrpVar,
        PrefetchScheme::GrpAdaptive};
    BenchSweep sweep("ext_adaptive");
    for (const std::string &name : suite)
        for (PrefetchScheme scheme : schemes)
            sweep.addScheme(name, scheme, opts);
    sweep.run();

    std::printf("Extension: adaptive controller vs static schemes\n");
    std::printf("%-9s | %7s %7s %7s %7s | %7s %7s %7s %7s | "
                "%7s %7s %7s %7s\n",
                "bench", "srp-sp", "thr-sp", "var-sp", "ada-sp",
                "srp-tr", "thr-tr", "var-tr", "ada-tr", "srp-cov",
                "thr-cov", "var-cov", "ada-cov");

    // Index 0 is the no-prefetch base; 1..4 the compared schemes.
    std::vector<double> sp[4], tr[4], cov[4];
    uint64_t epochs = 0, transitions = 0;
    for (size_t b = 0; b < suite.size(); ++b) {
        const RunResult &base = sweep.result(5 * b + 0);
        const RunResult *runs[4] = {
            &sweep.result(5 * b + 1), &sweep.result(5 * b + 2),
            &sweep.result(5 * b + 3), &sweep.result(5 * b + 4)};
        for (int i = 0; i < 4; ++i) {
            sp[i].push_back(speedup(*runs[i], base));
            tr[i].push_back(trafficRatio(*runs[i], base));
            cov[i].push_back(runs[i]->coveragePct(base));
        }
        epochs += runs[3]->stats.value("adaptive.epochs");
        for (const char *knob :
             {"transitionsSize", "transitionsInsert",
              "transitionsPriority", "transitionsDepth"})
            transitions +=
                runs[3]->stats.value(std::string("adaptive.") + knob);
        std::printf("%-9s | %7.3f %7.3f %7.3f %7.3f | %7.2f %7.2f "
                    "%7.2f %7.2f | %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
                    suite[b].c_str(), sp[0].back(), sp[1].back(),
                    sp[2].back(), sp[3].back(), tr[0].back(),
                    tr[1].back(), tr[2].back(), tr[3].back(),
                    cov[0].back(), cov[1].back(), cov[2].back(),
                    cov[3].back());
    }
    std::printf("%-9s | %7.3f %7.3f %7.3f %7.3f | %7.2f %7.2f %7.2f "
                "%7.2f | %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
                "mean", geometricMean(sp[0]), geometricMean(sp[1]),
                geometricMean(sp[2]), geometricMean(sp[3]),
                geometricMean(tr[0]), geometricMean(tr[1]),
                geometricMean(tr[2]), geometricMean(tr[3]),
                mean(cov[0]), mean(cov[1]), mean(cov[2]),
                mean(cov[3]));

    // The acceptance bar: per-class feedback must not give up the
    // coverage global throttling sacrifices, nor spend meaningfully
    // more traffic than the static hints it regulates.
    const bool coverage_ok = mean(cov[3]) >= mean(cov[1]);
    const bool traffic_ok =
        geometricMean(tr[3]) <= 1.3 * geometricMean(tr[2]);
    std::printf("\nadaptive controller: %llu epochs, %llu knob "
                "transitions across the suite\n",
                (unsigned long long)epochs,
                (unsigned long long)transitions);
    std::printf("coverage >= throttled-SRP: %s;  traffic <= 1.3x "
                "GRP/Var: %s\n",
                coverage_ok ? "yes" : "NO",
                traffic_ok ? "yes" : "NO");

    std::ofstream json_file(benchOutPath("ext_adaptive"));
    obs::JsonWriter json(json_file);
    json.beginObject();
    json.kv("schema", "grp-ext-adaptive-v1");
    json.kv("benchmarks", static_cast<uint64_t>(suite.size()));
    json.kv("instructions", opts.maxInstructions);
    json.key("schemes");
    json.beginObject();
    for (int i = 0; i < 4; ++i) {
        json.key(toString(schemes[i + 1]));
        json.beginObject();
        json.kv("speedup", geometricMean(sp[i]));
        json.kv("trafficRatio", geometricMean(tr[i]));
        // Coverage can be negative (pollution), so the suite summary
        // is an arithmetic mean.
        json.kv("meanCoveragePct", mean(cov[i]));
        json.endObject();
    }
    json.endObject();
    json.key("controller");
    json.beginObject();
    json.kv("controllerEpochs", epochs);
    json.kv("controllerTransitions", transitions);
    json.endObject();
    json.key("checks");
    json.beginObject();
    json.kv("adaptiveCoverageAtLeastThrottled", coverage_ok);
    json.kv("adaptiveTrafficWithinGrpVar", traffic_ok);
    json.endObject();
    json.endObject();
    return 0;
}
