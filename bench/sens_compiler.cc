/**
 * @file
 * Section 5.4: sensitivity to the compiler's spatial-marking policy.
 *
 * The aggressive policy marks references spatial even when their
 * reuse distance exceeds the L2; the conservative policy marks only
 * innermost-loop reuse. The paper reports: aggressive loses ~2%
 * performance and adds ~5% traffic versus the default; conservative
 * loses ~5% performance (hitting applu, art, equake, apsi hardest)
 * with little traffic change.
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    const CompilerPolicy policies[] = {CompilerPolicy::Conservative,
                                       CompilerPolicy::Default,
                                       CompilerPolicy::Aggressive};

    const std::vector<std::string> suite = perfSuite();
    BenchSweep sweep("sens_compiler");
    for (const std::string &name : suite) {
        sweep.addScheme(name, PrefetchScheme::None, opts);
        for (CompilerPolicy policy : policies)
            sweep.addScheme(name, PrefetchScheme::GrpVar, opts,
                            policy);
    }
    sweep.run();

    std::printf("Section 5.4: GRP sensitivity to the compiler "
                "policy (speedup and traffic vs no prefetching)\n");
    std::printf("%-9s | %10s %10s | %10s %10s | %10s %10s\n",
                "bench", "consv-sp", "consv-tr", "deflt-sp",
                "deflt-tr", "aggr-sp", "aggr-tr");

    std::vector<double> sp[3], tr[3];
    for (size_t b = 0; b < suite.size(); ++b) {
        const std::string &name = suite[b];
        const RunResult &base = sweep.result(4 * b + 0);
        double row_sp[3], row_tr[3];
        for (int i = 0; i < 3; ++i) {
            const RunResult &run = sweep.result(4 * b + 1 + i);
            row_sp[i] = speedup(run, base);
            row_tr[i] = trafficRatio(run, base);
            sp[i].push_back(row_sp[i]);
            tr[i].push_back(row_tr[i]);
        }
        std::printf("%-9s | %10.3f %10.2f | %10.3f %10.2f | %10.3f "
                    "%10.2f\n",
                    name.c_str(), row_sp[0], row_tr[0], row_sp[1],
                    row_tr[1], row_sp[2], row_tr[2]);
    }
    std::printf("geomean   | %10.3f %10.2f | %10.3f %10.2f | %10.3f "
                "%10.2f\n",
                geometricMean(sp[0]), geometricMean(tr[0]),
                geometricMean(sp[1]), geometricMean(tr[1]),
                geometricMean(sp[2]), geometricMean(tr[2]));
    std::printf("paper: conservative ~ -5%% perf; aggressive ~ -2%% "
                "perf, +5%% traffic (vs default)\n");
    return 0;
}
