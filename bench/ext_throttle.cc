/**
 * @file
 * Extension: dynamic accuracy throttling vs compiler guidance.
 *
 * Section 1 of the paper dismisses accuracy-throttled prefetchers:
 * "While some schemes throttle prefetching when the accuracy drops
 * below a threshold, they then miss opportunities for issuing useful
 * prefetches." This harness quantifies that argument on our suite:
 * throttled SRP recovers much of SRP's wasted traffic, but gives up
 * coverage on exactly the benchmarks where GRP's hints keep it.
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(600'000);

    const std::vector<std::string> suite = perfSuite();
    const PrefetchScheme schemes[4] = {
        PrefetchScheme::None, PrefetchScheme::Srp,
        PrefetchScheme::SrpThrottled, PrefetchScheme::GrpVar};
    BenchSweep sweep("ext_throttle");
    for (const std::string &name : suite)
        for (PrefetchScheme scheme : schemes)
            sweep.addScheme(name, scheme, opts);
    sweep.run();

    std::printf("Extension: SRP vs accuracy-throttled SRP vs GRP\n");
    std::printf("%-9s | %7s %7s %7s | %7s %7s %7s | %7s %7s %7s\n",
                "bench", "srp-sp", "thr-sp", "grp-sp", "srp-tr",
                "thr-tr", "grp-tr", "srp-cov", "thr-cov", "grp-cov");

    std::vector<double> sp[3], tr[3];
    for (size_t b = 0; b < suite.size(); ++b) {
        const std::string &name = suite[b];
        const RunResult &base = sweep.result(4 * b + 0);
        const RunResult &srp = sweep.result(4 * b + 1);
        const RunResult &thr = sweep.result(4 * b + 2);
        const RunResult &grp = sweep.result(4 * b + 3);
        const RunResult *runs[3] = {&srp, &thr, &grp};
        for (int i = 0; i < 3; ++i) {
            sp[i].push_back(speedup(*runs[i], base));
            tr[i].push_back(trafficRatio(*runs[i], base));
        }
        std::printf("%-9s | %7.3f %7.3f %7.3f | %7.2f %7.2f %7.2f | "
                    "%6.1f%% %6.1f%% %6.1f%%\n",
                    name.c_str(), sp[0].back(), sp[1].back(),
                    sp[2].back(), tr[0].back(), tr[1].back(),
                    tr[2].back(), srp.coveragePct(base),
                    thr.coveragePct(base), grp.coveragePct(base));
    }
    std::printf("%-9s | %7.3f %7.3f %7.3f | %7.2f %7.2f %7.2f |\n",
                "geomean", geometricMean(sp[0]), geometricMean(sp[1]),
                geometricMean(sp[2]), geometricMean(tr[0]),
                geometricMean(tr[1]), geometricMean(tr[2]));
    std::printf("\nThrottling trades coverage for traffic with no "
                "program knowledge; GRP keeps both\nby knowing "
                "*which* misses deserve regions (§1 of the paper).\n");
    return 0;
}
