/**
 * @file
 * Figure 10: performance gains from region prefetching and stride
 * prefetching for the integer benchmarks. Bars are speedups over no
 * prefetching; the perfect-L2 IPC bounds each benchmark.
 */

#include <cstdio>

#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    const std::vector<std::string> suite = intSuite();
    const PrefetchScheme schemes[4] = {
        PrefetchScheme::None, PrefetchScheme::Stride,
        PrefetchScheme::Srp, PrefetchScheme::GrpVar};
    BenchSweep sweep("fig10_int_perf");
    for (const std::string &name : suite) {
        for (PrefetchScheme scheme : schemes)
            sweep.addScheme(name, scheme, opts);
        sweep.addPerfect(name, Perfection::PerfectL2, opts);
    }
    sweep.run();

    std::printf("Figure 10: integer benchmarks, speedup over no "
                "prefetching\n");
    std::printf("%-9s %8s %8s %8s %8s | %9s\n", "bench", "stride",
                "srp", "grp", "pf-L2", "grp-gap%");
    for (size_t b = 0; b < suite.size(); ++b) {
        const std::string &name = suite[b];
        const RunResult &base = sweep.result(5 * b + 0);
        const RunResult &stride = sweep.result(5 * b + 1);
        const RunResult &srp = sweep.result(5 * b + 2);
        const RunResult &grp = sweep.result(5 * b + 3);
        const RunResult &perfect = sweep.result(5 * b + 4);
        std::printf("%-9s %8.3f %8.3f %8.3f %8.3f | %9.2f\n",
                    name.c_str(), speedup(stride, base),
                    speedup(srp, base), speedup(grp, base),
                    speedup(perfect, base),
                    gapFromPerfect(grp, perfect));
    }
    return 0;
}
