/**
 * @file
 * Figure 10: performance gains from region prefetching and stride
 * prefetching for the integer benchmarks. Bars are speedups over no
 * prefetching; the perfect-L2 IPC bounds each benchmark.
 */

#include <cstdio>

#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    std::printf("Figure 10: integer benchmarks, speedup over no "
                "prefetching\n");
    std::printf("%-9s %8s %8s %8s %8s | %9s\n", "bench", "stride",
                "srp", "grp", "pf-L2", "grp-gap%");
    for (const std::string &name : intSuite()) {
        const RunResult base =
            runScheme(name, PrefetchScheme::None, opts);
        const RunResult stride =
            runScheme(name, PrefetchScheme::Stride, opts);
        const RunResult srp =
            runScheme(name, PrefetchScheme::Srp, opts);
        const RunResult grp =
            runScheme(name, PrefetchScheme::GrpVar, opts);
        const RunResult perfect =
            runPerfect(name, Perfection::PerfectL2, opts);
        std::printf("%-9s %8.3f %8.3f %8.3f %8.3f | %9.2f\n",
                    name.c_str(), speedup(stride, base),
                    speedup(srp, base), speedup(grp, base),
                    speedup(perfect, base),
                    gapFromPerfect(grp, perfect));
    }
    return 0;
}
