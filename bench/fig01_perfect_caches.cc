/**
 * @file
 * Figure 1: processor performance with a realistic hierarchy versus
 * perfect-L2 and perfect-L1 limits, plus the GRP result, for every
 * benchmark. The paper reports a geometric-mean gap of 33.7% between
 * the realistic system and a perfect L2.
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    const std::vector<std::string> suite = perfSuite();
    BenchSweep sweep("fig01_perfect_caches");
    for (const std::string &name : suite) {
        sweep.addScheme(name, PrefetchScheme::None, opts);
        sweep.addPerfect(name, Perfection::PerfectL2, opts);
        sweep.addPerfect(name, Perfection::PerfectL1, opts);
        sweep.addScheme(name, PrefetchScheme::GrpVar, opts);
    }
    sweep.run();

    std::printf("Figure 1: IPC for base / perfect-L2 / perfect-L1 / "
                "GRP (sorted output order = suite order)\n");
    std::printf("%-9s %8s %8s %8s %8s | %8s %8s\n", "bench", "base",
                "pf-L2", "pf-L1", "grp", "gap-L2%", "gap-L1%");

    std::vector<double> gap_ratios;
    for (size_t b = 0; b < suite.size(); ++b) {
        const std::string &name = suite[b];
        const RunResult &base = sweep.result(4 * b + 0);
        const RunResult &l2 = sweep.result(4 * b + 1);
        const RunResult &l1 = sweep.result(4 * b + 2);
        const RunResult &grp = sweep.result(4 * b + 3);
        std::printf("%-9s %8.3f %8.3f %8.3f %8.3f | %8.2f %8.2f\n",
                    name.c_str(), base.ipc, l2.ipc, l1.ipc, grp.ipc,
                    gapFromPerfect(base, l2), gapFromPerfect(base, l1));
        gap_ratios.push_back(base.ipc / l2.ipc);
    }
    std::printf("geomean gap from perfect L2: %.2f%% (paper: "
                "33.72%%)\n",
                100.0 * (1.0 - geometricMean(gap_ratios)));
    return 0;
}
