/**
 * @file
 * Figure 12: memory traffic normalised to no prefetching, per
 * benchmark, for stride / SRP / GRP. The paper's means: stride
 * +10.1%, SRP +180% (up to 25.5x on single benchmarks), GRP +23%.
 */

#include <cstdio>
#include <fstream>
#include <vector>

#include "harness/suite.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    const std::vector<std::string> suite = perfSuite();
    const PrefetchScheme schemes[4] = {
        PrefetchScheme::None, PrefetchScheme::Stride,
        PrefetchScheme::Srp, PrefetchScheme::GrpVar};
    BenchSweep sweep("fig12_traffic");
    for (const std::string &name : suite)
        for (PrefetchScheme scheme : schemes)
            sweep.addScheme(name, scheme, opts);
    sweep.run();

    std::printf("Figure 12: memory traffic normalised to no "
                "prefetching\n");
    std::printf("%-9s %8s %8s %8s %8s\n", "bench", "base", "stride",
                "srp", "grp");
    std::ofstream json_file(benchOutPath("fig12_traffic"));
    obs::JsonWriter json(json_file);
    json.beginObject();
    json.kv("schema", "grp-fig12-v1");
    json.kv("instructions", opts.maxInstructions);
    json.key("benchmarks");
    json.beginObject();
    std::vector<double> stride_ratios, srp_ratios, grp_ratios;
    for (size_t b = 0; b < suite.size(); ++b) {
        const std::string &name = suite[b];
        const RunResult &base = sweep.result(4 * b + 0);
        const RunResult &stride = sweep.result(4 * b + 1);
        const RunResult &srp = sweep.result(4 * b + 2);
        const RunResult &grp = sweep.result(4 * b + 3);
        stride_ratios.push_back(trafficRatio(stride, base));
        srp_ratios.push_back(trafficRatio(srp, base));
        grp_ratios.push_back(trafficRatio(grp, base));
        json.key(name);
        json.beginObject();
        json.kv("baseTrafficBytes", base.trafficBytes);
        json.kv("stride", stride_ratios.back());
        json.kv("srp", srp_ratios.back());
        json.kv("grp", grp_ratios.back());
        json.endObject();
        std::printf("%-9s %8.2f %8.2f %8.2f %8.2f\n", name.c_str(),
                    1.0, stride_ratios.back(), srp_ratios.back(),
                    grp_ratios.back());
    }
    json.endObject();
    json.key("geomean");
    json.beginObject();
    json.kv("stride", geometricMean(stride_ratios));
    json.kv("srp", geometricMean(srp_ratios));
    json.kv("grp", geometricMean(grp_ratios));
    json.endObject();
    json.endObject();
    std::printf("geomean    %8.2f %8.2f %8.2f %8.2f   (paper: 1.00 "
                "1.10 2.80 1.23)\n",
                1.0, geometricMean(stride_ratios),
                geometricMean(srp_ratios), geometricMean(grp_ratios));
    return 0;
}
