/**
 * @file
 * Table 4: GRP/Var versus GRP/Fix — traffic normalised to no
 * prefetching plus the distribution of variable region sizes, for
 * the three benchmarks where the two differ in the paper (mesa,
 * bzip2, sphinx). Paper values: traffic Var/Fix = 1.11/6.55 (mesa),
 * 1.47/4.97 (bzip2), 2.09/11.66 (sphinx); region size 2 dominates
 * (90.3% / 76.8% / 82.9%).
 */

#include <cstdio>

#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = instructionBudget(1'500'000);

    BenchSweep sweep("tab04_var_regions");
    for (const char *name : {"mesa", "bzip2", "sphinx"}) {
        sweep.addScheme(name, PrefetchScheme::None, opts);
        sweep.addScheme(name, PrefetchScheme::GrpFix, opts);
        sweep.addScheme(name, PrefetchScheme::GrpVar, opts);
    }
    sweep.run();

    std::printf("Table 4: GRP/Var vs GRP/Fix traffic and region "
                "size distribution\n");
    std::printf("%-9s %8s %8s | region blocks: %%2 %%4 %%8 %%16 %%32 "
                "%%64\n",
                "bench", "var-tr", "fix-tr");
    size_t job = 0;
    for (const char *name : {"mesa", "bzip2", "sphinx"}) {
        const RunResult &base = sweep.result(job++);
        const RunResult &fix = sweep.result(job++);
        const RunResult &var = sweep.result(job++);

        uint64_t total = 0;
        for (const auto &[blocks, count] : var.regionSizes)
            total += count;
        std::printf("%-9s %8.2f %8.2f | ", name,
                    trafficRatio(var, base), trafficRatio(fix, base));
        for (unsigned blocks = 2; blocks <= 64; blocks <<= 1) {
            const auto it = var.regionSizes.find(blocks);
            const double pct =
                total && it != var.regionSizes.end()
                    ? 100.0 * static_cast<double>(it->second) /
                          static_cast<double>(total)
                    : 0.0;
            std::printf("%5.1f ", pct);
        }
        std::printf("\n");
    }
    return 0;
}
