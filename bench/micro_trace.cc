/**
 * @file
 * google-benchmark microbenchmarks of the per-record trace emission
 * cost — the number the binary flight-recorder format exists to
 * shrink:
 *
 *  - formatTraceLine(): the JSONL sink's snprintf path;
 *  - bintrace::Writer::record(): the .grpbin varint/delta path;
 *  - the full Tracer::record() hot path for both formats (stdio
 *    buffering included), plus the disabled-site guard every
 *    GRP_TRACE site pays when tracing is off.
 */

#include <benchmark/benchmark.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/bintrace.hh"
#include "obs/trace.hh"

namespace
{

using namespace grp;

/** A realistic record mix: mostly fills/uses with nearby addresses,
 *  occasional queue events — what a level-2 grp-var trace contains. */
obs::TraceRecord
sampleRecord(size_t i)
{
    const Addr addr = 0x40000000 + 64 * ((i * 7) % 512);
    switch (i % 4) {
      case 0:
        return {obs::TraceEvent::Issue, addr, obs::HintClass::Spatial,
                static_cast<int>(i % 4), -1, false,
                static_cast<RefId>(i % 37)};
      case 1:
        return {obs::TraceEvent::Fill, addr, obs::HintClass::Spatial,
                -1, -1, false, static_cast<RefId>(i % 37)};
      case 2:
        return {obs::TraceEvent::FirstUse, addr,
                obs::HintClass::None, -1,
                static_cast<int64_t>(100 + i % 900), false,
                static_cast<RefId>(i % 37)};
      default:
        return {obs::TraceEvent::Enqueue, addr,
                obs::HintClass::Pointer, -1, 8, false, kInvalidRefId};
    }
}

void
BM_JsonlFormatLine(benchmark::State &state)
{
    char buf[256];
    size_t i = 0;
    for (auto _ : state) {
        const size_t n = obs::formatTraceLine(
            buf, sizeof(buf), 1000 + 3 * i, sampleRecord(i), false);
        benchmark::DoNotOptimize(buf);
        benchmark::DoNotOptimize(n);
        ++i;
    }
}
BENCHMARK(BM_JsonlFormatLine);

void
BM_BinaryWriterRecord(benchmark::State &state)
{
    std::FILE *sink = std::fopen("/dev/null", "wb");
    obs::bintrace::Writer writer(
        sink, obs::bintrace::StreamKind::Lifecycle,
        obs::lifecycleTables());
    size_t i = 0;
    for (auto _ : state) {
        writer.record(sampleRecord(i), 1000 + 3 * i, false);
        ++i;
    }
    writer.finalize();
    std::fclose(sink);
    state.counters["bytes/rec"] = benchmark::Counter(
        static_cast<double>(writer.bytesWritten()),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BinaryWriterRecord);

/** Full Tracer path (guard + clockless timestamp + stdio buffer).
 *  The stdout sink is redirected to /dev/null for the measurement
 *  (fd-level, restored after) so the bench measures emission, not
 *  terminal I/O. */
void
traceThroughTracer(benchmark::State &state, obs::TraceFormat format)
{
    std::fflush(stdout);
    const int saved = dup(STDOUT_FILENO);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (saved < 0 || devnull < 0 ||
        dup2(devnull, STDOUT_FILENO) < 0) {
        state.SkipWithError("stdout redirect failed");
        return;
    }
    ::close(devnull);

    obs::Tracer &tracer = obs::Tracer::instance();
    if (tracer.open("-", format)) {
        tracer.setLevel(2);
        size_t i = 0;
        for (auto _ : state) {
            tracer.record(sampleRecord(i));
            ++i;
        }
        tracer.close();
    } else {
        state.SkipWithError("tracer open failed");
    }

    std::fflush(stdout);
    dup2(saved, STDOUT_FILENO);
    ::close(saved);
}

void
BM_TracerJsonl(benchmark::State &state)
{
    traceThroughTracer(state, obs::TraceFormat::Jsonl);
}
BENCHMARK(BM_TracerJsonl);

void
BM_TracerBinary(benchmark::State &state)
{
    traceThroughTracer(state, obs::TraceFormat::Binary);
}
BENCHMARK(BM_TracerBinary);

/** What every GRP_TRACE site costs with tracing off: one enabled()
 *  compare. */
void
BM_DisabledSiteGuard(benchmark::State &state)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    for (auto _ : state) {
        if (tracer.enabled(2))
            tracer.record(sampleRecord(0));
    }
}
BENCHMARK(BM_DisabledSiteGuard);

} // namespace

BENCHMARK_MAIN();
