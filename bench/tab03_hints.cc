/**
 * @file
 * Table 3: number of compiler hints for each benchmark — static
 * memory reference instructions, spatial / pointer / recursive
 * marks, the hinted fraction, and indirect prefetch instructions.
 *
 * Our kernels are distilled idiom reproductions, so the absolute
 * static counts are small; the shape to compare against the paper is
 * *which categories are populated* per benchmark (e.g. only the
 * Fortran codes have zero pointer hints; parser/twolf/mcf/sphinx
 * have recursive hints; vpr/bzip2/gzip have indirect instructions).
 */

#include <cstdio>

#include "compiler/hint_generator.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

using namespace grp;

int
main()
{
    setQuiet(true);
    std::printf("Table 3: static compiler hints per benchmark\n");
    std::printf("%-9s %9s %8s %8s %10s %8s %9s\n", "bench",
                "mem insts", "spatial", "pointer", "recursive",
                "ratio%", "indirect");
    for (const std::string &name : workloadNames()) {
        FunctionalMemory mem;
        auto workload = makeWorkload(name);
        Program prog = workload->build(mem, 42);
        HintTable table;
        HintGenerator generator(CompilerPolicy::Default,
                                1024 * 1024);
        const HintStats stats = generator.run(prog, table);
        std::printf("%-9s %9u %8u %8u %10u %8.1f %9u\n", name.c_str(),
                    stats.memInsts, stats.spatial, stats.pointer,
                    stats.recursive, 100.0 * stats.hintedRatio,
                    stats.indirect);
    }
    return 0;
}
