#!/usr/bin/env python3
"""Gate simulator throughput against a committed perf manifest.

Usage:
    tools/perf_compare.py [--baseline bench/baselines/perf_manifest.json]
                          [--manifest bench/out/manifest.json]
                          [--tolerance 0.15] [--strict] [--update]

Compares the new bench manifest's simulated-instructions-per-second
figures — aggregate and per bench — against the committed baseline
manifest. A drop beyond --tolerance (default 15%) fails the gate;
improvements and small noise pass. For every regressed bench the
host-phase self-time shares from both manifests are printed side by
side, so the failure names the phase (interpreter, L2, MSHR, DRAM,
engine, stats overhead) whose share grew instead of just saying
"slower".

Throughput is only comparable between runs on the same machine and
build: when the two manifests' provenance disagrees (different CPU
model, compiler, build type or thread count), failures are
downgraded to warnings unless --strict forces them. CI pins a serial
provenance (GRP_BENCH_THREADS=1) and commits the baseline from the
same runner class, so the gate stays meaningful there.

--update rewrites the baseline from the new manifest (after a
deliberate perf change or a runner migration); commit the result.

Exit status: 0 when within tolerance (or mismatched provenance
without --strict), 1 on a gated regression or missing inputs.
"""

import argparse
import json
import sys
from pathlib import Path

# Provenance fields that make throughput numbers comparable at all.
PROVENANCE_KEYS = (
    "cpuModel", "compiler", "buildType", "cxxFlags", "benchThreads",
    "traceMode")


def load(path):
    try:
        return json.loads(path.read_text())
    except OSError as err:
        print(f"perf_compare: cannot read {path}: {err}",
              file=sys.stderr)
        return None
    except json.JSONDecodeError as err:
        print(f"perf_compare: {path} unparseable: {err}",
              file=sys.stderr)
        return None


def inst_per_sec(manifest):
    """(aggregate, {bench: inst/s}) from one manifest; None entries
    for benches without throughput figures."""
    benches = {
        name: data.get("instructionsPerSecond")
        for name, data in (manifest.get("benches") or {}).items()
    }
    return manifest.get("instructionsPerSecond"), benches


def provenance_mismatches(base, new):
    base_prov = base.get("provenance") or {}
    new_prov = new.get("provenance") or {}
    return [
        f"{key}: {new_prov.get(key)!r} != baseline "
        f"{base_prov.get(key)!r}"
        for key in PROVENANCE_KEYS
        if base_prov.get(key) != new_prov.get(key)
    ]


def phase_shares(manifest, bench):
    """{phase: percent of the bench's attributed self time}."""
    phases = (manifest.get("benches", {}).get(bench) or {}).get(
        "hostPhases") or {}
    total = sum(p.get("selfNanos", 0) for p in phases.values())
    if not total:
        return {}
    return {
        name: 100.0 * p.get("selfNanos", 0) / total
        for name, p in phases.items()
    }


def print_phase_deltas(base, new, bench):
    base_shares = phase_shares(base, bench)
    new_shares = phase_shares(new, bench)
    if not base_shares and not new_shares:
        print(f"  {bench}: no host-phase data "
              "(run the sweep with GRP_HOST_PROF=1 to attribute)")
        return
    rows = sorted(
        base_shares.keys() | new_shares.keys(),
        key=lambda name: -new_shares.get(name, 0.0))
    print(f"  {bench}: phase self-time shares (baseline -> new)")
    for name in rows:
        b = base_shares.get(name, 0.0)
        n = new_shares.get(name, 0.0)
        print(f"    {name:16s} {b:5.1f}% -> {n:5.1f}%  "
              f"({n - b:+.1f} points)")


def check(base, new, tolerance):
    """Returns (regressions, lines): regressed bench names (aggregate
    is '<aggregate>') and the report lines for every compared row."""
    base_total, base_benches = inst_per_sec(base)
    new_total, new_benches = inst_per_sec(new)
    regressions = []
    lines = []

    def compare(label, b, n):
        if not b or not n:
            lines.append(f"{label:24s} skipped (no figure)")
            return
        delta = (n - b) / b
        verdict = "ok"
        if delta < -tolerance:
            verdict = f"REGRESSION (limit -{tolerance:.0%})"
            regressions.append(label)
        lines.append(
            f"{label:24s} {b:14.0f} -> {n:14.0f}  {delta:+7.1%}  "
            f"{verdict}")

    compare("<aggregate>", base_total, new_total)
    for bench in sorted(base_benches):
        if bench not in new_benches:
            lines.append(f"{bench:24s} missing from new manifest")
            regressions.append(bench)
            continue
        compare(bench, base_benches[bench], new_benches[bench])
    for bench in sorted(set(new_benches) - set(base_benches)):
        lines.append(f"{bench:24s} new (no baseline)")
    return regressions, lines


def main():
    parser = argparse.ArgumentParser(
        description="Gate simulator inst/s against a baseline "
                    "manifest.")
    parser.add_argument(
        "--baseline", type=Path,
        default=Path("bench/baselines/perf_manifest.json"))
    parser.add_argument("--manifest", type=Path,
                        default=Path("bench/out/manifest.json"))
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max fractional inst/s drop (0.15=15%%)")
    parser.add_argument("--strict", action="store_true",
                        help="fail even across provenance mismatches")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --manifest")
    args = parser.parse_args()

    new = load(args.manifest)
    if new is None:
        return 1

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(new, indent=2) + "\n")
        print(f"perf_compare: baseline updated: {args.baseline}")
        return 0

    base = load(args.baseline)
    if base is None:
        print("perf_compare: no baseline — generate one with "
              "--update and commit it", file=sys.stderr)
        return 1

    regressions, lines = check(base, new, args.tolerance)
    print(f"{'bench':24s} {'baseline':>14s}    {'new':>14s}  "
          f"{'delta':>7s}")
    for line in lines:
        print(line)

    mismatches = provenance_mismatches(base, new)
    for mismatch in mismatches:
        print(f"perf_compare: provenance mismatch: {mismatch}",
              file=sys.stderr)

    if not regressions:
        print(f"perf_compare: throughput within {args.tolerance:.0%} "
              "of baseline")
        return 0

    print(f"perf_compare: {len(regressions)} regression(s): "
          f"{', '.join(regressions)}", file=sys.stderr)
    attributed = set()
    for bench in regressions:
        targets = ([bench] if bench != "<aggregate>"
                   else sorted((base.get("benches") or {}).keys()))
        for b in targets:
            if b not in attributed:
                attributed.add(b)
                print_phase_deltas(base, new, b)

    if mismatches and not args.strict:
        print("perf_compare: provenance differs — regressions "
              "downgraded to warnings (use --strict to enforce)",
              file=sys.stderr)
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
