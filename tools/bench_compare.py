#!/usr/bin/env python3
"""Compare bench JSON artefacts against committed baselines.

Usage:
    tools/bench_compare.py [--baseline bench/baselines] [--out bench/out]
                           [--list-tolerances]

Walks every *.json in the baseline directory, loads the artefact of
the same name from the output directory, and diffs them leaf by leaf.
Structure (missing/extra keys, mismatched types) must match exactly;
numeric leaves are compared under per-metric tolerances keyed on the
leaf's key name, so a simulator change that shifts a headline metric
beyond its tolerance fails the gate while benign noise does not.

The simulator is deterministic for a fixed seed and instruction
budget, so the tolerances are deliberately tight: they exist to
absorb intentional-but-small modelling drift, not run-to-run noise.
Regenerate a baseline on purpose with:

    GRP_INSTRUCTIONS=20000 GRP_BENCH_OUT=bench/baselines \
        build/bench/<bench_name>

Exit status: 0 when everything matches, 1 with one line per failure
otherwise.
"""

import argparse
import json
import sys
from pathlib import Path

# (kind, tolerance) per leaf key. "rel": |a-b| <= tol * max(|a|,|b|);
# "abs": |a-b| <= tol; "exact": equality (also the default for
# non-numeric leaves and schema/config fields).
TOLERANCES = {
    # Identity / configuration: must never drift silently.
    "schema": ("exact", 0),
    "instructions": ("exact", 0),
    "label": ("exact", 0),
    # Paper reference values are constants.
    "paperSpeedup": ("exact", 0),
    "paperTraffic": ("exact", 0),
    "paperGap": ("exact", 0),
    # Headline ratios.
    "speedup": ("rel", 0.02),
    "trafficRatio": ("rel", 0.05),
    # Percent-valued metrics compare in absolute points.
    "gapFromPerfectPct": ("abs", 5.0),
    "accuracyPct": ("abs", 5.0),
    "coveragePct": ("abs", 5.0),
    "meanCoveragePct": ("abs", 5.0),
    "missRatePct": ("abs", 5.0),
    # Adaptive-controller activity (ext_adaptive): epoch count tracks
    # simulated cycles; knob moves are few, so allow wider drift.
    "controllerEpochs": ("rel", 0.10),
    "controllerTransitions": ("rel", 0.25),
    # DRAM backend sweep (ext_dram_backend): absolute IPC shifts with
    # core-model drift; the row-hit rate is a protocol property and
    # compares in points; refresh counts track simulated time.
    "baselineIpc": ("rel", 0.05),
    "rowHitRatePct": ("abs", 5.0),
    "refreshes": ("rel", 0.10),
    # Raw event counts.
    "trafficBytes": ("rel", 0.10),
    "baseTrafficBytes": ("rel", 0.10),
    "prefetchFills": ("rel", 0.10),
    "usefulPrefetches": ("rel", 0.10),
    "warmupUsefulPrefetches": ("rel", 0.10),
    "benchmarks": ("exact", 0),  # Suite size (when a scalar).
    # Counterfactual cost artefact (tab_cost): identity fields are
    # structural (bool/strings compare exactly by default); event
    # counts and cycle totals drift with modelling changes.
    "workload": ("exact", 0),
    "scheme": ("exact", 0),
    "identityHolds": ("exact", 0),
    "l2DemandAccesses": ("rel", 0.10),
    "bothHits": ("rel", 0.10),
    "baselineMisses": ("rel", 0.10),
    "coverageHits": ("rel", 0.10),
    "pollutionMisses": ("rel", 0.10),
    "shadowMisses": ("rel", 0.10),
    "realMisses": ("rel", 0.10),
    "attributed": ("rel", 0.10),
    "unattributed": ("rel", 0.10),
    "victimsRecorded": ("rel", 0.10),
    "victimDrops": ("rel", 0.10),
    "demandCycles": ("rel", 0.10),
    "prefetchCycles": ("rel", 0.10),
    "writebackCycles": ("rel", 0.10),
    "idleCycles": ("rel", 0.10),
    "demandStallCycles": ("rel", 0.10),
}
DEFAULT_TOLERANCE = ("rel", 0.05)

# Timing-only fields (bench sidecars, manifest throughput figures)
# are machine- and thread-count-dependent; never compare them even if
# one slips into a baselined artefact.
TIMING_KEYS = {
    "wallSeconds",
    "totalWallSeconds",
    "benchWallSeconds",
    "wallClockSeconds",
    "instructionsPerSecond",
    "simulatedInstructions",
    "threads",
    "benchThreads",
    "finishedAtUnix",
    # Host-side self-profiling blocks and build/machine provenance:
    # machine-dependent by definition (perf_compare.py owns gating
    # on them).
    "hostProf",
    "hostPhases",
    "provenance",
}


def provenance_warnings(baseline_dir, out_dir):
    """Compare the two manifests' provenance blocks; mismatches are
    warnings, not failures — timing baselines from another machine
    are expected, perf numbers from one are not trustworthy."""
    warnings = []
    pair = []
    for where in (baseline_dir, out_dir):
        path = where / "manifest.json"
        if not path.is_file():
            return warnings
        try:
            pair.append(json.loads(path.read_text())
                        .get("provenance") or {})
        except (OSError, json.JSONDecodeError):
            return warnings
    base, out = pair
    for key in sorted(base.keys() | out.keys()):
        if base.get(key) != out.get(key):
            warnings.append(
                f"provenance.{key}: {out.get(key)!r} != baseline "
                f"{base.get(key)!r}")
    return warnings


def leaf_matches(key, base, out):
    """Return None on a match, else a human-readable reason."""
    if isinstance(base, bool) or isinstance(out, bool) or \
            not isinstance(base, (int, float)) or \
            not isinstance(out, (int, float)):
        return None if base == out else f"{out!r} != baseline {base!r}"
    kind, tol = TOLERANCES.get(key, DEFAULT_TOLERANCE)
    if kind == "exact":
        return None if base == out else f"{out} != baseline {base}"
    delta = abs(out - base)
    if kind == "abs":
        if delta <= tol:
            return None
        return f"{out} vs baseline {base}: |delta| {delta:g} > {tol}"
    limit = tol * max(abs(base), abs(out))
    if delta <= limit:
        return None
    return (f"{out} vs baseline {base}: |delta| {delta:g} > "
            f"{tol:g} relative")


def diff(path, key, base, out, failures):
    where = path or "<root>"
    if key in TIMING_KEYS:
        return
    if type(base) is not type(out) and not (
            isinstance(base, (int, float)) and
            isinstance(out, (int, float)) and
            not isinstance(base, bool) and not isinstance(out, bool)):
        failures.append(f"{where}: type {type(out).__name__} != "
                        f"baseline {type(base).__name__}")
        return
    if isinstance(base, dict):
        for k in sorted(base.keys() | out.keys()):
            child = f"{path}.{k}" if path else k
            if k not in out:
                failures.append(f"{child}: missing from output")
            elif k not in base:
                failures.append(f"{child}: not in baseline")
            else:
                diff(child, k, base[k], out[k], failures)
        return
    if isinstance(base, list):
        if len(base) != len(out):
            failures.append(f"{where}: length {len(out)} != "
                            f"baseline {len(base)}")
            return
        for i, (b, o) in enumerate(zip(base, out)):
            diff(f"{path}[{i}]", key, b, o, failures)
        return
    reason = leaf_matches(key, base, out)
    if reason:
        failures.append(f"{where}: {reason}")


def main():
    parser = argparse.ArgumentParser(
        description="Diff bench JSON artefacts against baselines.")
    parser.add_argument("--baseline", default="bench/baselines",
                        type=Path)
    parser.add_argument("--out", default="bench/out", type=Path)
    parser.add_argument("--list-tolerances", action="store_true")
    args = parser.parse_args()

    if args.list_tolerances:
        for key, (kind, tol) in sorted(TOLERANCES.items()):
            print(f"{key:28s} {kind:5s} {tol}")
        print(f"{'<default>':28s} {DEFAULT_TOLERANCE[0]:5s} "
              f"{DEFAULT_TOLERANCE[1]}")
        return 0

    # perf_manifest.json is the perf gate's baseline (perf_compare.py),
    # not a bench artefact — there is no bench/out counterpart to diff.
    baselines = sorted(path for path in args.baseline.glob("*.json")
                       if path.name != "perf_manifest.json")
    if not baselines:
        print(f"bench_compare: no baselines under {args.baseline}",
              file=sys.stderr)
        return 1

    failures = []
    for base_path in baselines:
        out_path = args.out / base_path.name
        if not out_path.exists():
            failures.append(f"{base_path.name}: not generated "
                            f"(expected {out_path})")
            continue
        try:
            base = json.loads(base_path.read_text())
            out = json.loads(out_path.read_text())
        except json.JSONDecodeError as err:
            failures.append(f"{base_path.name}: unparseable: {err}")
            continue
        before = len(failures)
        diff("", "", base, out, failures)
        status = "ok" if len(failures) == before else "FAIL"
        print(f"{base_path.name}: {status}")

    for warning in provenance_warnings(args.baseline, args.out):
        print(f"bench_compare: warning: {warning}", file=sys.stderr)

    for failure in failures:
        print(f"bench_compare: {failure}", file=sys.stderr)
    if failures:
        print(f"bench_compare: {len(failures)} failure(s) across "
              f"{len(baselines)} artefact(s)", file=sys.stderr)
        return 1
    print(f"bench_compare: {len(baselines)} artefact(s) within "
          f"tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
