#!/usr/bin/env python3
"""Stamp a bench run with its provenance.

Usage:
    tools/bench_manifest.py start  --out bench/out
    tools/bench_manifest.py finish --out bench/out [--repo .]

`start` records the wall clock before the first bench binary runs;
`finish` writes bench/out/manifest.json describing the whole run:
the git SHA the artefacts were produced from (plus a dirty flag), a
hash of the simulator configuration header (so a config change that
silently shifts every baseline is visible in the artefact trail),
the GRP_INSTRUCTIONS override in effect, and the run's wall-clock
duration. Each bench binary also drops a timing sidecar into
bench/out/timings/<bench>.json (threads used, per-job wall clock,
simulated instructions per second, and — when GRP_HOST_PROF >= 1 —
per-job host-phase breakdowns); `finish` folds those into the
manifest under "benches" and sums them into aggregate throughput
figures. v3 adds host provenance (CPU model, compiler, build type
and flags, thread count) so perf_compare.py can tell a regression
from a machine change, plus per-bench "hostPhases" aggregates of
the job-level host profiles. bench_compare.py ignores the manifest
and the sidecars (they have no baselines — timing is
machine-dependent by nature); perf_compare.py gates on the
manifest's inst/s figures, and grpperf diffs two manifests.

The manifest is published atomically (tmp + rename), matching the
simulator's own JSON exporters.
"""

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

STAMP_NAME = ".bench_started"
MANIFEST_NAME = "manifest.json"


def git(repo, *args):
    try:
        return subprocess.run(
            ["git", "-C", str(repo), *args],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def cmd_start(out_dir):
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / STAMP_NAME).write_text(f"{time.time():.3f}\n")
    return 0


def cpu_model():
    """First 'model name' line from /proc/cpuinfo (None elsewhere)."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return None


def aggregate_host_phases(jobs):
    """Sum the per-job hostProf phase tables into one bench-level
    table (None when no job carried a profile)."""
    phases = {}
    for job in jobs:
        prof = job.get("hostProf") or {}
        for name, totals in (prof.get("phases") or {}).items():
            agg = phases.setdefault(
                name, {"totalNanos": 0, "selfNanos": 0, "calls": 0})
            for key in agg:
                agg[key] += totals.get(key, 0)
    return phases or None


def load_timings(out_dir):
    """Collect the per-bench timing sidecars the bench binaries wrote
    to out/timings/, keyed by bench name."""
    timings = {}
    timing_dir = out_dir / "timings"
    if not timing_dir.is_dir():
        return timings
    for path in sorted(timing_dir.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        jobs = data.get("jobs", [])
        entry = {
            "threads": data.get("threads"),
            "wallSeconds": data.get("totalWallSeconds"),
            "simulatedInstructions": data.get(
                "simulatedInstructions"),
            "instructionsPerSecond": data.get(
                "instructionsPerSecond"),
            "jobs": jobs,
        }
        if "provenance" in data:
            entry["provenance"] = data["provenance"]
        host_phases = aggregate_host_phases(jobs)
        if host_phases:
            entry["hostPhases"] = host_phases
        timings[data.get("bench", path.stem)] = entry
    return timings


def run_provenance(timings):
    """Host provenance for the manifest: the machine (CPU model,
    thread env) plus the build identity the sidecars recorded. Mixed
    sidecar provenance (a stale timings/ dir) is surfaced rather
    than silently picking one."""
    builds = []
    for t in timings.values():
        build = t.get("provenance")
        if build and build not in builds:
            builds.append(build)
    provenance = {
        "cpuModel": cpu_model(),
        "benchThreads": os.environ.get("GRP_BENCH_THREADS"),
        "hostProf": os.environ.get("GRP_HOST_PROF"),
        # Live telemetry multiplexing, when it was on for this run:
        # pulse beats cost (a little) host time, so a manifest that
        # recorded GRP_PULSE explains a slightly slower inst/s figure
        # the same way hostProf does.
        "pulse": os.environ.get("GRP_PULSE"),
    }
    if len(builds) == 1:
        provenance.update(builds[0])
    elif builds:
        provenance["mixedBuilds"] = builds
    return provenance


def cmd_finish(out_dir, repo):
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = out_dir / STAMP_NAME
    wall = None
    if stamp.is_file():
        try:
            wall = round(time.time() - float(stamp.read_text()), 3)
        except ValueError:
            pass
        stamp.unlink(missing_ok=True)

    config = repo / "src" / "sim" / "config.hh"
    config_hash = (
        hashlib.sha256(config.read_bytes()).hexdigest()
        if config.is_file() else None
    )

    timings = load_timings(out_dir)
    total_instructions = sum(
        t["simulatedInstructions"] or 0 for t in timings.values())
    bench_wall = sum(
        t["wallSeconds"] or 0.0 for t in timings.values())

    manifest = {
        "schema": "grp-bench-manifest-v3",
        "gitSha": git(repo, "rev-parse", "HEAD"),
        "gitDirty": bool(git(repo, "status", "--porcelain")),
        "configHash": config_hash,
        "provenance": run_provenance(timings),
        "grpInstructions": os.environ.get("GRP_INSTRUCTIONS"),
        "benchThreads": os.environ.get("GRP_BENCH_THREADS"),
        "wallClockSeconds": wall,
        "benchWallSeconds": round(bench_wall, 3) or None,
        "simulatedInstructions": total_instructions or None,
        "instructionsPerSecond": (
            round(total_instructions / bench_wall, 1)
            if bench_wall > 0 else None
        ),
        "finishedAtUnix": round(time.time(), 3),
        "benches": timings,
    }

    tmp = out_dir / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    tmp.replace(out_dir / MANIFEST_NAME)
    print(f"bench manifest: {out_dir / MANIFEST_NAME}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["start", "finish"])
    parser.add_argument("--out", default="bench/out", type=Path)
    parser.add_argument("--repo", default=".", type=Path)
    args = parser.parse_args()
    if args.command == "start":
        return cmd_start(args.out)
    return cmd_finish(args.out, args.repo)


if __name__ == "__main__":
    sys.exit(main())
