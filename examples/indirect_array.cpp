/**
 * @file
 * Indirect prefetching demo (Section 3.3.3): a[b[i]] with random
 * index values — the bzip2 pattern. Spatial prefetching cannot
 * predict the targets; the GRP indirect prefetch instruction reads
 * the index block and prefetches all sixteen targets at once.
 */

#include <cstdio>

#include "compiler/builder.hh"
#include "compiler/hint_generator.hh"
#include "core/engine_factory.hh"
#include "cpu/cpu.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/heap_builders.hh"
#include "workloads/interpreter.hh"

using namespace grp;

namespace
{

struct Kernel
{
    FunctionalMemory mem;
    Program prog;
};

std::unique_ptr<Kernel>
buildGather(unsigned cluster_run)
{
    auto kernel = std::make_unique<Kernel>();
    Rng rng(7);
    ProgramBuilder b(kernel->mem);
    const uint64_t n = 256 * 1024;
    const uint64_t data_elems = 2 * 1024 * 1024; // 16 MB target.
    const ArrayId data = b.array("data", 8, {data_elems});
    const ArrayId index = b.array("index", 4, {n});
    fillIndexArray(kernel->mem, b.arrayBase(index), n, data_elems,
                   cluster_run, rng);
    const ArrayId hot = b.array("hot", 8, {1024});

    const VarId i = b.forLoop(0, static_cast<int64_t>(n));
    b.arrayRef(data, {Subscript::indirect(index, Affine::var(i))});
    {
        const VarId j = b.forLoop(0, 40);
        b.arrayRef(hot, {Subscript::affine(Affine::var(j))});
        b.compute(2);
        b.end();
    }
    b.end();
    kernel->prog = b.build();
    return kernel;
}

struct Outcome
{
    double ipc;
    uint64_t traffic;
};

Outcome
run(Kernel &kernel, PrefetchScheme scheme)
{
    Program prog = kernel.prog;
    SimConfig config;
    config.scheme = scheme;
    HintTable table;
    HintGenerator generator(config.policy, config.l2.sizeBytes);
    generator.run(prog, table);

    EventQueue events;
    MemorySystem mem(config, events);
    auto engine = makePrefetchEngine(config, kernel.mem, mem);
    Interpreter interp(prog, kernel.mem, 42);
    Cpu cpu(config, mem, events, interp,
            config.usesHints() ? &table : nullptr);
    Tick cycle = 0;
    while (!cpu.done() && cpu.retiredInstructions() < 400'000) {
        events.advanceTo(cycle);
        cpu.tick();
        mem.tick();
        ++cycle;
    }
    return {cpu.ipc(), mem.trafficBytes()};
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("a[b[i]] gather: GRP's indirect prefetch instruction "
                "vs spatial schemes\n\n");
    std::printf("%-22s %8s %8s %8s | traffic srp/grp vs base\n",
                "index pattern", "stride", "srp", "grp");
    struct Case
    {
        const char *label;
        unsigned cluster;
    };
    for (const Case &c : {Case{"random (bzip2-like)", 1},
                          Case{"clustered (vpr-like)", 16}}) {
        auto kernel = buildGather(c.cluster);
        const Outcome base = run(*kernel, PrefetchScheme::None);
        const Outcome stride = run(*kernel, PrefetchScheme::Stride);
        const Outcome srp = run(*kernel, PrefetchScheme::Srp);
        const Outcome grp = run(*kernel, PrefetchScheme::GrpVar);
        std::printf("%-22s %8.3f %8.3f %8.3f | %.2fx / %.2fx\n",
                    c.label, stride.ipc / base.ipc,
                    srp.ipc / base.ipc, grp.ipc / base.ipc,
                    double(srp.traffic) / double(base.traffic),
                    double(grp.traffic) / double(base.traffic));
    }
    std::printf("\nRandom indices defeat region prefetching (traffic "
                "without coverage); the indirect\ninstruction covers "
                "them precisely — the paper's bzip2 result.\n");
    return 0;
}
