/**
 * @file
 * Pointer prefetching demo (Sections 3.2/3.3.1): a linked-list walk
 * over nodes whose layout is progressively scrambled, comparing no
 * prefetching, hardware pointer prefetching, recursive pointer
 * prefetching, and SRP.
 *
 * With a sequential layout, plain region prefetching (SRP) subsumes
 * pointer prefetching — the paper's observation for SPEC. As the
 * layout scrambles, only schemes that read the pointers themselves
 * keep helping.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "compiler/builder.hh"
#include "compiler/hint_generator.hh"
#include "core/engine_factory.hh"
#include "cpu/cpu.hh"
#include "mem/memory_system.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/heap_builders.hh"
#include "workloads/interpreter.hh"

using namespace grp;

namespace
{

struct ListKernel
{
    FunctionalMemory mem;
    Program prog;
};

std::unique_ptr<ListKernel>
buildListWalk(double shuffle)
{
    auto kernel = std::make_unique<ListKernel>();
    Rng rng(99);
    BuiltList list = buildLinkedList(kernel->mem, 64, 8, 256 * 1024,
                                     shuffle, rng);
    ProgramBuilder b(kernel->mem);
    const TypeId node_t = b.structType(
        "node", 64,
        {{"value", 0, false, kNoId}, {"next", 8, true, 0}});
    const PtrId p = b.ptr("p", node_t, list.head);
    const ArrayId hot = b.array("hot", 8, {1024});

    b.whileLoop(p);
    b.ptrRef(p, 0); // value
    {
        const VarId j = b.forLoop(0, 24);
        b.arrayRef(hot, {Subscript::affine(Affine::var(j))});
        b.compute(2);
        b.end();
    }
    b.ptrUpdateField(p, 8); // p = p->next
    b.end();
    kernel->prog = b.build();
    return kernel;
}

double
run(ListKernel &kernel, PrefetchScheme scheme)
{
    Program prog = kernel.prog;
    SimConfig config;
    config.scheme = scheme;
    HintTable table;
    HintGenerator generator(config.policy, config.l2.sizeBytes);
    generator.run(prog, table);

    EventQueue events;
    MemorySystem mem(config, events);
    auto engine = makePrefetchEngine(config, kernel.mem, mem);
    Interpreter interp(prog, kernel.mem, 42);
    Cpu cpu(config, mem, events, interp,
            config.usesHints() ? &table : nullptr);
    obs::Tracer::instance().setClock(&events);
    Tick cycle = 0;
    while (!cpu.done() && cpu.retiredInstructions() < 300'000) {
        events.advanceTo(cycle);
        cpu.tick();
        mem.tick();
        ++cycle;
    }
    obs::Tracer::instance().setClock(nullptr);
    return cpu.ipc();
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    // Optional prefetch lifecycle tracing across all the runs below:
    //   pointer_chase [--trace=PATH] [--trace-level=N]
    std::string trace_path;
    int trace_level = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace=", 0) == 0)
            trace_path = arg.substr(8);
        else if (arg.rfind("--trace-level=", 0) == 0)
            trace_level = std::atoi(arg.c_str() + 14);
    }
    if (!trace_path.empty()) {
        if (obs::Tracer::instance().open(trace_path))
            obs::Tracer::instance().setLevel(trace_level);
        else
            warn("cannot open trace file %s", trace_path.c_str());
    }
    std::printf("Linked-list walk: speedup over no prefetching as "
                "the node layout scrambles\n\n");
    std::printf("%-9s %8s %8s %8s %8s\n", "shuffle", "ptr",
                "ptr-rec", "srp", "grp");
    for (double shuffle : {0.0, 0.3, 0.6, 0.9}) {
        auto kernel = buildListWalk(shuffle);
        const double base = run(*kernel, PrefetchScheme::None);
        std::printf("%8.0f%% %8.3f %8.3f %8.3f %8.3f\n",
                    100 * shuffle,
                    run(*kernel, PrefetchScheme::PointerHw) / base,
                    run(*kernel, PrefetchScheme::PointerHwRec) / base,
                    run(*kernel, PrefetchScheme::Srp) / base,
                    run(*kernel, PrefetchScheme::GrpVar) / base);
    }
    std::printf("\nSequential layouts favour SRP (the paper's SPEC "
                "observation); scrambled layouts\nneed the pointer "
                "scanner, and GRP's recursive hint gets it without "
                "table state.\n");
    obs::Tracer::instance().close();
    return 0;
}
