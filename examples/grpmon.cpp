/**
 * @file
 * grpmon — attach to a pulse stream (obs/pulse.hh) and watch a run.
 *
 *   grpmon PATH            one-shot summary of a live/finished stream
 *   grpmon PATH --follow   re-read and redraw until the stream seals
 *   grpmon PATH --check    validate; exit code encodes the verdict
 *
 * The stream is the `--pulse` sidecar of one grpsim run, or the
 * $GRP_PULSE multiplexed stream of a whole bench sweep — grpmon
 * shows one row per job either way: progress, rolling host inst/s,
 * an ETA from the recent-beat window, queue occupancy, DRAM idle
 * fraction and watchdog warnings.
 *
 * --check exit codes (monitoring scripts branch on these):
 *   0 healthy    sealed, no watchdog warnings (a *partial* seal from
 *                a clean SIGINT stop is still healthy)
 *   1 stalled    sealed or live, but stall/slowdown warnings present
 *   2 truncated  no seal record — the writer is still running, or
 *                died without winding down
 *   3 malformed  structural corruption (bad seq/clock ordering,
 *                unparseable interior records, data after the seal)
 *
 * Attaching needs no coordination with the writer: records are
 * appended one complete line at a time and the final seal republishes
 * the file atomically, so each poll simply re-reads the path (a torn
 * last line counts as truncation-in-progress, not corruption).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "obs/pulse.hh"
#include "sim/logging.hh"

using namespace grp;

namespace
{

void
usage()
{
    std::printf(
        "usage: grpmon PATH [--follow] [--check] [--interval-ms N]\n"
        "  --follow       poll PATH until the stream seals\n"
        "  --check        validate only; exit 0 healthy, 1 stalled,\n"
        "                 2 truncated, 3 malformed\n"
        "  --interval-ms  poll period for --follow (default 500)\n");
}

/** "1234567" -> "1.2M"-style compact count for the progress rows. */
std::string
compact(double value)
{
    char text[32];
    if (value >= 1e9)
        std::snprintf(text, sizeof(text), "%.2fG", value / 1e9);
    else if (value >= 1e6)
        std::snprintf(text, sizeof(text), "%.2fM", value / 1e6);
    else if (value >= 1e3)
        std::snprintf(text, sizeof(text), "%.1fk", value / 1e3);
    else
        std::snprintf(text, sizeof(text), "%.0f", value);
    return text;
}

obs::PulseAnalysis
analyzeFile(const std::string &path, bool *readable)
{
    std::ifstream file(path);
    *readable = file.good();
    return obs::analyzePulse(file);
}

void
printSummary(const obs::PulseAnalysis &analysis)
{
    for (const auto &[name, job] : analysis.jobs) {
        const double target =
            static_cast<double>(job.targetInstructions);
        const double done = static_cast<double>(job.instructions);
        const double pct = target > 0.0 ? 100.0 * done / target : 0.0;
        std::string eta = "-";
        if (!job.ended && job.rollingInstPerSec > 0.0 &&
            target > done) {
            char text[32];
            std::snprintf(text, sizeof(text), "%.0fs",
                          (target - done) / job.rollingInstPerSec);
            eta = text;
        }
        std::printf(
            "  %-24s %6.1f%%  %9s/%-9s inst  %8s inst/s  eta %-6s "
            "q %3.0f%%  idle %3.0f%%  warn %llu%s%s\n",
            (name.empty() ? job.workload + "/" + job.scheme : name)
                .c_str(),
            pct, compact(done).c_str(), compact(target).c_str(),
            compact(job.rollingInstPerSec).c_str(), eta.c_str(),
            100.0 * job.queueOccupancy, 100.0 * job.dramIdleFrac,
            (unsigned long long)job.warnings,
            job.ended ? (job.partial ? "  [partial]" : "  [done]")
                      : "",
            job.ended || job.beats ? "" : "  [starting]");
    }
    std::printf("stream: %s, %llu beats, %llu warnings%s%s\n",
                obs::toString(analysis.verdict),
                (unsigned long long)analysis.beats,
                (unsigned long long)analysis.warnings,
                analysis.sealed
                    ? (analysis.partial ? ", sealed partial"
                                        : ", sealed")
                    : ", live/unsealed",
                analysis.tornTail ? ", torn tail" : "");
}

} // namespace

int
main(int argc, char **argv)
try {
    std::string path;
    bool follow = false;
    bool check = false;
    uint64_t interval_ms = 500;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--follow") {
            follow = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--interval-ms") {
            if (i + 1 >= argc) {
                usage();
                fatal("--interval-ms needs a value");
            }
            interval_ms = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 1;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage();
            return 1;
        }
    }
    if (path.empty()) {
        usage();
        return 1;
    }

    if (check) {
        bool readable = false;
        const obs::PulseAnalysis analysis =
            analyzeFile(path, &readable);
        if (!readable)
            fatal("cannot read pulse stream '%s'", path.c_str());
        std::printf("%s\n", obs::toString(analysis.verdict));
        for (const std::string &problem : analysis.problems)
            std::printf("  %s\n", problem.c_str());
        if (analysis.sealed && analysis.partial)
            std::printf("  sealed partial (clean early stop)\n");
        return static_cast<int>(analysis.verdict);
    }

    for (;;) {
        bool readable = false;
        const obs::PulseAnalysis analysis =
            analyzeFile(path, &readable);
        if (!readable) {
            if (!follow)
                fatal("cannot read pulse stream '%s'", path.c_str());
            // The writer may not have opened the file yet.
            std::printf("waiting for %s ...\n", path.c_str());
        } else {
            printSummary(analysis);
        }
        if (!follow || (readable && analysis.sealed))
            return 0;
        std::fflush(stdout);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
} catch (const std::exception &) {
    // fatal() already printed the message with its location.
    return 1;
}
