/**
 * @file
 * grpsim — a command-line driver for the simulator.
 *
 *   grpsim --workload mcf --scheme grp-var --instructions 1000000
 *          [--policy default|conservative|aggressive]
 *          [--seed N] [--warmup N] [--dump-stats] [--list]
 *
 * Runs one (workload, scheme) pair and prints the headline metrics;
 * with --dump-stats it also dumps every statistics group of the
 * memory system, the caches, the DRAM and the prefetch engine.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "compiler/hint_generator.hh"
#include "core/engine_factory.hh"
#include "cpu/cpu.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/interpreter.hh"
#include "workloads/workload.hh"

#include <iostream>

using namespace grp;

namespace
{

PrefetchScheme
parseScheme(const std::string &name)
{
    const PrefetchScheme all[] = {
        PrefetchScheme::None,         PrefetchScheme::Stride,
        PrefetchScheme::Srp,          PrefetchScheme::GrpFix,
        PrefetchScheme::GrpVar,       PrefetchScheme::PointerHw,
        PrefetchScheme::PointerHwRec, PrefetchScheme::SrpPlusPointer,
        PrefetchScheme::SrpThrottled,
    };
    for (PrefetchScheme scheme : all) {
        if (name == toString(scheme))
            return scheme;
    }
    fatal("unknown scheme '%s'", name.c_str());
}

CompilerPolicy
parsePolicy(const std::string &name)
{
    for (CompilerPolicy policy :
         {CompilerPolicy::Conservative, CompilerPolicy::Default,
          CompilerPolicy::Aggressive}) {
        if (name == toString(policy))
            return policy;
    }
    fatal("unknown policy '%s'", name.c_str());
}

void
usage()
{
    std::printf(
        "usage: grpsim [--workload NAME] [--scheme SCHEME]\n"
        "              [--instructions N] [--warmup N] [--seed N]\n"
        "              [--policy POLICY] [--dump-stats] [--list]\n"
        "schemes: none stride srp grp-fix grp-var ptr-hw ptr-hw-rec "
        "srp+ptr srp-throttled\n"
        "policies: conservative default aggressive\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string workload_name = "equake";
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    uint64_t instructions = 1'000'000;
    uint64_t warmup = ~0ull;
    uint64_t seed = 42;
    bool dump_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                fatal("%s needs a value", arg.c_str());
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            workload_name = value();
        } else if (arg == "--scheme") {
            config.scheme = parseScheme(value());
        } else if (arg == "--policy") {
            config.policy = parsePolicy(value());
        } else if (arg == "--instructions") {
            instructions = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--seed") {
            seed = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--dump-stats") {
            dump_stats = true;
        } else if (arg == "--list") {
            for (const auto &name : workloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    auto workload = makeWorkload(workload_name);
    const WorkloadInfo info = workload->info();
    if (info.recursiveDepthOverride != 0)
        config.region.recursiveDepth = info.recursiveDepthOverride;
    config.validate();

    FunctionalMemory fmem;
    Program prog = workload->build(fmem, seed);
    HintTable table;
    HintGenerator generator(config.policy, config.l2.sizeBytes);
    const HintStats hints = generator.run(prog, table);

    EventQueue events;
    MemorySystem mem(config, events);
    auto engine = makePrefetchEngine(config, fmem, mem);
    Interpreter interp(prog, fmem, seed);
    Cpu cpu(config, mem, events, interp,
            config.usesHints() ? &table : nullptr);

    if (warmup == ~0ull)
        warmup = instructions / 4;
    Tick cycle = 0;
    uint64_t warm_instr = 0, warm_cycles = 0;
    bool measuring = warmup == 0;
    while (!cpu.done() &&
           cpu.retiredInstructions() < instructions + warmup) {
        events.advanceTo(cycle);
        cpu.tick();
        mem.tick();
        ++cycle;
        if (!measuring && cpu.retiredInstructions() >= warmup) {
            mem.resetStats();
            if (engine.get())
                engine->stats().reset();
            warm_instr = cpu.retiredInstructions();
            warm_cycles = cycle;
            measuring = true;
        }
    }

    const uint64_t instr = cpu.retiredInstructions() - warm_instr;
    const uint64_t cycles = cpu.cycles() - warm_cycles;
    std::printf("workload      %s (%s)\n", workload_name.c_str(),
                info.missCause.c_str());
    std::printf("scheme        %s, policy %s, seed %llu\n",
                toString(config.scheme), toString(config.policy),
                (unsigned long long)seed);
    std::printf("hints         %u refs: %u spatial, %u pointer, %u "
                "recursive, %u indirect\n",
                hints.memInsts, hints.spatial, hints.pointer,
                hints.recursive, hints.indirect);
    std::printf("instructions  %llu (after %llu warmup)\n",
                (unsigned long long)instr,
                (unsigned long long)warmup);
    std::printf("cycles        %llu\n", (unsigned long long)cycles);
    std::printf("IPC           %.4f\n",
                cycles ? double(instr) / double(cycles) : 0.0);
    std::printf("traffic       %llu bytes (%llu fills + %llu "
                "prefetches + %llu writebacks)\n",
                (unsigned long long)mem.trafficBytes(),
                (unsigned long long)mem.stats().value("demandFills"),
                (unsigned long long)mem.stats().value("prefetchFills"),
                (unsigned long long)mem.stats().value("writebacks"));
    std::printf("L2 misses     %llu to memory, %llu total demand\n",
                (unsigned long long)mem.l2DemandMisses(),
                (unsigned long long)mem.stats().value(
                    "l2DemandMissesTotal"));

    if (dump_stats) {
        std::printf("\n-- statistics dump --\n");
        mem.stats().dump(std::cout);
        mem.l1d().stats().dump(std::cout);
        mem.l2().stats().dump(std::cout);
        mem.dram().stats().dump(std::cout);
        mem.l1Mshrs().stats().dump(std::cout);
        mem.l2Mshrs().stats().dump(std::cout);
        if (engine.get())
            engine->stats().dump(std::cout);
        cpu.stats().dump(std::cout);
    }
    return 0;
}
