/**
 * @file
 * grpsim — a command-line driver for the simulator.
 *
 *   grpsim --workload mcf --scheme grp-var --instructions 1000000
 *          [--policy default|conservative|aggressive]
 *          [--seed N] [--warmup N] [--dump-stats] [--list]
 *          [--stats-json PATH] [--stats-csv PATH]
 *          [--trace PATH] [--trace-level N] [--trace-format FMT]
 *          [--capture PATH] [--replay PATH]
 *          [--timeseries PATH] [--timeseries-bucket N]
 *          [--site-profile PATH] [--site-report N]
 *          [--shadow] [--cost-report] [--adaptive-report]
 *          [--host-prof PATH] [--host-prof-level N]
 *          [--pulse PATH] [--pulse-interval N] [--provenance]
 *
 * Runs one (workload, scheme) pair through the harness and prints
 * the headline metrics. --pulse appends live progress beats
 * (obs/pulse.hh JSONL) that `grpmon PATH --follow` can tail while
 * the run is alive; --pulse-interval overrides the beat cadence
 * (default ~1% of the instruction budget). SIGINT/SIGTERM stop the
 * run cleanly at the next beat boundary: every requested artefact is
 * still exported, marked "partial": true, and grpsim exits 130 (a
 * second signal aborts immediately). --provenance prints the build
 * identity (git SHA, compiler, build type, flags) plus the config
 * hash for the parsed command line and exits; the same block is
 * embedded in every --stats-json export. The observability flags export the full
 * statistics registry as JSON/CSV, record the prefetch lifecycle
 * trace (JSONL, or the compact .grpbin flight-recorder format —
 * chosen by extension or forced with --trace-format bin|jsonl;
 * --trace - streams to stdout for piping into grptrace), sample
 * queue/channel/MSHR time series and profile
 * per-hint-site behaviour; --capture records the CPU's dynamic
 * access stream to a .grpbin file and --replay re-drives a later
 * run from such a recording (same workload + seed) instead of the
 * interpreter; --shadow runs the counterfactual shadow
 * tags (pollution/coverage classification, mem.pollution* counters)
 * and --cost-report additionally prints the cost report (implies
 * --shadow). --host-prof writes the host-side self-profile (where
 * the simulator's own wall time went, by phase) as JSON; it implies
 * profiling level 2 unless --host-prof-level or GRP_HOST_PROF says
 * otherwise. Every flag accepts both "--flag value" and
 * "--flag=value". Output paths are validated up front: a path
 * whose parent directory does not exist is rejected before the
 * simulation spends any time — except the sentinel "-", which
 * streams the artefact to stdout (--stats-json, --stats-csv,
 * --host-prof).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "harness/provenance.hh"
#include "harness/runner.hh"
#include "mem/dram_backend/factory.hh"
#include "obs/host_prof.hh"
#include "obs/json_writer.hh"
#include "obs/pulse.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

using namespace grp;

namespace
{

/** First SIGINT/SIGTERM: request a clean stop at the next beat
 *  boundary (partial artefacts still get exported). A second signal
 *  means the wind-down itself is stuck — exit immediately. */
extern "C" void
onStopSignal(int)
{
    if (obs::stopRequested())
        std::_Exit(130);
    obs::requestStop();
}

PrefetchScheme
parseScheme(const std::string &name)
{
    const PrefetchScheme all[] = {
        PrefetchScheme::None,         PrefetchScheme::Stride,
        PrefetchScheme::Srp,          PrefetchScheme::GrpFix,
        PrefetchScheme::GrpVar,       PrefetchScheme::PointerHw,
        PrefetchScheme::PointerHwRec, PrefetchScheme::SrpPlusPointer,
        PrefetchScheme::SrpThrottled, PrefetchScheme::GrpAdaptive,
    };
    for (PrefetchScheme scheme : all) {
        if (name == toString(scheme))
            return scheme;
    }
    fatal("unknown scheme '%s'", name.c_str());
}

CompilerPolicy
parsePolicy(const std::string &name)
{
    for (CompilerPolicy policy :
         {CompilerPolicy::Conservative, CompilerPolicy::Default,
          CompilerPolicy::Aggressive}) {
        if (name == toString(policy))
            return policy;
    }
    fatal("unknown policy '%s'", name.c_str());
}

obs::TraceFormat
parseTraceFormat(const std::string &name)
{
    if (name == "auto")
        return obs::TraceFormat::Auto;
    if (name == "bin" || name == "binary")
        return obs::TraceFormat::Binary;
    if (name == "jsonl" || name == "json")
        return obs::TraceFormat::Jsonl;
    fatal("unknown trace format '%s' (auto, bin, jsonl)", name.c_str());
}

/** Reject an output path whose parent directory does not exist —
 *  otherwise a long simulation runs to completion and then silently
 *  (Tracer) or fatally (exports) fails to write its one artifact. */
std::string
outputPath(const std::string &flag, const std::string &path)
{
    if (path == "-") // stdout sentinel: nothing to validate
        return path;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty() && !std::filesystem::is_directory(parent)) {
        fatal("%s '%s': parent directory '%s' does not exist",
              flag.c_str(), path.c_str(), parent.string().c_str());
    }
    return path;
}

void
usage()
{
    std::printf(
        "usage: grpsim [--workload NAME] [--scheme SCHEME]\n"
        "              [--instructions N] [--warmup N] [--seed N]\n"
        "              [--policy POLICY] [--dram BACKEND]\n"
        "              [--dump-stats] [--list]\n"
        "              [--stats-json PATH] [--stats-csv PATH]\n"
        "              [--trace PATH] [--trace-level N]\n"
        "              [--trace-format auto|bin|jsonl]\n"
        "              [--capture PATH] [--replay PATH]\n"
        "              [--timeseries PATH] [--timeseries-bucket N]\n"
        "              [--site-profile PATH] [--site-report N]\n"
        "              [--shadow] [--cost-report] [--adaptive-report]\n"
        "              [--host-prof PATH] [--host-prof-level N]\n"
        "              [--pulse PATH] [--pulse-interval N]\n"
        "              [--provenance]\n"
        "schemes: none stride srp grp-fix grp-var grp-adaptive ptr-hw "
        "ptr-hw-rec srp+ptr srp-throttled\n"
        "policies: conservative default aggressive\n"
        "dram backends: legacy ddr4-2400 hbm2 lpddr4 (or GRP_DRAM)\n");
}

} // namespace

int
main(int argc, char **argv)
try {
    std::string workload_name = "equake";
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions options;
    options.obs.traceLevel = 2;
    // Ad-hoc CLI artefacts always record what produced them; bench
    // baselines keep the flag off to stay byte-comparable.
    options.obs.statsProvenance = true;
    bool show_provenance = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both "--flag value" and "--flag=value".
        std::string inline_value;
        bool has_inline = false;
        if (const size_t eq = arg.find('='); eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline = true;
        }
        auto value = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc) {
                usage();
                fatal("%s needs a value", arg.c_str());
            }
            return argv[++i];
        };
        auto number = [&]() {
            return std::strtoull(value().c_str(), nullptr, 0);
        };
        if (arg == "--workload") {
            workload_name = value();
        } else if (arg == "--scheme") {
            config.scheme = parseScheme(value());
        } else if (arg == "--policy") {
            config.policy = parsePolicy(value());
        } else if (arg == "--dram") {
            // Validated (and preset geometry applied) by the run's
            // resolveDramBackend; fatal early on an unknown name so
            // the error names the flag, not the config field.
            config.dram.backend = resolveDramBackendName(value());
        } else if (arg == "--instructions") {
            options.maxInstructions = number();
        } else if (arg == "--warmup") {
            options.warmupInstructions = number();
        } else if (arg == "--seed") {
            options.seed = number();
        } else if (arg == "--dump-stats") {
            options.obs.dumpStats = true;
        } else if (arg == "--stats-json") {
            options.obs.statsJsonPath = outputPath(arg, value());
        } else if (arg == "--stats-csv") {
            options.obs.statsCsvPath = outputPath(arg, value());
        } else if (arg == "--trace") {
            options.obs.tracePath = outputPath(arg, value());
        } else if (arg == "--trace-level") {
            options.obs.traceLevel = static_cast<int>(number());
        } else if (arg == "--trace-format") {
            options.obs.traceFormat = parseTraceFormat(value());
        } else if (arg == "--capture") {
            options.capturePath = outputPath(arg, value());
        } else if (arg == "--replay") {
            options.replayPath = value();
        } else if (arg == "--timeseries") {
            options.obs.timeseriesPath = outputPath(arg, value());
        } else if (arg == "--timeseries-bucket") {
            options.obs.timeseriesBucket = number();
        } else if (arg == "--site-profile") {
            options.obs.siteProfilePath = outputPath(arg, value());
        } else if (arg == "--site-report") {
            options.obs.siteReportTop = static_cast<int>(number());
        } else if (arg == "--shadow") {
            options.obs.shadow = true;
        } else if (arg == "--cost-report") {
            options.obs.costReport = true;
        } else if (arg == "--adaptive-report") {
            options.obs.adaptiveReport = true;
        } else if (arg == "--host-prof") {
            options.obs.hostProfPath = outputPath(arg, value());
        } else if (arg == "--host-prof-level") {
            options.obs.hostProfLevel = static_cast<int>(number());
        } else if (arg == "--pulse") {
            options.obs.pulsePath = outputPath(arg, value());
        } else if (arg == "--pulse-interval") {
            options.obs.pulse.intervalInstructions = number();
        } else if (arg == "--provenance") {
            show_provenance = true;
        } else if (arg == "--list") {
            for (const auto &name : workloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    // A report was asked for but nothing enables profiling: default
    // to the full hot-loop attribution level rather than emitting an
    // empty report.
    if (!options.obs.hostProfPath.empty() &&
        options.obs.hostProfLevel < 0 &&
        obs::HostProfiler::envLevel() == 0) {
        options.obs.hostProfLevel = 2;
    }

    if (show_provenance) {
        // Reflects the full command line (scheme/policy feed the
        // config hash), so parse first, print, and skip the run.
        obs::JsonWriter json(std::cout);
        json.beginObject();
        json.kv("schema", "grp-provenance-v1");
        json.key("provenance");
        writeProvenance(json, config);
        json.endObject();
        std::cout << "\n";
        return 0;
    }

    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    const RunResult result = runWorkload(workload_name, config, options);
    const uint64_t warmup =
        options.warmupInstructions == ~0ull
            ? options.maxInstructions / 4
            : options.warmupInstructions;

    // When a machine-readable report streams to stdout ("-"), the
    // human summary moves to stderr so `grpsim --stats-json - | jq`
    // sees a clean document.
    FILE *const out = (options.obs.statsJsonPath == "-" ||
                       options.obs.statsCsvPath == "-" ||
                       options.obs.hostProfPath == "-" ||
                       options.obs.tracePath == "-")
                          ? stderr
                          : stdout;
    std::fprintf(out, "workload      %s (%s)\n", workload_name.c_str(),
                 result.info.missCause.c_str());
    std::fprintf(out, "scheme        %s, policy %s, seed %llu\n",
                 toString(config.scheme), toString(config.policy),
                 (unsigned long long)options.seed);
    std::fprintf(out, "dram          %s\n",
                 resolveDramBackendName(config.dram.backend).c_str());
    std::fprintf(out,
                 "hints         %u refs: %u spatial, %u pointer, %u "
                 "recursive, %u indirect\n",
                 result.hints.memInsts, result.hints.spatial,
                 result.hints.pointer, result.hints.recursive,
                 result.hints.indirect);
    std::fprintf(out, "instructions  %llu (after %llu warmup)\n",
                 (unsigned long long)result.instructions,
                 (unsigned long long)warmup);
    std::fprintf(out, "cycles        %llu\n",
                 (unsigned long long)result.cycles);
    std::fprintf(out, "IPC           %.4f\n", result.ipc);
    std::fprintf(out,
                 "traffic       %llu bytes (%llu fills + %llu "
                 "prefetches + %llu writebacks)\n",
                 (unsigned long long)result.trafficBytes,
                 (unsigned long long)result.stats.value(
                     "mem.demandFills"),
                 (unsigned long long)result.prefetchFills,
                 (unsigned long long)result.stats.value(
                     "mem.writebacks"));
    std::fprintf(out,
                 "L2 misses     %llu to memory, %llu total demand\n",
                 (unsigned long long)result.l2MissesToMemory,
                 (unsigned long long)result.l2MissesTotal);
    if (result.prefetchFills) {
        std::fprintf(out,
                     "accuracy      %.4f (%llu useful / %llu fills, "
                     "+%llu warmup carryover)\n",
                     result.accuracy(),
                     (unsigned long long)result.usefulPrefetches,
                     (unsigned long long)result.prefetchFills,
                     (unsigned long long)result.warmupUsefulPrefetches);
    }
    if (result.partial) {
        std::fprintf(out,
                     "PARTIAL       stopped early on request; "
                     "exported artefacts carry \"partial\": true\n");
        return 130;
    }
    return 0;
} catch (const std::exception &) {
    // fatal() already printed the message with its location.
    return 1;
}
