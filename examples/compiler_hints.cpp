/**
 * @file
 * A compiler explorer for the hint pipeline: builds the paper's
 * Figure 3-6 example programs in the IR, runs the Section 4
 * analyses, and prints the hints each reference receives under the
 * three §5.4 policies.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "compiler/builder.hh"
#include "compiler/hint_generator.hh"
#include "sim/logging.hh"

using namespace grp;

namespace
{

struct NamedRef
{
    std::string label;
    RefId ref;
};

void
show(const char *title, Program prog,
     const std::vector<NamedRef> &refs)
{
    std::printf("%s\n", title);
    const CompilerPolicy policies[] = {CompilerPolicy::Conservative,
                                       CompilerPolicy::Default,
                                       CompilerPolicy::Aggressive};
    std::vector<HintTable> tables;
    for (CompilerPolicy policy : policies) {
        Program copy = prog;
        HintTable table;
        HintGenerator generator(policy, 1024 * 1024);
        generator.run(copy, table);
        tables.push_back(std::move(table));
    }
    for (const NamedRef &ref : refs) {
        std::printf("  %-28s conservative: %-18s default: %-18s "
                    "aggressive: %s\n",
                    ref.label.c_str(),
                    tables[0].get(ref.ref).describe().c_str(),
                    tables[1].get(ref.ref).describe().c_str(),
                    tables[2].get(ref.ref).describe().c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(true);

    // --- Figure 3: Fortran arrays ------------------------------
    {
        FunctionalMemory mem;
        ProgramBuilder b(mem);
        ArrayOpts fortran;
        fortran.columnMajor = true;
        const ArrayId a = b.array("a", 8, {512, 512}, fortran);
        const ArrayId c = b.array("c", 8, {512, 64}, fortran);
        const ArrayId idx = b.array("b", 4, {512});
        const VarId j = b.forLoop(0, 64);
        const VarId i = b.forLoop(0, 512);
        const RefId a_ij =
            b.arrayRef(a, {Subscript::affine(Affine::var(i)),
                           Subscript::affine(Affine::var(j))});
        const RefId c_bij =
            b.arrayRef(c, {Subscript::indirect(idx, Affine::var(i)),
                           Subscript::affine(Affine::var(j))});
        b.end();
        b.end();
        show("Figure 3 (Fortran): do j / do i", b.build(),
             {{"a(i,j)", a_ij}, {"c(b(i),j)", c_bij}});
    }

    // --- Figure 4: heap array of rows --------------------------
    {
        FunctionalMemory mem;
        ProgramBuilder b(mem);
        ArrayOpts heap_ptrs;
        heap_ptrs.heap = true;
        heap_ptrs.elemIsPointer = true;
        const ArrayId buf = b.array("buf", 8, {256}, heap_ptrs);
        const PtrId row = b.ptr("row");
        const VarId i = b.forLoop(0, 256);
        const RefId buf_i = b.ptrLoadFromArray(
            row, buf, Subscript::affine(Affine::var(i)));
        const VarId jj = b.forLoop(0, 128);
        const RefId buf_ij =
            b.ptrArrayRef(row, 8, Subscript::affine(Affine::var(jj)));
        b.end();
        b.end();
        show("Figure 4 (C heap array): T **buf", b.build(),
             {{"buf[i]", buf_i}, {"buf[i][j]", buf_ij}});
    }

    // --- Figure 5: induction pointer ---------------------------
    {
        FunctionalMemory mem;
        ProgramBuilder b(mem);
        const PtrId p = b.ptr("p", kNoId, mem.heapAlloc(1 << 20));
        b.forLoop(0, 1024);
        const RefId deref =
            b.ptrArrayRef(p, 8, Subscript::affine(Affine::of(0)));
        b.ptrUpdateConst(p, 16);
        b.end();
        show("Figure 5 (C induction pointer): p += c", b.build(),
             {{"*p", deref}});
    }

    // --- Figure 6: recursive pointer ---------------------------
    {
        FunctionalMemory mem;
        ProgramBuilder b(mem);
        const TypeId t = b.structType(
            "struct t", 64,
            {{"f", 0, false, kNoId}, {"next", 8, true, 0}});
        const PtrId a = b.ptr("a", t, mem.heapAlloc(64));
        b.whileLoop(a, 1024);
        const RefId field = b.ptrRef(a, 0);
        const RefId walk = b.ptrUpdateField(a, 8);
        b.end();
        show("Figure 6 (C recursive pointer): a = a->next",
             b.build(), {{"a->f", field}, {"a = a->next", walk}});
    }

    // --- Variable-size regions (§4.4) --------------------------
    {
        FunctionalMemory mem;
        ProgramBuilder b(mem);
        const ArrayId v = b.array("v", 8, {1 << 20});
        const PtrId p = b.ptr("p");
        b.forLoop(0, 4096);
        b.ptrAddrOfArray(p, v, Subscript::random((1 << 20) - 16));
        const VarId j = b.forLoop(0, 12);
        const RefId run =
            b.ptrArrayRef(p, 8, Subscript::affine(Affine::var(j)));
        b.end();
        b.end();
        Program prog = b.build();
        Program copy = prog;
        HintTable table;
        HintGenerator generator(CompilerPolicy::Default, 1 << 20);
        generator.run(copy, table);
        const LoadHints hints = table.get(run);
        std::printf("Section 4.4 (variable regions): 12-iteration "
                    "run of 8-byte elements\n");
        std::printf("  hints: %s, coeff=%u, bound=%u -> region of "
                    "%u blocks instead of 64\n\n",
                    hints.describe().c_str(), hints.sizeCoeff,
                    hints.loopBound, hints.regionBlocks(64));
    }
    return 0;
}
