/**
 * @file
 * Quickstart: simulate one benchmark kernel under every prefetching
 * scheme of the paper and print speedups and traffic side by side.
 *
 *   ./quickstart [workload] [instructions]
 *
 * Defaults: equake, 400000 instructions.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace grp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string name = argc > 1 ? argv[1] : "equake";
    RunOptions opts;
    opts.maxInstructions =
        argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2]))
                 : 400'000;

    std::printf("Guided Region Prefetching quickstart: %s, %llu "
                "instructions\n\n",
                name.c_str(),
                (unsigned long long)opts.maxInstructions);

    const RunResult base = runScheme(name, PrefetchScheme::None,
                                     opts);
    const RunResult perfect =
        runPerfect(name, Perfection::PerfectL2, opts);

    std::printf("baseline IPC %.3f | perfect-L2 IPC %.3f (gap "
                "%.1f%%) | L2 miss rate %.1f%%\n\n",
                base.ipc, perfect.ipc, gapFromPerfect(base, perfect),
                base.missRatePct());

    std::printf("%-10s %8s %9s %9s %9s\n", "scheme", "speedup",
                "traffic", "coverage", "accuracy");
    const PrefetchScheme schemes[] = {
        PrefetchScheme::Stride, PrefetchScheme::Srp,
        PrefetchScheme::GrpFix, PrefetchScheme::GrpVar,
    };
    for (PrefetchScheme scheme : schemes) {
        const RunResult run = runScheme(name, scheme, opts);
        std::printf("%-10s %8.3f %8.2fx %8.1f%% %8.1f%%\n",
                    toString(scheme), speedup(run, base),
                    trafficRatio(run, base), run.coveragePct(base),
                    100.0 * run.accuracy());
    }
    std::printf("\nGRP's goal (paper, Table 1): match SRP's speedup "
                "at a fraction of its traffic.\n");
    return 0;
}
