/**
 * @file
 * grptrace — offline analyzer for prefetch lifecycle traces.
 *
 *   grptrace TRACE [--chrome OUT.trace.json]
 *            [--timeseries TS.json] [--top N] [--quiet]
 *            [--site N] [--window A:B] [--ev NAME] [--no-index]
 *            [--jsonl PATH] [--summary-json PATH]
 *
 * Re-reads a trace written by `grpsim --trace` — JSONL or the
 * .grpbin binary flight-recorder format, sniffed automatically, with
 * "-" reading from stdin so `grpsim --trace - | grptrace --quiet -`
 * works — validates the lifecycle invariants (every fill was issued,
 * every first-use had a fill, no event touches a block that is not
 * live, issues stay inside enqueued windows), recomputes
 * per-hint-class and per-site accuracy/coverage/timeliness from the
 * raw events — an independent cross-check of the simulator's own
 * counters — and optionally converts the trace (plus a time-series
 * dump) to Chrome trace_event JSON for chrome://tracing or
 * ui.perfetto.dev.
 *
 * Query mode (--site / --window / --ev) prints the matching records
 * as JSONL instead of analyzing; on finalized binary traces with a
 * window lower bound the checkpoint directory seeks past the prefix
 * instead of decoding it. --jsonl converts the input to JSONL
 * (byte-identical to a natively written trace); --summary-json
 * writes the funnels and invariant verdicts as one machine-readable
 * document. Either path may be "-" for stdout.
 *
 * Exit status: 0 for a consistent trace, 1 for parse errors,
 * invariant violations, truncated binary inputs, or unusable inputs.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/atomic_file.hh"
#include "obs/bintrace.hh"
#include "obs/chrome_trace.hh"
#include "obs/json_reader.hh"
#include "obs/json_writer.hh"
#include "obs/trace_reader.hh"
#include "sim/logging.hh"

using namespace grp;

namespace
{

void
usage()
{
    std::printf(
        "usage: grptrace TRACE [--chrome OUT.trace.json]\n"
        "                [--timeseries TS.json] [--top N] [--quiet]\n"
        "                [--site N] [--window A:B] [--ev NAME]\n"
        "                [--no-index] [--jsonl PATH]\n"
        "                [--summary-json PATH]\n"
        "  TRACE              .jsonl or .grpbin trace; '-' reads "
        "stdin\n"
        "  --chrome PATH      convert to Chrome trace_event JSON\n"
        "  --timeseries PATH  merge a grp-timeseries-v1 dump into the\n"
        "                     Chrome export as counter tracks\n"
        "  --top N            rows in the per-site table (default 10)\n"
        "  --quiet            only report violations\n"
        "  --site N           query: records attributed to site N\n"
        "                     (-1 selects unattributed records)\n"
        "  --window A:B       query: records with A <= tick <= B\n"
        "                     (either bound may be empty)\n"
        "  --ev NAME          query: records of one event type\n"
        "  --no-index         query: full scan, ignore checkpoints\n"
        "  --jsonl PATH       convert the trace to JSONL ('-' stdout)\n"
        "  --summary-json PATH  machine-readable funnels + verdicts\n"
        "                     ('-' stdout)\n");
}

void
printFunnelRow(const char *label, const obs::FunnelStats &f)
{
    const uint64_t p90 =
        f.fillToUse.samples() ? f.fillToUse.percentile(90.0) : 0;
    std::printf("%-12s %8llu %8llu %7llu %7llu %8llu %8llu %7llu "
                "%7llu %6.1f %8llu %7llu\n",
                label, (unsigned long long)f.triggers,
                (unsigned long long)f.enqueued,
                (unsigned long long)f.dropped,
                (unsigned long long)f.filtered,
                (unsigned long long)f.issued,
                (unsigned long long)f.fills,
                (unsigned long long)f.useful,
                (unsigned long long)f.evictedUnused,
                100.0 * f.accuracy(), (unsigned long long)p90,
                (unsigned long long)f.pollutionMisses);
}

void
printFunnelHeader(const char *key)
{
    std::printf("%-12s %8s %8s %7s %7s %8s %8s %7s %7s %6s %8s %7s\n",
                key, "triggers", "enq", "drop", "filt", "issued",
                "fills", "useful", "evict", "acc%", "p90lat",
                "pollut");
}

/** Slurp the whole input ('-' is stdin); false on open failure. */
bool
slurp(const std::string &path, std::string &out)
{
    if (path == "-") {
        std::ostringstream text;
        text << std::cin.rdbuf();
        out = text.str();
        return true;
    }
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream text;
    text << is.rdbuf();
    out = text.str();
    return true;
}

void
writeFunnelJson(obs::JsonWriter &json, const obs::FunnelStats &f)
{
    json.beginObject();
    json.kv("triggers", f.triggers);
    json.kv("enqueued", f.enqueued);
    json.kv("dropped", f.dropped);
    json.kv("filtered", f.filtered);
    json.kv("issued", f.issued);
    json.kv("fills", f.fills);
    json.kv("useful", f.useful);
    json.kv("evictedUnused", f.evictedUnused);
    json.kv("warmFills", f.warmFills);
    json.kv("warmUseful", f.warmUseful);
    json.kv("pollutionMisses", f.pollutionMisses);
    json.kv("accuracy", f.accuracy());
    json.kv("fillToUseSamples", f.fillToUse.samples());
    if (f.fillToUse.samples())
        json.kv("fillToUseP90", f.fillToUse.percentile(90.0));
    json.endObject();
}

/** The --summary-json document: everything a CI gate needs to pass
 *  or fail a trace without parsing human-oriented stdout. */
void
writeSummaryJson(std::ostream &os, const std::string &input,
                 const obs::TraceParseResult &parsed,
                 const obs::TraceAnalysis &analysis, bool ok)
{
    obs::JsonWriter json(os);
    json.beginObject();
    json.kv("schema", "grp-trace-summary-v1");
    json.key("input");
    json.beginObject();
    json.kv("path", input);
    json.kv("binary", parsed.binary);
    json.kv("truncated", parsed.truncated);
    json.kv("parseErrors", (uint64_t)parsed.errors.size());
    json.endObject();
    json.kv("records", analysis.records);
    json.kv("warmupRecords", analysis.warmupRecords);
    json.kv("liveAtEnd", analysis.liveAtEnd);
    json.kv("inFlightAtEnd", analysis.inFlightAtEnd);
    json.kv("coverageChecked", analysis.coverageChecked);
    json.kv("pollutionChecked", analysis.pollutionChecked);
    json.kv("controllerTransitions", analysis.controllerTransitions);
    json.kv("violationCount", (uint64_t)analysis.violations.size());
    json.key("violations");
    json.beginArray();
    size_t listed = 0;
    for (const obs::InvariantViolation &v : analysis.violations) {
        if (listed++ == 50) // Bound the artefact on broken traces.
            break;
        json.beginObject();
        json.kv("record", (uint64_t)v.line);
        json.kv("message", v.message);
        json.endObject();
    }
    json.endArray();
    json.key("byClass");
    json.beginObject();
    for (const auto &[hint, funnel] : analysis.byClass) {
        json.key(hint == obs::HintClass::None ? "unattributed"
                                              : obs::toString(hint));
        writeFunnelJson(json, funnel);
    }
    json.endObject();
    json.key("bySite");
    json.beginObject();
    for (const auto &[site, funnel] : analysis.bySite) {
        json.key(std::to_string(site));
        writeFunnelJson(json, funnel);
    }
    json.endObject();
    json.kv("ok", ok);
    json.endObject();
    os << "\n";
}

/** Parse the --window A:B bounds (either side may be empty). */
void
parseWindow(const std::string &spec, obs::bintrace::QueryFilter &filter)
{
    const size_t colon = spec.find(':');
    fatal_if(colon == std::string::npos,
             "--window wants A:B, got '%s'", spec.c_str());
    const std::string from = spec.substr(0, colon);
    const std::string to = spec.substr(colon + 1);
    if (!from.empty())
        filter.fromTick = std::strtoull(from.c_str(), nullptr, 0);
    if (!to.empty())
        filter.toTick = std::strtoull(to.c_str(), nullptr, 0);
}

/** Does a parsed line pass the query filter (the JSONL fallback for
 *  inputs the indexed binary query cannot serve)? */
bool
matches(const obs::TraceLine &line,
        const obs::bintrace::QueryFilter &filter)
{
    if (filter.fromTick && line.t < *filter.fromTick)
        return false;
    if (filter.toTick && line.t > *filter.toTick)
        return false;
    if (filter.site && line.site != *filter.site)
        return false;
    if (filter.event && line.event != *filter.event)
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
try {
    std::string trace_path;
    std::string chrome_path;
    std::string timeseries_path;
    std::string jsonl_path;
    std::string summary_path;
    obs::bintrace::QueryFilter filter;
    bool query_mode = false;
    bool use_index = true;
    size_t top = 10;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (const size_t eq = arg.find('='); eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline = true;
        }
        auto value = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc) {
                usage();
                fatal("%s needs a value", arg.c_str());
            }
            return argv[++i];
        };
        if (arg == "--chrome") {
            chrome_path = value();
        } else if (arg == "--timeseries") {
            timeseries_path = value();
        } else if (arg == "--top") {
            top = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--site") {
            filter.site = std::strtoll(value().c_str(), nullptr, 0);
            query_mode = true;
        } else if (arg == "--window") {
            parseWindow(value(), filter);
            query_mode = true;
        } else if (arg == "--ev") {
            const std::string name = value();
            const auto event = obs::parseTraceEvent(name);
            if (!event)
                fatal("unknown event '%s'", name.c_str());
            filter.event = *event;
            query_mode = true;
        } else if (arg == "--no-index") {
            use_index = false;
        } else if (arg == "--jsonl") {
            jsonl_path = value();
        } else if (arg == "--summary-json") {
            summary_path = value();
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (arg == "-" && trace_path.empty()) {
            trace_path = arg;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 1;
        } else if (trace_path.empty()) {
            trace_path = arg;
        } else {
            usage();
            return 1;
        }
    }
    if (trace_path.empty()) {
        usage();
        return 1;
    }

    std::string data;
    if (!slurp(trace_path, data)) {
        std::fprintf(stderr, "grptrace: cannot open '%s'\n",
                     trace_path.c_str());
        return 1;
    }

    // Query mode prints matching records as JSONL and skips the
    // analysis; a finalized binary input with a window lower bound
    // seeks via the checkpoint directory instead of scanning.
    if (query_mode) {
        std::vector<obs::TraceLine> lines;
        uint64_t scanned = 0;
        bool seeked = false;
        std::vector<std::string> errors;
        bool truncated = false;
        if (obs::bintrace::isBinary(data)) {
            obs::bintrace::QueryResult result =
                obs::bintrace::query(data, filter, use_index);
            lines = std::move(result.lines);
            scanned = result.recordsScanned;
            seeked = result.seeked;
            errors = std::move(result.errors);
            truncated = result.truncated;
        } else {
            const obs::TraceParseResult parsed =
                obs::readTraceData(data);
            for (const obs::TraceLine &line : parsed.lines) {
                if (matches(line, filter))
                    lines.push_back(line);
            }
            scanned = parsed.lines.size();
            errors = parsed.errors;
        }
        for (const obs::TraceLine &line : lines)
            std::fputs(obs::jsonlLine(line).c_str(), stdout);
        for (const std::string &error : errors)
            std::fprintf(stderr, "grptrace: %s: %s\n",
                         trace_path.c_str(), error.c_str());
        std::fprintf(stderr,
                     "grptrace: matched %zu of %llu records scanned"
                     "%s\n",
                     lines.size(), (unsigned long long)scanned,
                     seeked ? " (seeked via checkpoint index)" : "");
        return errors.empty() && !truncated ? 0 : 1;
    }

    const obs::TraceParseResult parsed = obs::readTraceData(data);
    for (const std::string &error : parsed.errors)
        std::fprintf(stderr, "grptrace: %s: %s\n", trace_path.c_str(),
                     error.c_str());
    if (parsed.openFailed)
        return 1;

    const obs::TraceAnalysis analysis =
        obs::analyzeTrace(parsed.lines);

    for (const obs::InvariantViolation &v : analysis.violations)
        std::fprintf(stderr, "grptrace: invariant: record %zu: %s\n",
                     v.line, v.message.c_str());

    const bool ok = parsed.errors.empty() &&
                    analysis.violations.empty() && !parsed.truncated;

    if (!jsonl_path.empty()) {
        const auto emit = [&parsed](std::ostream &os) {
            for (const obs::TraceLine &line : parsed.lines)
                os << obs::jsonlLine(line);
        };
        if (jsonl_path == "-") {
            emit(std::cout);
        } else if (!obs::atomicWriteFile(jsonl_path, emit,
                                         "JSONL conversion")) {
            return 1;
        }
    }

    if (!summary_path.empty()) {
        const auto emit = [&](std::ostream &os) {
            writeSummaryJson(os, trace_path, parsed, analysis, ok);
        };
        if (summary_path == "-") {
            emit(std::cout);
        } else if (!obs::atomicWriteFile(summary_path, emit,
                                         "trace summary")) {
            return 1;
        }
    }

    if (!quiet) {
        std::printf("%s: %llu records (%llu warmup-era), "
                    "%zu parse errors, %zu violations%s\n",
                    trace_path.c_str(),
                    (unsigned long long)analysis.records,
                    (unsigned long long)analysis.warmupRecords,
                    parsed.errors.size(), analysis.violations.size(),
                    parsed.binary ? " [binary]" : "");
        std::printf("end of trace: %llu blocks resident unused, "
                    "%llu issues in flight%s\n",
                    (unsigned long long)analysis.liveAtEnd,
                    (unsigned long long)analysis.inFlightAtEnd,
                    analysis.coverageChecked
                        ? ""
                        : " (no enqueue events: issue coverage "
                          "not checked)");
        if (analysis.controllerTransitions)
            std::printf("adaptive controller: %llu knob "
                        "transitions\n",
                        (unsigned long long)
                            analysis.controllerTransitions);

        std::printf("\nper hint class (measured window):\n");
        printFunnelHeader("class");
        for (const auto &[hint, funnel] : analysis.byClass)
            printFunnelRow(hint == obs::HintClass::None
                               ? "unattributed"
                               : obs::toString(hint),
                           funnel);

        std::printf("\nper site (top %zu by evicted-unused fills):\n",
                    top);
        printFunnelHeader("site");
        std::vector<const std::pair<const int64_t,
                                    obs::FunnelStats> *> ranked;
        for (const auto &entry : analysis.bySite)
            ranked.push_back(&entry);
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto *a, const auto *b) {
                             if (a->second.evictedUnused !=
                                 b->second.evictedUnused)
                                 return a->second.evictedUnused >
                                        b->second.evictedUnused;
                             return a->second.accuracy() <
                                    b->second.accuracy();
                         });
        size_t shown = 0;
        for (const auto *entry : ranked) {
            if (shown++ >= top)
                break;
            char label[32];
            std::snprintf(label, sizeof label, "%lld",
                          (long long)entry->first);
            printFunnelRow(label, entry->second);
        }
    }

    if (!chrome_path.empty()) {
        std::unique_ptr<obs::JsonValue> timeseries;
        if (!timeseries_path.empty()) {
            std::ifstream ts(timeseries_path);
            if (!ts)
                fatal("cannot open time series '%s'",
                      timeseries_path.c_str());
            std::ostringstream text;
            text << ts.rdbuf();
            std::string error;
            timeseries = obs::parseJson(text.str(), &error);
            if (!timeseries)
                fatal("bad time series '%s': %s",
                      timeseries_path.c_str(), error.c_str());
        }
        if (!obs::writeChromeTraceFile(chrome_path, parsed.lines,
                                       timeseries.get()))
            fatal("cannot write '%s'", chrome_path.c_str());

        // Self-check: the export must itself be one valid JSON
        // document with a traceEvents array.
        std::ifstream back(chrome_path);
        std::ostringstream text;
        text << back.rdbuf();
        std::string error;
        auto doc = obs::parseJson(text.str(), &error);
        if (!doc || !doc->isObject() || !doc->find("traceEvents") ||
            !doc->find("traceEvents")->isArray()) {
            fatal("chrome export failed self-validation: %s",
                  error.empty() ? "missing traceEvents" : error.c_str());
        }
        if (!quiet)
            std::printf("\nchrome trace: %s (%zu events)\n",
                        chrome_path.c_str(),
                        doc->find("traceEvents")->asArray().size());
    }

    return ok ? 0 : 1;
} catch (const std::exception &) {
    // fatal() already printed the message with its location.
    return 1;
}
