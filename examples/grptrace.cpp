/**
 * @file
 * grptrace — offline analyzer for prefetch lifecycle traces.
 *
 *   grptrace TRACE.jsonl [--chrome OUT.trace.json]
 *            [--timeseries TS.json] [--top N] [--quiet]
 *
 * Re-reads a JSONL trace written by `grpsim --trace`, validates the
 * lifecycle invariants (every fill was issued, every first-use had a
 * fill, no event touches a block that is not live, issues stay
 * inside enqueued windows), recomputes per-hint-class and per-site
 * accuracy/coverage/timeliness from the raw events — an independent
 * cross-check of the simulator's own counters — and optionally
 * converts the trace (plus a time-series dump) to Chrome trace_event
 * JSON for chrome://tracing or ui.perfetto.dev.
 *
 * Exit status: 0 for a consistent trace, 1 for parse errors,
 * invariant violations, or unusable inputs.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/json_reader.hh"
#include "obs/trace_reader.hh"
#include "sim/logging.hh"

using namespace grp;

namespace
{

void
usage()
{
    std::printf(
        "usage: grptrace TRACE.jsonl [--chrome OUT.trace.json]\n"
        "                [--timeseries TS.json] [--top N] [--quiet]\n"
        "  --chrome PATH      convert to Chrome trace_event JSON\n"
        "  --timeseries PATH  merge a grp-timeseries-v1 dump into the\n"
        "                     Chrome export as counter tracks\n"
        "  --top N            rows in the per-site table (default 10)\n"
        "  --quiet            only report violations\n");
}

void
printFunnelRow(const char *label, const obs::FunnelStats &f)
{
    const uint64_t p90 =
        f.fillToUse.samples() ? f.fillToUse.percentile(90.0) : 0;
    std::printf("%-12s %8llu %8llu %7llu %7llu %8llu %8llu %7llu "
                "%7llu %6.1f %8llu %7llu\n",
                label, (unsigned long long)f.triggers,
                (unsigned long long)f.enqueued,
                (unsigned long long)f.dropped,
                (unsigned long long)f.filtered,
                (unsigned long long)f.issued,
                (unsigned long long)f.fills,
                (unsigned long long)f.useful,
                (unsigned long long)f.evictedUnused,
                100.0 * f.accuracy(), (unsigned long long)p90,
                (unsigned long long)f.pollutionMisses);
}

void
printFunnelHeader(const char *key)
{
    std::printf("%-12s %8s %8s %7s %7s %8s %8s %7s %7s %6s %8s %7s\n",
                key, "triggers", "enq", "drop", "filt", "issued",
                "fills", "useful", "evict", "acc%", "p90lat",
                "pollut");
}

} // namespace

int
main(int argc, char **argv)
try {
    std::string trace_path;
    std::string chrome_path;
    std::string timeseries_path;
    size_t top = 10;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (const size_t eq = arg.find('='); eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline = true;
        }
        auto value = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc) {
                usage();
                fatal("%s needs a value", arg.c_str());
            }
            return argv[++i];
        };
        if (arg == "--chrome") {
            chrome_path = value();
        } else if (arg == "--timeseries") {
            timeseries_path = value();
        } else if (arg == "--top") {
            top = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 1;
        } else if (trace_path.empty()) {
            trace_path = arg;
        } else {
            usage();
            return 1;
        }
    }
    if (trace_path.empty()) {
        usage();
        return 1;
    }

    const obs::TraceParseResult parsed =
        obs::readTraceFile(trace_path);
    for (const std::string &error : parsed.errors)
        std::fprintf(stderr, "grptrace: %s: %s\n", trace_path.c_str(),
                     error.c_str());
    if (parsed.openFailed)
        return 1;

    const obs::TraceAnalysis analysis =
        obs::analyzeTrace(parsed.lines);

    for (const obs::InvariantViolation &v : analysis.violations)
        std::fprintf(stderr, "grptrace: invariant: record %zu: %s\n",
                     v.line, v.message.c_str());

    if (!quiet) {
        std::printf("%s: %llu records (%llu warmup-era), "
                    "%zu parse errors, %zu violations\n",
                    trace_path.c_str(),
                    (unsigned long long)analysis.records,
                    (unsigned long long)analysis.warmupRecords,
                    parsed.errors.size(), analysis.violations.size());
        std::printf("end of trace: %llu blocks resident unused, "
                    "%llu issues in flight%s\n",
                    (unsigned long long)analysis.liveAtEnd,
                    (unsigned long long)analysis.inFlightAtEnd,
                    analysis.coverageChecked
                        ? ""
                        : " (no enqueue events: issue coverage "
                          "not checked)");
        if (analysis.controllerTransitions)
            std::printf("adaptive controller: %llu knob "
                        "transitions\n",
                        (unsigned long long)
                            analysis.controllerTransitions);

        std::printf("\nper hint class (measured window):\n");
        printFunnelHeader("class");
        for (const auto &[hint, funnel] : analysis.byClass)
            printFunnelRow(hint == obs::HintClass::None
                               ? "unattributed"
                               : obs::toString(hint),
                           funnel);

        std::printf("\nper site (top %zu by evicted-unused fills):\n",
                    top);
        printFunnelHeader("site");
        std::vector<const std::pair<const int64_t,
                                    obs::FunnelStats> *> ranked;
        for (const auto &entry : analysis.bySite)
            ranked.push_back(&entry);
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto *a, const auto *b) {
                             if (a->second.evictedUnused !=
                                 b->second.evictedUnused)
                                 return a->second.evictedUnused >
                                        b->second.evictedUnused;
                             return a->second.accuracy() <
                                    b->second.accuracy();
                         });
        size_t shown = 0;
        for (const auto *entry : ranked) {
            if (shown++ >= top)
                break;
            char label[32];
            std::snprintf(label, sizeof label, "%lld",
                          (long long)entry->first);
            printFunnelRow(label, entry->second);
        }
    }

    if (!chrome_path.empty()) {
        std::unique_ptr<obs::JsonValue> timeseries;
        if (!timeseries_path.empty()) {
            std::ifstream ts(timeseries_path);
            if (!ts)
                fatal("cannot open time series '%s'",
                      timeseries_path.c_str());
            std::ostringstream text;
            text << ts.rdbuf();
            std::string error;
            timeseries = obs::parseJson(text.str(), &error);
            if (!timeseries)
                fatal("bad time series '%s': %s",
                      timeseries_path.c_str(), error.c_str());
        }
        if (!obs::writeChromeTraceFile(chrome_path, parsed.lines,
                                       timeseries.get()))
            fatal("cannot write '%s'", chrome_path.c_str());

        // Self-check: the export must itself be one valid JSON
        // document with a traceEvents array.
        std::ifstream back(chrome_path);
        std::ostringstream text;
        text << back.rdbuf();
        std::string error;
        auto doc = obs::parseJson(text.str(), &error);
        if (!doc || !doc->isObject() || !doc->find("traceEvents") ||
            !doc->find("traceEvents")->isArray()) {
            fatal("chrome export failed self-validation: %s",
                  error.empty() ? "missing traceEvents" : error.c_str());
        }
        if (!quiet)
            std::printf("\nchrome trace: %s (%zu events)\n",
                        chrome_path.c_str(),
                        doc->find("traceEvents")->asArray().size());
    }

    return parsed.errors.empty() && analysis.violations.empty() ? 0 : 1;
} catch (const std::exception &) {
    // fatal() already printed the message with its location.
    return 1;
}
