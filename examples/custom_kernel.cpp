/**
 * @file
 * Authoring a new workload against the public API: build a kernel in
 * the loop-nest IR, let the compiler pipeline derive hints for it,
 * and simulate it end to end under GRP.
 *
 * The kernel is a small sparse matrix-vector product — rows of a CSR
 * matrix reached through a heap array of row pointers, with a
 * gathered source vector: the exact cooperative-prefetching shapes
 * (Figure 4 + indirect references) the paper targets.
 */

#include <cstdio>

#include "compiler/builder.hh"
#include "compiler/hint_generator.hh"
#include "core/engine_factory.hh"
#include "cpu/cpu.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/heap_builders.hh"
#include "workloads/interpreter.hh"

using namespace grp;

namespace
{

Program
buildSpmv(FunctionalMemory &mem)
{
    Rng rng(1234);
    ProgramBuilder b(mem);

    const uint64_t rows = 2048;
    const uint64_t row_elems = 256; // 2 KB rows, 4 MB total.
    ArrayOpts ptr_opts;
    ptr_opts.heap = true;
    ptr_opts.elemIsPointer = true;
    const ArrayId rowptr = b.array("rowptr", 8, {rows}, ptr_opts);
    buildPointerRows(mem, b.arrayBase(rowptr), rows, row_elems * 8);

    const uint64_t n = 128 * 1024;
    const ArrayId x = b.array("x", 8, {n});
    const ArrayId y = b.array("y", 8, {rows});
    const ArrayId col = b.array("col", 4, {row_elems});
    fillIndexArray(mem, b.arrayBase(col), row_elems, n, 4, rng);

    const PtrId row = b.ptr("row");
    const VarId i = b.forLoop(0, static_cast<int64_t>(rows));
    b.ptrLoadFromArray(row, rowptr,
                       Subscript::affine(Affine::var(i)));
    {
        const VarId j = b.forLoop(0,
                                  static_cast<int64_t>(row_elems));
        b.ptrArrayRef(row, 8, Subscript::affine(Affine::var(j)));
        b.arrayRef(x, {Subscript::indirect(col, Affine::var(j))});
        b.compute(2);
        b.end();
    }
    b.arrayRef(y, {Subscript::affine(Affine::var(i))}, true);
    b.end();
    return b.build();
}

double
simulate(const Program &prog_template, FunctionalMemory &mem,
         PrefetchScheme scheme, uint64_t *traffic)
{
    // The compiler transforms the IR (indirect instruction
    // insertion), so each scheme analyses a fresh copy.
    Program prog = prog_template;
    SimConfig config;
    config.scheme = scheme;

    HintTable table;
    HintGenerator generator(config.policy, config.l2.sizeBytes);
    generator.run(prog, table);

    EventQueue events;
    MemorySystem memsys(config, events);
    auto engine = makePrefetchEngine(config, mem, memsys);
    Interpreter interp(prog, mem, 42);
    Cpu cpu(config, memsys, events, interp,
            config.usesHints() ? &table : nullptr);

    Tick cycle = 0;
    while (!cpu.done() && cpu.retiredInstructions() < 400'000) {
        events.advanceTo(cycle);
        cpu.tick();
        memsys.tick();
        ++cycle;
    }
    *traffic = memsys.trafficBytes();
    return cpu.ipc();
}

} // namespace

int
main()
{
    setQuiet(true);
    FunctionalMemory mem;
    Program prog = buildSpmv(mem);

    // Show what the compiler derives for this kernel.
    {
        Program copy = prog;
        HintTable table;
        HintGenerator generator(CompilerPolicy::Default, 1 << 20);
        const HintStats stats = generator.run(copy, table);
        std::printf("compiler: %u memory refs -> %u spatial, %u "
                    "pointer, %u recursive, %u indirect instr\n\n",
                    stats.memInsts, stats.spatial, stats.pointer,
                    stats.recursive, stats.indirect);
    }

    std::printf("%-10s %8s %12s\n", "scheme", "IPC", "traffic(KB)");
    uint64_t traffic = 0;
    const double base = simulate(prog, mem, PrefetchScheme::None,
                                 &traffic);
    std::printf("%-10s %8.3f %12.0f\n", "none", base,
                traffic / 1024.0);
    for (PrefetchScheme scheme :
         {PrefetchScheme::Stride, PrefetchScheme::Srp,
          PrefetchScheme::GrpVar}) {
        const double ipc = simulate(prog, mem, scheme, &traffic);
        std::printf("%-10s %8.3f %12.0f   (%.2fx speedup)\n",
                    toString(scheme), ipc, traffic / 1024.0,
                    ipc / base);
    }
    return 0;
}
