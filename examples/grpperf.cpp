/**
 * @file
 * grpperf — diff two bench manifests and attribute the change.
 *
 *   grpperf BASELINE_MANIFEST NEW_MANIFEST [--top N]
 *
 * Reads two bench/out/manifest.json files (bench_manifest.py finish)
 * and prints, side by side: aggregate and per-bench simulated
 * instructions per second, and a host-phase attribution table (self
 * and total seconds per phase, share of attributed self time, and
 * the share delta) built from the hostProf blocks the timing
 * sidecars carry when the sweep ran with GRP_HOST_PROF >= 1. The
 * table answers "the gate says 20% slower — where did the time go?":
 * the phase whose share grew names the culprit subsystem.
 *
 * Manifests without host-profile data still get the throughput
 * tables; the attribution section then says what to re-run.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/host_prof.hh"
#include "obs/json_reader.hh"
#include "sim/logging.hh"

using grp::obs::JsonValue;

namespace
{

struct PhaseAgg
{
    double selfNanos = 0.0;
    double totalNanos = 0.0;
    double calls = 0.0;
};

/** Everything grpperf needs from one manifest. */
struct Manifest
{
    std::string path;
    double instPerSec = 0.0;
    /** bench name -> instructionsPerSecond. */
    std::map<std::string, double> benches;
    /** phase name -> aggregated nanos across every job. */
    std::map<std::string, PhaseAgg> phases;
    bool hasHostProf = false;
};

double
numberOr(const JsonValue *value, double fallback)
{
    return value && value->isNumber() ? value->asNumber() : fallback;
}

void
foldPhases(const JsonValue &phases, Manifest &manifest)
{
    if (!phases.isObject())
        return;
    for (const auto &[name, totals] : phases.asObject()) {
        PhaseAgg &agg = manifest.phases[name];
        agg.selfNanos += numberOr(totals.find("selfNanos"), 0.0);
        agg.totalNanos += numberOr(totals.find("totalNanos"), 0.0);
        agg.calls += numberOr(totals.find("calls"), 0.0);
        manifest.hasHostProf = true;
    }
}

Manifest
loadManifest(const std::string &path)
{
    std::ifstream file(path);
    fatal_if(!file, "cannot open manifest '%s'", path.c_str());
    std::ostringstream text;
    text << file.rdbuf();

    std::string error;
    const auto doc = grp::obs::parseJson(text.str(), &error);
    fatal_if(!doc, "%s: %s", path.c_str(), error.c_str());

    Manifest manifest;
    manifest.path = path;
    manifest.instPerSec =
        numberOr(doc->find("instructionsPerSecond"), 0.0);

    const JsonValue *benches = doc->find("benches");
    if (!benches || !benches->isObject())
        return manifest;
    for (const auto &[bench, data] : benches->asObject()) {
        manifest.benches[bench] =
            numberOr(data.find("instructionsPerSecond"), 0.0);
        // v3 manifests aggregate the phases per bench; older data
        // still carries them per job inside the sidecar copy.
        if (const JsonValue *agg = data.find("hostPhases")) {
            foldPhases(*agg, manifest);
        } else if (const JsonValue *jobs = data.find("jobs");
                   jobs && jobs->isArray()) {
            for (const JsonValue &job : jobs->asArray()) {
                if (const JsonValue *prof =
                        job.findPath("hostProf.phases"))
                    foldPhases(*prof, manifest);
            }
        }
    }
    return manifest;
}

double
pctDelta(double base, double now)
{
    return base > 0.0 ? 100.0 * (now - base) / base : 0.0;
}

double
sumSelf(const Manifest &manifest)
{
    double sum = 0.0;
    for (const auto &[name, agg] : manifest.phases)
        sum += agg.selfNanos;
    return sum;
}

void
printThroughput(const Manifest &base, const Manifest &now)
{
    std::printf("%-24s %14s %14s %8s\n", "inst/s", "baseline", "new",
                "delta");
    std::printf("%-24s %14.0f %14.0f %+7.1f%%\n", "  <aggregate>",
                base.instPerSec, now.instPerSec,
                pctDelta(base.instPerSec, now.instPerSec));
    for (const auto &[bench, base_ips] : base.benches) {
        const auto it = now.benches.find(bench);
        if (it == now.benches.end()) {
            std::printf("%-24s %14.0f %14s\n", bench.c_str(),
                        base_ips, "absent");
            continue;
        }
        std::printf("%-24s %14.0f %14.0f %+7.1f%%\n", bench.c_str(),
                    base_ips, it->second,
                    pctDelta(base_ips, it->second));
    }
    for (const auto &[bench, now_ips] : now.benches) {
        if (!base.benches.count(bench))
            std::printf("%-24s %14s %14.0f\n", bench.c_str(),
                        "absent", now_ips);
    }
}

void
printAttribution(const Manifest &base, const Manifest &now, size_t top)
{
    if (!base.hasHostProf && !now.hasHostProf) {
        std::printf("\nno host-profile data in either manifest; "
                    "re-run the sweeps with GRP_HOST_PROF=1 for "
                    "phase attribution\n");
        return;
    }

    const double base_self = sumSelf(base);
    const double now_self = sumSelf(now);
    std::vector<std::string> names;
    for (const auto &[name, agg] : base.phases)
        names.push_back(name);
    for (const auto &[name, agg] : now.phases) {
        if (!base.phases.count(name))
            names.push_back(name);
    }
    // Biggest new-run self time first: the top rows are where the
    // wall clock actually goes now.
    std::stable_sort(names.begin(), names.end(),
                     [&](const std::string &a, const std::string &b) {
                         const auto sn = [&](const std::string &n) {
                             const auto it = now.phases.find(n);
                             return it == now.phases.end()
                                        ? 0.0
                                        : it->second.selfNanos;
                         };
                         return sn(a) > sn(b);
                     });

    std::printf("\nhost-phase attribution (self seconds, share of "
                "attributed self time)\n");
    std::printf("%-16s %10s %10s %7s %7s %8s %12s\n", "phase",
                "self(b)", "self(n)", "shr(b)", "shr(n)", "d(shr)",
                "total(n)");
    size_t shown = 0;
    for (const std::string &name : names) {
        if (top && shown++ >= top)
            break;
        static const PhaseAgg kZero;
        const auto bit = base.phases.find(name);
        const auto nit = now.phases.find(name);
        const PhaseAgg &b = bit == base.phases.end() ? kZero
                                                     : bit->second;
        const PhaseAgg &n = nit == now.phases.end() ? kZero
                                                    : nit->second;
        const double b_share =
            base_self > 0.0 ? 100.0 * b.selfNanos / base_self : 0.0;
        const double n_share =
            now_self > 0.0 ? 100.0 * n.selfNanos / now_self : 0.0;
        std::printf("%-16s %10.3f %10.3f %6.1f%% %6.1f%% %+7.1f%% "
                    "%12.3f\n",
                    name.c_str(), b.selfNanos * 1e-9,
                    n.selfNanos * 1e-9, b_share, n_share,
                    n_share - b_share, n.totalNanos * 1e-9);
    }
}

void
usage()
{
    std::printf("usage: grpperf BASELINE_MANIFEST NEW_MANIFEST "
                "[--top N]\n");
}

} // namespace

int
main(int argc, char **argv)
try {
    std::vector<std::string> paths;
    size_t top = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top") {
            fatal_if(i + 1 >= argc, "--top needs a value");
            top = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--help") {
            usage();
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        usage();
        return 1;
    }

    const Manifest base = loadManifest(paths[0]);
    const Manifest now = loadManifest(paths[1]);
    std::printf("baseline: %s\nnew:      %s\n\n", base.path.c_str(),
                now.path.c_str());
    printThroughput(base, now);
    printAttribution(base, now, top);
    return 0;
} catch (const std::exception &) {
    // fatal() already printed the message with its location.
    return 1;
}
